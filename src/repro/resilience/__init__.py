"""repro.resilience: error-resilient bitstreams and self-healing transport.

What real video codecs ship and tensor codecs forget: independently
decodable checksummed slices, a single loud error taxonomy, seeded
fault injection, and verify-and-retransmit transport.  See
``docs/RESILIENCE.md`` for the framing formats, concealment semantics,
and retry policy.

- :mod:`repro.resilience.errors` -- :class:`CorruptStreamError` and
  friends; every deserialization path in the repo raises these.
- :mod:`repro.resilience.framing` -- CRC32 slice framing shared by the
  frame bitstream, the tensor container, and the transport layer.
- :mod:`repro.resilience.faults` -- deterministic seeded fault
  injection (bit flips, truncation, drops, stragglers, crashes).
- :mod:`repro.resilience.verify` -- integrity checks behind
  ``llm265 verify``.
"""

from repro.resilience.deadline import Deadline
from repro.resilience.errors import (
    ChecksumError,
    ConcealmentReport,
    CorruptStreamError,
    DeadlineExceeded,
    TransportError,
    TruncatedStreamError,
)
from repro.resilience.faults import FaultConfig, FaultInjector, RetryPolicy
from repro.resilience.framing import (
    SLICE_OVERHEAD,
    crc32,
    deframe_payload,
    deframe_slices,
    frame_payload,
    frame_slice,
    frame_slices,
)

__all__ = [
    "ChecksumError",
    "ConcealmentReport",
    "CorruptStreamError",
    "Deadline",
    "DeadlineExceeded",
    "FaultConfig",
    "FaultInjector",
    "RetryPolicy",
    "SLICE_OVERHEAD",
    "TransportError",
    "TruncatedStreamError",
    "crc32",
    "deframe_payload",
    "deframe_slices",
    "frame_payload",
    "frame_slice",
    "frame_slices",
    "verify_path",
]


def verify_path(path, deep: bool = False):
    """Integrity-check a container / stream / checkpoint file.

    Thin lazy wrapper over :func:`repro.resilience.verify.verify_path`
    (lazy because the verifier imports the codec stack, which itself
    imports this package's error types).
    """
    from repro.resilience.verify import verify_path as _verify

    return _verify(path, deep=deep)
