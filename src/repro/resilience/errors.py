"""The error taxonomy every deserialization path funnels through.

Real decoders distinguish *corrupt input* (the bytes are damaged, the
caller may want to conceal) from *transport failure* (the link lost the
payload and retries ran out).  Before this module existed, a flipped
byte could surface as ``IndexError``, ``EOFError`` or ``struct.error``
from deep inside the arithmetic coder; now everything that parses
untrusted bytes raises :class:`CorruptStreamError` (a ``ValueError``
subclass, so pre-existing ``except ValueError`` call sites keep
working).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

__all__ = [
    "ChecksumError",
    "ConcealmentReport",
    "CorruptStreamError",
    "DeadlineExceeded",
    "TransportError",
    "TruncatedStreamError",
]


class CorruptStreamError(ValueError):
    """A bitstream, container, or checkpoint failed to parse.

    Raised by every deserialization path in the codebase -- the frame
    decoder, the entropy coders, ``CompressedTensor.from_bytes``, and
    the checkpoint loader -- so callers need exactly one except clause.
    """


class TruncatedStreamError(CorruptStreamError):
    """Input ended before the format said it would."""


class ChecksumError(CorruptStreamError):
    """A CRC32-protected region failed verification."""

    def __init__(self, message: str, expected: int = 0, actual: int = 0) -> None:
        super().__init__(message)
        self.expected = expected
        self.actual = actual


class DeadlineExceeded(TimeoutError):
    """A cooperative deadline budget ran out mid-request.

    Raised by :class:`repro.resilience.deadline.Deadline` checkpoints
    inside the encoder, decoder, rate-control loops, and pool waits.
    Deliberately a ``TimeoutError`` (not a :class:`CorruptStreamError`):
    the input was fine, the time budget was not -- callers respond by
    shedding or degrading, never by concealing.
    """


class TransportError(RuntimeError):
    """A simulated link lost a payload and bounded retries ran out.

    Deliberately *not* a :class:`CorruptStreamError`: the bytes were
    never delivered, so there is nothing to conceal -- callers must
    degrade (skip-and-compensate) or abort.
    """


@dataclass
class ConcealmentReport:
    """What a concealment-mode decode had to patch over.

    ``concealed`` holds ``(slice_index, reason)`` pairs, one per slice
    that could not be decoded; :attr:`clean` is True for a fault-free
    stream.  Tensor-level decodes map slice indices 1:1 onto tile
    indices in raster order.
    """

    total_slices: int = 0
    concealed: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def concealed_count(self) -> int:
        return len(self.concealed)

    @property
    def clean(self) -> bool:
        return not self.concealed

    def merge(self, other: "ConcealmentReport", offset: int = 0) -> None:
        """Fold ``other`` into this report, shifting its slice indices."""
        self.total_slices += other.total_slices
        self.concealed.extend(
            (index + offset, reason) for index, reason in other.concealed
        )

    def summary(self) -> str:
        if self.clean:
            return f"clean ({self.total_slices} slices verified)"
        return (
            f"{self.concealed_count}/{self.total_slices} slices concealed: "
            + ", ".join(f"#{i} ({reason})" for i, reason in self.concealed[:8])
            + ("..." if self.concealed_count > 8 else "")
        )
