"""Cooperative deadline budgets threaded through long-running work.

A :class:`Deadline` is a picklable wall-clock budget that hot loops
poll between natural units of work (a frame, a rate-control iteration,
a tile).  Cooperative cancellation is the only kind that composes with
a codec: preemption mid-frame would leave half-written entropy state,
whereas a per-frame check abandons the request at a slice boundary
with nothing orphaned -- the partially encoded frames are simply
dropped with the exception.

The deadline stores an *absolute* ``time.monotonic()`` expiry, so one
object can be handed through ``parallel_map`` into process-pool
workers (``CLOCK_MONOTONIC`` is system-wide on Linux, the platform the
pool engine targets); every holder observes the same remaining budget.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.resilience.errors import DeadlineExceeded

__all__ = ["Deadline", "DeadlineExceeded"]


class Deadline:
    """An absolute expiry that work units poll cooperatively.

    Build one with :meth:`after` (a relative budget) and pass it down a
    call stack; callees call :meth:`check` at loop boundaries and
    :meth:`remaining` when converting the budget into a blocking-wait
    timeout.  ``None`` is the conventional "no deadline" value, so all
    consumers take ``Optional[Deadline]``.
    """

    __slots__ = ("expires_at", "label")

    def __init__(self, expires_at: float, label: str = "request") -> None:
        self.expires_at = float(expires_at)
        self.label = label

    @classmethod
    def after(cls, budget_s: float, label: str = "request") -> "Deadline":
        """Deadline ``budget_s`` seconds from now."""
        if budget_s < 0:
            raise ValueError(f"budget_s must be >= 0, got {budget_s}")
        return cls(time.monotonic() + budget_s, label=label)

    def remaining(self) -> float:
        """Seconds of budget left (never negative)."""
        return max(0.0, self.expires_at - time.monotonic())

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def check(self, stage: str = "") -> None:
        """Raise :class:`DeadlineExceeded` once the budget is gone."""
        now = time.monotonic()
        if now >= self.expires_at:
            where = f" during {stage}" if stage else ""
            raise DeadlineExceeded(
                f"{self.label} deadline exceeded{where} "
                f"(overran by {now - self.expires_at:.3f}s)"
            )

    def child(self, budget_s: float, label: str = "") -> "Deadline":
        """A sub-deadline: ``budget_s`` from now, capped by this deadline.

        Used for per-attempt budgets inside a retry loop -- an attempt
        may be granted less than the request's remaining time but never
        more, so an abandoned attempt always stops cooperating soon
        after its supervisor gave up on it.
        """
        return Deadline(
            min(self.expires_at, time.monotonic() + budget_s),
            label=label or self.label,
        )

    def __repr__(self) -> str:
        return f"Deadline({self.label!r}, remaining={self.remaining():.3f}s)"


def effective_timeout(
    deadline: Optional[Deadline], timeout_s: Optional[float]
) -> Optional[float]:
    """Merge an explicit timeout with a deadline's remaining budget.

    Returns the tighter of the two, or ``None`` when neither bounds
    the wait.  Shared by every layer that converts cooperative budgets
    into blocking-wait timeouts (pool waits, broker queueing).
    """
    if deadline is None:
        return timeout_s
    remaining = deadline.remaining()
    if timeout_s is None:
        return remaining
    return min(timeout_s, remaining)
