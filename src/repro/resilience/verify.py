"""Integrity checks behind ``llm265 verify``.

Dispatches on the file's magic bytes -- ``L5`` tensor container,
``LV65`` raw frame stream, ``LVCK`` checkpoint -- and walks every
CRC32-protected region without decoding anything (fast).  ``deep=True``
additionally runs the real decoder in strict mode, which catches
damage a checksum cannot see (e.g. a stream that was *written* wrong).

Imports of the codec stack live inside functions: this module is
reachable from :mod:`repro.resilience` (via the lazy ``verify_path``
wrapper), which the codec stack itself imports for its error types.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.resilience.errors import CorruptStreamError
from repro.resilience.framing import SLICE_OVERHEAD, deframe_slices

__all__ = ["VerifyIssue", "VerifyReport", "verify_path", "verify_bytes"]


@dataclass
class VerifyIssue:
    """One problem found while verifying a file."""

    location: str  # e.g. "slice 3", "entry 'blocks.0.w'", "header"
    reason: str
    #: ``"corrupt"`` -- data is lost or falsified; ``"torn"`` -- an
    #: interrupted append that crash recovery would cleanly truncate
    #: (store journals only).  The CLI maps these to distinct exit codes.
    category: str = "corrupt"

    def __str__(self) -> str:
        tag = f" [{self.category}]" if self.category != "corrupt" else ""
        return f"{self.location}: {self.reason}{tag}"


@dataclass
class VerifyReport:
    """Outcome of one integrity check."""

    path: str
    kind: str  # "container" | "stream" | "checkpoint" | "store" | "unknown"
    checked: int = 0  # CRC-protected regions inspected
    issues: List[VerifyIssue] = field(default_factory=list)
    deep: bool = False

    @property
    def ok(self) -> bool:
        return not self.issues

    @property
    def torn_only(self) -> bool:
        """Every issue is a recoverable torn tail (no data corruption)."""
        return bool(self.issues) and all(
            issue.category == "torn" for issue in self.issues
        )

    def add(self, location: str, reason: str, category: str = "corrupt") -> None:
        self.issues.append(VerifyIssue(location, reason, category))

    def summary(self) -> str:
        mode = "deep" if self.deep else "fast"
        if self.ok:
            return (
                f"{self.path}: OK ({self.kind}, {self.checked} regions "
                f"verified, {mode} check)"
            )
        verdict = "TORN" if self.torn_only else "DAMAGED"
        lines = [
            f"{self.path}: {verdict} ({self.kind}, {len(self.issues)} issue(s), "
            f"{mode} check)"
        ]
        lines.extend(f"  - {issue}" for issue in self.issues)
        return "\n".join(lines)


def _verify_stream(raw: bytes, report: VerifyReport, deep: bool) -> None:
    """Raw ``LV65`` frame bitstream: header + per-frame slice CRCs."""
    from repro.codec.decoder import FrameDecoder
    from repro.codec.encoder import _HEADER_SIZE, unpack_header

    report.kind = "stream"
    try:
        header = unpack_header(raw)
    except CorruptStreamError as exc:
        report.add("header", str(exc))
        return
    report.checked += 1
    _, damage = deframe_slices(
        raw[_HEADER_SIZE:], expected=header["n_frames"], strict=False
    )
    report.checked += header["n_frames"]
    for index, reason in damage:
        report.add(f"slice {index}", reason)
    if deep and report.ok:
        report.deep = True
        try:
            FrameDecoder(raw, conceal=False).decode()
        except CorruptStreamError as exc:
            report.add("decode", str(exc))


def _verify_container(raw: bytes, report: VerifyReport, deep: bool) -> None:
    """``L5`` tensor container: metadata CRC, then the inner stream."""
    from repro.tensor.codec import CompressedTensor, TensorCodec

    report.kind = "container"
    try:
        compressed = CompressedTensor.from_bytes(raw)
    except CorruptStreamError as exc:
        report.add("metadata", str(exc))
        return
    report.checked += 1  # metadata CRC verified by from_bytes
    inner = VerifyReport(path=report.path, kind="stream")
    _verify_stream(compressed.data, inner, deep=False)
    report.checked += inner.checked
    report.issues.extend(inner.issues)
    if deep and report.ok:
        report.deep = True
        try:
            TensorCodec(
                tile=compressed.layout.tile
            ).decode(compressed)
        except CorruptStreamError as exc:
            report.add("decode", str(exc))


def _verify_checkpoint(raw: bytes, report: VerifyReport, deep: bool) -> None:
    """``LVCK`` checkpoint: per-entry CRCs, then per-entry payloads."""
    from repro.tensor.checkpoint import _KIND_LV265, _iter_entries
    from repro.tensor.codec import CompressedTensor

    report.kind = "checkpoint"
    try:
        for name, kind, payload, crc_ok in _iter_entries(raw):
            report.checked += 1
            if not crc_ok:
                report.add(f"entry {name!r}", "checksum mismatch")
            elif deep and kind == _KIND_LV265:
                report.deep = True
                try:
                    CompressedTensor.from_bytes(payload)
                except CorruptStreamError as exc:
                    report.add(f"entry {name!r}", str(exc))
    except CorruptStreamError as exc:
        report.add("structure", str(exc))


def verify_bytes(raw: bytes, path: str = "<bytes>", deep: bool = False) -> VerifyReport:
    """Verify in-memory bytes of any LLM.265 format."""
    report = VerifyReport(path=path, kind="unknown")
    if raw[:4] == b"LVCK":
        _verify_checkpoint(raw, report, deep)
    elif raw[:4] == b"LV65":
        _verify_stream(raw, report, deep)
    elif raw[:2] == b"L5":
        _verify_container(raw, report, deep)
    else:
        report.add(
            "header",
            f"unrecognized magic {raw[:4]!r} (expected L5 / LV65 / LVCK)",
        )
    return report


def _verify_store_dir(path: str, deep: bool) -> VerifyReport:
    """A shard store directory: journal records + segment inventory.

    Read-only -- unlike the store's own recovery this truncates and
    quarantines nothing.  A torn journal tail is reported with
    category ``"torn"`` (recovery would fix it losing only the
    unacknowledged write); everything else is ``"corrupt"``.
    """
    from repro.cluster.store import scan_store

    report = VerifyReport(path=str(path), kind="store", deep=deep)
    scan = scan_store(path, deep=deep)
    report.checked = (
        scan["journal_records"] + scan["segments_checked"]
    )
    for category, location, reason in scan["issues"]:
        report.add(location, reason, category=category)
    return report


def verify_path(path: str, deep: bool = False) -> VerifyReport:
    """Verify a file (any LLM.265 format) or a store directory on disk.

    Never raises on damaged *content*; a directory is dispatched to the
    shard-store scanner (``journal.log`` + ``segments/``).
    """
    import os

    if os.path.isdir(path):
        return _verify_store_dir(path, deep)
    with open(path, "rb") as handle:
        raw = handle.read()
    return verify_bytes(raw, path=str(path), deep=deep)
