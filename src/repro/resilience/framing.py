"""CRC32-checksummed slice framing (the NAL-unit layer of LLM.265).

Video codecs survive bit errors because the bitstream is cut into
independently decodable, individually checksummed units; a damaged unit
is detected on arrival and either reported (strict) or concealed.  This
module is that layer for every byte payload in the system:

- the frame codec writes one slice per frame,
- the tensor container protects its metadata with a trailing CRC,
- the simulated transport chunks arbitrary payloads for the
  verify-and-retransmit loop.

Wire format of one slice::

    u32 payload length | u32 CRC32(payload) | payload bytes

``SLICE_OVERHEAD`` (8 bytes) is the whole per-slice cost, which is why
the measured framing overhead on a default 256x256 tile is ~0.03%.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterable, List, Optional, Tuple

from repro.resilience.errors import (
    ChecksumError,
    CorruptStreamError,
    TruncatedStreamError,
)

__all__ = [
    "SLICE_OVERHEAD",
    "crc32",
    "deframe_payload",
    "deframe_slices",
    "frame_payload",
    "frame_slices",
]

_SLICE_HEADER = struct.Struct("<II")
SLICE_OVERHEAD = _SLICE_HEADER.size  # bytes added per slice


def crc32(data: bytes) -> int:
    """CRC32 as an unsigned 32-bit value."""
    return zlib.crc32(data) & 0xFFFFFFFF


def frame_slices(slices: Iterable[bytes]) -> bytes:
    """Concatenate ``slices`` into length+CRC framed wire format."""
    parts: List[bytes] = []
    for payload in slices:
        parts.append(_SLICE_HEADER.pack(len(payload), crc32(payload)))
        parts.append(payload)
    return b"".join(parts)


def frame_slice(payload: bytes) -> bytes:
    """Frame a single slice (header + payload)."""
    return _SLICE_HEADER.pack(len(payload), crc32(payload)) + payload


def deframe_slices(
    raw: bytes, expected: Optional[int] = None, strict: bool = True
) -> Tuple[List[Optional[bytes]], List[Tuple[int, str]]]:
    """Parse framed slices back out of ``raw``.

    Returns ``(slices, damage)`` where ``slices[i]`` is the verified
    payload of slice ``i`` or ``None`` if it was damaged, and ``damage``
    lists ``(index, reason)`` pairs.  With ``strict=True`` the first
    damaged slice raises (:class:`ChecksumError` /
    :class:`TruncatedStreamError`); with ``strict=False`` parsing
    continues past damage whenever the slice length field itself is
    intact, which is what concealment mode relies on.

    ``expected`` pins the slice count (from an out-of-band header): the
    result is padded with ``None`` entries for slices lost to
    truncation and trailing garbage beyond ``expected`` is an error.
    """
    slices: List[Optional[bytes]] = []
    damage: List[Tuple[int, str]] = []

    def fail(index: int, reason: str, exc_type=CorruptStreamError, **kw) -> None:
        if strict:
            raise exc_type(f"slice {index}: {reason}", **kw)
        damage.append((index, reason))

    offset = 0
    index = 0
    while offset < len(raw) and (expected is None or index < expected):
        if offset + SLICE_OVERHEAD > len(raw):
            fail(index, "truncated slice header", TruncatedStreamError)
            slices.append(None)
            index += 1
            offset = len(raw)  # partial header consumed, nothing trails
            break  # cannot re-synchronise without a length field
        length, checksum = _SLICE_HEADER.unpack_from(raw, offset)
        offset += SLICE_OVERHEAD
        payload = raw[offset : offset + length]
        if len(payload) < length:
            fail(index, "truncated slice payload", TruncatedStreamError)
            slices.append(None)
            index += 1
            offset = len(raw)
            break
        offset += length
        actual = crc32(payload)
        if actual != checksum:
            fail(
                index,
                "checksum mismatch",
                ChecksumError,
                expected=checksum,
                actual=actual,
            )
            slices.append(None)
        else:
            slices.append(payload)
        index += 1

    if expected is not None:
        if offset < len(raw):
            fail(len(slices), "trailing bytes after final slice")
        while len(slices) < expected:
            fail(len(slices), "slice missing (stream truncated)", TruncatedStreamError)
            slices.append(None)
    return slices, damage


def frame_payload(data: bytes, chunk_size: int = 4096) -> bytes:
    """Chunk an arbitrary payload into framed slices (transport wire form).

    A leading slice carries the total length so truncation of whole
    trailing chunks is detectable.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    chunks = [struct.pack("<Q", len(data))]
    chunks.extend(
        data[start : start + chunk_size] for start in range(0, len(data), chunk_size)
    )
    if not data:
        chunks.append(b"")
    return frame_slices(chunks)


def deframe_payload(raw: bytes) -> bytes:
    """Verify and reassemble a payload framed by :func:`frame_payload`.

    Raises :class:`CorruptStreamError` (or a subclass) on any damage --
    transport callers treat that as "retransmit".
    """
    slices, _ = deframe_slices(raw, strict=True)
    if not slices or slices[0] is None or len(slices[0]) != 8:
        raise CorruptStreamError("payload frame missing length prologue")
    (total,) = struct.unpack("<Q", slices[0])
    body = b"".join(s for s in slices[1:] if s is not None)
    if len(body) != total:
        raise TruncatedStreamError(
            f"payload length mismatch: expected {total}, got {len(body)}"
        )
    return body
