"""Deterministic, seeded fault injection for links, workers, and bytes.

One :class:`FaultInjector` models everything that goes wrong on a real
cluster fabric: flipped bits, truncated or dropped segments, straggler
delay, and whole-worker crashes.  Every decision comes from a single
seeded ``numpy`` generator, so a test that injects faults is exactly
reproducible -- same seed, same carnage.

The injector is pluggable: :class:`repro.distributed.comm.Channel`
calls :meth:`corrupt` on each transmission attempt, the data-parallel
trainer consults :meth:`worker_crashes`, and anything byte-shaped can
be damaged directly (checkpoint files, containers, frame streams) for
fuzzing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

import repro.telemetry as telemetry

__all__ = ["FaultConfig", "FaultInjector", "RetryPolicy"]


@dataclass
class FaultConfig:
    """Per-event-kind probabilities (independent, evaluated per send)."""

    bit_flip_prob: float = 0.0  # flip 1..max_flips random bits
    truncate_prob: float = 0.0  # cut the payload at a random offset
    drop_prob: float = 0.0  # lose the whole segment
    straggler_prob: float = 0.0  # delayed delivery (simulated seconds)
    crash_prob: float = 0.0  # per-(worker, step) crash probability
    hang_prob: float = 0.0  # worker stalls (unbounded from its own view)
    raise_prob: float = 0.0  # worker raises an in-flight exception
    max_flips: int = 8
    straggler_delay_s: float = 0.25
    hang_s: float = 0.25  # stall length the *supervisor* must bound

    def validate(self) -> None:
        for name in (
            "bit_flip_prob",
            "truncate_prob",
            "drop_prob",
            "straggler_prob",
            "crash_prob",
            "hang_prob",
            "raise_prob",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass
class RetryPolicy:
    """Bounded retransmission with exponential backoff.

    Backoff is *simulated*: the would-be sleep is recorded in the
    traffic ledger and telemetry (``comm.backoff_seconds``) instead of
    actually blocking the single-process simulation.
    """

    max_retries: int = 4
    backoff_base_s: float = 0.005
    backoff_factor: float = 2.0

    def backoff_s(self, attempt: int) -> float:
        """Simulated backoff before retry number ``attempt`` (1-based)."""
        return self.backoff_base_s * self.backoff_factor ** max(0, attempt - 1)


class FaultInjector:
    """Seeded source of injected faults.

    Parameters mirror :class:`FaultConfig`; pass either a config object
    or the individual probabilities as keyword arguments.
    """

    def __init__(
        self,
        seed: int = 0,
        config: Optional[FaultConfig] = None,
        **probabilities,
    ) -> None:
        self.config = config or FaultConfig(**probabilities)
        self.config.validate()
        self.rng = np.random.default_rng(seed)
        self.injected = 0  # total fault events produced

    # -- byte-level faults (links, files) ------------------------------

    def corrupt(self, payload: bytes) -> Optional[bytes]:
        """One transmission attempt: damaged payload, or ``None`` if dropped.

        Each call advances the generator, so a retransmission of the
        same payload faces fresh (independent) faults -- exactly like a
        real lossy link.
        """
        cfg = self.config
        if cfg.drop_prob and self.rng.random() < cfg.drop_prob:
            self._record("faults.drops")
            return None
        if cfg.truncate_prob and self.rng.random() < cfg.truncate_prob and payload:
            cut = int(self.rng.integers(0, len(payload)))
            self._record("faults.truncations")
            payload = payload[:cut]
        if cfg.bit_flip_prob and self.rng.random() < cfg.bit_flip_prob and payload:
            payload = self.flip_bits(payload, int(self.rng.integers(1, cfg.max_flips + 1)))
            self._record("faults.bit_flips")
        return payload

    def flip_bits(self, payload: bytes, flips: int = 1) -> bytes:
        """Flip ``flips`` uniformly random bits (always applies, for fuzzing)."""
        if not payload:
            return payload
        damaged = bytearray(payload)
        for _ in range(flips):
            position = int(self.rng.integers(0, len(damaged)))
            damaged[position] ^= 1 << int(self.rng.integers(0, 8))
        return bytes(damaged)

    def truncate(self, payload: bytes) -> bytes:
        """Cut the payload at a uniformly random offset (for fuzzing)."""
        if not payload:
            return payload
        return payload[: int(self.rng.integers(0, len(payload)))]

    # -- timing / liveness faults --------------------------------------

    def straggler_delay(self) -> float:
        """Simulated delivery delay in seconds for one send (0.0 = on time)."""
        cfg = self.config
        if cfg.straggler_prob and self.rng.random() < cfg.straggler_prob:
            self._record("faults.stragglers")
            return cfg.straggler_delay_s * float(self.rng.random() + 0.5)
        return 0.0

    def worker_crashes(self, step: int, worker: int) -> bool:
        """Whether ``worker`` is down for ``step`` (transient crash)."""
        if self.config.crash_prob and self.rng.random() < self.config.crash_prob:
            self._record("faults.worker_crashes")
            return True
        return False

    def worker_hang_s(self) -> float:
        """Stall length for one unit of work (0.0 = no hang).

        From the worker's own perspective the stall is unbounded -- it
        never voluntarily recovers; the returned duration exists only
        so a single-process simulation eventually frees the thread.
        Supervision must detect the hang via its *own* timeout, never
        by trusting this value.
        """
        cfg = self.config
        if cfg.hang_prob and self.rng.random() < cfg.hang_prob:
            self._record("faults.hangs")
            return cfg.hang_s * float(self.rng.random() + 0.5)
        return 0.0

    def worker_raises(self) -> bool:
        """Whether this unit of work dies with an in-worker exception."""
        if self.config.raise_prob and self.rng.random() < self.config.raise_prob:
            self._record("faults.raised_excs")
            return True
        return False

    # -- internals -----------------------------------------------------

    def _record(self, counter: str) -> None:
        self.injected += 1
        telemetry.count("faults.injected")
        telemetry.count(counter)
