"""Deterministic, seeded fault injection for links, workers, and bytes.

One :class:`FaultInjector` models everything that goes wrong on a real
cluster fabric: flipped bits, truncated or dropped segments, straggler
delay, and whole-worker crashes.  Every decision comes from a single
seeded ``numpy`` generator, so a test that injects faults is exactly
reproducible -- same seed, same carnage.

The injector is pluggable: :class:`repro.distributed.comm.Channel`
calls :meth:`corrupt` on each transmission attempt, the data-parallel
trainer consults :meth:`worker_crashes`, and anything byte-shaped can
be damaged directly (checkpoint files, containers, frame streams) for
fuzzing.

Beyond in-flight bytes, the injector also damages bytes *at rest*:
:meth:`file_bit_flip`, :meth:`file_truncate`, and :meth:`file_unlink`
model latent sector corruption, a lost write (torn file tail), and a
vanished file respectively -- the three disk failure modes the durable
store's scrubber and recovery path must turn into typed errors, never
silent wrong answers.  :meth:`damage_file` picks one at random
(seeded) for soak-style chaos.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

import numpy as np

import repro.telemetry as telemetry

__all__ = ["DISK_FAULT_MODES", "FaultConfig", "FaultInjector", "RetryPolicy"]

#: On-disk fault modes :meth:`FaultInjector.damage_file` chooses among.
DISK_FAULT_MODES = ("bit_flip", "truncate", "unlink")


@dataclass
class FaultConfig:
    """Per-event-kind probabilities (independent, evaluated per send)."""

    bit_flip_prob: float = 0.0  # flip 1..max_flips random bits
    truncate_prob: float = 0.0  # cut the payload at a random offset
    drop_prob: float = 0.0  # lose the whole segment
    straggler_prob: float = 0.0  # delayed delivery (simulated seconds)
    crash_prob: float = 0.0  # per-(worker, step) crash probability
    hang_prob: float = 0.0  # worker stalls (unbounded from its own view)
    raise_prob: float = 0.0  # worker raises an in-flight exception
    max_flips: int = 8
    straggler_delay_s: float = 0.25
    hang_s: float = 0.25  # stall length the *supervisor* must bound

    def validate(self) -> None:
        for name in (
            "bit_flip_prob",
            "truncate_prob",
            "drop_prob",
            "straggler_prob",
            "crash_prob",
            "hang_prob",
            "raise_prob",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass
class RetryPolicy:
    """Bounded retransmission with exponential backoff.

    Backoff is *simulated*: the would-be sleep is recorded in the
    traffic ledger and telemetry (``comm.backoff_seconds``) instead of
    actually blocking the single-process simulation.
    """

    max_retries: int = 4
    backoff_base_s: float = 0.005
    backoff_factor: float = 2.0

    def backoff_s(self, attempt: int) -> float:
        """Simulated backoff before retry number ``attempt`` (1-based)."""
        return self.backoff_base_s * self.backoff_factor ** max(0, attempt - 1)


class FaultInjector:
    """Seeded source of injected faults.

    Parameters mirror :class:`FaultConfig`; pass either a config object
    or the individual probabilities as keyword arguments.
    """

    def __init__(
        self,
        seed: int = 0,
        config: Optional[FaultConfig] = None,
        **probabilities,
    ) -> None:
        self.config = config or FaultConfig(**probabilities)
        self.config.validate()
        self.rng = np.random.default_rng(seed)
        self.injected = 0  # total fault events produced

    # -- byte-level faults (links, files) ------------------------------

    def corrupt(self, payload: bytes) -> Optional[bytes]:
        """One transmission attempt: damaged payload, or ``None`` if dropped.

        Each call advances the generator, so a retransmission of the
        same payload faces fresh (independent) faults -- exactly like a
        real lossy link.
        """
        cfg = self.config
        if cfg.drop_prob and self.rng.random() < cfg.drop_prob:
            self._record("faults.drops")
            return None
        if cfg.truncate_prob and self.rng.random() < cfg.truncate_prob and payload:
            cut = int(self.rng.integers(0, len(payload)))
            self._record("faults.truncations")
            payload = payload[:cut]
        if cfg.bit_flip_prob and self.rng.random() < cfg.bit_flip_prob and payload:
            payload = self.flip_bits(payload, int(self.rng.integers(1, cfg.max_flips + 1)))
            self._record("faults.bit_flips")
        return payload

    def flip_bits(self, payload: bytes, flips: int = 1) -> bytes:
        """Flip ``flips`` uniformly random bits (always applies, for fuzzing)."""
        if not payload:
            return payload
        damaged = bytearray(payload)
        for _ in range(flips):
            position = int(self.rng.integers(0, len(damaged)))
            damaged[position] ^= 1 << int(self.rng.integers(0, 8))
        return bytes(damaged)

    def truncate(self, payload: bytes) -> bytes:
        """Cut the payload at a uniformly random offset (for fuzzing)."""
        if not payload:
            return payload
        return payload[: int(self.rng.integers(0, len(payload)))]

    # -- at-rest (on-disk) faults --------------------------------------

    def file_bit_flip(self, path: str, flips: int = 1) -> int:
        """Flip ``flips`` random bits in the file at ``path``, in place.

        Models latent sector corruption (bit rot): the file keeps its
        size and mtime-ish plausibility, only the payload is wrong --
        exactly what only a CRC re-verification can catch.  Returns the
        number of bits flipped (0 for an empty or missing file).
        """
        try:
            with open(path, "r+b") as handle:
                blob = handle.read()
                if not blob:
                    return 0
                handle.seek(0)
                handle.write(self.flip_bits(blob, flips))
        except OSError:
            return 0
        self._record("faults.disk.bit_flips")
        return flips

    def file_truncate(self, path: str, at: Optional[int] = None) -> int:
        """Truncate the file at ``at`` (random offset if ``None``).

        Models a lost write / torn tail: everything past the cut is
        gone, everything before it is intact.  Returns the number of
        bytes removed.
        """
        try:
            size = os.path.getsize(path)
            if size == 0:
                return 0
            cut = (
                int(self.rng.integers(0, size)) if at is None
                else max(0, min(int(at), size))
            )
            with open(path, "r+b") as handle:
                handle.truncate(cut)
        except OSError:
            return 0
        self._record("faults.disk.truncations")
        return size - cut

    def file_unlink(self, path: str) -> bool:
        """Delete the file outright (vanished segment / fat-finger rm)."""
        try:
            os.unlink(path)
        except OSError:
            return False
        self._record("faults.disk.unlinks")
        return True

    def damage_file(self, path: str, mode: Optional[str] = None) -> str:
        """Apply one seeded on-disk fault to ``path``; returns the mode used.

        ``mode`` pins the fault kind; otherwise one of
        :data:`DISK_FAULT_MODES` is drawn from the injector's generator
        so a soak's disk carnage is as reproducible as its link faults.
        Returns ``""`` when the fault could not be applied (missing or
        empty file).
        """
        if mode is None:
            mode = DISK_FAULT_MODES[
                int(self.rng.integers(0, len(DISK_FAULT_MODES)))
            ]
        if mode == "bit_flip":
            flips = int(self.rng.integers(1, self.config.max_flips + 1))
            return mode if self.file_bit_flip(path, flips) else ""
        if mode == "truncate":
            return mode if self.file_truncate(path) else ""
        if mode == "unlink":
            return mode if self.file_unlink(path) else ""
        raise ValueError(
            f"unknown disk fault mode {mode!r}; expected {DISK_FAULT_MODES}"
        )

    # -- timing / liveness faults --------------------------------------

    def straggler_delay(self) -> float:
        """Simulated delivery delay in seconds for one send (0.0 = on time)."""
        cfg = self.config
        if cfg.straggler_prob and self.rng.random() < cfg.straggler_prob:
            self._record("faults.stragglers")
            return cfg.straggler_delay_s * float(self.rng.random() + 0.5)
        return 0.0

    def worker_crashes(self, step: int, worker: int) -> bool:
        """Whether ``worker`` is down for ``step`` (transient crash)."""
        if self.config.crash_prob and self.rng.random() < self.config.crash_prob:
            self._record("faults.worker_crashes")
            return True
        return False

    def worker_hang_s(self) -> float:
        """Stall length for one unit of work (0.0 = no hang).

        From the worker's own perspective the stall is unbounded -- it
        never voluntarily recovers; the returned duration exists only
        so a single-process simulation eventually frees the thread.
        Supervision must detect the hang via its *own* timeout, never
        by trusting this value.
        """
        cfg = self.config
        if cfg.hang_prob and self.rng.random() < cfg.hang_prob:
            self._record("faults.hangs")
            return cfg.hang_s * float(self.rng.random() + 0.5)
        return 0.0

    def worker_raises(self) -> bool:
        """Whether this unit of work dies with an in-worker exception."""
        if self.config.raise_prob and self.rng.random() < self.config.raise_prob:
            self._record("faults.raised_excs")
            return True
        return False

    # -- internals -----------------------------------------------------

    def _record(self, counter: str) -> None:
        self.injected += 1
        telemetry.count("faults.injected")
        telemetry.count(counter)
