"""Command-line interface: ``llm265``.

Subcommands:

- ``compress``   -- .npy tensor -> .lv265 compressed blob
- ``decompress`` -- .lv265 blob -> .npy tensor
- ``info``       -- inspect a compressed blob
- ``profile``    -- the Section 3.1 statistics of a tensor
- ``sweep``      -- rate-distortion curve of a tensor

Install with ``pip install -e .`` and run ``llm265 --help``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.analysis.statistics import profile_tensor, rate_distortion_sweep
from repro.codec.profiles import profile_by_name
from repro.tensor.codec import CompressedTensor, TensorCodec


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="llm265",
        description="LLM.265: video codecs repurposed as tensor codecs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compress = sub.add_parser("compress", help="compress a .npy tensor")
    compress.add_argument("input", help=".npy file to compress")
    compress.add_argument("output", help="destination .lv265 file")
    group = compress.add_mutually_exclusive_group()
    group.add_argument("--bits", type=float, help="bits/value budget (fractional ok)")
    group.add_argument("--qp", type=float, help="explicit quantization parameter")
    group.add_argument("--mse", type=float, help="max mean squared error")
    compress.add_argument("--codec", default="h265", choices=["h264", "h265", "av1"])
    compress.add_argument("--tile", type=int, default=256)

    decompress = sub.add_parser("decompress", help="restore a tensor")
    decompress.add_argument("input", help=".lv265 file")
    decompress.add_argument("output", help="destination .npy file")

    info = sub.add_parser("info", help="inspect a compressed tensor")
    info.add_argument("input", help=".lv265 file")

    profile = sub.add_parser("profile", help="Section 3.1 statistics of a tensor")
    profile.add_argument("input", help=".npy file")

    sweep = sub.add_parser("sweep", help="rate-distortion curve of a tensor")
    sweep.add_argument("input", help=".npy file")
    sweep.add_argument("--qps", default="8,16,24,32,40")
    return parser


def _cmd_compress(args: argparse.Namespace) -> int:
    tensor = np.load(args.input)
    codec = TensorCodec(profile=profile_by_name(args.codec), tile=args.tile)
    kwargs = {}
    if args.bits is not None:
        kwargs["bits_per_value"] = args.bits
    elif args.qp is not None:
        kwargs["qp"] = args.qp
    elif args.mse is not None:
        kwargs["target_mse"] = args.mse
    compressed = codec.encode(tensor, **kwargs)
    with open(args.output, "wb") as handle:
        handle.write(compressed.to_bytes())
    print(
        f"{args.input}: {tensor.size} values -> {compressed.nbytes} bytes "
        f"({compressed.bits_per_value:.2f} bits/value, "
        f"{compressed.compression_ratio:.1f}x vs FP16)"
    )
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    with open(args.input, "rb") as handle:
        compressed = CompressedTensor.from_bytes(handle.read())
    codec = TensorCodec(profile=profile_by_name(compressed.profile_name))
    tensor = codec.decode(compressed)
    np.save(args.output, tensor)
    print(f"{args.input} -> {args.output}: shape {tensor.shape}, dtype {tensor.dtype}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    with open(args.input, "rb") as handle:
        compressed = CompressedTensor.from_bytes(handle.read())
    print(f"shape:          {compressed.layout.shape}")
    print(f"dtype:          {compressed.dtype}")
    print(f"codec:          {compressed.profile_name} (qp={compressed.qp:.2f})")
    print(f"frames:         {compressed.layout.num_tiles} x {compressed.frame_shape}")
    print(f"size:           {compressed.nbytes} bytes")
    print(f"bits/value:     {compressed.bits_per_value:.3f}")
    print(f"ratio vs FP16:  {compressed.compression_ratio:.2f}x")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    tensor = np.load(args.input)
    summary = profile_tensor(tensor)
    print(f"entropy (8-bit mapped):   {summary['entropy_bits']:.2f} bits/value")
    print(f"outlier ratio (>4 sigma): {summary['outlier_ratio']:.2e}")
    print(f"channel structure score:  {summary['channel_structure']:.3f}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    tensor = np.load(args.input)
    qps = [float(v) for v in args.qps.split(",")]
    print(f"{'QP':>6s} {'bits/value':>11s} {'MSE':>12s}")
    for qp, bits, mse in rate_distortion_sweep(tensor, qps=qps):
        print(f"{qp:6.1f} {bits:11.3f} {mse:12.3e}")
    return 0


_COMMANDS = {
    "compress": _cmd_compress,
    "decompress": _cmd_decompress,
    "info": _cmd_info,
    "profile": _cmd_profile,
    "sweep": _cmd_sweep,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (also the console script)."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
