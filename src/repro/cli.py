"""Command-line interface: ``llm265``.

Subcommands:

- ``compress``   -- .npy tensor -> .lv265 compressed blob
- ``decompress`` -- .lv265 blob -> .npy tensor
- ``info``       -- inspect a compressed blob
- ``profile``    -- the Section 3.1 statistics of a tensor
- ``sweep``      -- rate-distortion curve of a tensor
- ``stats``      -- compress a tensor with telemetry on and print the
  full per-stage dissection (wall time, bits per syntax element class,
  rate-control convergence)
- ``verify``     -- integrity-check a container / stream / checkpoint
  via its CRC32 framing, or a shard-store directory (journal +
  segments); exit 0 clean, 2 corrupt, 3 torn journal tail only.
  ``--deep`` also runs a strict decode / full segment CRC re-read
- ``bench``      -- codec throughput ladder (pre-optimisation baseline,
  vectorized RD, slice-parallel) with byte-identity verification; exit
  2 when any configuration's output diverges.  ``--check`` runs the
  perf-regression sentinel against the tracked baseline (exit 3 on a
  regression)
- ``chaos``      -- seeded chaos soak of the fault-tolerant serving
  layer; exit 2 on any silent corruption, untyped error, or
  availability below the SLO, printing the flight-recorder postmortem
  bundle path on the way out.  ``--cluster`` soaks the sharded cluster
  instead, SIGKILL-style shard kills and hangs included;
  ``--durability`` soaks the durable store layer (SIGKILL mid-write +
  on-disk corruption; passes only if every acknowledged write survives
  bit-exact and anti-entropy restores full replication)
- ``serve-bench`` -- healthy-path serving benchmark (sequential
  latency percentiles + typed-shedding overload burst); ``--check``
  compares against the tracked serving baseline
- ``cluster-bench`` -- sharded-cluster ladder (shard sweep, hedge
  on/off tail A/B, chaos verdict); ``--check`` compares against the
  tracked ``BENCH_cluster.json`` baseline

A global ``--trace out.json`` flag (before the subcommand) records a
Chrome trace-event file of the run for ``chrome://tracing`` /
https://ui.perfetto.dev.

Install with ``pip install -e .`` and run ``llm265 --help``.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext
from typing import List, Optional

import numpy as np

import repro.telemetry as telemetry
from repro.analysis.statistics import profile_tensor, rate_distortion_sweep
from repro.codec.profiles import profile_by_name
from repro.tensor.codec import CompressedTensor, TensorCodec


def _add_rate_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--bits", type=float, help="bits/value budget (fractional ok)")
    group.add_argument("--qp", type=float, help="explicit quantization parameter")
    group.add_argument("--mse", type=float, help="max mean squared error")
    parser.add_argument("--codec", default="h265", choices=["h264", "h265", "av1"])
    parser.add_argument("--tile", type=int, default=256)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="llm265",
        description="LLM.265: video codecs repurposed as tensor codecs",
    )
    parser.add_argument(
        "--trace",
        metavar="OUT.json",
        help="write a Chrome trace-event file of this run (place before the "
        "subcommand)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compress = sub.add_parser("compress", help="compress a .npy tensor")
    compress.add_argument("input", help=".npy file to compress")
    compress.add_argument("output", help="destination .lv265 file")
    _add_rate_arguments(compress)

    decompress = sub.add_parser("decompress", help="restore a tensor")
    decompress.add_argument("input", help=".lv265 file")
    decompress.add_argument("output", help="destination .npy file")

    info = sub.add_parser("info", help="inspect a compressed tensor")
    info.add_argument("input", help=".lv265 file")

    profile = sub.add_parser("profile", help="Section 3.1 statistics of a tensor")
    profile.add_argument("input", help=".npy file")

    sweep = sub.add_parser("sweep", help="rate-distortion curve of a tensor")
    sweep.add_argument("input", help=".npy file")
    sweep.add_argument("--qps", default="8,16,24,32,40")

    stats = sub.add_parser(
        "stats",
        help="compress a tensor and print the per-stage codec dissection",
    )
    stats.add_argument("input", help=".npy file")
    stats.add_argument(
        "--format", default="table",
        choices=["table", "json", "prometheus"],
        help="table (human), json (the llm265-metrics-v1 snapshot "
             "document, same shape as CodecService.stats()), or "
             "prometheus (text exposition)",
    )
    _add_rate_arguments(stats)

    verify = sub.add_parser(
        "verify",
        help="integrity-check a .lv265 container, raw stream, checkpoint, "
             "or shard-store directory (exit 2 corrupt, 3 torn tail only)",
    )
    verify.add_argument("input", nargs="+",
                        help="file(s) or store director(ies) to verify")
    verify.add_argument(
        "--deep",
        action="store_true",
        help="also run a strict decode (files) or full segment CRC "
             "re-read (store dirs); slower, catches damage fast "
             "checks cannot",
    )

    bench = sub.add_parser(
        "bench",
        help="codec throughput benchmark: encode ladder (baseline / "
             "vectorized / turbo / parallel) + decode ladder (legacy / "
             "vectorized / parallel), all behind one identity gate",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="small tensor, single QP (CI smoke mode)",
    )
    bench.add_argument("--size-mb", type=float, default=1.0)
    bench.add_argument("--qps", default=None,
                       help="comma-separated QP list (default 18,26,34)")
    bench.add_argument("--workers", type=int, default=4)
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument("--output", default=None,
                       help="write the JSON result document here")
    bench.add_argument(
        "--check", action="store_true",
        help="regression sentinel: compare this run against the tracked "
             "baseline (exit 3 on perf regression, 2 on divergence)",
    )
    bench.add_argument("--baseline", default="BENCH_codec.json",
                       help="baseline document for --check")
    bench.add_argument("--slack", type=float, default=1.0,
                       help="tolerance multiplier for --check (CI uses > 1)")

    chaos = sub.add_parser(
        "chaos",
        help="chaos-soak the serving layer (exit 2 on contract violation)",
    )
    chaos.add_argument("--requests", type=int, default=500)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--quick", action="store_true",
        help="shortened soak (120 requests; CI smoke mode)",
    )
    chaos.add_argument("--output", default=None,
                       help="merge the report into this JSON file")
    chaos.add_argument(
        "--postmortem-dir", default=".",
        help="where the flight-recorder bundle lands on a contract "
             "violation (its path is printed before exit 2)",
    )
    chaos.add_argument(
        "--force-violation", action="store_true",
        help="drill: record one synthetic violation to exercise the "
             "postmortem path end to end (always exits 2)",
    )
    chaos.add_argument(
        "--cluster", action="store_true",
        help="soak the sharded cluster instead of a single service "
             "(shard kills + hangs mid-soak; same exit contract)",
    )
    chaos.add_argument("--shards", type=int, default=4,
                       help="cluster shard count (with --cluster or "
                            "--durability)")
    chaos.add_argument("--kills", type=int, default=None,
                       help="mid-soak shard kills (default 2 with "
                            "--cluster, 3 with --durability, where they "
                            "are armed mid-write)")
    chaos.add_argument(
        "--durability", action="store_true",
        help="soak the durable store layer: SIGKILL mid-write + disk "
             "bit-flips/truncation/unlinks; passes only if every acked "
             "write survives bit-exact and replication heals (exit 2 "
             "with a postmortem bundle otherwise)",
    )

    serve_bench = sub.add_parser(
        "serve-bench",
        help="healthy-path serving benchmark (latency + shedding burst)",
    )
    serve_bench.add_argument("--requests", type=int, default=60)
    serve_bench.add_argument("--seed", type=int, default=0)
    serve_bench.add_argument("--output", default=None,
                             help="merge the report into this JSON file")
    serve_bench.add_argument(
        "--check", action="store_true",
        help="regression sentinel: compare against the tracked serving "
             "baseline (exit 3 on regression, 2 on divergence)",
    )
    serve_bench.add_argument("--baseline", default="BENCH_serving.json",
                             help="baseline document for --check")
    serve_bench.add_argument("--slack", type=float, default=1.0,
                             help="tolerance multiplier for --check")
    serve_bench.add_argument(
        "--chaos-requests", type=int, default=0,
        help="with --check: also run a chaos soak of this many requests "
             "so the baseline's chaos section is compared too (0 skips)",
    )

    cluster_bench = sub.add_parser(
        "cluster-bench",
        help="sharded-cluster benchmark: shard sweep + hedge A/B + "
             "chaos verdict",
    )
    cluster_bench.add_argument(
        "--shard-counts", default="2,4,8",
        help="comma-separated shard counts for the sweep",
    )
    cluster_bench.add_argument("--requests", type=int, default=1200,
                               help="open-loop requests per sweep point")
    cluster_bench.add_argument("--chaos-requests", type=int, default=2000,
                               help="requests in the chaos section "
                                    "(0 skips it)")
    cluster_bench.add_argument("--seed", type=int, default=0)
    cluster_bench.add_argument(
        "--quick", action="store_true",
        help="small sweep (2,4 shards x 300 requests, 400-request "
             "chaos; CI smoke mode)",
    )
    cluster_bench.add_argument("--output", default=None,
                               help="write the JSON result document here")
    cluster_bench.add_argument(
        "--check", action="store_true",
        help="regression sentinel: compare against the tracked cluster "
             "baseline (exit 3 on regression, 2 on divergence)",
    )
    cluster_bench.add_argument("--baseline", default="BENCH_cluster.json",
                               help="baseline document for --check")
    cluster_bench.add_argument("--slack", type=float, default=1.0,
                               help="tolerance multiplier for --check")
    return parser


def _merge_json(path: str, section: str, document: dict) -> None:
    """Merge ``document`` under ``section`` in the JSON file at ``path``."""
    import json
    import os

    existing = {}
    if os.path.exists(path):
        try:
            with open(path, "r") as handle:
                existing = json.load(handle)
        except (OSError, ValueError):
            existing = {}
    if not isinstance(existing, dict):
        existing = {}
    existing[section] = document
    with open(path, "w") as handle:
        json.dump(existing, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _rate_kwargs(args: argparse.Namespace) -> dict:
    kwargs = {}
    if args.bits is not None:
        kwargs["bits_per_value"] = args.bits
    elif args.qp is not None:
        kwargs["qp"] = args.qp
    elif args.mse is not None:
        kwargs["target_mse"] = args.mse
    return kwargs


def _cmd_compress(args: argparse.Namespace) -> int:
    tensor = np.load(args.input)
    codec = TensorCodec(profile=profile_by_name(args.codec), tile=args.tile)
    compressed = codec.encode(tensor, **_rate_kwargs(args))
    with open(args.output, "wb") as handle:
        handle.write(compressed.to_bytes())
    print(
        f"{args.input}: {tensor.size} values -> {compressed.nbytes} bytes "
        f"({compressed.bits_per_value:.2f} bits/value, "
        f"{compressed.compression_ratio:.1f}x vs FP16)"
    )
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    with open(args.input, "rb") as handle:
        compressed = CompressedTensor.from_bytes(handle.read())
    codec = TensorCodec(profile=profile_by_name(compressed.profile_name))
    tensor = codec.decode(compressed)
    np.save(args.output, tensor)
    print(f"{args.input} -> {args.output}: shape {tensor.shape}, dtype {tensor.dtype}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    with open(args.input, "rb") as handle:
        compressed = CompressedTensor.from_bytes(handle.read())
    print(compressed.summary())
    print(f"shape:          {compressed.layout.shape}")
    print(f"dtype:          {compressed.dtype}")
    print(f"codec:          {compressed.profile_name} (qp={compressed.qp:.2f})")
    print(f"frames:         {compressed.layout.num_tiles} x {compressed.frame_shape}")
    print(f"size:           {compressed.nbytes} bytes")
    print(f"bits/value:     {compressed.bits_per_value:.3f}")
    print(f"ratio vs FP16:  {compressed.compression_ratio:.2f}x")
    print(f"budget met:     {compressed.budget_met}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    tensor = np.load(args.input)
    summary = profile_tensor(tensor)
    print(f"entropy (8-bit mapped):   {summary['entropy_bits']:.2f} bits/value")
    print(f"outlier ratio (>4 sigma): {summary['outlier_ratio']:.2e}")
    print(f"channel structure score:  {summary['channel_structure']:.3f}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    tensor = np.load(args.input)
    qps = [float(v) for v in args.qps.split(",")]
    print(f"{'QP':>6s} {'bits/value':>11s} {'MSE':>12s}")
    for qp, bits, mse in rate_distortion_sweep(tensor, qps=qps):
        print(f"{qp:6.1f} {bits:11.3f} {mse:12.3e}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    tensor = np.load(args.input)
    codec = TensorCodec(profile=profile_by_name(args.codec), tile=args.tile)
    # Reuse the --trace session's registry when one is active so the
    # trace file also covers this run; otherwise open a local session.
    active = telemetry.current()
    scope = nullcontext(active) if active is not None else telemetry.session()
    with scope as registry:
        compressed = codec.encode(tensor, **_rate_kwargs(args))
        restored = codec.decode(compressed)
        mse = float(np.mean((restored.astype(np.float64) - tensor) ** 2))
        if args.format == "json":
            # The same llm265-metrics-v1 document CodecService.stats()
            # returns, so dashboards need exactly one parser.
            import json

            snapshot = telemetry.MetricsSnapshot.capture(registry=registry)
            print(json.dumps(snapshot.to_dict(), indent=2, sort_keys=True))
        elif args.format == "prometheus":
            snapshot = telemetry.MetricsSnapshot.capture(registry=registry)
            print(telemetry.render_prometheus(snapshot), end="")
        else:
            _print_stats(args.input, tensor, compressed, mse, registry)
    return 0


def _print_stats(
    path: str,
    tensor: np.ndarray,
    compressed: CompressedTensor,
    mse: float,
    registry: telemetry.Registry,
) -> None:
    print(f"== llm265 stats: {path} ==")
    print(f"tensor:     shape {tensor.shape}, dtype {tensor.dtype}, "
          f"{tensor.size} values")
    print(f"compressed: {compressed.summary()}")
    print(f"distortion: mse {mse:.3e}")
    print()

    stats = compressed.encode_stats or {}
    bits = stats.get("bits", {})
    stream_bits = 8 * len(compressed.data)
    meta_bytes = compressed.nbytes - len(compressed.data)
    print("-- bitstream dissection (final encode) --")
    print(f"{'element':<12s} {'bits':>10s} {'bytes':>10s} {'share':>8s}")
    for element in telemetry.BIT_CLASSES:
        if element not in bits:
            continue
        value = bits[element]
        share = 100.0 * value / stream_bits if stream_bits else 0.0
        print(f"{element:<12s} {value:>10d} {value / 8.0:>10.1f} {share:>7.1f}%")
    total = sum(bits.values())
    exact = "exact" if total == stream_bits else "MISMATCH"
    print(f"{'total':<12s} {total:>10d} {total / 8.0:>10.1f}   "
          f"(stream {stream_bits} bits: {exact})")
    print(f"{'container':<12s} {8 * meta_bytes:>10d} {float(meta_bytes):>10.1f}   "
          f"(metadata overhead)")
    print(f"{'serialized':<12s} {8 * compressed.nbytes:>10d} "
          f"{float(compressed.nbytes):>10.1f}   "
          f"({compressed.bits_per_value:.3f} bits/value)")
    print()

    seconds = stats.get("seconds", {})
    counts = stats.get("counts", {})
    qp = stats.get("qp", {})
    if seconds:
        print("-- encoder stages (final encode) --")
        for stage, value in sorted(seconds.items()):
            print(f"{stage:<12s} {value * 1e3:>10.2f} ms")
        print()
    if counts:
        print("-- encoder structure (final encode) --")
        for name, value in sorted(counts.items()):
            print(f"{name:<18s} {value:>10d}")
        if qp.get("count"):
            print(f"{'qp mean/min/max':<18s} "
                  f"{qp['mean']:>10.2f} {qp['min']:>4d} {qp['max']:>4d}")
        print()

    decode_seconds = {
        name[len("decode.seconds."):]: value
        for name, value in registry.counters.items()
        if name.startswith("decode.seconds.")
    }
    decode_counts = {
        name[len("decode."):]: value
        for name, value in registry.counters.items()
        if name.startswith("decode.") and not name.startswith("decode.seconds.")
    }
    if decode_seconds or decode_counts:
        print("-- decoder (this session's decodes) --")
        for stage in telemetry.DECODE_STAGES:
            if stage in decode_seconds:
                print(f"{stage:<18s} {decode_seconds[stage] * 1e3:>10.2f} ms")
        for name in sorted(decode_counts):
            print(f"{name:<18s} {int(decode_counts[name]):>10d}")
        print()

    from repro.codec.entropy import native as _native

    print("-- native kernels --")
    for name, state in _native.kernel_status().items():
        print(f"{name + ' kernel':<18s} {state:>14s}")
    print()

    print("-- session telemetry (all encodes incl. rate-control search) --")
    print(telemetry.summary_table(registry))


def _cmd_bench(args: argparse.Namespace) -> int:
    """Exit 0 on success, 2 when any configuration's output diverges."""
    from repro.analysis.bench import (
        DEFAULT_QPS,
        format_report,
        run_benchmark,
        write_results,
    )

    size_mb = 0.0625 if args.quick else args.size_mb
    repeats = 1 if args.quick else args.repeats
    if args.qps:
        qps = [float(v) for v in args.qps.split(",")]
    else:
        qps = (26.0,) if args.quick else DEFAULT_QPS
    doc = run_benchmark(
        size_mb=size_mb, qps=qps, workers=args.workers, repeats=repeats
    )
    print(format_report(doc))
    if args.output:
        write_results(doc, args.output)
        print(f"wrote {args.output}")
    if args.check:
        from repro.analysis.regression import (
            compare_codec_bench,
            format_comparison,
            load_baseline,
        )

        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"cannot load baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2
        comparison = compare_codec_bench(baseline, doc, slack=args.slack)
        print(format_comparison(comparison))
        return comparison["exit_code"]
    return 0 if doc["summary"]["all_identical"] else 2


def _cmd_verify(args: argparse.Namespace) -> int:
    """Exit 0 all clean, 2 if anything is corrupt, 3 if only torn tails.

    A torn tail (store journals: an append interrupted by a crash) is
    recoverable damage -- the store's next recovery truncates it losing
    only the unacknowledged write -- so it gets its own exit code,
    distinct from corruption that loses or falsifies data.
    """
    from repro.resilience.verify import verify_path

    corrupt = 0
    torn = 0
    for path in args.input:
        report = verify_path(path, deep=args.deep)
        print(report.summary())
        if report.ok:
            continue
        if report.torn_only:
            torn += 1
        else:
            corrupt += 1
    if corrupt:
        return 2
    return 3 if torn else 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Exit 0 on a clean soak, 2 on any serving-contract violation."""
    if args.durability:
        from repro.cluster.durability import (
            DurabilityChaosConfig,
            format_durability_report,
            run_durability_chaos,
        )

        config = DurabilityChaosConfig(
            shards=args.shards,
            seed=args.seed,
            kills=args.kills if args.kills is not None else 3,
            postmortem_dir=args.postmortem_dir or None,
            force_violation=args.force_violation,
        )
        if args.quick:
            config.ops = 240
            config.base_rate_rps = 120.0
            config.revive_after_s = 0.35
            config.disk_faults = 4
            config.client_threads = 8
        report = run_durability_chaos(config)
        print(format_durability_report(report))
        if args.output:
            _merge_json(args.output, "durability_chaos", report)
            print(f"wrote {args.output}")
        return 0 if report["invariant"]["passed"] else 2

    if args.cluster:
        from repro.cluster.chaos import (
            ClusterChaosConfig,
            format_cluster_report,
            run_cluster_chaos,
        )

        requests = 400 if args.quick else max(args.requests, 400)
        report = run_cluster_chaos(
            ClusterChaosConfig(
                shards=args.shards,
                requests=requests,
                seed=args.seed,
                kills=args.kills if args.kills is not None else 2,
                postmortem_dir=args.postmortem_dir or None,
                force_violation=args.force_violation,
            )
        )
        print(format_cluster_report(report))
        if args.output:
            _merge_json(args.output, "cluster_chaos", report)
            print(f"wrote {args.output}")
        return 0 if report["invariant"]["passed"] else 2

    from repro.serving.chaos import ChaosConfig, format_report, run_chaos

    requests = 120 if args.quick else args.requests
    report = run_chaos(
        ChaosConfig(
            requests=requests,
            seed=args.seed,
            postmortem_dir=args.postmortem_dir or None,
            force_violation=args.force_violation,
        )
    )
    print(format_report(report))
    if args.output:
        _merge_json(args.output, "chaos", report)
        print(f"wrote {args.output}")
    return 0 if report["invariant"]["passed"] else 2


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.serving.chaos import run_serve_bench

    report = run_serve_bench(requests=args.requests, seed=args.seed)
    sequential = report["sequential"]["latency_ms"]
    burst = report["burst"]
    print(
        f"sequential: {report['sequential']['requests']} requests, "
        f"p50={sequential['p50']:.1f}ms p99={sequential['p99']:.1f}ms"
    )
    print(
        f"burst: {burst['threads']} threads x {burst['per_thread']} requests "
        f"in {burst['elapsed_s']:.1f}s, shed={report['shed_typed']} (typed), "
        f"availability={burst['slo']['availability']:.3f}"
    )
    if args.output:
        _merge_json(args.output, "serve_bench", report)
        print(f"wrote {args.output}")
    if args.check:
        from repro.analysis.regression import (
            compare_serving_bench,
            format_comparison,
            load_baseline,
        )

        fresh = {"serve_bench": report}
        if args.chaos_requests > 0:
            from repro.serving.chaos import ChaosConfig, run_chaos

            fresh["chaos"] = run_chaos(
                ChaosConfig(requests=args.chaos_requests, seed=args.seed)
            )
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"cannot load baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2
        comparison = compare_serving_bench(baseline, fresh, slack=args.slack)
        print(format_comparison(comparison))
        return comparison["exit_code"]
    return 0


def _cmd_cluster_bench(args: argparse.Namespace) -> int:
    from repro.cluster.bench import format_cluster_bench, run_cluster_bench

    if args.quick:
        shard_counts = [2, 4]
        requests = 300
        chaos_requests = min(args.chaos_requests, 400)
        hedge_trials = 1
    else:
        shard_counts = [int(v) for v in args.shard_counts.split(",")]
        requests = args.requests
        chaos_requests = args.chaos_requests
        hedge_trials = 3
    doc = run_cluster_bench(
        shard_counts=shard_counts,
        requests=requests,
        seed=args.seed,
        hedge_trials=hedge_trials,
        include_chaos=chaos_requests > 0,
        chaos_requests=chaos_requests,
        progress=lambda message: print(f"... {message}", flush=True),
    )
    print(format_cluster_bench(doc))
    if args.output:
        import json

        with open(args.output, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    if args.check:
        from repro.analysis.regression import (
            compare_cluster_bench,
            format_comparison,
            load_baseline,
        )

        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"cannot load baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2
        comparison = compare_cluster_bench(baseline, doc, slack=args.slack)
        print(format_comparison(comparison))
        return comparison["exit_code"]
    chaos = doc.get("chaos")
    if chaos is not None and not chaos["invariant"]["passed"]:
        return 2
    return 0


_COMMANDS = {
    "compress": _cmd_compress,
    "decompress": _cmd_decompress,
    "info": _cmd_info,
    "profile": _cmd_profile,
    "sweep": _cmd_sweep,
    "stats": _cmd_stats,
    "verify": _cmd_verify,
    "bench": _cmd_bench,
    "chaos": _cmd_chaos,
    "serve-bench": _cmd_serve_bench,
    "cluster-bench": _cmd_cluster_bench,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (also the console script)."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.trace:
        try:  # fail before doing the work, not after
            open(args.trace, "wb").close()
        except OSError as exc:
            parser.error(f"cannot write trace file: {exc}")
        with telemetry.session(trace=True) as registry:
            code = _COMMANDS[args.command](args)
            telemetry.write_chrome_trace(registry, args.trace)
        return code
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
