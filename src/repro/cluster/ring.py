"""Consistent-hash ring: tensor-id -> shard, stable under membership churn.

The router places every shard on a hash circle at ``vnodes`` points
(virtual nodes), and a key is served by the first shard clockwise from
the key's own hash point.  The property the cluster layer buys with
this -- and the property the rebalancing tests pin -- is **bounded
churn**: removing one shard reassigns *only* the keys that shard
owned (they slide to their next-clockwise neighbour), and re-adding it
restores the exact original assignment.  A modulo-N table would
instead reshuffle nearly every key on every membership change, which
under replication means a cluster-wide cold start each time a shard
is drained.

Virtual nodes smooth the ring: with one point per shard the arc
lengths (and so the load split) are wildly uneven; with 64 points per
shard the per-shard key share concentrates near 1/N.  Hashing is
``blake2b`` over the printable token, so the placement is
deterministic across processes and platforms -- a requirement for
seeded chaos runs to replay bit-for-bit.

Replication reads the same circle: the R replicas of a key are the
first R *distinct* shards clockwise from the key point, so replica
sets stay as stable under churn as primaries do.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["HashRing"]


def _point(token: str) -> int:
    """Deterministic 64-bit ring position of ``token``."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Sorted-circle consistent hashing with virtual nodes.

    Not thread-safe by itself; the router serialises membership
    changes and lookups under its own lock (lookups are a ``bisect``
    over a tuple, so holding the lock is cheap).
    """

    def __init__(self, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: List[int] = []  # sorted ring positions
        self._owners: List[str] = []  # shard id at each position
        self._shards: Dict[str, List[int]] = {}  # shard -> its positions

    # -- membership ----------------------------------------------------

    def add(self, shard_id: str) -> None:
        """Place ``shard_id`` on the ring (idempotent)."""
        if shard_id in self._shards:
            return
        positions = []
        for vnode in range(self.vnodes):
            point = _point(f"{shard_id}#{vnode}")
            index = bisect.bisect_left(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, shard_id)
            positions.append(point)
        self._shards[shard_id] = positions

    def remove(self, shard_id: str) -> None:
        """Take ``shard_id`` off the ring (idempotent)."""
        if shard_id not in self._shards:
            return
        for point in self._shards.pop(shard_id):
            index = bisect.bisect_left(self._points, point)
            # Hash collisions between distinct tokens are possible in
            # principle; scan forward to the entry this shard owns.
            while self._owners[index] != shard_id:
                index += 1
            del self._points[index]
            del self._owners[index]

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._shards

    def __len__(self) -> int:
        return len(self._shards)

    @property
    def shard_ids(self) -> Tuple[str, ...]:
        return tuple(sorted(self._shards))

    # -- lookup --------------------------------------------------------

    def replicas(self, key: str, r: int = 1) -> Tuple[str, ...]:
        """First ``r`` distinct shards clockwise from ``key``'s point.

        Returns fewer than ``r`` entries when the ring holds fewer
        shards, and ``()`` on an empty ring -- the router turns that
        into a typed cluster-unavailable error rather than raising
        here.
        """
        if r < 1:
            raise ValueError("r must be >= 1")
        if not self._points:
            return ()
        found: List[str] = []
        start = bisect.bisect_right(self._points, _point(key))
        total = len(self._points)
        for step in range(total):
            owner = self._owners[(start + step) % total]
            if owner not in found:
                found.append(owner)
                if len(found) == r or len(found) == len(self._shards):
                    break
        return tuple(found)

    def primary(self, key: str) -> str:
        """The single owning shard of ``key`` (ring must be non-empty)."""
        owners = self.replicas(key, 1)
        if not owners:
            raise LookupError("hash ring is empty")
        return owners[0]

    def assignment(
        self, keys: Iterable[str], r: int = 1
    ) -> Dict[str, Tuple[str, ...]]:
        """Replica sets for many keys at once (for churn accounting)."""
        return {key: self.replicas(key, r) for key in keys}

    def load_split(self, keys: Sequence[str]) -> Dict[str, int]:
        """How many of ``keys`` each shard owns as primary."""
        split = {shard: 0 for shard in self._shards}
        for key in keys:
            split[self.primary(key)] += 1
        return split

    def __repr__(self) -> str:
        return (
            f"HashRing({len(self._shards)} shards x {self.vnodes} vnodes)"
        )
