"""The tracked cluster bench: shard sweep, hedge A/B, chaos verdict.

Produces the ``BENCH_cluster.json`` document (schema
``llm265-cluster-bench-v1``) the perf-regression sentinel gates on.
Three sections, all self-normalized (no cross-machine absolute-time
claims):

- ``shard_sweep`` -- the same open-loop workload against 2, 4, 8
  shards: p50/p99/p999 and availability per shard count.  The claim is
  *shape*, not speed: availability holds and tails do not explode as
  the cluster scales.
- ``hedge`` -- the tail-at-scale experiment: an identical straggler-
  injected workload with hedging off, then on, provisioned as a
  controlled experiment (steady arrivals at ~50% capacity) so the tail
  is the stragglers, not queueing collapse.  The pair runs three times
  and the median-ratio trial is reported (virtualized CPU steal can
  fabricate a tail in either arm).  ``p99_ratio`` (no-hedge p99 over
  hedged p99) is the tracked number; > 1 means hedges cut the tail
  they exist to cut.
- ``chaos`` -- one cluster chaos soak's invariant verdict (contract
  violations, availability through shard kills), so the tracked
  baseline carries the robustness claim alongside the latency one.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.resilience.faults import FaultConfig, FaultInjector
from repro.serving.slo import _nearest_rank
from repro.cluster.chaos import (
    ClusterChaosConfig,
    _ClusterReferenceStore,
    _warm_router,
    run_cluster_chaos,
)
from repro.cluster.router import ClusterConfig, ClusterRouter
from repro.cluster.traffic import (
    Arrival,
    OpenLoopDriver,
    TrafficConfig,
    generate_arrivals,
)

__all__ = ["format_cluster_bench", "run_cluster_bench"]

SCHEMA = "llm265-cluster-bench-v1"


def _latency_summary(latencies_s: Sequence[float]) -> Dict[str, float]:
    samples = sorted(latencies_s)
    if not samples:
        return {"p50": 0.0, "p99": 0.0, "p999": 0.0, "max": 0.0}
    return {
        "p50": 1e3 * _nearest_rank(samples, 50.0),
        "p99": 1e3 * _nearest_rank(samples, 99.0),
        "p999": 1e3 * _nearest_rank(samples, 99.9),
        "max": 1e3 * samples[-1],
    }


def _run_point(
    shards: int,
    requests: int,
    seed: int,
    qp: float,
    tile: int,
    base_rate_rps: float,
    hedge: bool = True,
    gate: Optional[Callable[[str], None]] = None,
    traffic_seed_salt: int = 0,
    burst_factor: float = 2.0,
    hedge_quantile: Optional[float] = None,
    hedge_budget: Optional[float] = None,
) -> dict:
    """One open-loop run against a fresh router; returns its point doc."""
    overrides = {}
    if hedge_quantile is not None:
        overrides["hedge_quantile"] = hedge_quantile
    if hedge_budget is not None:
        overrides["hedge_budget"] = hedge_budget
    config = ClusterConfig(
        shards=shards,
        replication=min(2, shards),
        tile=tile,
        default_qp=qp,
        hedge=hedge,
        seed=seed,
        **overrides,
    )
    router = ClusterRouter(config)
    references = _ClusterReferenceStore(
        ClusterChaosConfig(qp=qp, tile=tile, seed=seed),
        rung_searches={
            r.name: r.rd_search
            for r in router.shard(router.shard_ids[0]).service.ladder.rungs
        },
    )
    arrivals = generate_arrivals(
        TrafficConfig(
            requests=requests,
            base_rate_rps=base_rate_rps,
            # Default bursts (3x) would exceed the single-core capacity
            # the soak is provisioned against; the tail would then
            # measure the overload spiral, not routing or hedging.
            burst_factor=burst_factor,
            seed=seed + 101 + traffic_seed_salt,
        )
    )
    references.prebuild(arrivals)
    _warm_router(router, references)
    warm_requests = router.slo.snapshot()["requests"]

    def send(arrival: Arrival):
        key = references.pool_key(arrival.tensor_id, arrival.side)
        if arrival.kind == "encode":
            return router.encode(
                references.tensor(key), arrival.tensor_id,
                qp=qp, fault_gate=gate,
            )
        return router.decode(
            references.blob(key, "vectorized"), arrival.tensor_id,
            fault_gate=gate,
        )

    started = time.perf_counter()
    responses = OpenLoopDriver(send).run(arrivals)
    elapsed_s = time.perf_counter() - started
    router.close()

    responses = [r for r in responses if r is not None]
    # Availability over the measured responses only (the warmup
    # requests sit in the router's SLO tracker but not in the bench).
    served = sum(1 for r in responses if r.ok)
    slo = router.slo.snapshot()
    return {
        "shards": shards,
        "replication": config.replication,
        "requests": len(responses),
        "warm_requests": warm_requests,
        "hedge": hedge,
        "elapsed_s": elapsed_s,
        "offered_rps": base_rate_rps,
        "latency_ms": _latency_summary([r.latency_s for r in responses]),
        "availability": served / len(responses) if responses else 0.0,
        "outcomes": slo["outcomes"],
        "router": dict(router.counters),
    }


def run_cluster_bench(
    shard_counts: Sequence[int] = (2, 4, 8),
    requests: int = 1200,
    seed: int = 0,
    qp: float = 26.0,
    tile: int = 32,
    base_rate_rps: float = 80.0,
    hedge_rate_rps: float = 30.0,
    straggler_prob: float = 0.05,
    straggler_delay_s: float = 0.25,
    hedge_trials: int = 3,
    include_chaos: bool = True,
    chaos_requests: int = 2000,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Run the full ladder; returns the ``BENCH_cluster.json`` document."""
    say = progress or (lambda message: None)

    sweep: List[dict] = []
    for shards in shard_counts:
        say(f"shard sweep: {shards} shards, {requests} requests")
        sweep.append(
            _run_point(
                shards, requests, seed, qp, tile, base_rate_rps,
            )
        )

    # -- hedge A/B under injected stragglers ---------------------------
    hedge_shards = max(s for s in shard_counts if s >= 2)

    def straggler_gate() -> Callable[[str], None]:
        injector = FaultInjector(
            seed=seed + 31,
            config=FaultConfig(
                straggler_prob=straggler_prob,
                straggler_delay_s=straggler_delay_s,
            ),
        )
        lock = threading.Lock()

        def gate(kind: str) -> None:
            with lock:
                stall = injector.straggler_delay()
            if stall:
                time.sleep(stall)

        return gate

    # The A/B is a controlled experiment, not a stress test: steady
    # Poisson arrivals at ~1/3 of single-core capacity, so the measured
    # tail is the injected stragglers (the thing hedging addresses).
    # The service-time distribution has an intrinsic tail (encodes with
    # rate-distortion search run ~5x the median), so even 50% mean
    # utilization queues enough to swamp the straggler signal.
    # With 2x bursts the offered peak sits at ~100% utilization and the
    # tail becomes a knife-edge queueing collapse -- bimodal across
    # runs and uninformative about hedging either way.  Overload and
    # burst behavior are the chaos soak's job.
    #
    # The firing quantile must sit *below* the straggler mass: with 5%
    # injected stragglers the default p95 delay rides exactly on the
    # straggler boundary, and the self-limiting estimator can settle at
    # the straggler latency itself (hedges then fire too late to
    # rescue anything).  Firing at p90 keeps the delay anchored to
    # healthy latency -- and makes structural hedge demand ~10% of
    # requests, so the A/B arm gets budget headroom (0.2) above it:
    # the cap should stop storms, not by-design rescues.
    #
    # The pair runs ``hedge_trials`` times and the median-ratio trial
    # is reported: a virtualized host can steal the CPU for hundreds
    # of milliseconds at a stretch, and a single steal burst landing
    # in one arm fabricates (or erases) a tail difference no routing
    # policy produced.  All trial ratios are kept in the document.
    trials = []
    for trial in range(max(1, hedge_trials)):
        say(
            f"hedge A/B trial {trial + 1}/{max(1, hedge_trials)}: "
            f"{hedge_shards} shards, stragglers on"
        )
        no_hedge = _run_point(
            hedge_shards, requests, seed + trial, qp, tile, hedge_rate_rps,
            hedge=False, gate=straggler_gate(), traffic_seed_salt=7,
            burst_factor=1.0,
        )
        hedged = _run_point(
            hedge_shards, requests, seed + trial, qp, tile, hedge_rate_rps,
            hedge=True, gate=straggler_gate(), traffic_seed_salt=7,
            burst_factor=1.0, hedge_quantile=90.0, hedge_budget=0.2,
        )
        hedged_p99 = hedged["latency_ms"]["p99"]
        trials.append({
            "no_hedge": no_hedge,
            "hedged": hedged,
            "p99_ratio": (
                no_hedge["latency_ms"]["p99"] / hedged_p99
                if hedged_p99 > 0 else 0.0
            ),
        })
    trials.sort(key=lambda t: t["p99_ratio"])
    median = trials[len(trials) // 2]
    hedge_section = {
        "shards": hedge_shards,
        "straggler_prob": straggler_prob,
        "straggler_delay_ms": 1e3 * straggler_delay_s,
        "no_hedge": median["no_hedge"],
        "hedged": median["hedged"],
        "p99_ratio": median["p99_ratio"],
        "trial_ratios": [t["p99_ratio"] for t in trials],
    }

    chaos_section = None
    if include_chaos:
        say(f"chaos soak: {chaos_requests} requests with shard kills")
        chaos_report = run_cluster_chaos(
            ClusterChaosConfig(requests=chaos_requests, seed=seed,
                               qp=qp, tile=tile)
        )
        chaos_section = {
            "requests": chaos_report["slo"]["requests"],
            "latency_ms": chaos_report["slo"]["latency_ms"],
            "invariant": {
                key: value
                for key, value in chaos_report["invariant"].items()
                if key != "violations"
            },
            "violation_count": len(chaos_report["invariant"]["violations"]),
            "hedged_requests": chaos_report["hedged_requests"],
            "router": chaos_report["cluster"]["router"],
        }

    return {
        "schema": SCHEMA,
        "config": {
            "shard_counts": list(shard_counts),
            "requests": requests,
            "seed": seed,
            "qp": qp,
            "tile": tile,
            "base_rate_rps": base_rate_rps,
            "chaos_requests": chaos_requests if include_chaos else 0,
        },
        "shard_sweep": sweep,
        "hedge": hedge_section,
        "chaos": chaos_section,
    }


def format_cluster_bench(document: dict) -> str:
    """Human-readable bench summary for the CLI."""
    lines = [f"cluster bench ({document['schema']})"]
    lines.append("shard sweep:")
    for point in document["shard_sweep"]:
        latency = point["latency_ms"]
        lines.append(
            f"  {point['shards']} shards (R={point['replication']}): "
            f"p50={latency['p50']:.1f}ms p99={latency['p99']:.1f}ms "
            f"p999={latency['p999']:.1f}ms "
            f"availability={point['availability']:.4f}"
        )
    hedge = document["hedge"]
    lines.append(
        f"hedge A/B ({hedge['shards']} shards, "
        f"{100 * hedge['straggler_prob']:.0f}% stragglers of "
        f"{hedge['straggler_delay_ms']:.0f}ms):"
    )
    lines.append(
        f"  no-hedge p99={hedge['no_hedge']['latency_ms']['p99']:.1f}ms  "
        f"hedged p99={hedge['hedged']['latency_ms']['p99']:.1f}ms  "
        f"ratio={hedge['p99_ratio']:.2f}x "
        f"(hedges={hedge['hedged']['router']['hedges']}, "
        f"wins={hedge['hedged']['router']['hedge_wins']})"
    )
    if len(hedge.get("trial_ratios", [])) > 1:
        lines.append(
            "  median of trials: "
            + ", ".join(f"{r:.2f}x" for r in hedge["trial_ratios"])
        )
    chaos = document.get("chaos")
    if chaos:
        inv = chaos["invariant"]
        lines.append(
            f"chaos: {chaos['requests']} requests, "
            f"availability={inv['availability']:.4f} "
            f"(slo {inv['availability_slo']:.3f}), "
            f"violations={chaos['violation_count']} -> "
            + ("PASS" if inv["passed"] else "FAIL")
        )
    return "\n".join(lines)
