"""Shard-kill chaos soak for :class:`~repro.cluster.router.ClusterRouter`.

The serving-layer chaos harness (:mod:`repro.serving.chaos`) kills
*workers inside* one service; this one kills the next failure domain
up: whole shards, mid-soak, under open-loop load.  A seeded schedule
SIGKILLs and hangs shards while the traffic generator keeps firing,
and every response is checked against the cluster's typed-response
contract:

- ``ok`` and not ``degraded``: **bit-exact** with a clean serial run
  at the reported ladder rung (encode: identical container bytes;
  decode: identical tensor) -- replication and hedging must never
  change *what* is computed, only *where*.
- ``ok`` and ``degraded``: never legitimate here.  Cluster chaos kills
  processes but does not damage payloads, so a concealment-patched
  answer to a clean request is a contract violation.
- not ``ok``: the error is one of the typed cluster failures
  (:data:`CLUSTER_TYPED_ERRORS`).

Anything else is a silent wrong answer -- the outcome the cluster
exists to make impossible -- and fails the run (exit 2 in the CLI, and
the CI gate).  The invariant also asserts **availability**: with R >= 2
a single shard loss must not take out its key range, so the soak's
availability floor (default 0.999) holds *through* the kills, not just
between them.
"""

from __future__ import annotations

import threading
import time
import zlib
from contextlib import nullcontext
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

import repro.telemetry as telemetry
from repro.telemetry import flightrecorder
from repro.resilience.faults import FaultConfig, FaultInjector
from repro.serving.chaos import TYPED_ERRORS
from repro.tensor.codec import CompressedTensor, TensorCodec
from repro.cluster.router import (
    ClusterConfig,
    ClusterResponse,
    ClusterRouter,
    ClusterUnavailable,
)
from repro.cluster.shard import ShardDown
from repro.cluster.traffic import (
    Arrival,
    OpenLoopDriver,
    TrafficConfig,
    generate_arrivals,
)

__all__ = [
    "CLUSTER_TYPED_ERRORS",
    "ClusterChaosConfig",
    "format_cluster_report",
    "run_cluster_chaos",
]

#: The complete failure vocabulary at the cluster boundary: everything
#: a single service may answer, plus the two cluster-level failures
#: (the target shard is down; no shard exists for the key).
CLUSTER_TYPED_ERRORS = TYPED_ERRORS + (ShardDown, ClusterUnavailable)


@dataclass
class ClusterChaosConfig:
    """Knobs of one cluster chaos soak (seeded, bounded, reproducible)."""

    shards: int = 4
    replication: int = 2
    requests: int = 10000
    seed: int = 0
    qp: float = 26.0
    tile: int = 32
    deadline_s: float = 3.0
    #: Distinct tensor payloads per size class (routing keys stay
    #: diverse; payload *content* reuses a small pool so bit-exactness
    #: references stay cheap).
    tensors_per_side: int = 4
    # -- traffic ------------------------------------------------------
    #: ~50% of the measured in-process capacity (~155 rps saturated,
    #: GIL-bound): open-loop soaks must be provisioned, not saturated,
    #: or every number measured is just the overload spiral.
    base_rate_rps: float = 80.0
    burst_factor: float = 2.0
    client_threads: int = 16
    # -- shard-level chaos schedule -----------------------------------
    kills: int = 2
    #: Dead time before the killed shard "restarts"; re-admission still
    #: waits for the router's probe to succeed.
    revive_after_s: float = 1.5
    hangs: int = 1
    hang_s: float = 0.6
    # -- worker-level stragglers (exercises hedging mid-chaos) --------
    straggler_prob: float = 0.05
    straggler_delay_s: float = 0.03
    #: Availability SLO the soak (and the CI gate) must meet.
    availability_slo: float = 0.999
    postmortem_dir: Optional[str] = None
    #: Drill switch: one synthetic violation to exercise the postmortem
    #: and exit-2 paths without breaking the cluster.
    force_violation: bool = False

    def cluster_config(self) -> ClusterConfig:
        return ClusterConfig(
            shards=self.shards,
            replication=self.replication,
            tile=self.tile,
            default_qp=self.qp,
            deadline_s=self.deadline_s,
            seed=self.seed,
        )

    def traffic_config(self) -> TrafficConfig:
        return TrafficConfig(
            requests=self.requests,
            base_rate_rps=self.base_rate_rps,
            burst_factor=self.burst_factor,
            seed=self.seed + 7,
        )


class _ClusterReferenceStore:
    """Clean serial encodes per (size class, pool index, ladder rung).

    Tensor *content* is pooled (``tensors_per_side`` payloads per size)
    so references stay cheap even when the workload mints thousands of
    distinct routing keys; ``tensor_id`` hashes into the pool with a
    stable CRC so the mapping survives reordering and reruns.
    """

    def __init__(self, config: ClusterChaosConfig,
                 rung_searches: Dict[str, str]) -> None:
        self._config = config
        self._rung_searches = rung_searches
        self._lock = threading.Lock()
        self._tensors: Dict[Tuple[int, int], np.ndarray] = {}
        self._blobs: Dict[Tuple[int, int, str], bytes] = {}
        self._decoded: Dict[Tuple[int, int], np.ndarray] = {}

    def pool_key(self, tensor_id: str, side: int) -> Tuple[int, int]:
        index = zlib.crc32(tensor_id.encode()) % self._config.tensors_per_side
        return (side, index)

    def prebuild(self, arrivals) -> None:
        """Materialize every payload the workload will need, up front.

        Lazy reference encodes are serial ~5-60ms jobs under the store
        lock; paying them *during* an open-loop soak steals GIL time
        from the cluster and stalls client threads, so the measured
        latency would include the harness's own warmup.
        """
        for arrival in arrivals:
            key = self.pool_key(arrival.tensor_id, arrival.side)
            self.tensor(key)
            if arrival.kind == "decode":
                self.blob(key, "vectorized")
                self.decoded(key)

    def tensor(self, key: Tuple[int, int]) -> np.ndarray:
        side, index = key
        with self._lock:
            if key not in self._tensors:
                rng = np.random.default_rng(
                    (self._config.seed, side, index)
                )
                self._tensors[key] = rng.standard_normal(
                    (side, side)
                ).astype(np.float32)
            return self._tensors[key]

    def blob(self, key: Tuple[int, int], rung: str) -> bytes:
        tensor = self.tensor(key)
        with self._lock:
            full = key + (rung,)
            if full not in self._blobs:
                codec = TensorCodec(
                    tile=self._config.tile,
                    rd_search=self._rung_searches[rung],
                )
                self._blobs[full] = codec.encode(
                    tensor, qp=self._config.qp
                ).to_bytes()
            return self._blobs[full]

    def decoded(self, key: Tuple[int, int]) -> np.ndarray:
        blob = self.blob(key, "vectorized")
        with self._lock:
            if key not in self._decoded:
                codec = TensorCodec(tile=self._config.tile)
                self._decoded[key] = codec.decode(
                    CompressedTensor.from_bytes(blob)
                )
            return self._decoded[key]


def _warm_router(router: ClusterRouter, references: "_ClusterReferenceStore") -> None:
    """Exercise every shard and payload shape before the clock starts.

    First contact pays one-time costs (kernel JIT per tensor shape,
    pool spin-up, lazily spawned dispatch threads) that belong to
    process startup, not to the soak being measured -- without this the
    first run's tail is dominated by whichever rare shape arrived
    first.
    """
    with references._lock:
        keys = sorted(references._tensors)
    if not keys:
        return
    sides = {side: (side, index) for side, index in keys}
    for round_index, key in enumerate(sides.values()):
        tensor = references.tensor(key)
        for shard_id in router.shard_ids:
            encoded = router.encode(
                tensor, f"__warm-{shard_id}-{round_index}"
            )
            if encoded.ok:
                router.decode(
                    encoded.value.to_bytes(),
                    f"__warm-{shard_id}-{round_index}",
                )


def _build_schedule(
    config: ClusterChaosConfig,
    injector: FaultInjector,
    shard_ids: Tuple[str, ...],
    duration_s: float,
) -> List[dict]:
    """Seeded kill/hang schedule spread across the middle of the soak.

    Kills are separated by at least the revive window plus probe slack
    so single-shard loss (the R=2 availability claim) is what gets
    tested, not correlated multi-shard loss.
    """
    rng = injector.rng
    events: List[dict] = []
    min_gap = config.revive_after_s + 0.5
    at = 0.0
    for index in range(config.kills):
        lo = duration_s * (0.15 + 0.55 * index / max(config.kills, 1))
        at = max(at + min_gap, lo + float(rng.uniform(0.0, duration_s * 0.1)))
        victim = shard_ids[int(rng.integers(0, len(shard_ids)))]
        events.append({"at_s": at, "action": "kill", "shard": victim})
        events.append(
            {
                "at_s": at + config.revive_after_s,
                "action": "revive",
                "shard": victim,
            }
        )
    for _ in range(config.hangs):
        at_h = float(rng.uniform(duration_s * 0.1, duration_s * 0.8))
        victim = shard_ids[int(rng.integers(0, len(shard_ids)))]
        events.append(
            {"at_s": at_h, "action": "hang", "shard": victim,
             "duration_s": config.hang_s}
        )
    events.sort(key=lambda e: e["at_s"])
    return events


def _run_schedule(
    router: ClusterRouter,
    events: List[dict],
    start: float,
    stop: threading.Event,
    injector: FaultInjector,
) -> None:
    for event in events:
        lag = start + event["at_s"] - time.perf_counter()
        if lag > 0 and stop.wait(timeout=lag):
            return
        shard = router.shard(event["shard"])
        if event["action"] == "kill":
            injector._record("faults.shard_kills")
            shard.kill()
        elif event["action"] == "revive":
            shard.revive()
        else:
            injector._record("faults.shard_hangs")
            shard.hang(event["duration_s"])


def run_cluster_chaos(config: Optional[ClusterChaosConfig] = None) -> dict:
    """Run the cluster chaos soak; returns the JSON-ready report.

    The ``invariant`` section is the verdict: zero contract violations
    and availability >= the SLO through >= ``config.kills`` mid-soak
    shard kills, or ``passed`` is false (and a postmortem bundle is
    dumped when ``postmortem_dir`` is set).
    """
    config = config or ClusterChaosConfig()
    active = telemetry.current()
    scope = nullcontext(active) if active is not None else telemetry.session()
    with scope as registry:
        report = _run_cluster_chaos_instrumented(config, registry)
    return report


def _run_cluster_chaos_instrumented(config: ClusterChaosConfig, registry) -> dict:
    arrivals = generate_arrivals(config.traffic_config())
    duration_s = arrivals[-1].at_s if arrivals else 0.0

    router = ClusterRouter(config.cluster_config())
    rung_searches = {
        r.name: r.rd_search
        for r in router.shard(router.shard_ids[0]).service.ladder.rungs
    }
    references = _ClusterReferenceStore(config, rung_searches)

    references.prebuild(arrivals)
    _warm_router(router, references)

    chaos_injector = FaultInjector(seed=config.seed + 11)
    straggler_faults = FaultInjector(
        seed=config.seed + 13,
        config=FaultConfig(
            straggler_prob=config.straggler_prob,
            straggler_delay_s=config.straggler_delay_s,
        ),
    )
    # Unlike the single-service soak, client threads hit the injector
    # concurrently here, so the RNG draw is serialized (the sleep --
    # the actual fault -- stays outside the lock).
    gate_lock = threading.Lock()

    def gate(kind: str) -> None:
        with gate_lock:
            stall = straggler_faults.straggler_delay()
        if stall:
            time.sleep(stall)

    violations: List[dict] = []
    violations_lock = threading.Lock()
    checked = {"encode": 0, "decode": 0}

    def violation(arrival: Arrival, reason: str, response: ClusterResponse):
        entry = {
            "request": arrival.index,
            "kind": arrival.kind,
            "tensor_id": arrival.tensor_id,
            "reason": reason,
            "rung": response.rung,
            "shard": response.shard,
            "error_type": response.error_type,
            "trace_id": response.trace_id,
        }
        with violations_lock:
            violations.append(entry)
        flightrecorder.record(
            "cluster_chaos.contract_violation",
            request=arrival.index,
            kind=arrival.kind,
            reason=reason,
            shard=response.shard,
            trace=response.trace_id,
        )

    def send(arrival: Arrival) -> ClusterResponse:
        key = references.pool_key(arrival.tensor_id, arrival.side)
        if arrival.kind == "encode":
            response = router.encode(
                references.tensor(key), arrival.tensor_id,
                qp=config.qp, fault_gate=gate,
            )
            _check_cluster_encode(response, references, key, arrival, violation)
        else:
            response = router.decode(
                references.blob(key, "vectorized"), arrival.tensor_id,
                fault_gate=gate,
            )
            _check_cluster_decode(response, references, key, arrival, violation)
        with violations_lock:
            checked[arrival.kind] += 1
        return response

    schedule = _build_schedule(
        config, chaos_injector, router.shard_ids, duration_s
    )
    stop = threading.Event()
    started = time.perf_counter()
    controller = threading.Thread(
        target=_run_schedule,
        args=(router, schedule, started, stop, chaos_injector),
        name="cluster-chaos-controller",
        daemon=True,
    )
    controller.start()
    driver = OpenLoopDriver(send, client_threads=config.client_threads)
    try:
        responses = driver.run(arrivals)
    finally:
        stop.set()
        controller.join(timeout=5.0)
        router.close()
    elapsed_s = time.perf_counter() - started

    if config.force_violation:
        violation(
            Arrival(0.0, -1, -1, "drill", 0, "drill"),
            "drill: forced contract violation",
            ClusterResponse(ok=False, kind="drill"),
        )

    slo = router.slo.snapshot()
    # Availability over the soak's own responses (the warmup requests
    # sit in the router's SLO tracker but are not part of the claim).
    soak_responses = [r for r in responses if r is not None]
    availability = (
        sum(1 for r in soak_responses if r.ok) / len(soak_responses)
        if soak_responses
        else 0.0
    )
    silent = sum(1 for v in violations if v["reason"].startswith("silent"))
    untyped = sum(1 for v in violations if v["reason"].startswith("untyped"))
    hedged = sum(1 for r in responses if r is not None and r.hedged)
    report = {
        "config": asdict(config),
        "elapsed_s": elapsed_s,
        "offered_duration_s": duration_s,
        "slo": slo,
        "cluster": router.stats(),
        "schedule": schedule,
        "faults_injected": {
            "shard": chaos_injector.injected,
            "stragglers": straggler_faults.injected,
        },
        "checked": dict(checked),
        "hedged_requests": hedged,
        "invariant": {
            "silent_corruptions": silent,
            "untyped_errors": untyped,
            "violations": violations,
            "availability": availability,
            "availability_slo": config.availability_slo,
            "kills": sum(1 for e in schedule if e["action"] == "kill"),
            "passed": (
                not violations and availability >= config.availability_slo
            ),
        },
    }
    report["postmortem"] = None
    if not report["invariant"]["passed"] and config.postmortem_dir:
        report["postmortem"] = flightrecorder.dump_bundle(
            config.postmortem_dir,
            reason="cluster-chaos-contract-violation",
            registry=registry,
            seed=config.seed,
            extra={
                "checked": dict(checked),
                "invariant": report["invariant"],
                "schedule": schedule,
            },
        )
    return report


def _check_cluster_encode(
    response: ClusterResponse,
    references: _ClusterReferenceStore,
    key: Tuple[int, int],
    arrival: Arrival,
    violation: Callable,
) -> None:
    if response.ok:
        if response.degraded:
            violation(arrival, "untyped: encode marked degraded", response)
            return
        expected = references.blob(key, response.rung)
        if response.value.to_bytes() != expected:
            violation(
                arrival,
                f"silent corruption: bytes differ from serial "
                f"{response.rung} reference",
                response,
            )
    elif not isinstance(response.error, CLUSTER_TYPED_ERRORS):
        violation(
            arrival, f"untyped error {response.error_type}", response
        )


def _check_cluster_decode(
    response: ClusterResponse,
    references: _ClusterReferenceStore,
    key: Tuple[int, int],
    arrival: Arrival,
    violation: Callable,
) -> None:
    if response.ok:
        if response.degraded:
            # Cluster chaos never damages payloads: concealment firing
            # on a clean blob means a shard patched over its own fault.
            violation(arrival, "untyped: clean blob concealed", response)
            return
        if not np.array_equal(response.value, references.decoded(key)):
            violation(
                arrival,
                "silent corruption: tensor differs from reference",
                response,
            )
    elif not isinstance(response.error, CLUSTER_TYPED_ERRORS):
        violation(
            arrival, f"untyped error {response.error_type}", response
        )


def format_cluster_report(report: dict) -> str:
    """Human-readable cluster chaos verdict for the CLI."""
    lines = []
    slo = report["slo"]
    inv = report["invariant"]
    router = report["cluster"]["router"]
    lines.append(
        f"cluster chaos: {slo['requests']} requests across "
        f"{report['config']['shards']} shards (R={report['config']['replication']}) "
        f"in {report['elapsed_s']:.1f}s"
    )
    lines.append(
        f"schedule: {inv['kills']} shard kills, "
        f"{report['faults_injected']['shard']} shard faults, "
        f"{report['faults_injected']['stragglers']} stragglers"
    )
    outcomes = slo["outcomes"]
    lines.append(
        "outcomes: "
        + " ".join(f"{name}={outcomes[name]}" for name in sorted(outcomes))
    )
    latency = slo["latency_ms"]
    lines.append(
        f"latency: p50={latency['p50']:.1f}ms p99={latency['p99']:.1f}ms "
        f"max={latency['max']:.1f}ms"
    )
    lines.append(
        f"router: hedges={router['hedges']} hedge_wins={router['hedge_wins']} "
        f"failovers={router['failovers']} drains={router['shard_drained']} "
        f"readmits={router['shard_readmitted']}"
    )
    lines.append(
        f"availability: {inv['availability']:.4f} "
        f"(slo {inv['availability_slo']:.3f})"
    )
    lines.append(
        f"invariant: silent_corruptions={inv['silent_corruptions']} "
        f"untyped_errors={inv['untyped_errors']} -> "
        + ("PASS" if inv["passed"] else "FAIL")
    )
    for violated in inv["violations"][:10]:
        lines.append(f"  violation: {violated}")
    if report.get("postmortem"):
        lines.append(f"postmortem bundle: {report['postmortem']}")
    return "\n".join(lines)
