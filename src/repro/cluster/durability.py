"""Durability chaos soak: SIGKILL mid-write, disk rot, healed replicas.

The cluster chaos soak (:mod:`repro.cluster.chaos`) proves the
*stateless* contract survives shard kills.  This one proves the
*durable* contract -- the two promises a storage system is actually
for, under the two failure modes that actually break storage systems:

- **SIGKILL mid-write** (torn writes).  Kills are armed at precise
  store write stages (:data:`~repro.cluster.store.PUT_STAGES`) so the
  process dies *inside* a put -- after the segment is staged, halfway
  through the journal append, or just after the fsync whose ack never
  reached the client.  Each stage leaves different wreckage for
  recovery to clean up.
- **Disk corruption at rest.**  :class:`FaultInjector` bit-flips,
  truncates, and unlinks segment files behind the running store's
  back; the scrubber and the verified read path must surface every
  damaged byte as quarantine + failover, never as served garbage.
  (Each content hash is damaged at most once -- the model is
  independent disk failures, not a byzantine adversary erasing every
  replica of a key, which no R-way design can survive.)

The soak drives an open-loop put/get workload through the router
while a controller thread runs the kill/revive/corruption schedule
and a scrubber thread sweeps CRCs.  The invariant, checked during the
soak and settled after a final scrub + converging anti-entropy run:

1. **Acknowledged-write durability 100%**: every put the router acked
   (write-quorum fsyncs) reads back bit-exact at the end, through >= 3
   mid-write SIGKILLs and every injected disk fault.
2. **No silent corruption**: every read during the soak is bit-exact
   or a typed error (:data:`DURABILITY_TYPED_ERRORS`).
3. **Replication healed**: after anti-entropy converges, every acked
   key's winning copy is held by min(R, alive shards) replicas.

Any breach -> ``passed=False``, exit 2 in the CLI, and a flight-recorder
postmortem bundle when ``postmortem_dir`` is set.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from contextlib import nullcontext
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

import repro.telemetry as telemetry
from repro.telemetry import flightrecorder
from repro.resilience.faults import FaultInjector
from repro.cluster.chaos import CLUSTER_TYPED_ERRORS
from repro.cluster.repair import collect_digests, repair_until_converged
from repro.cluster.router import ClusterConfig, ClusterRouter
from repro.cluster.store import PUT_STAGES, StoreError
from repro.cluster.traffic import Arrival, OpenLoopDriver

__all__ = [
    "DURABILITY_TYPED_ERRORS",
    "DurabilityChaosConfig",
    "format_durability_report",
    "run_durability_chaos",
]

#: The failure vocabulary of the durable path: everything the stateless
#: cluster may answer, plus the store's typed errors (miss, quarantined
#: copy, recovering store) -- note ``WriteQuorumFailed`` subclasses
#: ``ClusterUnavailable`` and is already covered.
DURABILITY_TYPED_ERRORS = CLUSTER_TYPED_ERRORS + (StoreError,)

#: Mid-write kill stages cycled across the schedule: before the journal
#: record exists, torn inside it, and after the fsync whose ack the
#: client never saw (the classic unacknowledged-but-durable ambiguity).
_KILL_STAGES = ("segment_staged", "journal_partial", "journal_synced")


@dataclass
class DurabilityChaosConfig:
    """Knobs of one durability soak (seeded, bounded, reproducible)."""

    shards: int = 4
    replication: int = 2
    ops: int = 600
    seed: int = 0
    #: Fraction of operations that are puts (each under a fresh key).
    write_fraction: float = 0.55
    payload_min: int = 256
    payload_max: int = 4096
    deadline_s: float = 3.0
    base_rate_rps: float = 150.0
    client_threads: int = 12
    # -- crash schedule -----------------------------------------------
    #: Mid-write SIGKILLs (armed at cycled store write stages).
    kills: int = 3
    revive_after_s: float = 0.5
    #: How long an armed kill may wait for a put to reach its stage
    #: before the controller falls back to a plain kill.
    arm_timeout_s: float = 1.5
    # -- disk corruption ----------------------------------------------
    disk_faults: int = 5
    # -- scrubber -----------------------------------------------------
    scrub_interval_s: float = 0.2
    scrub_budget: int = 32
    # -- repair -------------------------------------------------------
    repair_passes: int = 6
    # -- reporting ----------------------------------------------------
    postmortem_dir: Optional[str] = None
    #: Drill switch: one synthetic violation to exercise the postmortem
    #: and exit-2 paths without breaking the store.
    force_violation: bool = False
    #: Store root; ``None`` creates (and cleans up) a temp directory.
    store_root: Optional[str] = None

    def cluster_config(self, store_root: str) -> ClusterConfig:
        return ClusterConfig(
            shards=self.shards,
            replication=self.replication,
            deadline_s=self.deadline_s,
            store_root=store_root,
            seed=self.seed,
            # The durable path does its own replica fan-out; encode/
            # decode hedging is irrelevant to this soak.
            hedge=False,
        )


def _payload_for(seed: int, index: int, size: int) -> bytes:
    rng = np.random.default_rng((seed, 0xD15C, index))
    return rng.bytes(size)


def _build_ops(config: DurabilityChaosConfig) -> List[dict]:
    """Seeded operation schedule: puts mint fresh keys, gets replay them.

    Arrival times come from a plain seeded Poisson process (the diurnal
    /burst machinery of :mod:`repro.cluster.traffic` models *serving*
    load; storage soaks want steady pressure so kills land on a busy
    write path, not in a lull).
    """
    rng = np.random.default_rng(config.seed + 0x57)
    ops: List[dict] = []
    put_indices: List[int] = []
    at_s = 0.0
    for index in range(config.ops):
        at_s += float(rng.exponential(1.0 / config.base_rate_rps))
        if not put_indices or float(rng.random()) < config.write_fraction:
            size = int(
                rng.integers(config.payload_min, config.payload_max + 1)
            )
            ops.append({
                "at_s": at_s, "op": "put", "key": f"k-{index:05d}",
                "payload": _payload_for(config.seed, index, size),
            })
            put_indices.append(index)
        else:
            target = int(
                put_indices[int(rng.integers(0, len(put_indices)))]
            )
            ops.append({
                "at_s": at_s, "op": "get", "key": f"k-{target:05d}",
                "payload": None,
            })
    return ops


def _build_schedule(
    config: DurabilityChaosConfig,
    rng: np.random.Generator,
    shard_ids: Tuple[str, ...],
    duration_s: float,
) -> List[dict]:
    """Seeded kill + disk-fault schedule through the middle of the soak."""
    events: List[dict] = []
    # Gaps are revive-window sized (armed kills usually fire within a
    # few writes); the whole kill train must land well inside the
    # traffic window -- an armed kill with no traffic left never fires.
    min_gap = config.revive_after_s + 0.3
    at = -min_gap
    for index in range(config.kills):
        lo = duration_s * (0.1 + 0.5 * index / max(config.kills, 1))
        at = max(at + min_gap, lo)
        victim = shard_ids[int(rng.integers(0, len(shard_ids)))]
        events.append({
            "at_s": at, "action": "kill", "shard": victim,
            "stage": _KILL_STAGES[index % len(_KILL_STAGES)],
        })
        events.append({
            "at_s": at + config.revive_after_s,
            "action": "revive", "shard": victim,
        })
    for _ in range(config.disk_faults):
        at_f = float(rng.uniform(duration_s * 0.1, duration_s * 0.9))
        victim = shard_ids[int(rng.integers(0, len(shard_ids)))]
        events.append({"at_s": at_f, "action": "disk", "shard": victim})
    events.sort(key=lambda event: event["at_s"])
    return events


class _Controller:
    """Runs the chaos schedule on its own thread."""

    def __init__(
        self,
        router: ClusterRouter,
        config: DurabilityChaosConfig,
        schedule: List[dict],
        injector: FaultInjector,
        stop: threading.Event,
    ) -> None:
        self.router = router
        self.config = config
        self.schedule = schedule
        self.injector = injector
        self.stop = stop
        self.kills_mid_write = 0
        self.kills_fallback = 0
        self.disk_faults_applied: List[dict] = []
        self._damaged_hashes: set = set()

    def run(self, start: float) -> None:
        for event in self.schedule:
            lag = start + event["at_s"] - time.perf_counter()
            if lag > 0 and self.stop.wait(timeout=lag):
                return
            if event["action"] == "kill":
                self._kill(event)
            elif event["action"] == "revive":
                self.router.shard(event["shard"]).revive()
            elif event["action"] == "disk":
                self._disk_fault(event)

    def _kill(self, event: dict) -> None:
        shard = self.router.shard(event["shard"])
        if not shard._alive:
            # Victim already down (back-to-back schedule slip): pick
            # any alive shard so the kill count still holds.
            alive = [
                self.router.shard(sid) for sid in self.router.shard_ids
                if self.router.shard(sid)._alive
            ]
            if not alive:
                return
            shard = alive[0]
        shard.arm_kill(event["stage"])
        deadline = time.perf_counter() + self.config.arm_timeout_s
        while time.perf_counter() < deadline and shard._alive:
            if self.stop.wait(timeout=0.005):
                # Soak over with the kill still armed: disarm and bail
                # (a kill after the settle phase would corrupt the
                # audit, not the store).
                shard._armed_kill_stage = None
                return
        mid_write = not shard._alive
        if mid_write:
            self.kills_mid_write += 1
            telemetry.count("chaos.durability.mid_write_kills")
        else:
            # No put reached the armed stage in time (traffic lull):
            # plain SIGKILL so the schedule still exercises recovery.
            shard.kill()
            self.kills_fallback += 1
        self.injector._record("faults.shard_kills")
        flightrecorder.record(
            "durability_chaos.kill", shard=shard.shard_id,
            stage=event["stage"], mid_write=mid_write,
        )

    def _disk_fault(self, event: dict) -> None:
        shard = self.router.shard(event["shard"])
        store = shard.store
        if store is None:
            return
        try:
            names = sorted(
                name for name in os.listdir(store.segments_dir)
                if name.endswith(".seg")
            )
        except OSError:
            return
        rng = self.injector.rng
        candidates = [
            name for name in names
            if name.split(".")[0] not in self._damaged_hashes
        ]
        if not candidates:
            return
        chosen = candidates[int(rng.integers(0, len(candidates)))]
        self._damaged_hashes.add(chosen.split(".")[0])
        mode = self.injector.damage_file(
            os.path.join(store.segments_dir, chosen)
        )
        if mode:
            self.disk_faults_applied.append({
                "shard": shard.shard_id, "segment": chosen, "mode": mode,
            })
            flightrecorder.record(
                "durability_chaos.disk_fault",
                shard=shard.shard_id, segment=chosen, mode=mode,
            )


def _scrub_loop(
    router: ClusterRouter,
    config: DurabilityChaosConfig,
    stop: threading.Event,
    totals: Dict[str, int],
) -> None:
    while not stop.wait(timeout=config.scrub_interval_s):
        for shard_id in router.shard_ids:
            shard = router.shard(shard_id)
            store = shard.store
            if store is None or not shard.alive or not store.open:
                continue
            try:
                outcome = store.scrub(config.scrub_budget)
            except StoreError:
                continue  # crashed between the check and the scrub
            totals["checked"] += outcome["checked"]
            totals["quarantined"] += len(outcome["corrupt"])


def run_durability_chaos(
    config: Optional[DurabilityChaosConfig] = None,
) -> dict:
    """Run the durability soak; returns the JSON-ready report.

    The ``invariant`` section is the verdict; ``passed`` requires 100%
    acked-write durability, zero silent corruption, a healed
    replication factor, and the scheduled mid-write kill count.
    """
    config = config or DurabilityChaosConfig()
    active = telemetry.current()
    scope = nullcontext(active) if active is not None else telemetry.session()
    with scope as registry:
        if config.store_root is not None:
            return _run_instrumented(config, registry, config.store_root)
        import tempfile

        with tempfile.TemporaryDirectory(prefix="llm265-durability-") as root:
            return _run_instrumented(config, registry, root)


def _run_instrumented(
    config: DurabilityChaosConfig, registry, store_root: str
) -> dict:
    ops = _build_ops(config)
    duration_s = ops[-1]["at_s"] if ops else 0.0
    payloads = {
        op["key"]: op["payload"] for op in ops if op["op"] == "put"
    }

    router = ClusterRouter(config.cluster_config(store_root))
    injector = FaultInjector(seed=config.seed + 23)
    schedule = _build_schedule(
        config, injector.rng, router.shard_ids, duration_s
    )

    acked: Dict[str, Tuple[int, bytes]] = {}
    acked_lock = threading.Lock()
    violations: List[dict] = []
    violations_lock = threading.Lock()
    checked = {"put": 0, "get": 0}

    def violation(op: dict, reason: str, response) -> None:
        entry = {
            "op": op["op"], "key": op["key"], "reason": reason,
            "error_type": response.error_type if response else "",
            "shard": response.shard if response else "",
        }
        with violations_lock:
            violations.append(entry)
        flightrecorder.record(
            "durability_chaos.violation", **entry
        )

    ops_by_index = {index: op for index, op in enumerate(ops)}

    def send(arrival: Arrival):
        op = ops_by_index[arrival.index]
        if op["op"] == "put":
            response = router.put(op["payload"], op["key"])
            if response.ok:
                with acked_lock:
                    acked[op["key"]] = (response.version, op["payload"])
            elif not isinstance(response.error, DURABILITY_TYPED_ERRORS):
                violation(
                    op, f"untyped put error {response.error_type}", response
                )
        else:
            response = router.get(op["key"])
            if response.ok:
                if response.value != payloads[op["key"]]:
                    violation(
                        op,
                        "silent corruption: served bytes differ from "
                        "written payload",
                        response,
                    )
            elif not isinstance(response.error, DURABILITY_TYPED_ERRORS):
                violation(
                    op, f"untyped get error {response.error_type}", response
                )
        with violations_lock:
            checked[op["op"]] += 1
        return response

    arrivals = [
        Arrival(
            at_s=op["at_s"], index=index, session=0,
            tensor_id=op["key"], side=0, kind=op["op"],
        )
        for index, op in enumerate(ops)
    ]

    stop = threading.Event()
    controller = _Controller(router, config, schedule, injector, stop)
    scrub_totals = {"checked": 0, "quarantined": 0}
    started = time.perf_counter()
    controller_thread = threading.Thread(
        target=controller.run, args=(started,),
        name="durability-chaos-controller", daemon=True,
    )
    scrubber_thread = threading.Thread(
        target=_scrub_loop, args=(router, config, stop, scrub_totals),
        name="durability-scrubber", daemon=True,
    )
    controller_thread.start()
    scrubber_thread.start()
    driver = OpenLoopDriver(send, client_threads=config.client_threads)
    repair_report = None
    try:
        driver.run(arrivals)
    finally:
        # The chaos must be fully over before the settle phase: a kill
        # or disk fault landing mid-audit would invalidate the verdict
        # (and model nothing -- the soak window has closed).
        stop.set()
        controller_thread.join(timeout=5.0)
        scrubber_thread.join(timeout=5.0)
    # -- settle: revive everything, heal, then judge ------------------
    for shard_id in router.shard_ids:
        shard = router.shard(shard_id)
        if not shard._alive:
            shard.revive()
    # Re-admit every healthy shard directly (the probe path needs
    # live traffic to fire; the soak is over).
    with router._lock:
        for shard_id, health in router.health.items():
            health.reset()
            router._sync_ring_locked(shard_id)
    # Full scrub: force every latent disk fault to surface as
    # quarantine *before* repair, so repair has something to heal.
    for shard_id in router.shard_ids:
        store = router.shard(shard_id).store
        if store is not None and store.open:
            outcome = store.scrub(None)
            scrub_totals["checked"] += outcome["checked"]
            scrub_totals["quarantined"] += len(outcome["corrupt"])
    repair_report = repair_until_converged(
        router, max_passes=config.repair_passes
    )
    elapsed_s = time.perf_counter() - started

    # -- final durability audit: every acked write, bit-exact ---------
    acked_lost: List[dict] = []
    for key, (version, payload) in sorted(acked.items()):
        response = router.get(key)
        if not response.ok:
            acked_lost.append({
                "key": key, "version": version,
                "error_type": response.error_type,
            })
            violation(
                {"op": "audit", "key": key},
                f"acked write lost: final read failed "
                f"({response.error_type})",
                response,
            )
        elif response.value != payload:
            acked_lost.append({
                "key": key, "version": version, "error_type": "mismatch",
            })
            violation(
                {"op": "audit", "key": key},
                "acked write corrupted: final read not bit-exact",
                response,
            )

    # -- replication census: winner held by min(R, alive) owners ------
    digests = collect_digests(router)
    required = min(config.replication, max(len(digests), 1))
    under_replicated: List[dict] = []
    for key, (version, payload) in sorted(acked.items()):
        expected = (
            version,
            hashlib.blake2b(payload, digest_size=16).hexdigest(),
        )
        holders = sum(
            1 for digest in digests.values()
            if digest.get(key) == expected
        )
        if holders < required:
            under_replicated.append({
                "key": key, "holders": holders, "required": required,
            })
            violation(
                {"op": "census", "key": key},
                f"replication not restored: {holders}/{required} holders",
                None,
            )

    if config.force_violation:
        violation(
            {"op": "drill", "key": "drill"},
            "drill: forced durability violation", None,
        )

    router.close()

    kills_done = controller.kills_mid_write + controller.kills_fallback
    silent = sum(
        1 for v in violations if v["reason"].startswith(
            ("silent", "acked write corrupted")
        )
    )
    report = {
        "config": asdict(config),
        "elapsed_s": elapsed_s,
        "offered_duration_s": duration_s,
        "checked": dict(checked),
        "acked_writes": len(acked),
        "schedule": schedule,
        "disk_faults_applied": controller.disk_faults_applied,
        "scrub": dict(scrub_totals),
        "repair": repair_report.to_dict() if repair_report else None,
        "cluster": router.stats(),
        "invariant": {
            "acked_writes": len(acked),
            "acked_lost": acked_lost,
            "silent_corruptions": silent,
            "under_replicated": under_replicated,
            "mid_write_kills": controller.kills_mid_write,
            "fallback_kills": controller.kills_fallback,
            "kills_required": config.kills,
            "repair_converged": bool(
                repair_report and repair_report.converged
            ),
            "violations": violations,
            "passed": (
                not violations
                and not acked_lost
                and not under_replicated
                and kills_done >= config.kills
                and bool(repair_report and repair_report.converged)
            ),
        },
    }
    report["postmortem"] = None
    if not report["invariant"]["passed"] and config.postmortem_dir:
        report["postmortem"] = flightrecorder.dump_bundle(
            config.postmortem_dir,
            reason="durability-chaos-violation",
            registry=registry,
            seed=config.seed,
            extra={
                "invariant": {
                    k: v for k, v in report["invariant"].items()
                },
                "schedule": schedule,
                "disk_faults": controller.disk_faults_applied,
            },
        )
    return report


def format_durability_report(report: dict) -> str:
    """Human-readable durability soak verdict for the CLI."""
    inv = report["invariant"]
    cfg = report["config"]
    lines = [
        f"durability chaos: {report['checked']['put']} puts / "
        f"{report['checked']['get']} gets across {cfg['shards']} shards "
        f"(R={cfg['replication']}) in {report['elapsed_s']:.1f}s",
        f"schedule: {inv['mid_write_kills']} mid-write kills "
        f"(+{inv['fallback_kills']} fallback, {inv['kills_required']} "
        f"required), {len(report['disk_faults_applied'])} disk faults "
        f"({', '.join(sorted({f['mode'] for f in report['disk_faults_applied']})) or 'none'})",
        f"scrub: {report['scrub']['checked']} segments checked, "
        f"{report['scrub']['quarantined']} quarantined",
    ]
    repair = report.get("repair")
    if repair:
        lines.append(
            f"repair: {repair['passes']} pass(es), "
            f"{repair['copies_made']} copies, "
            f"converged={repair['converged']}"
        )
    lines.append(
        f"durability: {inv['acked_writes']} acked writes, "
        f"{len(inv['acked_lost'])} lost, "
        f"{inv['silent_corruptions']} silent corruptions, "
        f"{len(inv['under_replicated'])} under-replicated"
    )
    lines.append(
        "invariant: " + ("PASS" if inv["passed"] else "FAIL")
    )
    for violated in inv["violations"][:10]:
        lines.append(f"  violation: {violated}")
    if report.get("postmortem"):
        lines.append(f"postmortem bundle: {report['postmortem']}")
    return "\n".join(lines)
