"""One cluster shard: a :class:`CodecService` plus whole-shard fault modes.

The serving layer's chaos kills *workers inside* a service; the
cluster layer needs the next failure domain up: the whole shard
process dying (SIGKILL) or wedging (hung event loop).  A
:class:`ClusterShard` wraps one service with that lifecycle:

- :meth:`kill` -- the shard is gone *now*.  New requests fail
  immediately with the typed :class:`ShardDown` (connection refused),
  requests already executing have their next fault-gate check raise it
  (the process took the work down with it), and a request that manages
  to finish after the kill is still answered :class:`ShardDown` -- a
  SIGKILLed process cannot have sent the response, and pretending
  otherwise would hide exactly the ambiguity failover must handle.
- :meth:`hang` -- requests stall inside the supervised attempt until
  the hang lifts.  From the shard's own view the stall is unbounded;
  the service's attempt timeout and the router's hedge/probe deadlines
  are what bound it, which is the point.
- :meth:`revive` -- the "process restarted" transition.  The shard
  first runs crash-consistent recovery on its durable store (journal
  replay, torn-tail truncation -- see :mod:`repro.cluster.store`) and
  only *then* reports :attr:`alive`; a reviving shard mid-replay
  refuses requests with :class:`ShardDown` exactly like a dead one, so
  the router's health probe cannot re-admit it before its index is
  trustworthy.  Traffic returns after that probe succeeds.

:class:`ShardDown` deliberately subclasses :class:`Exception`, not
``RuntimeError``: the supervisor retries ``RETRYABLE`` (RuntimeError)
faults *within* the shard, and retrying against a dead process from
inside it is wasted budget -- failover to a replica is the router's
job and needs the error surfaced immediately.

When constructed with a ``store_dir``, the shard also exposes the
durable key/value surface (:meth:`put` / :meth:`get`) over a
:class:`~repro.cluster.store.ShardStore`; :meth:`kill` crashes the
store with the process (volatile index gone, disk keeps only what was
flushed), and :meth:`arm_kill` lets the chaos harness schedule the
kill at a precise mid-write stage (``"journal_partial"`` et al.) to
manufacture genuinely torn writes.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

import numpy as np

import repro.telemetry as telemetry
from repro.telemetry import flightrecorder
from repro.telemetry.propagate import TraceContext
from repro.serving.service import CodecService, ServeResponse, ServiceConfig
from repro.cluster.store import PUT_STAGES, ShardStore, StoreError

__all__ = ["ClusterShard", "ShardDown"]

FaultGate = Callable[[str], None]


class ShardDown(Exception):
    """Typed connection-level failure: the target shard is not serving."""

    def __init__(self, shard_id: str, message: str = "") -> None:
        super().__init__(message or f"shard {shard_id} is down")
        self.shard_id = shard_id


class ClusterShard:
    """A :class:`CodecService` with a kill/hang/revive lifecycle."""

    def __init__(
        self,
        shard_id: str,
        config: Optional[ServiceConfig] = None,
        store_dir: Optional[str] = None,
        store_fsync: bool = True,
    ) -> None:
        self.shard_id = shard_id
        self.service = CodecService(config)
        self.store: Optional[ShardStore] = (
            ShardStore(store_dir, shard_id=shard_id, fsync=store_fsync)
            if store_dir is not None
            else None
        )
        self._alive = True
        self._recovering = False
        self._hang_until = 0.0
        self._armed_kill_stage: Optional[str] = None
        self.kills = 0
        self.served = 0
        self.refused = 0
        self.recovery_hook: Optional[Callable[[], None]] = None

    # -- lifecycle -----------------------------------------------------

    @property
    def alive(self) -> bool:
        # A reviving shard is *up* but not *serving*: its journal replay
        # has not finished, so its index cannot be trusted yet.
        return self._alive and not self._recovering

    def kill(self) -> None:
        """SIGKILL the shard: everything in flight dies with it."""
        if not self._alive:
            return
        self._alive = False
        self._armed_kill_stage = None
        if self.store is not None:
            self.store.crash()
        self.kills += 1
        telemetry.count("cluster.shard_kills")
        flightrecorder.record("cluster.shard_killed", shard=self.shard_id)

    def arm_kill(self, stage: str) -> None:
        """Schedule :meth:`kill` to fire at the next store-write ``stage``.

        ``stage`` must be one of :data:`~repro.cluster.store.PUT_STAGES`;
        the kill lands inside the next :meth:`put` that reaches it,
        which is how the durability soak manufactures deterministic
        SIGKILL-mid-write crashes (torn journal tails included).
        """
        if stage not in PUT_STAGES:
            raise ValueError(
                f"unknown put stage {stage!r}; expected one of {PUT_STAGES}"
            )
        self._armed_kill_stage = stage

    def hang(self, duration_s: float) -> None:
        """Wedge the shard: requests stall until ``duration_s`` elapses."""
        self._hang_until = max(
            self._hang_until, time.monotonic() + duration_s
        )
        telemetry.count("cluster.shard_hangs")
        flightrecorder.record(
            "cluster.shard_hung", shard=self.shard_id, duration_s=duration_s
        )

    def revive(self) -> None:
        """The process is back; traffic returns via the router's probe.

        Recovery runs *before* the shard reports :attr:`alive`: while
        the journal replays, requests (including health probes) are
        refused with :class:`ShardDown`, so the router cannot re-admit
        a shard whose index is still being rebuilt.
        """
        if self._alive:
            return
        self._recovering = True
        self._alive = True
        self._hang_until = 0.0
        try:
            if self.recovery_hook is not None:
                self.recovery_hook()
            if self.store is not None:
                self.store.recover()
        finally:
            self._recovering = False
        flightrecorder.record("cluster.shard_revived", shard=self.shard_id)

    # -- request path --------------------------------------------------

    def encode(
        self,
        tensor: np.ndarray,
        qp: Optional[float] = None,
        deadline_s: Optional[float] = None,
        fault_gate: Optional[FaultGate] = None,
        trace_ctx: Optional[TraceContext] = None,
    ) -> ServeResponse:
        return self._call(
            "encode",
            lambda gate: self.service.encode(
                tensor, qp=qp, deadline_s=deadline_s,
                fault_gate=gate, trace_ctx=trace_ctx,
            ),
            fault_gate,
        )

    def decode(
        self,
        blob: bytes,
        deadline_s: Optional[float] = None,
        fault_gate: Optional[FaultGate] = None,
        trace_ctx: Optional[TraceContext] = None,
    ) -> ServeResponse:
        return self._call(
            "decode",
            lambda gate: self.service.decode(
                blob, deadline_s=deadline_s,
                fault_gate=gate, trace_ctx=trace_ctx,
            ),
            fault_gate,
        )

    def probe(
        self, deadline_s: float, trace_ctx: Optional[TraceContext] = None
    ) -> ServeResponse:
        """One bounded synthetic request (tiny encode) for health checks."""
        tensor = np.zeros((8, 8), dtype=np.float32)
        return self.encode(
            tensor, qp=32.0, deadline_s=deadline_s, trace_ctx=trace_ctx
        )

    # -- durable key/value surface -------------------------------------

    def put(
        self,
        key: str,
        payload: bytes,
        version: int,
        fault_gate: Optional[FaultGate] = None,
    ) -> ServeResponse:
        """Durably store ``payload`` on this shard's :class:`ShardStore`.

        The store's write-stage gates flow through the shard's fault
        gate, so an armed kill (or a kill from another thread) lands
        mid-write with the same semantics as any other request: the
        response is :class:`ShardDown` even if the bytes made it to
        disk -- the caller cannot know, which is exactly the ambiguity
        anti-entropy resolves later.
        """
        if self.store is None:
            raise RuntimeError(f"shard {self.shard_id} has no store")
        started = time.monotonic()

        def run(gate: Optional[FaultGate]) -> ServeResponse:
            try:
                entry = self.store.put(key, payload, version, gate=gate)
            except StoreError as exc:
                return ServeResponse(
                    ok=False, kind="put", error=exc,
                    latency_s=time.monotonic() - started,
                )
            return ServeResponse(
                ok=True, kind="put", value=entry,
                latency_s=time.monotonic() - started,
            )

        return self._call("put", run, fault_gate)

    def get(
        self, key: str, fault_gate: Optional[FaultGate] = None
    ) -> ServeResponse:
        """Verified read from this shard's store (bytes, or typed error)."""
        if self.store is None:
            raise RuntimeError(f"shard {self.shard_id} has no store")
        started = time.monotonic()

        def run(gate: Optional[FaultGate]) -> ServeResponse:
            if gate is not None:
                gate("get")
            try:
                payload = self.store.get(key)
            except StoreError as exc:
                return ServeResponse(
                    ok=False, kind="get", error=exc,
                    latency_s=time.monotonic() - started,
                )
            return ServeResponse(
                ok=True, kind="get", value=payload,
                latency_s=time.monotonic() - started,
            )

        return self._call("get", run, fault_gate)

    def _call(
        self,
        kind: str,
        run: Callable[[Optional[FaultGate]], ServeResponse],
        extra_gate: Optional[FaultGate],
    ) -> ServeResponse:
        if not self.alive:
            self.refused += 1
            reason = (
                "shard is recovering" if self._recovering else ""
            )
            return ServeResponse(
                ok=False, kind=kind,
                error=ShardDown(self.shard_id, reason),
            )

        def gate(gate_kind: str) -> None:
            # Shard-level faults first (the process hosts the worker)...
            if not self._alive:
                raise ShardDown(self.shard_id, "shard died mid-request")
            if self._armed_kill_stage is not None and (
                gate_kind == self._armed_kill_stage
            ):
                # The scheduled SIGKILL: the process dies at exactly
                # this write stage, taking this request with it.
                self.kill()
                raise ShardDown(self.shard_id, "shard died mid-request")
            stall = self._hang_until - time.monotonic()
            if stall > 0:
                time.sleep(stall)
            # ...then whatever worker-level chaos the caller injects.
            if extra_gate is not None:
                extra_gate(gate_kind)

        try:
            response = run(gate)
        except ShardDown as exc:
            # The gate fired mid-request; everything in flight died.
            response = ServeResponse(ok=False, kind=kind, error=exc)
        if not self._alive and response.ok:
            # Finished after the kill: the response never left the
            # process.  Surfacing it would be resurrecting lost work.
            response = ServeResponse(
                ok=False, kind=kind,
                error=ShardDown(self.shard_id, "shard died before replying"),
            )
        if response.ok:
            self.served += 1
        return response

    # -- introspection -------------------------------------------------

    def stats(self) -> dict:
        info = {
            "shard": self.shard_id,
            "alive": self._alive,
            "recovering": self._recovering,
            "kills": self.kills,
            "served": self.served,
            "refused": self.refused,
            "slo": self.service.slo.snapshot(),
            "breakers": self.service.ladder.stats()["breakers"],
        }
        if self.store is not None:
            info["store"] = self.store.stats()
        return info

    def __repr__(self) -> str:
        state = "alive" if self._alive else "down"
        return f"ClusterShard({self.shard_id!r}, {state})"
