"""One cluster shard: a :class:`CodecService` plus whole-shard fault modes.

The serving layer's chaos kills *workers inside* a service; the
cluster layer needs the next failure domain up: the whole shard
process dying (SIGKILL) or wedging (hung event loop).  A
:class:`ClusterShard` wraps one service with that lifecycle:

- :meth:`kill` -- the shard is gone *now*.  New requests fail
  immediately with the typed :class:`ShardDown` (connection refused),
  requests already executing have their next fault-gate check raise it
  (the process took the work down with it), and a request that manages
  to finish after the kill is still answered :class:`ShardDown` -- a
  SIGKILLed process cannot have sent the response, and pretending
  otherwise would hide exactly the ambiguity failover must handle.
- :meth:`hang` -- requests stall inside the supervised attempt until
  the hang lifts.  From the shard's own view the stall is unbounded;
  the service's attempt timeout and the router's hedge/probe deadlines
  are what bound it, which is the point.
- :meth:`revive` -- the "process restarted" transition.  The shard
  serves again, but the router only returns traffic after its health
  probe succeeds.

:class:`ShardDown` deliberately subclasses :class:`Exception`, not
``RuntimeError``: the supervisor retries ``RETRYABLE`` (RuntimeError)
faults *within* the shard, and retrying against a dead process from
inside it is wasted budget -- failover to a replica is the router's
job and needs the error surfaced immediately.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

import numpy as np

import repro.telemetry as telemetry
from repro.telemetry import flightrecorder
from repro.telemetry.propagate import TraceContext
from repro.serving.service import CodecService, ServeResponse, ServiceConfig

__all__ = ["ClusterShard", "ShardDown"]

FaultGate = Callable[[str], None]


class ShardDown(Exception):
    """Typed connection-level failure: the target shard is not serving."""

    def __init__(self, shard_id: str, message: str = "") -> None:
        super().__init__(message or f"shard {shard_id} is down")
        self.shard_id = shard_id


class ClusterShard:
    """A :class:`CodecService` with a kill/hang/revive lifecycle."""

    def __init__(
        self,
        shard_id: str,
        config: Optional[ServiceConfig] = None,
    ) -> None:
        self.shard_id = shard_id
        self.service = CodecService(config)
        self._alive = True
        self._hang_until = 0.0
        self.kills = 0
        self.served = 0
        self.refused = 0

    # -- lifecycle -----------------------------------------------------

    @property
    def alive(self) -> bool:
        return self._alive

    def kill(self) -> None:
        """SIGKILL the shard: everything in flight dies with it."""
        if not self._alive:
            return
        self._alive = False
        self.kills += 1
        telemetry.count("cluster.shard_kills")
        flightrecorder.record("cluster.shard_killed", shard=self.shard_id)

    def hang(self, duration_s: float) -> None:
        """Wedge the shard: requests stall until ``duration_s`` elapses."""
        self._hang_until = max(
            self._hang_until, time.monotonic() + duration_s
        )
        telemetry.count("cluster.shard_hangs")
        flightrecorder.record(
            "cluster.shard_hung", shard=self.shard_id, duration_s=duration_s
        )

    def revive(self) -> None:
        """The process is back; traffic returns via the router's probe."""
        if self._alive:
            return
        self._alive = True
        self._hang_until = 0.0
        flightrecorder.record("cluster.shard_revived", shard=self.shard_id)

    # -- request path --------------------------------------------------

    def encode(
        self,
        tensor: np.ndarray,
        qp: Optional[float] = None,
        deadline_s: Optional[float] = None,
        fault_gate: Optional[FaultGate] = None,
        trace_ctx: Optional[TraceContext] = None,
    ) -> ServeResponse:
        return self._call(
            "encode",
            lambda gate: self.service.encode(
                tensor, qp=qp, deadline_s=deadline_s,
                fault_gate=gate, trace_ctx=trace_ctx,
            ),
            fault_gate,
        )

    def decode(
        self,
        blob: bytes,
        deadline_s: Optional[float] = None,
        fault_gate: Optional[FaultGate] = None,
        trace_ctx: Optional[TraceContext] = None,
    ) -> ServeResponse:
        return self._call(
            "decode",
            lambda gate: self.service.decode(
                blob, deadline_s=deadline_s,
                fault_gate=gate, trace_ctx=trace_ctx,
            ),
            fault_gate,
        )

    def probe(
        self, deadline_s: float, trace_ctx: Optional[TraceContext] = None
    ) -> ServeResponse:
        """One bounded synthetic request (tiny encode) for health checks."""
        tensor = np.zeros((8, 8), dtype=np.float32)
        return self.encode(
            tensor, qp=32.0, deadline_s=deadline_s, trace_ctx=trace_ctx
        )

    def _call(
        self,
        kind: str,
        run: Callable[[Optional[FaultGate]], ServeResponse],
        extra_gate: Optional[FaultGate],
    ) -> ServeResponse:
        if not self._alive:
            self.refused += 1
            return ServeResponse(
                ok=False, kind=kind, error=ShardDown(self.shard_id)
            )

        def gate(gate_kind: str) -> None:
            # Shard-level faults first (the process hosts the worker)...
            if not self._alive:
                raise ShardDown(self.shard_id, "shard died mid-request")
            stall = self._hang_until - time.monotonic()
            if stall > 0:
                time.sleep(stall)
            # ...then whatever worker-level chaos the caller injects.
            if extra_gate is not None:
                extra_gate(gate_kind)

        try:
            response = run(gate)
        except ShardDown as exc:
            # The gate fired mid-request; everything in flight died.
            response = ServeResponse(ok=False, kind=kind, error=exc)
        if not self._alive and response.ok:
            # Finished after the kill: the response never left the
            # process.  Surfacing it would be resurrecting lost work.
            response = ServeResponse(
                ok=False, kind=kind,
                error=ShardDown(self.shard_id, "shard died before replying"),
            )
        if response.ok:
            self.served += 1
        return response

    # -- introspection -------------------------------------------------

    def stats(self) -> dict:
        return {
            "shard": self.shard_id,
            "alive": self._alive,
            "kills": self.kills,
            "served": self.served,
            "refused": self.refused,
            "slo": self.service.slo.snapshot(),
            "breakers": self.service.ladder.stats()["breakers"],
        }

    def __repr__(self) -> str:
        state = "alive" if self._alive else "down"
        return f"ClusterShard({self.shard_id!r}, {state})"
