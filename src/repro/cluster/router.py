"""`ClusterRouter`: consistent-hash routing, replication, hedging, health.

The router is the cluster's single client-facing entry point.  One
request flows through four mechanisms, each bounded and observable:

1. **Routing.**  ``tensor_id`` hashes onto the ring
   (:mod:`repro.cluster.ring`); the first R distinct shards clockwise
   are the request's replica set.  Unhealthy shards are *not on the
   ring* (see 4), so routing never has to ask "is this target up" --
   membership is the health statement.

2. **Replication & failover.**  The primary replica is dispatched
   first.  A shard-level failure (:class:`ShardDown`, exhausted
   retries, overload) fails over to the next replica *inside the same
   request*; deterministic failures (corrupt payload, malformed
   request) commit immediately -- they would fail identically
   everywhere, and retrying them against more shards is how retry
   storms start.

3. **Hedging.**  If the primary has not answered within the hedge
   delay -- the router's own observed p99, floored and refreshed as
   latency moves -- a backup of the same request fires at the next
   replica.  First *success* wins; at most one result is ever
   committed per request id (the commit cell is the dedupe point: a
   supervisor-retried primary and its hedge can both complete, and the
   loser is cancelled if still queued, or discarded and counted if it
   already ran).

4. **Health.**  Every attempt outcome feeds the shard's
   :class:`~repro.cluster.health.ShardHealth` (breaker +
   failure-rate EWMA).  An unhealthy shard is drained from the ring
   (bounded churn: only its key range moves) and re-admitted by a
   bounded probe request once its breaker half-opens -- the probe
   carries a short child deadline so a hung shard costs
   ``probe_timeout_s``, never a wedged probe path.

Work executes on a router-owned thread pool; every dispatch is wrapped
in a :class:`~repro.telemetry.propagate.TracedTask` carrying the
request's trace context, so shard-side spans merge back under the
router's trace id (the winner's delta is merged; losers are accounted
in ``telemetry.worker_deltas_lost``).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

import repro.telemetry as telemetry
from repro.telemetry import flightrecorder
from repro.telemetry.propagate import (
    TracedTask,
    count_lost_deltas,
    merge_delta,
    mint_trace,
    trace_scope,
)
from repro.resilience.deadline import Deadline, DeadlineExceeded
from repro.resilience.errors import ConcealmentReport, CorruptStreamError
from repro.serving.broker import Overloaded
from repro.serving.service import ServeResponse, ServiceConfig
from repro.serving.slo import SloTracker, _nearest_rank
from repro.cluster.health import ShardHealth
from repro.cluster.ring import HashRing
from repro.cluster.shard import ClusterShard, ShardDown
from repro.cluster.store import NotFound, StoreError

__all__ = [
    "ClusterConfig",
    "ClusterResponse",
    "ClusterRouter",
    "ClusterUnavailable",
    "WriteQuorumFailed",
]

FaultGate = Callable[[str], None]

#: Failures that are the *request's* fault, not the shard's: they fail
#: identically on every replica, so the router commits them instead of
#: failing over (and they teach shard health nothing).
DETERMINISTIC_ERRORS = (CorruptStreamError, ValueError)


class ClusterUnavailable(RuntimeError):
    """Typed cluster-level rejection: no shard exists to serve the key."""


class WriteQuorumFailed(ClusterUnavailable):
    """A durable put reached fewer than ``write_quorum`` replicas.

    The write is **not acknowledged**: the caller must treat it as
    lost (any partial copies that did land are harmless -- a retry
    under a new version, or anti-entropy, supersedes them).
    """

    def __init__(self, key: str, acked: int, quorum: int) -> None:
        super().__init__(
            f"put {key!r} acked by {acked}/{quorum} required replicas"
        )
        self.key = key
        self.acked = acked
        self.quorum = quorum


@dataclass
class ClusterConfig:
    """Operating envelope of one :class:`ClusterRouter`."""

    shards: int = 4
    #: Replica-set size R: how many distinct shards can serve each key.
    replication: int = 2
    #: Virtual nodes per shard (ring smoothness / churn bound).
    vnodes: int = 32
    #: End-to-end request budget (overridable per request).
    deadline_s: float = 2.0
    # -- hedging ------------------------------------------------------
    hedge: bool = True
    #: Fixed hedge delay; ``None`` derives it from the router's own
    #: achieved latency distribution at :attr:`hedge_quantile`.
    hedge_delay_s: Optional[float] = None
    #: Quantile of achieved (committed) latency the backup fires at.
    #: 95 is the Dean & Barroso tail-at-scale policy: firing at p95
    #: costs ~5% extra load and is what *cuts* p99 -- firing at p99
    #: itself can only improve quantiles above p99, and an estimator
    #: fed by requests the hedge failed to rescue drifts up into the
    #: very tail it should beat.
    hedge_quantile: float = 95.0
    #: Floor for the derived delay (never hedge into the median).
    hedge_min_delay_s: float = 0.005
    #: Delay used until enough latency samples exist for the quantile.
    hedge_initial_delay_s: float = 0.05
    #: Cap on hedges as a fraction of requests (plus a small burst
    #: allowance).  Hedging amplifies load at exactly the wrong moment:
    #: during a congestion burst the quantile estimator lags, "slow"
    #: requests are suddenly everywhere, and unbudgeted hedges double
    #: the offered work against an already saturated cluster -- the
    #: storm then *creates* the tail it was meant to cut.  The budget
    #: bounds that amplification; denials are counted.
    hedge_budget: float = 0.1
    #: Extra hedges allowed beyond the fraction (startup / short bursts).
    hedge_budget_burst: int = 8
    # -- health -------------------------------------------------------
    failure_threshold: int = 3
    cooldown_s: float = 0.5
    ewma_alpha: float = 0.2
    ewma_unhealthy: float = 0.5
    #: Budget of one half-open probe (the child deadline a probe
    #: carries so a hung shard cannot wedge the re-admission path).
    probe_timeout_s: float = 0.25
    # -- per-shard service envelope -----------------------------------
    tile: int = 32
    default_qp: float = 26.0
    #: Longer than the single-service default: the in-process shards
    #: share one GIL, so a healthy-but-contended attempt easily runs
    #: several times its solo latency -- a short timeout here turns
    #: load into a retry spiral instead of a queue.
    attempt_timeout_s: float = 1.0
    shard_max_inflight: int = 4
    #: Deep enough to absorb open-loop bursts; the deadline, not the
    #: queue bound, is what limits worst-case latency.
    shard_max_queue: int = 64
    supervisor_workers: int = 16
    # -- durable storage ----------------------------------------------
    #: Root directory for per-shard stores; ``None`` leaves the cluster
    #: stateless (PR 7 behaviour).  Each shard gets
    #: ``<store_root>/<shard_id>/``.
    store_root: Optional[str] = None
    #: Replica acks required before a put is acknowledged; 0 means all
    #: R replicas (strongest durability the ring can offer).
    write_quorum: int = 0
    #: fsync journal + segments on the ack path (tests may disable).
    store_fsync: bool = True
    #: Run an anti-entropy pass whenever a drained shard is re-admitted
    #: (the death/revive healing loop).
    repair_on_readmit: bool = True
    # -- plumbing -----------------------------------------------------
    #: Dispatch-pool size; 0 sizes it from the shard envelope.
    io_workers: int = 0
    seed: int = 0

    def resolved_io_workers(self) -> int:
        if self.io_workers > 0:
            return self.io_workers
        return max(8, self.shards * (self.shard_max_inflight + 1))

    def resolved_write_quorum(self) -> int:
        if self.write_quorum > 0:
            return min(self.write_quorum, self.replication)
        return self.replication

    def service_config(self, shard_index: int) -> ServiceConfig:
        return ServiceConfig(
            tile=self.tile,
            default_qp=self.default_qp,
            deadline_s=self.deadline_s,
            attempt_timeout_s=self.attempt_timeout_s,
            max_inflight=self.shard_max_inflight,
            max_queue=self.shard_max_queue,
            supervisor_workers=self.supervisor_workers,
            seed=self.seed + shard_index,
        )


@dataclass
class ClusterResponse:
    """The one shape every cluster request resolves to."""

    ok: bool
    kind: str  # "encode" | "decode" | "put" | "get"
    request_id: int = 0
    value: object = None
    degraded: bool = False
    error: Optional[BaseException] = None
    shard: str = ""  # shard whose result was committed
    rung: str = ""  # ladder rung the committed shard served from
    hedged: bool = False  # a backup dispatch fired
    hedge_won: bool = False  # ...and its result was the one committed
    failovers: int = 0  # replica-to-replica failover dispatches
    replicas_acked: int = 0  # durable puts: replicas that fsynced the write
    version: int = 0  # durable puts: the version this write committed as
    concealed: int = 0
    report: Optional[ConcealmentReport] = None
    latency_s: float = 0.0
    trace_id: str = ""

    @property
    def error_type(self) -> str:
        return type(self.error).__name__ if self.error is not None else ""

    def summary(self) -> str:
        if self.ok:
            flags = "".join(
                flag
                for flag, on in (
                    (" DEGRADED", self.degraded),
                    (" hedged", self.hedged),
                    (" hedge-won", self.hedge_won),
                )
                if on
            )
            return (
                f"{self.kind} ok shard={self.shard} rung={self.rung}{flags} "
                f"failovers={self.failovers} {1e3 * self.latency_s:.1f}ms"
            )
        return (
            f"{self.kind} {self.error_type}: {self.error} "
            f"({1e3 * self.latency_s:.1f}ms)"
        )


class _Request:
    """Per-request dispatch state; the commit cell is the dedupe point."""

    __slots__ = (
        "request_id", "kind", "ctx", "deadline", "candidates", "call",
        "lock", "event", "tried", "pending", "futures", "committed",
        "winner_shard", "winner_hedge", "winner_delta", "failovers",
        "hedged", "dispatched", "cancelled", "last_error",
    )

    def __init__(self, request_id, kind, ctx, deadline, candidates, call):
        self.request_id = request_id
        self.kind = kind
        self.ctx = ctx
        self.deadline = deadline
        self.candidates: Tuple[str, ...] = candidates
        self.call = call
        self.lock = threading.Lock()
        self.event = threading.Event()
        self.tried: set = set()
        self.pending = 0
        self.futures: List[Future] = []
        self.committed: Optional[ServeResponse] = None
        self.winner_shard = ""
        self.winner_hedge = False
        self.winner_delta: Optional[dict] = None
        self.failovers = 0
        self.hedged = False
        self.dispatched = 0
        self.cancelled = 0
        self.last_error: Optional[BaseException] = None


class ClusterRouter:
    """N codec shards behind one hashed, replicated, hedged front door."""

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        shards: Optional[List[ClusterShard]] = None,
    ) -> None:
        self.config = config or ClusterConfig()
        cfg = self.config
        if shards is None:
            shards = [
                ClusterShard(
                    f"shard-{i}",
                    cfg.service_config(i),
                    store_dir=(
                        os.path.join(cfg.store_root, f"shard-{i}")
                        if cfg.store_root is not None
                        else None
                    ),
                    store_fsync=cfg.store_fsync,
                )
                for i in range(cfg.shards)
            ]
        if not shards:
            raise ValueError("need at least one shard")
        self._shards: Dict[str, ClusterShard] = {
            shard.shard_id: shard for shard in shards
        }
        self._lock = threading.Lock()
        self.ring = HashRing(vnodes=cfg.vnodes)
        self.health: Dict[str, ShardHealth] = {}
        for shard_id in self._shards:
            self.ring.add(shard_id)
            self.health[shard_id] = ShardHealth(
                shard_id,
                failure_threshold=cfg.failure_threshold,
                cooldown_s=cfg.cooldown_s,
                ewma_alpha=cfg.ewma_alpha,
                ewma_unhealthy=cfg.ewma_unhealthy,
            )
        self.slo = SloTracker()
        self._executor = ThreadPoolExecutor(
            max_workers=cfg.resolved_io_workers(),
            thread_name_prefix="cluster-io",
        )
        self._request_ids = itertools.count(1)
        # Durable-put version clock: one total order across the router,
        # so anti-entropy's (version, hash) winner rule is unambiguous.
        self._versions = itertools.count(1)
        self._repair_inflight = False
        # Latency reservoir feeding the derived hedge delay.
        self._latencies: deque = deque(maxlen=512)
        self._hedge_cache: Tuple[int, float] = (-1, cfg.hedge_initial_delay_s)
        # Router-level counters, lock-protected so executor threads (no
        # thread-local telemetry registry) never lose an event.
        self.counters: Dict[str, int] = {
            name: 0
            for name in (
                "requests", "hedges", "hedge_wins",
                "hedges_denied_budget", "failovers",
                "losers_cancelled", "losers_discarded",
                "duplicate_results_dropped", "probes", "probe_timeouts",
                "shard_drained", "shard_readmitted", "no_healthy_shards",
                "store_puts", "store_put_acks",
                "store_put_quorum_failures", "store_gets",
                "store_get_failovers", "store_get_misses",
                "repair_passes", "repair_copies",
            )
        }

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "ClusterRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def shard(self, shard_id: str) -> ClusterShard:
        return self._shards[shard_id]

    @property
    def shard_ids(self) -> Tuple[str, ...]:
        return tuple(sorted(self._shards))

    # -- public API ----------------------------------------------------

    def encode(
        self,
        tensor: np.ndarray,
        tensor_id: str,
        qp: Optional[float] = None,
        deadline_s: Optional[float] = None,
        fault_gate: Optional[FaultGate] = None,
    ) -> ClusterResponse:
        """Route one encode; never raises, always a :class:`ClusterResponse`."""

        def call(shard: ClusterShard, budget_s: float, ctx) -> ServeResponse:
            return shard.encode(
                tensor, qp=qp, deadline_s=budget_s,
                fault_gate=fault_gate, trace_ctx=ctx,
            )

        return self._route("encode", tensor_id, call, deadline_s)

    def decode(
        self,
        blob: bytes,
        tensor_id: str,
        deadline_s: Optional[float] = None,
        fault_gate: Optional[FaultGate] = None,
    ) -> ClusterResponse:
        """Route one decode; replicas fan in via hedging on the same key."""

        def call(shard: ClusterShard, budget_s: float, ctx) -> ServeResponse:
            return shard.decode(
                blob, deadline_s=budget_s,
                fault_gate=fault_gate, trace_ctx=ctx,
            )

        return self._route("decode", tensor_id, call, deadline_s)

    # -- durable key/value API -----------------------------------------

    @property
    def durable(self) -> bool:
        """True when the shards carry :class:`ShardStore` backends."""
        return any(
            shard.store is not None for shard in self._shards.values()
        )

    def put(
        self,
        payload: bytes,
        tensor_id: str,
        deadline_s: Optional[float] = None,
        fault_gate: Optional[FaultGate] = None,
    ) -> ClusterResponse:
        """Durably store ``payload`` on the key's replica set.

        The write fans out to every replica and is **acknowledged only
        when at least ``write_quorum`` of them have journaled and
        fsynced it** -- an ok response is a durability promise the
        soak holds the cluster to.  Below quorum the response is the
        typed :class:`WriteQuorumFailed` and the caller must treat the
        write as lost (partial copies are superseded by any retry).
        """
        cfg = self.config
        start_time = time.perf_counter()
        deadline = Deadline.after(
            deadline_s if deadline_s is not None else cfg.deadline_s,
            label="cluster.put",
        )
        ctx = mint_trace("cluster-put", budget_s=deadline.remaining())
        request_id = next(self._request_ids)
        version = next(self._versions)
        self._count("requests")
        self._count("store_puts")
        telemetry.count("cluster.store_puts")
        with trace_scope(ctx), telemetry.span("cluster.put"):
            self._maybe_probe(deadline)
            candidates = self._candidates(tensor_id)
            if not candidates:
                response = ClusterResponse(
                    ok=False, kind="put", request_id=request_id,
                    error=ClusterUnavailable("no shards configured"),
                    version=version,
                )
                return self._finish(response, start_time, ctx.trace_id)
            quorum = min(cfg.resolved_write_quorum(), len(candidates))
            futures = {
                shard_id: self._executor.submit(
                    self._shards[shard_id].put,
                    tensor_id, payload, version, fault_gate,
                )
                for shard_id in candidates
            }
            acked: List[str] = []
            last_error: Optional[BaseException] = None
            for shard_id, future in futures.items():
                try:
                    outcome = future.result(
                        timeout=max(deadline.remaining(), 1e-3)
                    )
                except Exception:  # pragma: no cover - pool shutdown race
                    outcome = ServeResponse(
                        ok=False, kind="put",
                        error=DeadlineExceeded(
                            f"put replica {shard_id} timed out"
                        ),
                    )
                self._record_store_health(shard_id, outcome)
                if outcome.ok:
                    acked.append(shard_id)
                    self._count("store_put_acks")
                else:
                    last_error = outcome.error
            if len(acked) >= quorum:
                response = ClusterResponse(
                    ok=True, kind="put", request_id=request_id,
                    value=version, shard=acked[0],
                    replicas_acked=len(acked), version=version,
                )
            else:
                self._count("store_put_quorum_failures")
                telemetry.count("cluster.store_put_quorum_failures")
                error = WriteQuorumFailed(tensor_id, len(acked), quorum)
                if last_error is not None:
                    error.__cause__ = last_error
                flightrecorder.record(
                    "cluster.put_quorum_failed",
                    key=tensor_id, acked=len(acked), quorum=quorum,
                    trace=ctx.trace_id,
                )
                response = ClusterResponse(
                    ok=False, kind="put", request_id=request_id,
                    error=error, replicas_acked=len(acked), version=version,
                )
        return self._finish(response, start_time, ctx.trace_id)

    def get(
        self,
        tensor_id: str,
        deadline_s: Optional[float] = None,
        fault_gate: Optional[FaultGate] = None,
    ) -> ClusterResponse:
        """Verified read: bit-exact acknowledged bytes or a typed error.

        Replicas are tried in ring order; a miss, quarantined segment,
        or dead shard fails over to the next.  Every served payload was
        CRC-verified by the shard's store, so a successful response is
        bit-exact by construction -- corruption surfaces as failover,
        and only as a typed error once every replica is exhausted.
        """
        cfg = self.config
        start_time = time.perf_counter()
        deadline = Deadline.after(
            deadline_s if deadline_s is not None else cfg.deadline_s,
            label="cluster.get",
        )
        ctx = mint_trace("cluster-get", budget_s=deadline.remaining())
        request_id = next(self._request_ids)
        self._count("requests")
        self._count("store_gets")
        telemetry.count("cluster.store_gets")
        with trace_scope(ctx), telemetry.span("cluster.get"):
            self._maybe_probe(deadline)
            candidates = self._candidates(tensor_id)
            last_error: Optional[BaseException] = None
            all_missing = bool(candidates)
            failovers = 0
            for position, shard_id in enumerate(candidates):
                if deadline.expired():
                    last_error = DeadlineExceeded(
                        "cluster.get deadline exceeded mid-failover"
                    )
                    all_missing = False
                    break
                outcome = self._shards[shard_id].get(
                    tensor_id, fault_gate=fault_gate
                )
                self._record_store_health(shard_id, outcome)
                if outcome.ok:
                    response = ClusterResponse(
                        ok=True, kind="get", request_id=request_id,
                        value=outcome.value, shard=shard_id,
                        failovers=failovers,
                    )
                    return self._finish(response, start_time, ctx.trace_id)
                last_error = outcome.error
                if not isinstance(outcome.error, NotFound):
                    all_missing = False
                if position + 1 < len(candidates):
                    failovers += 1
                    self._count("store_get_failovers")
                    telemetry.count("cluster.store_get_failovers")
            if all_missing:
                self._count("store_get_misses")
                last_error = NotFound(
                    tensor_id, f"key {tensor_id!r} on no replica"
                )
            response = ClusterResponse(
                ok=False, kind="get", request_id=request_id,
                error=last_error
                or ClusterUnavailable("no shards configured"),
                failovers=failovers,
            )
        return self._finish(response, start_time, ctx.trace_id)

    def run_repair(self, max_passes: int = 4):
        """Run anti-entropy until the R-way invariant holds (or passes cap)."""
        from repro.cluster.repair import repair_until_converged

        return repair_until_converged(self, max_passes=max_passes)

    # -- request machinery ---------------------------------------------

    def _route(
        self,
        kind: str,
        key: str,
        call: Callable[[ClusterShard, float, object], ServeResponse],
        deadline_s: Optional[float],
    ) -> ClusterResponse:
        cfg = self.config
        start_time = time.perf_counter()
        deadline = Deadline.after(
            deadline_s if deadline_s is not None else cfg.deadline_s,
            label=f"cluster.{kind}",
        )
        ctx = mint_trace(f"cluster-{kind}", budget_s=deadline.remaining())
        request_id = next(self._request_ids)
        self._count("requests")
        with trace_scope(ctx), telemetry.span(f"cluster.{kind}"):
            self._maybe_probe(deadline)
            candidates = self._candidates(key)
            if not candidates:
                response = ClusterResponse(
                    ok=False, kind=kind, request_id=request_id,
                    error=ClusterUnavailable("no shards configured"),
                )
                return self._finish(response, start_time, ctx.trace_id)
            req = _Request(request_id, kind, ctx, deadline, candidates, call)
            self._dispatch(req, candidates[0], is_hedge=False)
            self._await(req)
            response = self._resolve(req)
            if req.winner_delta is not None:
                parent = telemetry.current()
                if parent is not None:
                    merge_delta(
                        parent, req.winner_delta,
                        under=parent.current_path(),
                        trace_id=ctx.trace_id,
                    )
            with req.lock:
                lost = req.dispatched - req.cancelled - (
                    1 if req.winner_delta is not None else 0
                )
            count_lost_deltas(telemetry.current(), lost)
        return self._finish(response, start_time, ctx.trace_id)

    def _await(self, req: _Request) -> None:
        """Block until commit, firing the hedge when its delay elapses."""
        cfg = self.config
        hedge_possible = cfg.hedge and len(req.candidates) > 1
        if hedge_possible:
            delay = min(self._hedge_delay(), req.deadline.remaining())
            if not req.event.wait(timeout=delay):
                self._fire_hedge(req)
        if not req.event.wait(timeout=req.deadline.remaining()):
            # Request-level budget gone with results still in flight.
            self._offer(
                req, "", ServeResponse(
                    ok=False, kind=req.kind,
                    error=DeadlineExceeded(
                        f"cluster.{req.kind} deadline exceeded with "
                        f"{len(req.tried)} dispatch(es) in flight"
                    ),
                ),
                delta=None, is_hedge=False,
            )

    def _fire_hedge(self, req: _Request) -> None:
        cfg = self.config
        with self._lock:
            budget = (
                cfg.hedge_budget * self.counters["requests"]
                + cfg.hedge_budget_burst
            )
            if self.counters["hedges"] >= budget:
                self._count_locked("hedges_denied_budget")
                return
        with req.lock:
            if req.committed is not None:
                return
            target = next(
                (sid for sid in req.candidates if sid not in req.tried), None
            )
            if target is None:
                return
            req.hedged = True
        self._count("hedges")
        telemetry.count("cluster.hedges")
        flightrecorder.record(
            "cluster.hedge_fired",
            request=req.request_id, kind=req.kind, shard=target,
            trace=req.ctx.trace_id,
        )
        self._dispatch(req, target, is_hedge=True)

    def _candidates(self, key: str) -> Tuple[str, ...]:
        cfg = self.config
        with self._lock:
            found = self.ring.replicas(key, cfg.replication)
            if found:
                return found
            # Every shard is drained: last resort is trying *somebody*
            # (the broker refuses on load; the router never refuses on
            # health alone -- a wrong guess costs one failover).
            self._count_locked("no_healthy_shards")
            flightrecorder.record("cluster.no_healthy_shards")
            return tuple(sorted(self._shards))[: cfg.replication]

    def _dispatch(self, req: _Request, shard_id: str, is_hedge: bool) -> bool:
        """Send ``req`` to ``shard_id`` (at most once per shard per request)."""
        with req.lock:
            if req.committed is not None or shard_id in req.tried:
                return False
            req.tried.add(shard_id)
            req.pending += 1
            req.dispatched += 1
        parent = telemetry.current()
        trace = bool(parent is not None and parent.trace)

        def work() -> ServeResponse:
            shard = self._shards[shard_id]
            return req.call(shard, req.deadline.remaining(), req.ctx)

        root = f"shard[{shard_id}]" + ("/hedge" if is_hedge else "")
        task = TracedTask(
            work, ctx=req.ctx, trace=trace, capture_error=True, root=root
        )
        future = self._executor.submit(self._run_dispatch, req, shard_id,
                                       task, is_hedge)
        with req.lock:
            req.futures.append(future)
        return True

    def _run_dispatch(
        self, req: _Request, shard_id: str, task: TracedTask, is_hedge: bool
    ) -> None:
        outcome = task()
        if outcome.error is not None:
            # The shard wrapper never raises; anything here is a router
            # bug surfacing -- treat it as a shard-level failure so the
            # request still resolves typed.
            response = ServeResponse(
                ok=False, kind=req.kind,
                error=RuntimeError(f"dispatch failed: {outcome.error!r}"),
            )
        else:
            response = outcome.result
        self._on_result(req, shard_id, response, outcome.delta, is_hedge)

    def _on_result(
        self,
        req: _Request,
        shard_id: str,
        response: ServeResponse,
        delta: Optional[dict],
        is_hedge: bool,
    ) -> None:
        shard_failure = self._record_health(shard_id, response)
        if response.ok or isinstance(response.error, DETERMINISTIC_ERRORS):
            self._offer(req, shard_id, response, delta, is_hedge)
        elif isinstance(response.error, DeadlineExceeded):
            # The shard ran out of the *request's* budget; another
            # replica has no more time than this one did.
            self._offer(req, shard_id, response, delta, is_hedge)
        else:
            with req.lock:
                req.last_error = response.error
            if shard_failure:
                self._failover(req, shard_id)
        with req.lock:
            req.pending -= 1
            exhausted = (
                req.committed is None
                and req.pending == 0
                and all(sid in req.tried for sid in req.candidates)
            )
        if exhausted:
            self._offer(
                req, shard_id, ServeResponse(
                    ok=False, kind=req.kind,
                    error=req.last_error
                    or ClusterUnavailable("all replicas failed"),
                ),
                delta=None, is_hedge=is_hedge,
            )

    def _failover(self, req: _Request, failed_shard: str) -> None:
        if req.deadline.expired():
            return
        with req.lock:
            if req.committed is not None:
                return
            target = next(
                (sid for sid in req.candidates if sid not in req.tried), None
            )
        if target is None:
            return
        self._count("failovers")
        telemetry.count("cluster.failovers")
        flightrecorder.record(
            "cluster.failover",
            request=req.request_id, kind=req.kind,
            failed=failed_shard, target=target, trace=req.ctx.trace_id,
        )
        with req.lock:
            req.failovers += 1
        self._dispatch(req, target, is_hedge=False)

    def _offer(
        self,
        req: _Request,
        shard_id: str,
        response: ServeResponse,
        delta: Optional[dict],
        is_hedge: bool,
    ) -> None:
        """Commit at most one result per request id (the dedupe point)."""
        with req.lock:
            if req.committed is not None:
                # A loser arrived after the commit: drop it, loudly.
                self._count("losers_discarded")
                if response.ok:
                    self._count("duplicate_results_dropped")
                flightrecorder.record(
                    "cluster.duplicate_result_dropped",
                    request=req.request_id, shard=shard_id,
                    ok=response.ok, hedge=is_hedge,
                    trace=req.ctx.trace_id,
                )
                return
            req.committed = response
            req.winner_shard = shard_id
            req.winner_hedge = is_hedge
            req.winner_delta = delta
            pending = [f for f in req.futures if not f.done()]
        # Cancel losers still queued; the ones already running are
        # discarded (and counted) when they complete.
        cancelled = sum(1 for future in pending if future.cancel())
        if cancelled:
            self._count("losers_cancelled", cancelled)
            flightrecorder.record(
                "cluster.losers_cancelled",
                request=req.request_id, cancelled=cancelled,
                trace=req.ctx.trace_id,
            )
            with req.lock:
                req.cancelled += cancelled
        if is_hedge and response.ok:
            self._count("hedge_wins")
            flightrecorder.record(
                "cluster.hedge_win",
                request=req.request_id, shard=shard_id,
                trace=req.ctx.trace_id,
            )
        req.event.set()

    def _resolve(self, req: _Request) -> ClusterResponse:
        committed = req.committed
        assert committed is not None  # _await always offers something
        return ClusterResponse(
            ok=committed.ok,
            kind=req.kind,
            request_id=req.request_id,
            value=committed.value,
            degraded=committed.degraded,
            error=committed.error,
            shard=req.winner_shard,
            rung=committed.rung,
            hedged=req.hedged,
            hedge_won=req.winner_hedge and req.hedged,
            failovers=req.failovers,
            concealed=committed.concealed,
            report=committed.report,
            trace_id=req.ctx.trace_id,
        )

    # -- health / ring maintenance -------------------------------------

    def _record_health(
        self, shard_id: str, response: ServeResponse
    ) -> bool:
        """Fold one outcome into shard health; True if a shard failure."""
        if not shard_id:
            return False
        with self._lock:
            health = self.health[shard_id]
            if response.ok:
                health.record(True)
                self._sync_ring_locked(shard_id)
                return False
            if isinstance(response.error, DETERMINISTIC_ERRORS):
                health.record(False, infrastructure=False)
                return False
            if isinstance(response.error, DeadlineExceeded):
                # Budget expiry is usually the request's problem, but
                # it is weak evidence of slowness: EWMA only.
                health.record_load_failure()
                self._sync_ring_locked(shard_id)
                return False
            if isinstance(response.error, Overloaded):
                health.record_load_failure()
                self._sync_ring_locked(shard_id)
                return True  # spill to a replica, but don't trip the breaker
            health.record(False)
            self._sync_ring_locked(shard_id)
            return True

    def _record_store_health(
        self, shard_id: str, response: ServeResponse
    ) -> None:
        """Health accounting for the durable path.

        A typed :class:`StoreError` (miss, quarantined key) is a
        *healthy* interaction -- the shard answered correctly about
        data it does not hold; punishing it would drain shards for
        corruption that repair, not routing, fixes.  Everything else
        flows through the standard taxonomy.
        """
        if response.ok or isinstance(response.error, StoreError):
            with self._lock:
                self.health[shard_id].record(True)
                self._sync_ring_locked(shard_id)
            return
        self._record_health(shard_id, response)

    def _sync_ring_locked(self, shard_id: str) -> None:
        """Make ring membership agree with health (caller holds lock)."""
        healthy = self.health[shard_id].healthy
        if healthy and shard_id not in self.ring:
            self.ring.add(shard_id)
            self._count_locked("shard_readmitted")
            telemetry.count("cluster.shard_readmitted")
            flightrecorder.record("cluster.shard_readmitted", shard=shard_id)
            self._schedule_repair_locked(shard_id)
        elif not healthy and shard_id in self.ring:
            self.ring.remove(shard_id)
            self._count_locked("shard_drained")
            telemetry.count("cluster.shard_drained")
            flightrecorder.record("cluster.shard_drained", shard=shard_id)

    def _schedule_repair_locked(self, shard_id: str) -> None:
        """Kick anti-entropy after a re-admission (caller holds lock).

        A shard that was drained -- killed, hung, or breaker-tripped --
        re-enters the ring owning key ranges it may have missed writes
        for (or, post-crash, lost journal-tail records of).  One
        background repair pass restores the R-way invariant; the
        in-flight flag collapses a re-admission burst into one pass.
        """
        cfg = self.config
        if not cfg.repair_on_readmit or self._repair_inflight:
            return
        if not any(s.store is not None for s in self._shards.values()):
            return
        self._repair_inflight = True
        flightrecorder.record("cluster.repair_scheduled", shard=shard_id)
        self._executor.submit(self._repair_task)

    def _repair_task(self) -> None:
        try:
            self.run_repair()
        except Exception:  # pragma: no cover - repair must never crash IO
            flightrecorder.record("cluster.repair_crashed")
        finally:
            with self._lock:
                self._repair_inflight = False

    def _maybe_probe(self, deadline: Optional[Deadline] = None) -> None:
        """Send one bounded probe to a drained shard whose cooldown is up."""
        cfg = self.config
        with self._lock:
            target = None
            for shard_id, health in self.health.items():
                if shard_id in self.ring:
                    continue
                if health.admit() == "probe":
                    target = shard_id
                    break
        if target is None:
            return
        # The probe's budget is a short *child* of the live deadline:
        # a hung shard costs probe_timeout_s, never a wedged probe path
        # (satellite fix; timeouts land in serving.breaker_probe_timeouts).
        budget_s = cfg.probe_timeout_s
        if deadline is not None:
            budget_s = min(budget_s, max(deadline.remaining(), 1e-3))
        self._count("probes")
        telemetry.count("cluster.probes")
        flightrecorder.record("cluster.probe_fired", shard=target)
        ctx = mint_trace("cluster-probe", budget_s=budget_s)
        self._executor.submit(self._run_probe, target, budget_s, ctx)

    def _run_probe(self, shard_id: str, budget_s: float, ctx) -> None:
        shard = self._shards[shard_id]
        response = shard.probe(budget_s, trace_ctx=ctx)
        with self._lock:
            health = self.health[shard_id]
            if response.ok:
                health.reset()
                self._sync_ring_locked(shard_id)
                return
            if self._probe_timed_out(response):
                health.record_probe_timeout()
                self._count_locked("probe_timeouts")
            else:
                health.record(False)
            self._sync_ring_locked(shard_id)
        flightrecorder.record(
            "cluster.probe_failed", shard=shard_id,
            error_type=response.error_type,
        )

    @staticmethod
    def _probe_timed_out(response: ServeResponse) -> bool:
        if isinstance(response.error, DeadlineExceeded):
            return True
        last = getattr(response.error, "last_error", None)
        return isinstance(last, TimeoutError)

    # -- hedging -------------------------------------------------------

    def _hedge_delay(self) -> float:
        """The backup-fire delay: configured, or quantile of achieved latency.

        The reservoir holds end-to-end latencies of *committed* ok
        responses, so the estimator sees the distribution hedging
        actually delivers: if hedges over-fire, latency (and with it
        the derived delay) rises and they back off; if the tail grows,
        the delay follows it down-quantile and hedges re-engage.
        """
        cfg = self.config
        if cfg.hedge_delay_s is not None:
            return cfg.hedge_delay_s
        with self._lock:
            n = len(self._latencies)
            if n < 32:
                return cfg.hedge_initial_delay_s
            cached_at, cached = self._hedge_cache
            if cached_at == n:
                return cached
            samples = sorted(self._latencies)
        delay = max(
            cfg.hedge_min_delay_s, _nearest_rank(samples, cfg.hedge_quantile)
        )
        with self._lock:
            self._hedge_cache = (n, delay)
        return delay

    # -- accounting ----------------------------------------------------

    def _count(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._count_locked(name, value)

    def _count_locked(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def _finish(
        self, response: ClusterResponse, start_time: float, trace_id: str
    ) -> ClusterResponse:
        response.latency_s = time.perf_counter() - start_time
        response.trace_id = trace_id
        if response.ok and not response.degraded:
            with self._lock:
                self._latencies.append(response.latency_s)
        if response.ok:
            outcome = "degraded" if response.degraded else "ok"
        elif isinstance(response.error, Overloaded):
            outcome = "shed"
        elif isinstance(response.error, DeadlineExceeded):
            outcome = "deadline"
        else:
            outcome = "error"
        if not response.ok:
            flightrecorder.record(
                "cluster.request_failed",
                kind=response.kind,
                outcome=outcome,
                error_type=response.error_type,
                shard=response.shard,
                trace=trace_id,
                latency_ms=round(1e3 * response.latency_s, 3),
            )
        self.slo.record(
            outcome,
            response.latency_s,
            retries=response.failovers,
            concealed=response.concealed,
        )
        return response

    def stats(self) -> dict:
        """Cluster-wide introspection document (JSON-ready)."""
        with self._lock:
            counters = dict(self.counters)
            ring_members = self.ring.shard_ids
            health = {
                shard_id: h.stats() for shard_id, h in self.health.items()
            }
        return {
            "config": {
                "shards": len(self._shards),
                "replication": self.config.replication,
                "vnodes": self.config.vnodes,
                "hedge": self.config.hedge,
            },
            "slo": self.slo.snapshot(),
            "router": counters,
            "ring": {"members": list(ring_members)},
            "health": health,
            "shards": {
                shard_id: shard.stats()
                for shard_id, shard in sorted(self._shards.items())
            },
        }
