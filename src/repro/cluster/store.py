"""Per-shard durable storage: journaled, content-addressed, crash-consistent.

A :class:`ShardStore` is the disk a :class:`~repro.cluster.shard.ClusterShard`
stands on.  It holds opaque compressed payloads (LLM.265 container-v3
blobs in production; any bytes in tests) under string keys with two
guarantees the cluster's durability contract is built from:

- **An acknowledged write is durable.**  :meth:`put` returns only
  after the payload's segment file is staged, fsynced, and atomically
  renamed into place *and* the journal record describing it is
  appended and fsynced.  A crash at any earlier point loses at most
  the unacknowledged write -- never an acknowledged one, and never a
  previously written key.
- **A damaged byte is never silently served.**  Every payload is
  CRC32-framed in the journal (via :mod:`repro.resilience.framing`)
  and re-verified on :meth:`get`; a mismatch quarantines the segment
  and raises the typed :class:`Quarantined` (chained onto the
  :class:`~repro.resilience.errors.ChecksumError` taxonomy), so the
  router can fail over to a replica instead of returning garbage.

On-disk layout of one store directory::

    journal.log        magic "LVJ1" + version, then framed records
    segments/<hash>.seg   content-addressed payloads (blake2b-128 hex)
    quarantine/        segments that failed CRC, moved aside for forensics

One journal record (framed as ``u32 len | u32 crc | payload``)::

    op u8 (1 = PUT, 2 = DEL) | version u64
    key_len u16 | key utf-8
    hash 16 bytes (blake2b-128 of payload)
    payload_len u64 | payload_crc u32

Segments are content-addressed, so identical payloads under different
keys share one file, and an interrupted writer can never damage an
existing segment: the rename either installs a complete identical
file or nothing.

**Recovery** (:meth:`recover`) replays the journal: a torn final
record (the SIGKILL-mid-append case) is truncated away
(``store.torn_tail_truncations``); a CRC-damaged record mid-journal
stops replay there and truncates the untrusted suffix
(``store.corrupt_records``) -- the keys it drops come back via
anti-entropy from replicas (:mod:`repro.cluster.repair`).  Indexed
keys whose segment file is missing are quarantined, never invented.

**Scrubbing** (:meth:`scrub`) re-verifies stored segment CRCs on a
budgeted round-robin cadence so latent bit rot is found before a
reader trips over it.

The simulated crash surface mirrors the checkpoint writer's
(:mod:`repro.tensor.checkpoint`): ``gate(stage)`` callbacks fire at
every durability-relevant boundary of :meth:`put` so the chaos
harness can SIGKILL a shard *mid-write* at a chosen stage -- including
halfway through the journal append, which is what actually produces
torn records on real machines.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import struct
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import repro.telemetry as telemetry
from repro.telemetry import flightrecorder
from repro.resilience.errors import ChecksumError
from repro.resilience.framing import SLICE_OVERHEAD, crc32, frame_slice

__all__ = [
    "NotFound",
    "Quarantined",
    "RecoveryReport",
    "ShardStore",
    "StoreClosed",
    "StoreEntry",
    "StoreError",
    "scan_store",
]

_JOURNAL_MAGIC = b"LVJ1"
_JOURNAL_VERSION = 1
_JOURNAL_HEADER = _JOURNAL_MAGIC + bytes([_JOURNAL_VERSION])
_JOURNAL_NAME = "journal.log"
_SEGMENTS_DIR = "segments"
_QUARANTINE_DIR = "quarantine"
_HASH_BYTES = 16

_OP_PUT = 1
_OP_DEL = 2

#: op, version, key_len  /  (key)  /  hash, payload_len, payload_crc
_RECORD_PREFIX = struct.Struct("<BQH")
_RECORD_SUFFIX = struct.Struct(f"<{_HASH_BYTES}sQI")

#: Stages :meth:`ShardStore.put` announces to its crash gate, in order.
#: ``journal_synced`` is the acknowledgement point: a crash at any
#: earlier stage loses the write; at or after it, the write is durable.
PUT_STAGES = (
    "put_begin",
    "segment_staged",
    "segment_linked",
    "journal_partial",
    "journal_synced",
)


class StoreError(Exception):
    """Base of the typed store failure vocabulary."""


class NotFound(StoreError):
    """The key is not present on this shard (it may be on a replica)."""

    def __init__(self, key: str, message: str = "") -> None:
        super().__init__(message or f"key {key!r} not found")
        self.key = key


class Quarantined(StoreError):
    """The key's segment failed verification and was quarantined.

    Always chained (``__cause__``) onto the
    :class:`~repro.resilience.errors.CorruptStreamError` taxonomy
    describing what was wrong with the bytes.
    """

    def __init__(self, key: str, reason: str) -> None:
        super().__init__(f"key {key!r} quarantined: {reason}")
        self.key = key
        self.reason = reason


class StoreClosed(StoreError):
    """The store's process is gone (crashed or closed); recover first."""


@dataclass
class StoreEntry:
    """One key's committed state in the index."""

    version: int
    hash_hex: str
    length: int
    crc: int
    quarantined: bool = False


@dataclass
class RecoveryReport:
    """What one :meth:`ShardStore.recover` replay found and fixed."""

    records_replayed: int = 0
    keys: int = 0
    torn_tail: bool = False
    corrupt_records: int = 0
    truncated_bytes: int = 0
    segments_missing: int = 0
    tmp_files_removed: int = 0

    def to_dict(self) -> dict:
        return dict(self.__dict__)


def _hash_payload(payload: bytes) -> bytes:
    return hashlib.blake2b(payload, digest_size=_HASH_BYTES).digest()


def _pack_record(
    op: int, version: int, key: str, digest: bytes, length: int, crc: int
) -> bytes:
    encoded = key.encode("utf-8")
    if len(encoded) > 0xFFFF:
        raise ValueError(f"key too long: {key!r}")
    return (
        _RECORD_PREFIX.pack(op, version, len(encoded))
        + encoded
        + _RECORD_SUFFIX.pack(digest, length, crc)
    )


def _unpack_record(payload: bytes) -> Tuple[int, int, str, bytes, int, int]:
    op, version, key_len = _RECORD_PREFIX.unpack_from(payload, 0)
    offset = _RECORD_PREFIX.size
    key = payload[offset : offset + key_len].decode("utf-8")
    offset += key_len
    digest, length, crc = _RECORD_SUFFIX.unpack_from(payload, offset)
    if offset + _RECORD_SUFFIX.size != len(payload):
        raise ValueError("journal record has trailing bytes")
    return op, version, key, digest, length, crc


def _walk_journal(blob: bytes):
    """Yield ``(offset, payload_or_None, reason)`` per framed record.

    ``payload`` is the verified record payload; ``None`` marks damage,
    with ``reason`` one of ``"torn"`` (the record runs past EOF -- an
    interrupted append) or ``"corrupt"`` (complete bytes, bad CRC).
    Iteration stops at the first damaged record: nothing after it can
    be trusted without a resynchronisation point the format does not
    have.
    """
    offset = len(_JOURNAL_HEADER)
    size = len(blob)
    header = struct.Struct("<II")
    while offset < size:
        if offset + SLICE_OVERHEAD > size:
            yield offset, None, "torn"
            return
        length, checksum = header.unpack_from(blob, offset)
        end = offset + SLICE_OVERHEAD + length
        if end > size:
            yield offset, None, "torn"
            return
        payload = blob[offset + SLICE_OVERHEAD : end]
        if crc32(payload) != checksum:
            yield offset, None, "corrupt"
            return
        yield offset, payload, ""
        offset = end


_tmp_counter = itertools.count()


class ShardStore:
    """Write-ahead-journaled, content-addressed segment store.

    Thread-safe: concurrent writers stage segments under unique temp
    names and serialise only the journal append + index update, so a
    race between two :meth:`put` calls (same key or not) always leaves
    the journal a sequence of complete records and the index at the
    highest version.
    """

    def __init__(
        self,
        directory: str,
        shard_id: str = "",
        fsync: bool = True,
    ) -> None:
        self.directory = str(directory)
        self.shard_id = shard_id or os.path.basename(self.directory)
        self.fsync = fsync
        self.segments_dir = os.path.join(self.directory, _SEGMENTS_DIR)
        self.quarantine_dir = os.path.join(self.directory, _QUARANTINE_DIR)
        self._lock = threading.RLock()
        self._index: Dict[str, StoreEntry] = {}
        self._journal = None
        self._open = False
        self._scrub_cursor = 0
        self.counters: Dict[str, int] = {
            name: 0
            for name in (
                "puts", "gets", "deletes", "recoveries",
                "torn_tail_truncations", "corrupt_records",
                "segments_quarantined", "segments_missing",
                "scrub_checked", "scrub_corrupt", "crashes",
            )
        }
        self.last_recovery: Optional[RecoveryReport] = None
        self.recover()

    # -- lifecycle -----------------------------------------------------

    @property
    def open(self) -> bool:
        return self._open

    def crash(self) -> None:
        """Simulate the owning process dying: all volatile state is gone.

        The disk keeps whatever was flushed -- including a torn journal
        tail if a :meth:`put` was interrupted -- and nothing else.  The
        store refuses every operation until :meth:`recover` runs.
        """
        with self._lock:
            if self._journal is not None:
                try:
                    self._journal.close()
                except OSError:  # pragma: no cover - close best-effort
                    pass
                self._journal = None
            self._index = {}
            self._open = False
            self._count("crashes")

    def close(self) -> None:
        """Graceful shutdown (everything acknowledged is already synced)."""
        with self._lock:
            if self._journal is not None:
                self._journal.close()
                self._journal = None
            self._open = False

    def recover(self) -> RecoveryReport:
        """Crash-consistent open: replay the journal, fix the tail.

        Idempotent; safe on a fresh directory (creates the layout) and
        after :meth:`crash` (rebuilds the index from disk).  Torn or
        corrupt journal suffixes are truncated away so the next append
        lands on a clean record boundary.
        """
        with self._lock:
            report = RecoveryReport()
            os.makedirs(self.segments_dir, exist_ok=True)
            os.makedirs(self.quarantine_dir, exist_ok=True)
            journal_path = self._journal_path()
            if not os.path.exists(journal_path):
                self._write_fresh_journal(journal_path)
            with open(journal_path, "rb") as handle:
                blob = handle.read()
            if blob[: len(_JOURNAL_HEADER)] != _JOURNAL_HEADER:
                # An unrecognisable journal cannot be replayed; treat
                # the whole file as one corrupt record and start over
                # (replicas re-seed this shard via anti-entropy).
                report.corrupt_records += 1
                report.truncated_bytes = len(blob)
                self._count("corrupt_records")
                self._write_fresh_journal(journal_path)
                blob = _JOURNAL_HEADER

            index: Dict[str, StoreEntry] = {}
            keep_until = len(blob)
            for offset, payload, reason in _walk_journal(blob):
                if payload is None:
                    keep_until = offset
                    if reason == "torn":
                        report.torn_tail = True
                        self._count("torn_tail_truncations")
                        telemetry.count("store.torn_tail_truncations")
                    else:
                        report.corrupt_records += 1
                        self._count("corrupt_records")
                        telemetry.count("store.corrupt_records")
                    break
                try:
                    op, version, key, digest, length, crc = _unpack_record(
                        payload
                    )
                except (struct.error, UnicodeDecodeError, ValueError):
                    # Framing CRC passed but the payload is malformed:
                    # a record that was *written* wrong.  Same policy
                    # as a corrupt record.
                    keep_until = offset
                    report.corrupt_records += 1
                    self._count("corrupt_records")
                    telemetry.count("store.corrupt_records")
                    break
                report.records_replayed += 1
                current = index.get(key)
                if op == _OP_PUT:
                    if current is None or version >= current.version:
                        index[key] = StoreEntry(
                            version=version,
                            hash_hex=digest.hex(),
                            length=length,
                            crc=crc,
                        )
                elif op == _OP_DEL:
                    if current is None or version >= current.version:
                        index.pop(key, None)

            if keep_until < len(blob):
                report.truncated_bytes = len(blob) - keep_until
                with open(journal_path, "r+b") as handle:
                    handle.truncate(keep_until)
                    handle.flush()
                    if self.fsync:
                        os.fsync(handle.fileno())
                flightrecorder.record(
                    "store.journal_truncated",
                    shard=self.shard_id,
                    torn=report.torn_tail,
                    corrupt_records=report.corrupt_records,
                    dropped_bytes=report.truncated_bytes,
                )

            # An indexed key must have its segment on disk; a missing
            # one (unlink fault, half-restored backup) is quarantined
            # so reads fail typed instead of crashing on open().
            for key, entry in index.items():
                if not os.path.exists(self._segment_path(entry.hash_hex)):
                    entry.quarantined = True
                    report.segments_missing += 1
                    self._count("segments_missing")
                    telemetry.count("store.segments_missing")

            # Orphan temp files are staged segments whose writer died
            # before the rename; they hold no acknowledged data.
            for name in os.listdir(self.segments_dir):
                if name.startswith(".tmp."):
                    try:
                        os.unlink(os.path.join(self.segments_dir, name))
                        report.tmp_files_removed += 1
                    except OSError:  # pragma: no cover - cleanup races
                        pass

            report.keys = len(index)
            self._index = index
            self._journal = open(journal_path, "ab")
            self._open = True
            self._count("recoveries")
            telemetry.count("store.recoveries")
            self.last_recovery = report
            flightrecorder.record(
                "store.recovered",
                shard=self.shard_id,
                keys=report.keys,
                records=report.records_replayed,
                torn_tail=report.torn_tail,
                corrupt_records=report.corrupt_records,
            )
            return report

    # -- write path ----------------------------------------------------

    def put(
        self,
        key: str,
        payload: bytes,
        version: int,
        gate: Optional[Callable[[str], None]] = None,
    ) -> StoreEntry:
        """Durably store ``payload`` under ``key``; returns on fsync.

        ``gate(stage)`` fires at each :data:`PUT_STAGES` boundary (and
        may raise to simulate the process dying there).  The write is
        acknowledged -- and only then recoverable -- once the
        ``journal_synced`` stage is reached.
        """
        self._check_open()
        self._gate(gate, "put_begin")
        digest = _hash_payload(payload)
        hash_hex = digest.hex()
        crc = crc32(payload)
        segment = self._segment_path(hash_hex)
        if not os.path.exists(segment):
            # Stage under a name unique per (process, thread, write) so
            # racing writers never interleave inside one temp file --
            # same discipline as the checkpoint writer.
            tmp = os.path.join(
                self.segments_dir,
                f".tmp.{os.getpid()}.{threading.get_ident()}."
                f"{next(_tmp_counter)}",
            )
            with open(tmp, "wb") as handle:
                handle.write(payload)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            self._gate(gate, "segment_staged", tmp=tmp)
            os.replace(tmp, segment)
        else:
            self._gate(gate, "segment_staged")
        self._gate(gate, "segment_linked")

        record = frame_slice(
            _pack_record(_OP_PUT, version, key, digest, len(payload), crc)
        )
        # The append is split around a gate so a simulated SIGKILL can
        # land *inside* the record -- the torn-tail case recovery must
        # truncate.  Both halves are flushed to the OS; fsync happens
        # once, at the acknowledgement point.
        split = max(1, len(record) // 2)
        with self._lock:
            self._check_open()
            self._journal.write(record[:split])
            self._journal.flush()
            self._gate(gate, "journal_partial")
            self._journal.write(record[split:])
            self._journal.flush()
            if self.fsync:
                os.fsync(self._journal.fileno())
            self._gate(gate, "journal_synced")
            entry = StoreEntry(
                version=version, hash_hex=hash_hex,
                length=len(payload), crc=crc,
            )
            current = self._index.get(key)
            if current is None or version >= current.version:
                self._index[key] = entry
            self._count("puts")
        telemetry.count("store.puts")
        return entry

    def delete(self, key: str, version: int) -> bool:
        """Journal a tombstone for ``key``; True if it was present."""
        self._check_open()
        record = frame_slice(
            _pack_record(_OP_DEL, version, key, b"\0" * _HASH_BYTES, 0, 0)
        )
        with self._lock:
            self._check_open()
            self._journal.write(record)
            self._journal.flush()
            if self.fsync:
                os.fsync(self._journal.fileno())
            current = self._index.get(key)
            present = current is not None
            if current is None or version >= current.version:
                self._index.pop(key, None)
            self._count("deletes")
        telemetry.count("store.deletes")
        return present

    # -- read path -----------------------------------------------------

    def get(self, key: str) -> bytes:
        """Verified read: the exact acknowledged bytes, or a typed error.

        Raises :class:`NotFound` for an unknown key and
        :class:`Quarantined` when the segment is missing or fails its
        CRC -- in which case the segment is also moved to the
        quarantine directory so repair re-replicates a clean copy.
        """
        self._check_open()
        with self._lock:
            entry = self._index.get(key)
            if entry is None:
                raise NotFound(key)
            if entry.quarantined:
                raise Quarantined(key, "previously quarantined")
        segment = self._segment_path(entry.hash_hex)
        try:
            with open(segment, "rb") as handle:
                payload = handle.read()
        except OSError:
            self._quarantine(key, entry, "segment file missing")
            raise Quarantined(key, "segment file missing") from None
        if len(payload) != entry.length or crc32(payload) != entry.crc:
            self._quarantine(key, entry, "checksum mismatch")
            cause = ChecksumError(
                f"segment {entry.hash_hex} checksum mismatch",
                expected=entry.crc, actual=crc32(payload),
            )
            raise Quarantined(key, "checksum mismatch") from cause
        with self._lock:
            self._count("gets")
        telemetry.count("store.gets")
        return payload

    def contains(self, key: str) -> bool:
        with self._lock:
            entry = self._index.get(key)
            return entry is not None and not entry.quarantined

    # -- scrubbing -----------------------------------------------------

    def scrub(self, budget: Optional[int] = 16) -> dict:
        """Re-verify up to ``budget`` stored segments' CRCs (round-robin).

        ``budget=None`` scrubs everything.  Corrupt segments are
        quarantined exactly as a failed read would, so latent bit rot
        surfaces on the scrubber's cadence, not a client's request.
        Returns ``{"checked": n, "corrupt": [keys...]}``.
        """
        self._check_open()
        with self._lock:
            keys = sorted(
                key for key, entry in self._index.items()
                if not entry.quarantined
            )
            if not keys:
                return {"checked": 0, "corrupt": []}
            if budget is None or budget >= len(keys):
                chosen = keys
                self._scrub_cursor = 0
            else:
                start = self._scrub_cursor % len(keys)
                chosen = [
                    keys[(start + step) % len(keys)] for step in range(budget)
                ]
                self._scrub_cursor = (start + budget) % len(keys)
        corrupt: List[str] = []
        for key in chosen:
            with self._lock:
                entry = self._index.get(key)
            if entry is None or entry.quarantined:
                continue
            ok = False
            try:
                with open(self._segment_path(entry.hash_hex), "rb") as handle:
                    payload = handle.read()
                ok = (
                    len(payload) == entry.length
                    and crc32(payload) == entry.crc
                )
                reason = "checksum mismatch"
            except OSError:
                reason = "segment file missing"
            with self._lock:
                self._count("scrub_checked")
            telemetry.count("store.scrub_checked")
            if not ok:
                corrupt.append(key)
                self._quarantine(key, entry, reason, scrub=True)
        return {"checked": len(chosen), "corrupt": corrupt}

    # -- anti-entropy --------------------------------------------------

    def digest(self) -> Dict[str, Tuple[int, str]]:
        """``key -> (version, hash_hex)`` for every *servable* key.

        Quarantined keys are deliberately absent: this shard cannot
        serve them, so for replication accounting it does not hold
        them -- exactly the signal anti-entropy repairs on.
        """
        with self._lock:
            return {
                key: (entry.version, entry.hash_hex)
                for key, entry in self._index.items()
                if not entry.quarantined
            }

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def keys(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._index))

    def stats(self) -> dict:
        with self._lock:
            quarantined = sum(
                1 for entry in self._index.values() if entry.quarantined
            )
            return {
                "shard": self.shard_id,
                "open": self._open,
                "keys": len(self._index),
                "quarantined_keys": quarantined,
                "counters": dict(self.counters),
            }

    # -- internals -----------------------------------------------------

    def _journal_path(self) -> str:
        return os.path.join(self.directory, _JOURNAL_NAME)

    def _segment_path(self, hash_hex: str) -> str:
        return os.path.join(self.segments_dir, f"{hash_hex}.seg")

    def _write_fresh_journal(self, path: str) -> None:
        with open(path, "wb") as handle:
            handle.write(_JOURNAL_HEADER)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())

    def _check_open(self) -> None:
        if not self._open:
            raise StoreClosed(f"store {self.shard_id!r} is not open")

    @staticmethod
    def _gate(
        gate: Optional[Callable[[str], None]], stage: str, **_info
    ) -> None:
        if gate is not None:
            gate(stage)

    def _quarantine(
        self, key: str, entry: StoreEntry, reason: str, scrub: bool = False
    ) -> None:
        with self._lock:
            live = self._index.get(key)
            if live is not None:
                live.quarantined = True
            self._count("segments_quarantined")
            if scrub:
                self._count("scrub_corrupt")
        telemetry.count("store.segments_quarantined")
        if scrub:
            telemetry.count("store.scrub_corrupt")
        segment = self._segment_path(entry.hash_hex)
        if os.path.exists(segment):
            target = os.path.join(
                self.quarantine_dir, os.path.basename(segment)
            )
            try:
                os.replace(segment, target)
            except OSError:  # pragma: no cover - move is best-effort
                pass
        flightrecorder.record(
            "store.segment_quarantined",
            shard=self.shard_id, key=key,
            segment=entry.hash_hex, reason=reason, scrub=scrub,
        )

    def _count(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value


def scan_store(directory: str, deep: bool = False) -> dict:
    """Non-mutating integrity scan of a store directory (for ``verify``).

    Walks the journal's framed records and checks that every live
    key's segment exists with the journaled length; ``deep=True`` also
    re-reads each segment and verifies its CRC32.  Unlike
    :meth:`ShardStore.recover` nothing is truncated, quarantined, or
    deleted.  Issues carry a category: ``"torn"`` (an interrupted
    append recovery would cleanly truncate) or ``"corrupt"`` (damage
    that loses or falsifies data).
    """
    directory = str(directory)
    journal_path = os.path.join(directory, _JOURNAL_NAME)
    segments_dir = os.path.join(directory, _SEGMENTS_DIR)
    result = {
        "journal_records": 0,
        "keys": 0,
        "segments_checked": 0,
        "torn_tail": False,
        "corrupt_records": 0,
        "issues": [],  # (category, location, reason)
        "deep": deep,
    }

    def issue(category: str, location: str, reason: str) -> None:
        result["issues"].append((category, location, reason))

    if not os.path.exists(journal_path):
        issue("corrupt", "journal", "journal.log missing")
        return result
    with open(journal_path, "rb") as handle:
        blob = handle.read()
    if blob[: len(_JOURNAL_HEADER)] != _JOURNAL_HEADER:
        issue(
            "corrupt", "journal",
            f"bad journal header {blob[:5]!r} (expected LVJ1 v1)",
        )
        return result

    index: Dict[str, StoreEntry] = {}
    for offset, payload, reason in _walk_journal(blob):
        if payload is None:
            if reason == "torn":
                result["torn_tail"] = True
                issue(
                    "torn", f"journal@{offset}",
                    "torn record at tail (interrupted append)",
                )
            else:
                result["corrupt_records"] += 1
                issue(
                    "corrupt", f"journal@{offset}",
                    "record checksum mismatch (replay stops here)",
                )
            break
        try:
            op, version, key, digest, length, crc = _unpack_record(payload)
        except (struct.error, UnicodeDecodeError, ValueError) as exc:
            result["corrupt_records"] += 1
            issue("corrupt", f"journal@{offset}", f"malformed record: {exc}")
            break
        result["journal_records"] += 1
        current = index.get(key)
        if op == _OP_PUT:
            if current is None or version >= current.version:
                index[key] = StoreEntry(
                    version=version, hash_hex=digest.hex(),
                    length=length, crc=crc,
                )
        elif op == _OP_DEL:
            if current is None or version >= current.version:
                index.pop(key, None)
        else:
            issue("corrupt", f"journal@{offset}", f"unknown op {op}")

    result["keys"] = len(index)
    for key in sorted(index):
        entry = index[key]
        segment = os.path.join(segments_dir, f"{entry.hash_hex}.seg")
        result["segments_checked"] += 1
        try:
            size = os.path.getsize(segment)
        except OSError:
            issue("corrupt", f"key {key!r}", "segment file missing")
            continue
        if size != entry.length:
            issue(
                "corrupt", f"key {key!r}",
                f"segment length {size} != journaled {entry.length}",
            )
            continue
        if deep:
            with open(segment, "rb") as handle:
                payload = handle.read()
            if crc32(payload) != entry.crc:
                issue(
                    "corrupt", f"key {key!r}",
                    "segment checksum mismatch (deep)",
                )
    return result
