"""Sharded cluster serving for the codec.

One :class:`~repro.cluster.router.ClusterRouter` fronts N
:class:`~repro.cluster.shard.ClusterShard` instances (each a full
:class:`~repro.serving.service.CodecService`):

- :mod:`repro.cluster.ring` -- consistent-hash routing with virtual
  nodes; ``tensor_id`` picks the replica set, membership changes move
  only the departed shard's key range.
- :mod:`repro.cluster.health` -- per-shard breaker + failure-rate
  EWMA; unhealthy shards are drained from the ring and re-admitted by
  bounded probes.
- :mod:`repro.cluster.router` -- replication with failover, hedged
  requests (p99-derived delay, commit-once dedupe), the typed cluster
  response contract.
- :mod:`repro.cluster.traffic` -- open-loop workload generation
  (bursty/diurnal arrivals, session affinity, mixed tensor sizes).
- :mod:`repro.cluster.chaos` -- shard-kill/hang soak asserting the
  typed-response contract and the availability SLO.
- :mod:`repro.cluster.bench` -- the tracked ``BENCH_cluster.json``
  ladder (shard sweep, hedge-on/off tail comparison, chaos verdict).
"""

from repro.cluster.health import ShardHealth
from repro.cluster.ring import HashRing
from repro.cluster.router import (
    ClusterConfig,
    ClusterResponse,
    ClusterRouter,
    ClusterUnavailable,
)
from repro.cluster.shard import ClusterShard, ShardDown

__all__ = [
    "ClusterConfig",
    "ClusterResponse",
    "ClusterRouter",
    "ClusterShard",
    "ClusterUnavailable",
    "HashRing",
    "ShardDown",
    "ShardHealth",
]
