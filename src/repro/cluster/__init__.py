"""Sharded cluster serving for the codec.

One :class:`~repro.cluster.router.ClusterRouter` fronts N
:class:`~repro.cluster.shard.ClusterShard` instances (each a full
:class:`~repro.serving.service.CodecService`):

- :mod:`repro.cluster.ring` -- consistent-hash routing with virtual
  nodes; ``tensor_id`` picks the replica set, membership changes move
  only the departed shard's key range.
- :mod:`repro.cluster.health` -- per-shard breaker + failure-rate
  EWMA; unhealthy shards are drained from the ring and re-admitted by
  bounded probes.
- :mod:`repro.cluster.router` -- replication with failover, hedged
  requests (p99-derived delay, commit-once dedupe), the typed cluster
  response contract; quorum-acknowledged durable ``put``/``get`` when
  the shards carry stores.
- :mod:`repro.cluster.store` -- per-shard write-ahead-journaled,
  content-addressed segment store: an acknowledged write is fsynced
  and survives SIGKILL; every read is CRC-verified or a typed error;
  crash recovery truncates torn journal tails and quarantines damage.
- :mod:`repro.cluster.repair` -- anti-entropy: per-shard key digests,
  (version, hash) winner election, re-replication until the ring's
  R-way invariant holds again after death/revive.
- :mod:`repro.cluster.traffic` -- open-loop workload generation
  (bursty/diurnal arrivals, session affinity, mixed tensor sizes).
- :mod:`repro.cluster.chaos` -- shard-kill/hang soak asserting the
  typed-response contract and the availability SLO.
- :mod:`repro.cluster.durability` -- durability soak: SIGKILL
  mid-write + on-disk bit rot; acknowledged-write durability 100%,
  no silent corruption, replication healed by anti-entropy.
- :mod:`repro.cluster.bench` -- the tracked ``BENCH_cluster.json``
  ladder (shard sweep, hedge-on/off tail comparison, chaos verdict).
"""

from repro.cluster.health import ShardHealth
from repro.cluster.ring import HashRing
from repro.cluster.router import (
    ClusterConfig,
    ClusterResponse,
    ClusterRouter,
    ClusterUnavailable,
    WriteQuorumFailed,
)
from repro.cluster.shard import ClusterShard, ShardDown
from repro.cluster.store import (
    NotFound,
    Quarantined,
    ShardStore,
    StoreClosed,
    StoreError,
)
from repro.cluster.repair import RepairReport, repair_until_converged, run_anti_entropy

__all__ = [
    "ClusterConfig",
    "ClusterResponse",
    "ClusterRouter",
    "ClusterShard",
    "ClusterUnavailable",
    "HashRing",
    "NotFound",
    "Quarantined",
    "RepairReport",
    "ShardDown",
    "ShardHealth",
    "ShardStore",
    "StoreClosed",
    "StoreError",
    "WriteQuorumFailed",
    "repair_until_converged",
    "run_anti_entropy",
]
