"""Anti-entropy: heal the ring's R-way replication after failures.

A shard death (and the drain that follows) leaves its key ranges
under-replicated; a crash recovery that truncated a corrupt journal
suffix leaves acknowledged keys missing from one replica; a scrubbed
bit-flip leaves a quarantined copy that the shard can no longer
serve.  None of these lose acknowledged data -- quorum writes put the
bytes on other replicas -- but all of them erode the margin the next
failure would need.  Anti-entropy is the loop that restores it:

1. **Digest exchange.**  Every alive, store-backed shard reports
   ``key -> (version, hash)`` for the keys it can actually serve
   (quarantined keys are deliberately absent -- for replication
   accounting a copy that cannot be read does not exist).
2. **Winner election.**  Per key, the winner is the maximum
   ``(version, hash)`` pair across all holders.  Versions come from
   the router's single monotonic clock, so a higher version is a
   strictly newer acknowledged write; the hash tiebreak only matters
   for torn multi-put races and makes the election deterministic.
3. **Re-replication.**  The key's current owners (the ring's first R
   healthy shards) that lack the winning copy receive it -- fetched
   from a winning holder through the *verified* read path (a source
   whose copy turns out corrupt is quarantined and the next holder is
   tried) and written through the *journaled* write path at the
   winner's version, so a repair copy is exactly as durable as a
   client write.

One pass converges unless shards fail mid-repair;
:func:`repair_until_converged` loops passes until a clean one (no
copies needed, nothing unrepairable) or a bounded pass budget.  The
router schedules a pass automatically whenever a drained shard is
re-admitted (``repair_on_readmit``); the durability soak also runs a
final converging sweep before checking the replication invariant.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import repro.telemetry as telemetry
from repro.telemetry import flightrecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.router import ClusterRouter

__all__ = ["RepairReport", "collect_digests", "repair_until_converged",
           "run_anti_entropy"]


@dataclass
class RepairReport:
    """What one anti-entropy pass (or converging run) saw and did."""

    keys_scanned: int = 0
    #: Keys found on fewer owners than the ring requires (pre-repair).
    under_replicated: int = 0
    #: Keys where holders disagreed on (version, hash) -- stale copies.
    conflicts: int = 0
    copies_made: int = 0
    copy_failures: int = 0
    #: Keys needing repair with no readable winning copy anywhere.
    unrepairable: List[str] = field(default_factory=list)
    passes: int = 1
    converged: bool = True
    elapsed_s: float = 0.0

    def merge(self, other: "RepairReport") -> None:
        self.keys_scanned = max(self.keys_scanned, other.keys_scanned)
        self.under_replicated = max(
            self.under_replicated, other.under_replicated
        )
        self.conflicts = max(self.conflicts, other.conflicts)
        self.copies_made += other.copies_made
        self.copy_failures += other.copy_failures
        self.unrepairable = list(other.unrepairable)
        self.elapsed_s += other.elapsed_s

    def to_dict(self) -> dict:
        doc = dict(self.__dict__)
        doc["unrepairable"] = list(self.unrepairable)
        return doc


def collect_digests(
    router: "ClusterRouter",
) -> Dict[str, Dict[str, Tuple[int, str]]]:
    """Per-shard servable-key digests from every alive, store-backed shard."""
    digests: Dict[str, Dict[str, Tuple[int, str]]] = {}
    for shard_id in router.shard_ids:
        shard = router.shard(shard_id)
        if shard.store is None or not shard.alive or not shard.store.open:
            continue
        digests[shard_id] = shard.store.digest()
    return digests


def _owners(router: "ClusterRouter", key: str) -> Tuple[str, ...]:
    with router._lock:
        return router.ring.replicas(key, router.config.replication)


def run_anti_entropy(router: "ClusterRouter") -> RepairReport:
    """One digest-exchange / re-replication pass over the whole cluster."""
    started = time.perf_counter()
    report = RepairReport()
    digests = collect_digests(router)
    all_keys = sorted({key for digest in digests.values() for key in digest})
    report.keys_scanned = len(all_keys)

    for key in all_keys:
        holders = {
            shard_id: digest[key]
            for shard_id, digest in digests.items()
            if key in digest
        }
        winner = max(holders.values())
        if len(set(holders.values())) > 1:
            report.conflicts += 1
        owners = _owners(router, key)
        targets = [
            shard_id for shard_id in owners
            if digests.get(shard_id, {}).get(key) != winner
            and shard_id in digests  # only alive store shards are writable
        ]
        if not targets:
            continue
        report.under_replicated += 1

        payload: Optional[bytes] = None
        sources = sorted(
            sid for sid, entry in holders.items() if entry == winner
        )
        for source in sources:
            outcome = router.shard(source).get(key)
            if outcome.ok:
                payload = outcome.value
                break
            # A corrupt winning copy just quarantined itself; the next
            # holder may still be clean.
        if payload is None:
            report.unrepairable.append(key)
            telemetry.count("repair.unrepairable")
            flightrecorder.record(
                "repair.unrepairable", key=key,
                holders=len(holders), sources=len(sources),
            )
            continue

        version = winner[0]
        for target in targets:
            outcome = router.shard(target).put(key, payload, version)
            if outcome.ok:
                report.copies_made += 1
                router._count("repair_copies")
                telemetry.count("repair.copies")
            else:
                report.copy_failures += 1
                telemetry.count("repair.copy_failures")

    report.elapsed_s = time.perf_counter() - started
    router._count("repair_passes")
    telemetry.count("repair.passes")
    flightrecorder.record(
        "repair.pass_done",
        keys=report.keys_scanned,
        under_replicated=report.under_replicated,
        copies=report.copies_made,
        failures=report.copy_failures,
        unrepairable=len(report.unrepairable),
        elapsed_ms=round(1e3 * report.elapsed_s, 3),
    )
    return report


def repair_until_converged(
    router: "ClusterRouter", max_passes: int = 4
) -> RepairReport:
    """Run passes until one is clean (nothing to copy, nothing broken).

    Convergence is one full pass with zero copies made, zero copy
    failures, and zero unrepairable keys -- i.e. the digest exchange
    itself proved the R-way invariant holds.  A cluster that keeps
    failing mid-repair exhausts ``max_passes`` and reports
    ``converged=False`` so callers (the soak, tests) fail loudly
    instead of looping forever.
    """
    total = RepairReport(passes=0)
    for _ in range(max(1, max_passes)):
        one = run_anti_entropy(router)
        total.merge(one)
        total.passes += 1
        clean = (
            one.copies_made == 0
            and one.copy_failures == 0
            and not one.unrepairable
        )
        if clean:
            total.converged = True
            return total
    total.converged = False
    flightrecorder.record(
        "repair.not_converged", passes=total.passes,
        unrepairable=len(total.unrepairable),
    )
    return total
