"""Router-level shard health: circuit breaker + failure-rate EWMA.

A shard is drained from the hash ring when either signal says it is
sick:

- the per-shard :class:`~repro.serving.breaker.CircuitBreaker` trips
  on *consecutive* infrastructure failures (the killed-shard case:
  every request fails immediately), or
- the failure-rate **EWMA** crosses ``ewma_unhealthy`` (the sick-shard
  case: enough intermittent failures to be unusable even though
  successes keep resetting the consecutive counter).  An EWMA trip is
  routed through :meth:`CircuitBreaker.trip` so there is exactly one
  re-admission mechanism.

Re-admission is probe-driven: once the breaker's cooldown elapses,
:meth:`admit` answers ``"probe"`` and the router sends the drained
shard one bounded synthetic request.  The probe carries a short child
:class:`~repro.resilience.deadline.Deadline` -- a hung shard must cost
the probe path ``probe_timeout_s``, never wedge it (timeouts are
counted in ``serving.breaker_probe_timeouts``).  One probe success
re-closes the breaker, resets the EWMA, and re-admits the shard to the
ring; one probe failure re-opens the breaker for a fresh cooldown.

Failure taxonomy matters here: only *infrastructure* outcomes
(``ShardDown``, exhausted retries, probe timeouts) advance the
breaker.  Deterministic request failures (corrupt payload, malformed
targets) fail identically on every shard and teach nothing about this
one; ``Overloaded`` is load, not sickness, and feeds only the EWMA so
a persistently saturated shard still sheds routing weight.
"""

from __future__ import annotations

import time
from typing import Callable

import repro.telemetry as telemetry
from repro.telemetry import flightrecorder
from repro.serving.breaker import CircuitBreaker

__all__ = ["ShardHealth"]


class ShardHealth:
    """One shard's admission verdict, fed by every attempt outcome."""

    def __init__(
        self,
        shard_id: str,
        failure_threshold: int = 3,
        cooldown_s: float = 0.5,
        ewma_alpha: float = 0.2,
        ewma_unhealthy: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if not 0.0 < ewma_unhealthy <= 1.0:
            raise ValueError("ewma_unhealthy must be in (0, 1]")
        self.shard_id = shard_id
        self.breaker = CircuitBreaker(
            name=f"shard.{shard_id}",
            failure_threshold=failure_threshold,
            cooldown_s=cooldown_s,
            clock=clock,
        )
        self.ewma_alpha = ewma_alpha
        self.ewma_unhealthy = ewma_unhealthy
        self.ewma = 0.0
        self.ewma_trips = 0
        self.probe_timeouts = 0

    # -- admission -----------------------------------------------------

    def admit(self) -> str:
        """``"ok"`` | ``"probe"`` | ``"rejected"`` for one request now."""
        return self.breaker.admit()

    @property
    def healthy(self) -> bool:
        """Whether the router should keep this shard on the ring."""
        return self.breaker.state == "closed"

    # -- evidence ------------------------------------------------------

    def record(self, ok: bool, infrastructure: bool = True) -> None:
        """Fold one attempt outcome in.

        ``infrastructure=False`` marks failures that say nothing about
        the shard (deterministic bad input): they advance neither
        signal.  ``Overloaded`` callers pass ``infrastructure=False``
        too but should call :meth:`record_load_failure` instead so the
        EWMA still sees the saturation.
        """
        if ok:
            self.ewma = (1.0 - self.ewma_alpha) * self.ewma
            self.breaker.record_success()
            return
        if not infrastructure:
            return
        self.ewma = (1.0 - self.ewma_alpha) * self.ewma + self.ewma_alpha
        self.breaker.record_failure()
        self._check_ewma()

    def record_load_failure(self) -> None:
        """An ``Overloaded`` outcome: saturation evidence, not sickness."""
        self.ewma = (1.0 - self.ewma_alpha) * self.ewma + self.ewma_alpha
        self._check_ewma()

    def record_probe_timeout(self) -> None:
        """A half-open probe hit its child deadline: the shard is hung.

        Counted separately (``serving.breaker_probe_timeouts``) because
        a wedged probe path is the failure mode the bounded probe
        deadline exists to prevent.
        """
        self.probe_timeouts += 1
        telemetry.count("serving.breaker_probe_timeouts")
        self.ewma = (1.0 - self.ewma_alpha) * self.ewma + self.ewma_alpha
        self.breaker.record_failure()

    def reset(self) -> None:
        """A probe succeeded: full fresh start for the shard."""
        self.ewma = 0.0
        self.breaker.record_success()

    def _check_ewma(self) -> None:
        if self.ewma >= self.ewma_unhealthy and self.breaker.state == "closed":
            self.ewma_trips += 1
            telemetry.count("cluster.ewma_trips")
            flightrecorder.record(
                "cluster.ewma_trip",
                shard=self.shard_id,
                ewma=round(self.ewma, 4),
            )
            self.breaker.trip(reason="failure-rate-ewma")

    def stats(self) -> dict:
        return {
            "shard": self.shard_id,
            "state": self.breaker.state,
            "ewma": round(self.ewma, 4),
            "trips": self.breaker.trips,
            "ewma_trips": self.ewma_trips,
            "probe_timeouts": self.probe_timeouts,
        }

    def __repr__(self) -> str:
        return (
            f"ShardHealth({self.shard_id!r}, state={self.breaker.state}, "
            f"ewma={self.ewma:.3f})"
        )
