"""Open-loop cluster workload: bursty, diurnal, session-sticky traffic.

Closed-loop load generators (issue, wait, issue) hide overload: when
the system slows down, the generator slows down with it, and the tail
you measure is the tail of a *kinder* workload than production ever
sends.  This generator is **open-loop**: arrival times are drawn up
front from a seeded modulated-Poisson process and requests fire on
schedule whether or not earlier ones have answered -- queueing delay
lands in the measurement instead of disappearing from it.

The arrival-rate process composes three effects observed in real
serving traces:

- a **diurnal** sinusoid (period ``diurnal_period_s``, compressed from
  hours to seconds so a soak sees whole cycles),
- **bursts**: a two-state Markov process (calm/burst with exponential
  dwell times) multiplying the rate by ``burst_factor``, and
- base Poisson arrivals via inverse-transform exponential gaps at the
  instantaneous rate.

Each arrival belongs to a **session** that reuses its working set of
tensor ids with probability ``session_stickiness`` -- the locality that
makes consistent hashing worth having (a session's keys keep landing
on the same replica sets).  Tensor sizes are drawn per tensor id from
a weighted mix, so shards see heterogeneous work, not one uniform
request cost.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Arrival",
    "OpenLoopDriver",
    "TrafficConfig",
    "generate_arrivals",
]


@dataclass
class TrafficConfig:
    """Shape of one generated workload (fully seeded)."""

    requests: int = 1000
    #: Long-run average arrival rate before modulation.
    base_rate_rps: float = 400.0
    # -- bursts (two-state Markov modulating the rate) ----------------
    burst_factor: float = 3.0
    mean_burst_s: float = 1.0
    mean_calm_s: float = 4.0
    # -- diurnal cycle (hours compressed into seconds) ----------------
    diurnal_period_s: float = 30.0
    #: Peak-to-mean swing in [0, 1); 0 disables the cycle.
    diurnal_amplitude: float = 0.4
    # -- sessions -----------------------------------------------------
    sessions: int = 32
    #: Probability an arrival reuses a tensor id its session already
    #: touched (vs. minting a fresh one).
    session_stickiness: float = 0.8
    #: Cap on each session's working set; reuse draws from this window.
    session_working_set: int = 8
    # -- request mix --------------------------------------------------
    #: ``(side, weight)`` pairs; the side is drawn per tensor id.
    sizes: Tuple[Tuple[int, float], ...] = ((16, 0.5), (32, 0.35), (48, 0.15))
    decode_fraction: float = 0.5
    seed: int = 0


@dataclass
class Arrival:
    """One scheduled request of the open-loop workload."""

    at_s: float  # offset from workload start
    index: int
    session: int
    tensor_id: str
    side: int
    kind: str  # "encode" | "decode"


def _rate_at(cfg: TrafficConfig, t: float, bursting: bool) -> float:
    rate = cfg.base_rate_rps
    if cfg.diurnal_amplitude and cfg.diurnal_period_s > 0:
        rate *= 1.0 + cfg.diurnal_amplitude * math.sin(
            2.0 * math.pi * t / cfg.diurnal_period_s
        )
    if bursting:
        rate *= cfg.burst_factor
    return max(rate, 1e-6)


def generate_arrivals(cfg: Optional[TrafficConfig] = None) -> List[Arrival]:
    """Draw the whole workload up front (deterministic under ``seed``)."""
    cfg = cfg or TrafficConfig()
    rng = np.random.default_rng(cfg.seed)
    sides = np.array([side for side, _ in cfg.sizes], dtype=np.int64)
    weights = np.array([weight for _, weight in cfg.sizes], dtype=np.float64)
    weights /= weights.sum()

    arrivals: List[Arrival] = []
    working_sets: Dict[int, List[str]] = {s: [] for s in range(cfg.sessions)}
    side_of: Dict[str, int] = {}
    minted = 0
    t = 0.0
    bursting = False
    # Exponential dwell time left in the current calm/burst state.
    dwell = float(rng.exponential(cfg.mean_calm_s))
    for index in range(cfg.requests):
        gap = float(rng.exponential(1.0 / _rate_at(cfg, t, bursting)))
        while gap >= dwell:
            # The Markov state flips mid-gap; the residual gap rescales
            # by the rate ratio (memorylessness of the exponential).
            t += dwell
            old_rate = _rate_at(cfg, t, bursting)
            bursting = not bursting
            new_rate = _rate_at(cfg, t, bursting)
            gap = (gap - dwell) * old_rate / new_rate
            dwell = float(
                rng.exponential(
                    cfg.mean_burst_s if bursting else cfg.mean_calm_s
                )
            )
        t += gap
        dwell -= gap

        session = int(rng.integers(0, cfg.sessions))
        working = working_sets[session]
        if working and rng.random() < cfg.session_stickiness:
            tensor_id = working[int(rng.integers(0, len(working)))]
        else:
            tensor_id = f"t{session}-{minted}"
            minted += 1
            side_of[tensor_id] = int(rng.choice(sides, p=weights))
            working.append(tensor_id)
            if len(working) > cfg.session_working_set:
                working.pop(0)
        kind = "decode" if rng.random() < cfg.decode_fraction else "encode"
        arrivals.append(
            Arrival(
                at_s=t, index=index, session=session,
                tensor_id=tensor_id, side=side_of[tensor_id], kind=kind,
            )
        )
    return arrivals


class OpenLoopDriver:
    """Fire arrivals on their wall-clock schedule, never waiting for replies.

    ``send(arrival)`` runs on a client thread pool sized so the driver
    itself is not the bottleneck; if all client threads are busy the
    submission still *queues* immediately (the open-loop property is
    about issue times, and queueing delay is part of what's measured).
    """

    def __init__(
        self,
        send: Callable[[Arrival], object],
        client_threads: int = 32,
        speed: float = 1.0,
    ) -> None:
        if speed <= 0:
            raise ValueError("speed must be > 0")
        self._send = send
        self._client_threads = client_threads
        self._speed = speed

    def run(self, arrivals: Sequence[Arrival]) -> List[object]:
        """Issue every arrival; returns ``send`` results in arrival order."""
        results: List[object] = [None] * len(arrivals)
        with ThreadPoolExecutor(
            max_workers=self._client_threads,
            thread_name_prefix="traffic-client",
        ) as pool:
            start = time.perf_counter()
            futures = []
            for arrival in arrivals:
                lag = arrival.at_s / self._speed - (
                    time.perf_counter() - start
                )
                if lag > 0:
                    time.sleep(lag)
                futures.append(pool.submit(self._send, arrival))
            for index, future in enumerate(futures):
                results[index] = future.result()
        return results
