"""Named stand-in models for the paper's evaluation checkpoints.

Each spec is a scaled-down GPT trained from scratch on the synthetic
corpus; trained weights are cached on disk (``REPRO_CACHE`` or
``.repro_cache`` under the repo) so experiments pay the training cost
once.  Names mirror the paper's models; sizes are laptop-scale on
purpose -- the *statistics* of trained transformer weights, not their
scale, are what the compression experiments need.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

import repro.telemetry as telemetry
from repro.nn.data import CorpusConfig, SyntheticCorpus
from repro.nn.optim import Adam
from repro.nn.transformer import GPT, GPTConfig


@dataclass(frozen=True)
class ModelSpec:
    """Architecture + training recipe for one zoo entry."""

    name: str
    config: GPTConfig
    corpus: CorpusConfig
    train_steps: int
    batch_size: int = 8
    lr: float = 3e-3
    seed: int = 0


def _spec(name, vocab, seq, dim, heads, layers, steps, seed=0) -> ModelSpec:
    return ModelSpec(
        name=name,
        config=GPTConfig(
            vocab_size=vocab,
            max_seq_len=2 * seq,
            dim=dim,
            num_heads=heads,
            num_layers=layers,
            name=name,
        ),
        corpus=CorpusConfig(vocab_size=vocab, seq_len=seq, seed=1234),
        train_steps=steps,
        seed=seed,
    )


SPECS: Dict[str, ModelSpec] = {
    # Inference-compression subjects (Figures 5-8, Table 1).
    "llama2-7b-sim": _spec("llama2-7b-sim", 64, 48, 64, 4, 4, 400),
    "llama3-70b-sim": _spec("llama3-70b-sim", 64, 48, 96, 6, 6, 600),
    # Training-compression subjects (Figures 9-11, 15).
    "pythia-160m-sim": _spec("pythia-160m-sim", 32, 32, 32, 2, 2, 200),
    "pythia-1.4b-sim": _spec("pythia-1.4b-sim", 64, 48, 64, 4, 4, 300),
    "pythia-125m-sim": _spec("pythia-125m-sim", 32, 32, 32, 2, 2, 200, seed=3),
    # Figure 7 proxies (decoder trunks reused for non-LLM tasks).
    "t5-sim": _spec("t5-sim", 48, 32, 48, 4, 3, 300),
    "vit-sim": _spec("vit-sim", 32, 24, 32, 2, 2, 250, seed=5),
    # Tiny model for fast unit tests.
    "tiny-sim": _spec("tiny-sim", 32, 24, 16, 2, 2, 60),
}


def cache_dir() -> Path:
    """Directory holding trained checkpoints."""
    root = os.environ.get("REPRO_CACHE")
    if root:
        return Path(root)
    return Path(__file__).resolve().parents[3] / ".repro_cache"


def load_cached_state(path: Path) -> Optional[Dict[str, np.ndarray]]:
    """Read an ``.npz`` cache entry, quarantining damage.

    A corrupt file (truncated write, bit rot) makes ``np.load`` or the
    underlying zip layer raise; the damage is counted in telemetry,
    the file deleted, and ``None`` returned so the caller retrains and
    regenerates the entry instead of crashing every future run.
    """
    try:
        with np.load(path) as blob:
            return {key: blob[key] for key in blob.files}
    except Exception:
        telemetry.count("cache.corrupt")
        drop_cached_state(path)
        return None


def drop_cached_state(path: Path) -> None:
    """Delete a cache entry (damaged or stale); missing is fine."""
    try:
        path.unlink()
    except OSError:
        pass


def save_cached_state(path: Path, state: Dict[str, np.ndarray]) -> None:
    """Atomic cache write: a crash mid-save never leaves a torn file."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.stem}.tmp.{os.getpid()}.npz")
    np.savez_compressed(tmp, **state)
    os.replace(tmp, path)


def train_model(spec: ModelSpec, progress: bool = False) -> Tuple[GPT, SyntheticCorpus]:
    """Train a zoo model from scratch (no cache involvement)."""
    corpus = SyntheticCorpus(spec.corpus)
    model = GPT(spec.config, seed=spec.seed)
    optimizer = Adam(model.parameters(), lr=spec.lr)
    for step, (inputs, targets) in enumerate(
        corpus.batches(spec.batch_size, spec.train_steps, seed=spec.seed)
    ):
        loss = model.loss(inputs, targets)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        if progress and step % 50 == 0:
            print(f"[{spec.name}] step {step} loss {float(loss.data):.3f}")
    return model, corpus


def load_model(
    name: str, retrain: bool = False, progress: bool = False
) -> Tuple[GPT, SyntheticCorpus]:
    """Load a zoo model, training + caching it on first use."""
    try:
        spec = SPECS[name]
    except KeyError:
        raise ValueError(f"unknown model {name!r}; choose from {sorted(SPECS)}") from None
    path = cache_dir() / f"{name}.npz"
    corpus = SyntheticCorpus(spec.corpus)
    if path.exists() and not retrain:
        state = load_cached_state(path)
        if state is not None:
            model = GPT(spec.config, seed=spec.seed)
            try:
                model.load_state_dict(state)
                return model, corpus
            except Exception:
                # Parsed but inconsistent (e.g. stale keys after a spec
                # change): same treatment as byte-level damage.
                telemetry.count("cache.corrupt")
                drop_cached_state(path)
        telemetry.count("cache.regenerated")
    model, corpus = train_model(spec, progress=progress)
    save_cached_state(path, model.state_dict())
    return model, corpus


def parameter_bytes(name: str, precision_bits: int = 16) -> int:
    """Checkpoint size at the given precision (for hardware modelling)."""
    spec = SPECS[name]
    model = GPT(spec.config, seed=spec.seed)
    return model.num_parameters() * precision_bits // 8
