"""Synthetic tensors with the statistics the paper attributes to LLMs.

Section 3.1 names three properties that make video codecs effective on
LLM tensors:

- bell-shaped (near-normal) value distributions,
- *channel-wise* structure: each value's scale follows its channel, so
  a weight matrix viewed as an image shows edges and planar regions,
- sparse large outliers, orders of magnitude off the centre
  distribution (strongest in activations).

These generators produce tensors with exactly those properties, so the
codec-level experiments exercise the same code paths as checkpoints
from real training runs.
"""

from __future__ import annotations



import numpy as np


def _channel_profile(rng: np.random.Generator, width: int, smoothness: int) -> np.ndarray:
    """Smooth per-channel scale curve with occasional jumps (edges)."""
    raw = rng.normal(0.0, 1.0, width)
    kernel = np.ones(smoothness) / smoothness
    smooth = np.convolve(raw, kernel, mode="same")
    jumps = np.cumsum(rng.random(width) < 4.0 / width) * rng.normal(0.0, 0.6)
    profile = np.exp(0.5 * (smooth + 0.3 * jumps))
    return profile / profile.mean()


def weight_like(
    rows: int,
    cols: int,
    std: float = 0.02,
    outlier_fraction: float = 2e-4,
    outlier_scale: float = 8.0,
    mean_strength: float = 3.0,
    rank: int = 2,
    seed: int = 0,
) -> np.ndarray:
    """A weight matrix with the structure Figure 4 shows in LLaMA weights.

    Four ingredients: (1) channel-wise *mean* structure -- each column
    carries its own offset, constant down the column, which renders as
    the vertical stripes/edges intra prediction captures; (2) a weak
    low-rank component (trained weights are famously low-rank
    dominated); (3) smooth channel-wise scale structure; (4) sparse
    large outliers.
    """
    rng = np.random.default_rng(seed)
    col_scale = _channel_profile(rng, cols, smoothness=max(2, cols // 16))
    row_scale = _channel_profile(rng, rows, smoothness=max(2, rows // 8))
    base = rng.normal(0.0, std, (rows, cols))
    weights = base * col_scale[None, :] * np.sqrt(row_scale)[:, None]
    if mean_strength:
        col_mean = rng.normal(0.0, mean_strength * std, cols)
        weights += col_mean[None, :]
    for _ in range(rank):
        u = rng.normal(0.0, 1.0, rows)
        v = _channel_profile(rng, cols, smoothness=max(2, cols // 8)) - 1.0
        weights += (std * max(1.0, mean_strength) / max(1, rank)) * np.outer(
            np.tanh(u), v
        )
    n_outliers = max(0, int(round(outlier_fraction * rows * cols)))
    if n_outliers:
        idx = rng.choice(rows * cols, n_outliers, replace=False)
        flat = weights.reshape(-1)
        flat[idx] = rng.normal(0.0, std * outlier_scale, n_outliers)
    return weights.astype(np.float32)


def activation_like(
    tokens: int,
    channels: int,
    std: float = 1.0,
    outlier_channels: int = 4,
    outlier_scale: float = 20.0,
    seed: int = 0,
) -> np.ndarray:
    """Activations: per-channel scales with a few massive outlier channels.

    Matches the observation (SmoothQuant, QuaRot) that activation
    outliers concentrate in fixed channels, which is what makes naive
    low-bit activation quantization fail.
    """
    rng = np.random.default_rng(seed)
    channel_scale = _channel_profile(rng, channels, smoothness=max(2, channels // 16))
    acts = rng.normal(0.0, std, (tokens, channels)) * channel_scale[None, :]
    if outlier_channels:
        hot = rng.choice(channels, min(outlier_channels, channels), replace=False)
        acts[:, hot] *= outlier_scale
    return acts.astype(np.float32)


def gradient_like(
    rows: int,
    cols: int,
    std: float = 1e-3,
    range_spread: float = 1.0,
    seed: int = 0,
) -> np.ndarray:
    """Gradients: heavier-tailed, with per-dimension range variance.

    ``range_spread`` models training progress: the paper measures the
    per-dimension dynamic range growing from ~1 to ~3 orders of
    magnitude, which is what defeats the low-bit residual pass after
    step 2500.
    """
    rng = np.random.default_rng(seed)
    log_range = rng.normal(0.0, range_spread, cols)
    dim_scale = np.exp(log_range - log_range.mean())
    heavy = rng.standard_t(df=4, size=(rows, cols))
    return (std * heavy * dim_scale[None, :]).astype(np.float32)


def kv_cache_like(
    heads: int,
    tokens: int,
    head_dim: int,
    std: float = 0.5,
    seed: int = 0,
) -> np.ndarray:
    """KV-cache tensor: per-head scales, smooth along the token axis."""
    rng = np.random.default_rng(seed)
    head_scale = np.exp(rng.normal(0.0, 0.4, heads))
    base = rng.normal(0.0, std, (heads, tokens, head_dim))
    # Keys/values vary slowly along the sequence: add a token-axis drift.
    drift = np.cumsum(rng.normal(0.0, std / 8, (heads, tokens, head_dim)), axis=1)
    cache = (base + drift) * head_scale[:, None, None]
    return cache.astype(np.float32)


def layer_stack(
    num_layers: int,
    rows: int,
    cols: int,
    depth_scale: float = 0.15,
    seed: int = 0,
) -> np.ndarray:
    """A stack of per-layer weight matrices (layer index = frame axis).

    Layers share distribution family but not content, which is why the
    paper finds inter-frame (temporal) prediction useless for tensors.
    """
    layers = [
        weight_like(rows, cols, std=0.02 * (1.0 + depth_scale * i), seed=seed + i)
        for i in range(num_layers)
    ]
    return np.stack(layers)
