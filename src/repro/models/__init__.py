"""Model zoo: scaled-down stand-ins for the paper's evaluation models.

Real LLaMA / Pythia / T5 / ViT checkpoints are unavailable offline, so
:mod:`repro.models.zoo` trains small transformers from scratch on a
synthetic corpus (cached on disk), and
:mod:`repro.models.synthetic_weights` generates weight matrices with
the channel-wise + outlier statistics the paper identifies as the
reason video codecs compress LLM tensors well.
"""

from repro.models.synthetic_weights import (
    activation_like,
    gradient_like,
    kv_cache_like,
    weight_like,
)

__all__ = ["weight_like", "activation_like", "gradient_like", "kv_cache_like"]
