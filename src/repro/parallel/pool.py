"""Shared worker-pool engine behind every slice/tensor fan-out.

PR 2 made every frame an independently decodable slice (fresh entropy
coder + contexts per frame), which is exactly the bitstream property
real codecs exploit for slice/wavefront parallelism.  This module is
the cash-in: a single, small engine that the frame encoder, the frame
decoder, the tensor codec, and the checkpoint writer all use to fan
work out over a pool of workers while guaranteeing that the *result
ordering* -- and therefore every byte of output -- is identical to the
serial path.

Design rules:

- **Determinism first.**  :func:`parallel_map` always returns results
  in submission order, and falls back to a plain serial loop whenever
  parallelism cannot help (one item, one worker) or cannot be correct
  (the caller detects a cross-item dependency and passes
  ``serial=True``).  Callers never need to re-sort or re-derive state.
- **Pools are shared and lazy.**  Process pools cost real start-up
  time; one pool per (kind, worker-count) is created on first use and
  reused for the life of the process (``atexit`` tears them down).
- **Worker death is not the caller's problem.**  A crashed process
  (OOM-killed, segfaulted, ``SIGKILL``-ed) surfaces from the stdlib as
  ``BrokenProcessPool``; :func:`parallel_map` discards the dead pool
  and re-runs the batch serially, so a deterministic ``fn`` yields the
  identical result list a healthy pool would have.  Callers that run
  their own supervision (restart + re-dispatch, see
  :mod:`repro.serving.supervisor`) opt out with ``on_broken="raise"``.
- **Every dispatch is observable.**  ``parallel.*`` telemetry counters
  and a span wrap each fan-out, so a trace shows exactly which stages
  ran parallel and which fell back, and ``BENCH_codec.json`` numbers
  can be cross-checked against traces.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

import repro.telemetry as telemetry
from repro.resilience.deadline import Deadline, effective_timeout
from repro.telemetry.propagate import TracedTask, count_lost_deltas, merge_delta

__all__ = [
    "BrokenPoolError",
    "ParallelConfig",
    "WorkerTimeoutError",
    "discard_pool",
    "get_executor",
    "parallel_map",
    "pool_stats",
    "shutdown_pools",
    "warm_pool",
]

T = TypeVar("T")
R = TypeVar("R")

#: Executor kinds accepted by :class:`ParallelConfig`.
EXECUTORS = ("process", "thread", "serial")

#: The stdlib's "a worker died under the executor" family
#: (``BrokenProcessPool`` / ``BrokenThreadPool``), re-exported so
#: callers and supervisors need no ``concurrent.futures`` imports.
BrokenPoolError = BrokenExecutor


class WorkerTimeoutError(TimeoutError):
    """A dispatched item did not finish within its ``timeout_s``.

    The hung worker may still be running (a process-pool task cannot be
    preempted); the pool that owns it should be discarded via
    :func:`discard_pool` before re-dispatching, which supervision
    layers do automatically.
    """

    def __init__(self, message: str, index: int = -1) -> None:
        super().__init__(message)
        self.index = index  # submission-order index of the late item


@dataclass(frozen=True)
class ParallelConfig:
    """Knobs for one fan-out policy.

    Parameters
    ----------
    workers:
        Worker count; ``0`` resolves to ``os.cpu_count()``.  ``1``
        always means the serial path.
    executor:
        ``"process"`` (true parallelism; workers must receive picklable
        arguments), ``"thread"`` (cheap dispatch, parallel only where
        numpy releases the GIL), or ``"serial"`` (forced fallback --
        useful to pin a config while debugging).
    chunk_size:
        Items handed to a worker per dispatch (process pools only);
        larger chunks amortise pickling for many small items.
    """

    workers: int = 0
    executor: str = "process"
    chunk_size: int = 1

    def __post_init__(self) -> None:
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {self.executor!r}"
            )
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = cpu count)")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")

    def resolved_workers(self) -> int:
        """Concrete worker count (``workers=0`` -> CPU count)."""
        if self.workers == 0:
            return os.cpu_count() or 1
        return self.workers

    def is_serial(self) -> bool:
        """True when this config can never dispatch to a pool."""
        return self.executor == "serial" or self.resolved_workers() <= 1


#: Serial singleton: the fallback policy and the "parallelism off" value.
SERIAL = ParallelConfig(workers=1, executor="serial")

# One shared executor per (kind, workers); created lazily, torn down at
# interpreter exit.  Sharing matters: a ProcessPoolExecutor costs tens
# of milliseconds to spin up, which would otherwise be paid per encode.
_pools: dict = {}
_pool_dispatches = 0
_pool_serial_fallbacks = 0
_pool_breakages = 0


def _get_pool(kind: str, workers: int) -> Executor:
    key = (kind, workers)
    pool = _pools.get(key)
    if pool is None:
        if kind == "process":
            pool = ProcessPoolExecutor(max_workers=workers)
        else:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-parallel"
            )
        _pools[key] = pool
    return pool


def get_executor(config: ParallelConfig) -> Executor:
    """The shared live executor for ``config`` (created on first use).

    Supervision layers use this to submit individually-tracked futures
    instead of whole batches; the executor is the same one
    :func:`parallel_map` dispatches to, so pool reuse still holds.
    """
    if config.is_serial():
        raise ValueError("a serial ParallelConfig has no executor")
    return _get_pool(config.executor, config.resolved_workers())


def discard_pool(kind: str, workers: int) -> bool:
    """Drop (and shut down) one cached executor; True if it existed.

    The replacement is created lazily on the next dispatch.  Used after
    a pool breaks (worker crash) or goes unresponsive (hung worker):
    ``shutdown(wait=False)`` abandons rather than joins the wreckage,
    so a hung task cannot hang the supervisor too.
    """
    pool = _pools.pop((kind, workers), None)
    if pool is None:
        return False
    pool.shutdown(wait=False, cancel_futures=True)
    telemetry.count("parallel.pools_discarded")
    return True


def shutdown_pools() -> None:
    """Tear down every cached executor (also registered via ``atexit``)."""
    for pool in _pools.values():
        pool.shutdown(wait=True, cancel_futures=True)
    _pools.clear()


atexit.register(shutdown_pools)


def pool_stats() -> dict:
    """Introspection for tests/benchmarks: live pools and dispatch counts."""
    return {
        "live_pools": sorted(_pools.keys()),
        "dispatches": _pool_dispatches,
        "serial_fallbacks": _pool_serial_fallbacks,
        "breakages": _pool_breakages,
    }


def _noop() -> None:
    """Warm-up task: forces the executor to actually start a worker."""
    return None


# (kind, workers) keys whose workers have been started at least once.
_warmed: set = set()


def warm_pool(config: Optional[ParallelConfig]) -> bool:
    """Start ``config``'s workers ahead of the first real dispatch.

    Process workers cost tens of milliseconds each to fork and import;
    paying that inside the first timed fan-out makes "parallel" lose to
    serial on short batches.  This submits one no-op per worker and
    waits for all of them, so the pool is hot before real work arrives.
    Idempotent and cheap: a pool that is already warm (and still alive)
    is left alone.  Returns True when a warm-up was actually performed.

    The warmed pool is keyed by the config's *resolved* worker count; a
    later dispatch that clamps to fewer workers (fewer items than
    workers) creates its own pool lazily, which is fine -- that path
    only arises for small batches where warm-up never mattered.
    """
    if config is None or config.is_serial():
        return False
    key = (config.executor, config.resolved_workers())
    if key in _warmed and key in _pools:
        return False
    pool = _get_pool(*key)
    for future in [pool.submit(_noop) for _ in range(key[1])]:
        future.result()
    _warmed.add(key)
    telemetry.count("parallel.pool_warmups")
    return True


def _serial_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    deadline: Optional[Deadline] = None,
) -> List[R]:
    results: List[R] = []
    for item in items:
        if deadline is not None:
            deadline.check("parallel_map")
        results.append(fn(item))
    return results


def _mapped_with_timeout(
    pool: Executor,
    fn: Callable[[T], R],
    items: Sequence[T],
    timeout_s: Optional[float],
    deadline: Optional[Deadline],
    parent=None,
) -> List[R]:
    """Submit items individually and bound each wait.

    Per-item semantics: item *i*'s clock starts when the caller begins
    waiting on it, so a batch of N items on W workers gets roughly the
    same leniency a dedicated worker would -- a single hung worker
    still trips the bound.  Earlier items' exceptions surface first
    (futures are drained in submission order), matching the serial
    loop's contract.

    When ``parent`` (the dispatcher's registry) is given, ``fn`` is a
    :class:`TracedTask` and each drained result carries a telemetry
    delta, merged as it arrives; items never drained (timeout, earlier
    failure) are accounted as lost deltas.
    """
    futures = [pool.submit(fn, item) for item in items]
    results: List[R] = []
    under = parent.current_path() if parent is not None else ""
    try:
        for index, future in enumerate(futures):
            wait_s = effective_timeout(deadline, timeout_s)
            try:
                value = future.result(timeout=wait_s)
            except FuturesTimeoutError:
                telemetry.count("parallel.worker_timeouts")
                if deadline is not None and deadline.expired():
                    deadline.check("parallel_map")
                raise WorkerTimeoutError(
                    f"item {index} exceeded its {timeout_s}s timeout",
                    index=index,
                ) from None
            if parent is not None:
                merge_delta(parent, value.delta, under=under)
                value = value.result
            results.append(value)
    finally:
        for future in futures:
            future.cancel()
        count_lost_deltas(parent, len(items) - len(results))
    return results


def _drain(mapped, total: int, parent) -> List:
    """Collect mapped results, merging telemetry deltas as they arrive.

    ``parent is None`` means the batch ran unwrapped (telemetry off at
    dispatch): just drain.  Otherwise every item is a
    :class:`TracedOutcome`; merge its delta under the live span path
    and unwrap.  If draining raises (item exception, broken pool), the
    deltas of everything not yet drained are unrecoverable and are
    accounted in ``telemetry.worker_deltas_lost``.
    """
    if parent is None:
        return list(mapped)
    results: List = []
    under = parent.current_path()
    try:
        for outcome in mapped:
            merge_delta(parent, outcome.delta, under=under)
            results.append(outcome.result)
    finally:
        count_lost_deltas(parent, total - len(results))
    return results


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    config: Optional[ParallelConfig],
    label: str = "map",
    serial: bool = False,
    timeout_s: Optional[float] = None,
    deadline: Optional[Deadline] = None,
    on_broken: str = "serial",
) -> List[R]:
    """Apply ``fn`` to ``items``, preserving order, optionally in parallel.

    The contract callers rely on: the returned list is exactly
    ``[fn(x) for x in items]`` -- same order, same exceptions.  If any
    call raises, the exception of the *earliest* item surfaces (like
    the serial loop; later items may or may not have run).

    ``serial=True`` forces the fallback regardless of ``config``; pass
    it when the caller detects a cross-item dependency (e.g. inter
    prediction between frames) that makes fan-out incorrect.

    Fault handling:

    - ``timeout_s`` bounds each item's pool wait; a straggler raises
      :class:`WorkerTimeoutError` (pool paths only -- the serial loop
      cannot preempt ``fn``).
    - ``deadline`` is checked between serial items and caps every pool
      wait; expiry raises
      :class:`~repro.resilience.errors.DeadlineExceeded`.
    - A pool whose worker died mid-batch (``BrokenProcessPool``) is
      discarded; with ``on_broken="serial"`` (default) the *entire*
      batch re-runs serially -- ``fn`` must therefore be deterministic
      and idempotent, which every codec fan-out body is -- and with
      ``on_broken="raise"`` the :class:`BrokenPoolError` propagates for
      a supervisor to restart + re-dispatch itself.
    """
    global _pool_dispatches, _pool_serial_fallbacks, _pool_breakages
    if on_broken not in ("serial", "raise"):
        raise ValueError(f"on_broken must be 'serial' or 'raise', got {on_broken!r}")
    items = list(items)
    if (
        serial
        or config is None
        or config.is_serial()
        or len(items) <= 1
    ):
        if config is not None and not config.is_serial() and not serial:
            # A parallel policy that degenerated (single item).
            telemetry.count("parallel.single_item")
        _pool_serial_fallbacks += 1
        telemetry.count("parallel.serial_fallbacks")
        return _serial_map(fn, items, deadline)

    if deadline is not None:
        deadline.check("parallel_map")
    workers = min(config.resolved_workers(), len(items))
    _pool_dispatches += 1
    telemetry.count("parallel.dispatches")
    telemetry.count("parallel.tasks", len(items))
    telemetry.observe("parallel.workers", workers)
    with telemetry.span(f"parallel.{label}"):
        pool = _get_pool(config.executor, workers)
        # With telemetry live on the dispatching thread, wrap the body
        # so each worker (thread OR process) runs a child registry and
        # ships its delta back with the result; spans recorded inside
        # workers then land under this dispatch's span path instead of
        # vanishing into the worker's thread-local void.
        parent = telemetry.current()
        task: Callable = fn
        if parent is not None:
            task = TracedTask(fn, ctx=parent.trace_ctx, trace=parent.trace)
        try:
            if timeout_s is not None or deadline is not None:
                return _mapped_with_timeout(
                    pool, task, items, timeout_s, deadline, parent
                )
            if config.executor == "process":
                mapped = pool.map(task, items, chunksize=config.chunk_size)
            else:
                mapped = pool.map(task, items)
            # Draining happens in submission order; the first failing
            # item's exception propagates here, matching the serial loop.
            return _drain(mapped, len(items), parent)
        except BrokenPoolError:
            # A worker died (SIGKILL, OOM, segfault): the pool is
            # unusable and which items completed is unknowable.
            _pool_breakages += 1
            telemetry.count("parallel.broken_pools")
            discard_pool(config.executor, workers)
            if on_broken == "raise":
                raise
            telemetry.count("parallel.broken_pool_serial_reruns")
            return _serial_map(fn, items, deadline)
