"""Shared worker-pool engine behind every slice/tensor fan-out.

PR 2 made every frame an independently decodable slice (fresh entropy
coder + contexts per frame), which is exactly the bitstream property
real codecs exploit for slice/wavefront parallelism.  This module is
the cash-in: a single, small engine that the frame encoder, the frame
decoder, the tensor codec, and the checkpoint writer all use to fan
work out over a pool of workers while guaranteeing that the *result
ordering* -- and therefore every byte of output -- is identical to the
serial path.

Design rules:

- **Determinism first.**  :func:`parallel_map` always returns results
  in submission order, and falls back to a plain serial loop whenever
  parallelism cannot help (one item, one worker) or cannot be correct
  (the caller detects a cross-item dependency and passes
  ``serial=True``).  Callers never need to re-sort or re-derive state.
- **Pools are shared and lazy.**  Process pools cost real start-up
  time; one pool per (kind, worker-count) is created on first use and
  reused for the life of the process (``atexit`` tears them down).
- **Every dispatch is observable.**  ``parallel.*`` telemetry counters
  and a span wrap each fan-out, so a trace shows exactly which stages
  ran parallel and which fell back, and ``BENCH_codec.json`` numbers
  can be cross-checked against traces.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

import repro.telemetry as telemetry

__all__ = [
    "ParallelConfig",
    "parallel_map",
    "pool_stats",
    "shutdown_pools",
]

T = TypeVar("T")
R = TypeVar("R")

#: Executor kinds accepted by :class:`ParallelConfig`.
EXECUTORS = ("process", "thread", "serial")


@dataclass(frozen=True)
class ParallelConfig:
    """Knobs for one fan-out policy.

    Parameters
    ----------
    workers:
        Worker count; ``0`` resolves to ``os.cpu_count()``.  ``1``
        always means the serial path.
    executor:
        ``"process"`` (true parallelism; workers must receive picklable
        arguments), ``"thread"`` (cheap dispatch, parallel only where
        numpy releases the GIL), or ``"serial"`` (forced fallback --
        useful to pin a config while debugging).
    chunk_size:
        Items handed to a worker per dispatch (process pools only);
        larger chunks amortise pickling for many small items.
    """

    workers: int = 0
    executor: str = "process"
    chunk_size: int = 1

    def __post_init__(self) -> None:
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {self.executor!r}"
            )
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = cpu count)")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")

    def resolved_workers(self) -> int:
        """Concrete worker count (``workers=0`` -> CPU count)."""
        if self.workers == 0:
            return os.cpu_count() or 1
        return self.workers

    def is_serial(self) -> bool:
        """True when this config can never dispatch to a pool."""
        return self.executor == "serial" or self.resolved_workers() <= 1


#: Serial singleton: the fallback policy and the "parallelism off" value.
SERIAL = ParallelConfig(workers=1, executor="serial")

# One shared executor per (kind, workers); created lazily, torn down at
# interpreter exit.  Sharing matters: a ProcessPoolExecutor costs tens
# of milliseconds to spin up, which would otherwise be paid per encode.
_pools: dict = {}
_pool_dispatches = 0
_pool_serial_fallbacks = 0


def _get_pool(kind: str, workers: int) -> Executor:
    key = (kind, workers)
    pool = _pools.get(key)
    if pool is None:
        if kind == "process":
            pool = ProcessPoolExecutor(max_workers=workers)
        else:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-parallel"
            )
        _pools[key] = pool
    return pool


def shutdown_pools() -> None:
    """Tear down every cached executor (also registered via ``atexit``)."""
    for pool in _pools.values():
        pool.shutdown(wait=True, cancel_futures=True)
    _pools.clear()


atexit.register(shutdown_pools)


def pool_stats() -> dict:
    """Introspection for tests/benchmarks: live pools and dispatch counts."""
    return {
        "live_pools": sorted(_pools.keys()),
        "dispatches": _pool_dispatches,
        "serial_fallbacks": _pool_serial_fallbacks,
    }


def _serial_map(fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
    return [fn(item) for item in items]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    config: Optional[ParallelConfig],
    label: str = "map",
    serial: bool = False,
) -> List[R]:
    """Apply ``fn`` to ``items``, preserving order, optionally in parallel.

    The contract callers rely on: the returned list is exactly
    ``[fn(x) for x in items]`` -- same order, same exceptions.  If any
    call raises, the exception of the *earliest* item surfaces (like
    the serial loop; later items may or may not have run).

    ``serial=True`` forces the fallback regardless of ``config``; pass
    it when the caller detects a cross-item dependency (e.g. inter
    prediction between frames) that makes fan-out incorrect.
    """
    global _pool_dispatches, _pool_serial_fallbacks
    items = list(items)
    if (
        serial
        or config is None
        or config.is_serial()
        or len(items) <= 1
    ):
        if config is not None and not config.is_serial() and not serial:
            # A parallel policy that degenerated (single item).
            telemetry.count("parallel.single_item")
        _pool_serial_fallbacks += 1
        telemetry.count("parallel.serial_fallbacks")
        return _serial_map(fn, items)

    workers = min(config.resolved_workers(), len(items))
    _pool_dispatches += 1
    telemetry.count("parallel.dispatches")
    telemetry.count("parallel.tasks", len(items))
    telemetry.observe("parallel.workers", workers)
    with telemetry.span(f"parallel.{label}"):
        pool = _get_pool(config.executor, workers)
        if config.executor == "process":
            results = pool.map(fn, items, chunksize=config.chunk_size)
        else:
            results = pool.map(fn, items)
        # list() drains in submission order; the first failing item's
        # exception propagates here, matching the serial loop.
        return list(results)
