"""repro.parallel: the slice/tensor fan-out engine.

One shared pool abstraction (:class:`ParallelConfig`,
:func:`parallel_map`) used by the frame encoder and decoder
(slice-parallel coding), the tensor codec (per-tensor fan-out), and
the checkpoint writer.  Parallel output is guaranteed byte-identical
to the serial path; see ``docs/PERFORMANCE.md``.
"""

from repro.parallel.pool import (
    EXECUTORS,
    SERIAL,
    BrokenPoolError,
    ParallelConfig,
    WorkerTimeoutError,
    discard_pool,
    get_executor,
    parallel_map,
    pool_stats,
    shutdown_pools,
    warm_pool,
)

__all__ = [
    "EXECUTORS",
    "SERIAL",
    "BrokenPoolError",
    "ParallelConfig",
    "WorkerTimeoutError",
    "discard_pool",
    "get_executor",
    "parallel_map",
    "pool_stats",
    "shutdown_pools",
    "warm_pool",
]
