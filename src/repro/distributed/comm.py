"""Communication channels and tensor compressors with bit accounting.

A :class:`Channel` models one inter-GPU link: ``send`` runs the
attached compressor and returns what the *receiver* reconstructs, while
tallying raw vs compressed traffic.  Compressors implement
``compress(tensor, step) -> (restored, bits_per_value)``.

With a :class:`~repro.resilience.faults.FaultInjector` attached, the
channel becomes a *self-healing* link: the payload crosses the wire as
CRC32-framed chunks, the receiver verifies every chunk, and damaged or
dropped transmissions are retransmitted under a bounded
exponential-backoff :class:`~repro.resilience.faults.RetryPolicy`.
Retransmitted bytes are charged to the traffic ledger (they are real
traffic), and exhausting the retry budget raises
:class:`~repro.resilience.errors.TransportError` -- which higher layers
(data-parallel skip-and-compensate, pipeline slow-path) degrade around.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Tuple

import numpy as np

import repro.telemetry as telemetry
from repro.parallel import ParallelConfig
from repro.quant.rtn import rtn_roundtrip
from repro.resilience.errors import CorruptStreamError, TransportError
from repro.resilience.faults import FaultInjector, RetryPolicy
from repro.resilience.framing import deframe_payload, frame_payload
from repro.tensor.codec import TensorCodec
from repro.tensor.residual import ResidualGradientCompressor


class Compressor(Protocol):
    """Lossy (or identity) transform standing in for encode+transmit+decode."""

    def compress(self, tensor: np.ndarray, step: int) -> Tuple[np.ndarray, float]:
        """Return (receiver-side tensor, bits communicated per value)."""
        ...


class IdentityCompressor:
    """Uncompressed FP16 transmission (the paper's baseline)."""

    def __init__(self, bits: float = 16.0) -> None:
        self.bits = bits

    def compress(self, tensor: np.ndarray, step: int) -> Tuple[np.ndarray, float]:
        return tensor, self.bits


class RTNCompressor:
    """Group-wise RTN quantized transmission."""

    def __init__(self, bits: int, group_size: int = 128, symmetric: bool = True) -> None:
        self.bits = bits
        self.group_size = group_size
        self.symmetric = symmetric

    def compress(self, tensor: np.ndarray, step: int) -> Tuple[np.ndarray, float]:
        restored = rtn_roundtrip(
            tensor, self.bits, symmetric=self.symmetric, group_size=self.group_size
        )
        overhead = 16.0 * (2 if not self.symmetric else 1) / self.group_size
        return restored, self.bits + overhead


class CodecCompressor:
    """LLM.265 transmission: video-codec compress, send, decompress.

    The fractional bitrate search is expensive, so the QP found on the
    first call (per tensor shape) is reused and refreshed every
    ``refresh_every`` steps -- mirroring how a deployment would pin
    NVENC rate-control state between identical-shape tensors.
    """

    def __init__(
        self,
        bits_per_value: float = 3.5,
        codec: Optional[TensorCodec] = None,
        refresh_every: int = 50,
        parallel: Optional[ParallelConfig] = None,
    ) -> None:
        self.codec = codec or TensorCodec(tile=128, parallel=parallel)
        self.bits_per_value = bits_per_value
        self.refresh_every = refresh_every
        self._qp_cache: Dict[Tuple[int, ...], Tuple[float, int]] = {}

    def compress(self, tensor: np.ndarray, step: int) -> Tuple[np.ndarray, float]:
        key = tuple(np.asarray(tensor).shape)
        cached = self._qp_cache.get(key)
        compressed = None
        if cached is not None and step - cached[1] < self.refresh_every:
            compressed = self.codec.encode(tensor, qp=cached[0])
            # Tensor statistics drift during training; re-search when the
            # pinned QP misses the budget by more than ~25%.
            if not (
                0.6 * self.bits_per_value
                <= compressed.bits_per_value
                <= 1.25 * self.bits_per_value
            ):
                compressed = None
        if compressed is None:
            compressed = self.codec.encode(tensor, bits_per_value=self.bits_per_value)
            self._qp_cache[key] = (compressed.qp, step)
        return self.codec.decode(compressed), compressed.bits_per_value


class ErrorFeedbackCompressor:
    """Error feedback around any lossy compressor (extension).

    The compression error of step ``t`` is added back to the tensor at
    step ``t+1`` (the memory mechanism of 1-bit Adam / EF-SGD), which
    turns a biased low-bit compressor into an unbiased-in-the-limit
    one.  Not part of the paper's LLM.265 recipe -- included as the
    natural upgrade path for very low bit budgets.
    """

    def __init__(self, inner: Compressor) -> None:
        self.inner = inner
        self._error: Dict[Tuple[int, ...], np.ndarray] = {}

    def compress(self, tensor: np.ndarray, step: int) -> Tuple[np.ndarray, float]:
        tensor = np.asarray(tensor, dtype=np.float64)
        key = tuple(tensor.shape)
        carried = self._error.get(key)
        adjusted = tensor + carried if carried is not None else tensor
        restored, bits = self.inner.compress(adjusted, step)
        self._error[key] = adjusted - restored
        return restored, bits


class ResidualCompressor:
    """LLM.265 + residual compensation for gradients (Section 5.1)."""

    def __init__(self, inner: Optional[ResidualGradientCompressor] = None) -> None:
        self.inner = inner or ResidualGradientCompressor()

    def compress(self, tensor: np.ndarray, step: int) -> Tuple[np.ndarray, float]:
        restored = self.inner.compress(tensor, step)
        return restored, self.inner.history[-1].total_bits


@dataclass
class TrafficRecord:
    """One transmission's bookkeeping.

    The resilience fields default to the fault-free values, so ledgers
    from reliable links are byte-for-byte what they always were; only
    an injected fault makes ``retries``/``retransmitted_bytes``
    nonzero.
    """

    tag: str
    step: int
    num_values: int
    bits_per_value: float
    retries: int = 0
    retransmitted_bytes: float = 0.0
    backoff_s: float = 0.0  # simulated retry backoff (not slept)
    delay_s: float = 0.0  # simulated straggler delay
    delivered: bool = True  # False when retries ran out (TransportError)

    @property
    def compressed_bytes(self) -> float:
        return self.num_values * self.bits_per_value / 8.0 + self.retransmitted_bytes

    @property
    def raw_bytes(self) -> float:
        return self.num_values * 2.0  # FP16 reference


@dataclass
class Channel:
    """One simulated link with an optional compressor.

    ``fault_injector`` switches on the verify-and-retransmit wire
    protocol; without one, ``send`` is the original reliable fast path.
    """

    compressor: Optional[Compressor] = None
    records: List[TrafficRecord] = field(default_factory=list)
    fault_injector: Optional[FaultInjector] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    wire_chunk_bytes: int = 4096

    def send(self, tensor: np.ndarray, step: int = 0, tag: str = "") -> np.ndarray:
        """Transmit; returns the receiver-side tensor.

        Raises :class:`TransportError` when a fault injector is
        attached and the bounded retries are exhausted; the failed
        attempt still appears in the ledger (``delivered=False``) --
        those bytes crossed the wire even though they never arrived.
        """
        tensor = np.asarray(tensor, dtype=np.float64)
        if self.compressor is None:
            restored, bits = tensor, 16.0
        else:
            restored, bits = self.compressor.compress(tensor, step)
        record = TrafficRecord(
            tag=tag, step=step, num_values=tensor.size, bits_per_value=bits
        )
        registry = telemetry.current()
        try:
            if self.fault_injector is not None:
                restored = self._transmit(restored, record, registry)
        finally:
            self.records.append(record)
            if registry is not None:
                registry.count("comm.sends")
                registry.count("comm.bytes_raw", tensor.size * 2.0)
                registry.count("comm.bytes_compressed", record.compressed_bytes)
                registry.observe("comm.bits_per_value", bits)
        return restored

    # -- self-healing wire protocol ------------------------------------

    def _wire_pack(self, tensor: np.ndarray) -> bytes:
        """Receiver-bound bytes: self-describing header + CRC framing."""
        header = struct.pack(f"<B{tensor.ndim}I", tensor.ndim, *tensor.shape)
        return frame_payload(header + tensor.tobytes(), self.wire_chunk_bytes)

    @staticmethod
    def _wire_unpack(body: bytes) -> np.ndarray:
        ndim = body[0]
        shape = struct.unpack_from(f"<{ndim}I", body, 1) if ndim else ()
        offset = 1 + 4 * ndim
        return np.frombuffer(body[offset:], dtype=np.float64).reshape(shape).copy()

    def _transmit(
        self, tensor: np.ndarray, record: TrafficRecord, registry
    ) -> np.ndarray:
        """Verify-and-retransmit loop over the faulty wire."""
        injector = self.fault_injector
        wire = self._wire_pack(tensor)
        # Retransmissions are charged at the *compressed* rate the
        # ledger accounts in, so totals stay in one unit system.
        attempt_bytes = record.num_values * record.bits_per_value / 8.0
        record.delay_s += injector.straggler_delay()
        for attempt in range(self.retry.max_retries + 1):
            if attempt:
                record.retries += 1
                record.retransmitted_bytes += attempt_bytes
                backoff = self.retry.backoff_s(attempt)
                record.backoff_s += backoff
                if registry is not None:
                    registry.count("comm.retransmits")
                    registry.count("comm.retransmitted_bytes", attempt_bytes)
                    registry.count("comm.backoff_seconds", backoff)
            received = injector.corrupt(wire)
            if received is None:
                if registry is not None:
                    registry.count("comm.drops")
                continue
            try:
                body = deframe_payload(received)
            except CorruptStreamError:
                if registry is not None:
                    registry.count("comm.crc_failures")
                continue
            return self._wire_unpack(body)
        record.delivered = False
        if registry is not None:
            registry.count("comm.unrecoverable")
        raise TransportError(
            f"link lost {record.tag or 'payload'!r} at step {record.step} "
            f"after {self.retry.max_retries + 1} attempts"
        )

    @property
    def total_raw_bytes(self) -> float:
        return sum(r.raw_bytes for r in self.records)

    @property
    def total_compressed_bytes(self) -> float:
        return sum(r.compressed_bytes for r in self.records)

    @property
    def total_retransmitted_bytes(self) -> float:
        return sum(r.retransmitted_bytes for r in self.records)

    @property
    def total_retries(self) -> int:
        return sum(r.retries for r in self.records)

    @property
    def average_bits_per_value(self) -> float:
        total_values = sum(r.num_values for r in self.records)
        if not total_values:
            return 0.0
        total_bits = sum(r.num_values * r.bits_per_value for r in self.records)
        return total_bits / total_values

    @property
    def compression_ratio(self) -> float:
        compressed = self.total_compressed_bytes
        return self.total_raw_bytes / compressed if compressed else 1.0
