"""Communication channels and tensor compressors with bit accounting.

A :class:`Channel` models one inter-GPU link: ``send`` runs the
attached compressor and returns what the *receiver* reconstructs, while
tallying raw vs compressed traffic.  Compressors implement
``compress(tensor, step) -> (restored, bits_per_value)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Tuple

import numpy as np

import repro.telemetry as telemetry
from repro.quant.rtn import rtn_roundtrip
from repro.tensor.codec import TensorCodec
from repro.tensor.residual import ResidualGradientCompressor


class Compressor(Protocol):
    """Lossy (or identity) transform standing in for encode+transmit+decode."""

    def compress(self, tensor: np.ndarray, step: int) -> Tuple[np.ndarray, float]:
        """Return (receiver-side tensor, bits communicated per value)."""
        ...


class IdentityCompressor:
    """Uncompressed FP16 transmission (the paper's baseline)."""

    def __init__(self, bits: float = 16.0) -> None:
        self.bits = bits

    def compress(self, tensor: np.ndarray, step: int) -> Tuple[np.ndarray, float]:
        return tensor, self.bits


class RTNCompressor:
    """Group-wise RTN quantized transmission."""

    def __init__(self, bits: int, group_size: int = 128, symmetric: bool = True) -> None:
        self.bits = bits
        self.group_size = group_size
        self.symmetric = symmetric

    def compress(self, tensor: np.ndarray, step: int) -> Tuple[np.ndarray, float]:
        restored = rtn_roundtrip(
            tensor, self.bits, symmetric=self.symmetric, group_size=self.group_size
        )
        overhead = 16.0 * (2 if not self.symmetric else 1) / self.group_size
        return restored, self.bits + overhead


class CodecCompressor:
    """LLM.265 transmission: video-codec compress, send, decompress.

    The fractional bitrate search is expensive, so the QP found on the
    first call (per tensor shape) is reused and refreshed every
    ``refresh_every`` steps -- mirroring how a deployment would pin
    NVENC rate-control state between identical-shape tensors.
    """

    def __init__(
        self,
        bits_per_value: float = 3.5,
        codec: Optional[TensorCodec] = None,
        refresh_every: int = 50,
    ) -> None:
        self.codec = codec or TensorCodec(tile=128)
        self.bits_per_value = bits_per_value
        self.refresh_every = refresh_every
        self._qp_cache: Dict[Tuple[int, ...], Tuple[float, int]] = {}

    def compress(self, tensor: np.ndarray, step: int) -> Tuple[np.ndarray, float]:
        key = tuple(np.asarray(tensor).shape)
        cached = self._qp_cache.get(key)
        compressed = None
        if cached is not None and step - cached[1] < self.refresh_every:
            compressed = self.codec.encode(tensor, qp=cached[0])
            # Tensor statistics drift during training; re-search when the
            # pinned QP misses the budget by more than ~25%.
            if not (
                0.6 * self.bits_per_value
                <= compressed.bits_per_value
                <= 1.25 * self.bits_per_value
            ):
                compressed = None
        if compressed is None:
            compressed = self.codec.encode(tensor, bits_per_value=self.bits_per_value)
            self._qp_cache[key] = (compressed.qp, step)
        return self.codec.decode(compressed), compressed.bits_per_value


class ErrorFeedbackCompressor:
    """Error feedback around any lossy compressor (extension).

    The compression error of step ``t`` is added back to the tensor at
    step ``t+1`` (the memory mechanism of 1-bit Adam / EF-SGD), which
    turns a biased low-bit compressor into an unbiased-in-the-limit
    one.  Not part of the paper's LLM.265 recipe -- included as the
    natural upgrade path for very low bit budgets.
    """

    def __init__(self, inner: Compressor) -> None:
        self.inner = inner
        self._error: Dict[Tuple[int, ...], np.ndarray] = {}

    def compress(self, tensor: np.ndarray, step: int) -> Tuple[np.ndarray, float]:
        tensor = np.asarray(tensor, dtype=np.float64)
        key = tuple(tensor.shape)
        carried = self._error.get(key)
        adjusted = tensor + carried if carried is not None else tensor
        restored, bits = self.inner.compress(adjusted, step)
        self._error[key] = adjusted - restored
        return restored, bits


class ResidualCompressor:
    """LLM.265 + residual compensation for gradients (Section 5.1)."""

    def __init__(self, inner: Optional[ResidualGradientCompressor] = None) -> None:
        self.inner = inner or ResidualGradientCompressor()

    def compress(self, tensor: np.ndarray, step: int) -> Tuple[np.ndarray, float]:
        restored = self.inner.compress(tensor, step)
        return restored, self.inner.history[-1].total_bits


@dataclass
class TrafficRecord:
    """One transmission's bookkeeping."""

    tag: str
    step: int
    num_values: int
    bits_per_value: float

    @property
    def compressed_bytes(self) -> float:
        return self.num_values * self.bits_per_value / 8.0

    @property
    def raw_bytes(self) -> float:
        return self.num_values * 2.0  # FP16 reference


@dataclass
class Channel:
    """One simulated link with an optional compressor."""

    compressor: Optional[Compressor] = None
    records: List[TrafficRecord] = field(default_factory=list)

    def send(self, tensor: np.ndarray, step: int = 0, tag: str = "") -> np.ndarray:
        """Transmit; returns the receiver-side tensor."""
        tensor = np.asarray(tensor, dtype=np.float64)
        if self.compressor is None:
            restored, bits = tensor, 16.0
        else:
            restored, bits = self.compressor.compress(tensor, step)
        self.records.append(
            TrafficRecord(tag=tag, step=step, num_values=tensor.size, bits_per_value=bits)
        )
        registry = telemetry.current()
        if registry is not None:
            registry.count("comm.sends")
            registry.count("comm.bytes_raw", tensor.size * 2.0)
            registry.count("comm.bytes_compressed", tensor.size * bits / 8.0)
            registry.observe("comm.bits_per_value", bits)
        return restored

    @property
    def total_raw_bytes(self) -> float:
        return sum(r.raw_bytes for r in self.records)

    @property
    def total_compressed_bytes(self) -> float:
        return sum(r.compressed_bytes for r in self.records)

    @property
    def average_bits_per_value(self) -> float:
        total_values = sum(r.num_values for r in self.records)
        if not total_values:
            return 0.0
        total_bits = sum(r.num_values * r.bits_per_value for r in self.records)
        return total_bits / total_values

    @property
    def compression_ratio(self) -> float:
        compressed = self.total_compressed_bytes
        return self.total_raw_bytes / compressed if compressed else 1.0
