"""Distributed-training simulation with byte-accurate communication.

Single-process stand-ins for the paper's 4-GPU testbeds:

- :mod:`repro.distributed.comm` -- channels + compressors (identity,
  RTN, LLM.265, residual-compensated) with bit accounting,
- :mod:`repro.distributed.pipeline` -- GPipe-style pipeline parallelism
  with activation and activation-gradient compression (Section 5.1),
- :mod:`repro.distributed.dataparallel` -- data parallelism with
  weight-gradient compression (Section 5.2).
"""

from repro.distributed.comm import (
    Channel,
    CodecCompressor,
    ErrorFeedbackCompressor,
    IdentityCompressor,
    ResidualCompressor,
    RTNCompressor,
)
from repro.distributed.allreduce import AllReduceResult, ring_allreduce
from repro.distributed.dataparallel import DataParallelTrainer
from repro.distributed.pipeline import PipelineParallelTrainer

__all__ = [
    "Channel",
    "IdentityCompressor",
    "RTNCompressor",
    "CodecCompressor",
    "ResidualCompressor",
    "ErrorFeedbackCompressor",
    "PipelineParallelTrainer",
    "DataParallelTrainer",
    "ring_allreduce",
    "AllReduceResult",
]
