"""Pipeline-parallel training with compressed stage-boundary traffic.

Reproduces the Section 5.1 setup: the transformer's blocks are split
across ``num_stages`` simulated devices; activations flow forward and
activation gradients flow backward through :class:`Channel` objects, so
any compressor (LLM.265, RTN, residual-compensated) can sit on either
direction.  Micro-batching follows GPipe (all forwards, then all
backwards, gradient accumulation across micro-batches).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

import repro.telemetry as telemetry
from repro.distributed.comm import Channel, TrafficRecord
from repro.nn import autograd
from repro.nn.autograd import Tensor
from repro.nn.optim import Adam
from repro.nn.transformer import GPT
from repro.resilience.errors import TransportError


@dataclass
class StepStats:
    """Loss + traffic for one optimizer step."""

    step: int
    loss: float
    activation_bytes: float
    gradient_bytes: float


class PipelineParallelTrainer:
    """GPipe-style trainer over a stage-partitioned GPT."""

    def __init__(
        self,
        model: GPT,
        num_stages: int,
        activation_channel: Optional[Channel] = None,
        gradient_channel: Optional[Channel] = None,
        lr: float = 3e-3,
        micro_batches: int = 2,
    ) -> None:
        if num_stages < 2:
            raise ValueError("pipeline parallelism needs at least two stages")
        if len(model.blocks) < num_stages:
            raise ValueError("more stages than transformer blocks")
        self.model = model
        self.num_stages = num_stages
        self.activation_channel = activation_channel or Channel()
        self.gradient_channel = gradient_channel or Channel()
        self.optimizer = Adam(model.parameters(), lr=lr)
        self.micro_batches = micro_batches
        self.step_count = 0
        self.history: List[StepStats] = []
        self.slowpath_sends = 0
        # Assign blocks to stages as evenly as possible.
        per_stage = len(model.blocks) // num_stages
        extra = len(model.blocks) % num_stages
        self._stage_blocks: List[List] = []
        cursor = 0
        for stage in range(num_stages):
            take = per_stage + (1 if stage < extra else 0)
            self._stage_blocks.append(model.blocks[cursor : cursor + take])
            cursor += take

    # -- stage execution -----------------------------------------------------

    def _stage_forward(self, stage: int, x: Tensor, tokens: np.ndarray) -> Tensor:
        model = self.model
        if stage == 0:
            batch, seq = tokens.shape
            positions = np.broadcast_to(np.arange(seq), (batch, seq))
            x = model.tok_emb(tokens) + model.pos_emb(positions)
        for block in self._stage_blocks[stage]:
            x = block(x)
        return x

    def _last_stage_loss(self, x: Tensor, targets: np.ndarray) -> Tensor:
        logits = self.model.head(self.model.ln_f(x))
        return autograd.cross_entropy(logits, targets)

    def _send(
        self, channel: Channel, tensor: np.ndarray, tag: str
    ) -> np.ndarray:
        """Send over ``channel``; fall back to a reliable slow path.

        A stage boundary cannot skip-and-compensate -- the next stage
        needs *some* activation to run at all.  When the self-healing
        channel gives up (:class:`TransportError`), the send is
        repeated uncompressed over a reliable path, charged at the
        16-bit reference rate.
        """
        try:
            return channel.send(tensor, step=self.step_count, tag=tag)
        except TransportError:
            self.slowpath_sends += 1
            telemetry.count("pipeline.slowpath_sends")
            channel.records.append(
                TrafficRecord(
                    tag=f"{tag}-slowpath",
                    step=self.step_count,
                    num_values=int(np.asarray(tensor).size),
                    bits_per_value=16.0,
                )
            )
            return np.asarray(tensor, dtype=np.float64)

    # -- training --------------------------------------------------------------

    def train_step(self, tokens: np.ndarray, targets: np.ndarray) -> float:
        """One optimizer step over ``micro_batches`` splits of the batch."""
        tokens = np.asarray(tokens)
        targets = np.asarray(targets)
        token_shards = np.array_split(tokens, self.micro_batches)
        target_shards = np.array_split(targets, self.micro_batches)

        self.optimizer.zero_grad()
        total_loss = 0.0
        act_bytes_before = self.activation_channel.total_compressed_bytes
        grad_bytes_before = self.gradient_channel.total_compressed_bytes

        for shard_tokens, shard_targets in zip(token_shards, target_shards):
            if shard_tokens.size == 0:
                continue
            # Forward through the pipeline; record boundary tensors.
            boundary_inputs: List[Tensor] = []
            boundary_outputs: List[Tensor] = []
            x: Optional[Tensor] = None
            for stage in range(self.num_stages):
                out = self._stage_forward(stage, x, shard_tokens)
                if stage < self.num_stages - 1:
                    received = self._send(
                        self.activation_channel, out.data, f"act-s{stage}"
                    )
                    boundary_outputs.append(out)
                    x = Tensor(received, requires_grad=True)
                    boundary_inputs.append(x)
                else:
                    loss = self._last_stage_loss(out, shard_targets)
            total_loss += float(loss.data)

            # Backward, stage by stage, sending activation gradients.
            loss.backward(np.array(1.0 / len(token_shards)))
            for stage in range(self.num_stages - 2, -1, -1):
                grad = boundary_inputs[stage].grad
                received = self._send(
                    self.gradient_channel, grad, f"grad-s{stage}"
                )
                boundary_outputs[stage].backward(received)

        self.optimizer.step()
        stats = StepStats(
            step=self.step_count,
            loss=total_loss / self.micro_batches,
            activation_bytes=self.activation_channel.total_compressed_bytes
            - act_bytes_before,
            gradient_bytes=self.gradient_channel.total_compressed_bytes
            - grad_bytes_before,
        )
        self.history.append(stats)
        self.step_count += 1
        return stats.loss

    def train(
        self,
        batches,
        steps: int,
        eval_fn: Optional[Callable[[GPT], float]] = None,
        eval_every: int = 0,
    ) -> List[StepStats]:
        """Run ``steps`` optimizer steps from a batch iterator."""
        evals = []
        for step, (tokens, targets) in enumerate(batches):
            if step >= steps:
                break
            self.train_step(tokens, targets)
            if eval_fn and eval_every and (step + 1) % eval_every == 0:
                evals.append(eval_fn(self.model))
        return self.history
