"""Data-parallel training with compressed weight-gradient exchange.

Reproduces the Section 5.2 setup: ``num_workers`` replicas share one
set of weights; each step every replica computes gradients on its own
shard, the gradients cross a :class:`Channel` (compressed by LLM.265 /
RTN / nothing), and the averaged result feeds a standard Adam -- or the
1-bit Adam / 1-bit LAMB optimizers, which own their communication.

To keep the codec path fast, 2-D weight gradients are fused into one
flat bucket per worker before compression (NCCL-style bucket fusion);
1-D parameters (biases, norms) travel uncompressed, as real systems do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

import repro.telemetry as telemetry
from repro.distributed.comm import Channel, TrafficRecord
from repro.nn.optim import Adam
from repro.nn.optim.onebit import _OneBitBase
from repro.nn.transformer import GPT
from repro.resilience.errors import TransportError
from repro.resilience.faults import FaultInjector


@dataclass
class DPStepStats:
    """Loss + traffic for one data-parallel step."""

    step: int
    loss: float
    gradient_bytes: float
    workers_participating: int = 0
    buckets_lost: int = 0


def _bucket_shape(size: int, width: int = 128) -> Tuple[int, int]:
    """2-D shape for the fused gradient bucket (pad to a multiple)."""
    rows = (size + width - 1) // width
    return rows, width


class DataParallelTrainer:
    """Single-process simulation of R-replica data parallelism.

    With a :class:`FaultInjector` the trainer degrades instead of
    dying: a crashed worker sits the step out (the average runs over
    survivors), and a gradient bucket the self-healing channel still
    could not deliver is *skipped and compensated* -- the lost bucket
    is carried in a per-worker residual and added to that worker's next
    contribution, so no gradient signal is permanently lost (the
    error-feedback trick applied to transport failures).
    """

    def __init__(
        self,
        model: GPT,
        num_workers: int,
        gradient_channel: Optional[Channel] = None,
        optimizer=None,
        lr: float = 3e-3,
        bucket_width: int = 128,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.model = model
        self.num_workers = num_workers
        self.gradient_channel = gradient_channel or Channel()
        if fault_injector is not None:
            self.gradient_channel.fault_injector = fault_injector
        self.fault_injector = self.gradient_channel.fault_injector
        #: Skip-and-compensate residuals: lost bucket per worker, added
        #: to that worker's next transmitted bucket.
        self._transport_residual: Dict[int, np.ndarray] = {}
        self.bucket_width = bucket_width
        self.params = model.parameters()
        self._compressible = [p.data.ndim >= 2 for p in self.params]
        if optimizer is None:
            optimizer = Adam(self.params, lr=lr)
        self.optimizer = optimizer
        self._onebit = isinstance(optimizer, _OneBitBase)
        self.step_count = 0
        self.history: List[DPStepStats] = []

    # -- gradient plumbing ---------------------------------------------------

    def _worker_gradients(self, tokens: np.ndarray, targets: np.ndarray) -> List[np.ndarray]:
        """Gradients for one worker's shard (list per parameter)."""
        loss = self.model.loss(tokens, targets)
        self.model.zero_grad()
        loss.backward()
        self._last_loss = float(loss.data)
        return [
            p.grad.copy() if p.grad is not None else np.zeros_like(p.data)
            for p in self.params
        ]

    def _fuse(self, grads: Sequence[np.ndarray]) -> np.ndarray:
        chunks = [
            g.reshape(-1) for g, c in zip(grads, self._compressible) if c
        ]
        flat = np.concatenate(chunks) if chunks else np.zeros(0)
        rows, width = _bucket_shape(flat.size, self.bucket_width)
        padded = np.zeros(rows * width)
        padded[: flat.size] = flat
        return padded.reshape(rows, width)

    def _unfuse(self, bucket: np.ndarray, grads: Sequence[np.ndarray]) -> List[np.ndarray]:
        flat = bucket.reshape(-1)
        out: List[np.ndarray] = []
        cursor = 0
        for grad, compressible in zip(grads, self._compressible):
            if compressible:
                out.append(flat[cursor : cursor + grad.size].reshape(grad.shape))
                cursor += grad.size
            else:
                out.append(grad)
        return out

    # -- training -----------------------------------------------------------------

    def train_step(self, tokens: np.ndarray, targets: np.ndarray) -> float:
        """One step: shard the batch, exchange gradients, update."""
        tokens = np.asarray(tokens)
        targets = np.asarray(targets)
        token_shards = np.array_split(tokens, self.num_workers)
        target_shards = np.array_split(targets, self.num_workers)

        bytes_before = self.gradient_channel.total_compressed_bytes
        worker_grads: List[List[np.ndarray]] = []
        losses: List[float] = []
        buckets_lost = 0
        for worker, (shard_tokens, shard_targets) in enumerate(
            zip(token_shards, target_shards)
        ):
            if self.fault_injector is not None and self.fault_injector.worker_crashes(
                self.step_count, worker
            ):
                telemetry.count("dp.worker_crashes")
                continue  # crashed worker sits this step out
            grads = self._worker_gradients(shard_tokens, shard_targets)
            losses.append(self._last_loss)
            if not self._onebit:
                bucket = self._fuse(grads)
                residual = self._transport_residual.pop(worker, None)
                if residual is not None and residual.shape == bucket.shape:
                    bucket = bucket + residual
                try:
                    received = self.gradient_channel.send(
                        bucket, step=self.step_count, tag="wgrad"
                    )
                except TransportError:
                    # Skip-and-compensate: the bucket never arrived, so
                    # this worker contributes nothing now and carries
                    # the lost gradient into its next step.
                    self._transport_residual[worker] = bucket
                    buckets_lost += 1
                    telemetry.count("dp.buckets_lost")
                    received = np.zeros_like(bucket)
                grads = self._unfuse(received, grads)
            worker_grads.append(grads)

        if not worker_grads:
            # Every worker crashed; no update this step.
            stats = DPStepStats(
                step=self.step_count,
                loss=float("nan"),
                gradient_bytes=self.gradient_channel.total_compressed_bytes
                - bytes_before,
                workers_participating=0,
                buckets_lost=buckets_lost,
            )
            self.history.append(stats)
            self.step_count += 1
            return stats.loss

        if self._onebit:
            # 1-bit optimizers own communication; account their bits.
            self.optimizer.step(worker_grads)
            bits = self.optimizer.bits_log[-1]
            values = sum(g.size for g in worker_grads[0])
            self.gradient_channel.records.append(
                TrafficRecord(
                    tag="onebit",
                    step=self.step_count,
                    num_values=values * self.num_workers,
                    bits_per_value=bits,
                )
            )
        else:
            averaged = [
                np.mean([worker[i] for worker in worker_grads], axis=0)
                for i in range(len(self.params))
            ]
            for param, grad in zip(self.params, averaged):
                param.grad = grad
            self.optimizer.step()

        stats = DPStepStats(
            step=self.step_count,
            loss=float(np.mean(losses)),
            gradient_bytes=self.gradient_channel.total_compressed_bytes - bytes_before,
            workers_participating=len(worker_grads),
            buckets_lost=buckets_lost,
        )
        self.history.append(stats)
        self.step_count += 1
        return stats.loss

    def train(self, batches, steps: int) -> List[DPStepStats]:
        """Run ``steps`` optimizer steps from a batch iterator."""
        for step, (tokens, targets) in enumerate(batches):
            if step >= steps:
                break
            self.train_step(tokens, targets)
        return self.history
