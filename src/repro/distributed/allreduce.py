"""Ring all-reduce simulation with byte-accurate link accounting.

The cluster model (Figure 16) charges data parallelism
``2 (p-1)/p * payload`` per GPU -- the textbook cost of ring
all-reduce.  This module *runs* that algorithm over simulated links so
the constant is derived, not asserted: reduce-scatter then all-gather,
one segment per step, with optional lossy compression applied to every
transmitted segment (how LLM.265 would sit inside a collective).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

import repro.telemetry as telemetry
from repro.distributed.comm import Channel, Compressor
from repro.resilience.faults import FaultInjector, RetryPolicy


@dataclass
class AllReduceResult:
    """Outcome of one simulated collective."""

    reduced: List[np.ndarray]  # per-worker result (identical if lossless)
    bytes_per_worker: float
    steps: int
    #: Retransmissions across *all* links (0 on a fault-free fabric).
    retransmissions: int = 0
    retransmitted_bytes: float = 0.0

    @property
    def textbook_bytes(self) -> float:
        """What the 2(p-1)/p formula predicts for this payload."""
        size = self.reduced[0].size * 2.0  # FP16 reference bytes
        workers = len(self.reduced)
        return 2.0 * (workers - 1) / workers * size


def ring_allreduce(
    tensors: Sequence[np.ndarray],
    compressor: Optional[Compressor] = None,
    average: bool = True,
    fault_injector: Optional[FaultInjector] = None,
    retry: Optional[RetryPolicy] = None,
) -> AllReduceResult:
    """Run ring all-reduce over per-worker tensors.

    ``tensors`` holds each worker's contribution (same shape).  Every
    hop crosses a :class:`Channel` with the given compressor, so lossy
    collectives (and their accumulated error) can be studied directly.

    With a ``fault_injector``, every hop also crosses the faulty wire:
    damaged segments are detected by the CRC framing and retransmitted
    (bounded by ``retry``), so the collective's *result* is identical
    to the fault-free run -- only the byte bill grows.  Exhausted
    retries surface as :class:`~repro.resilience.errors.TransportError`.
    """
    workers = len(tensors)
    if workers < 2:
        raise ValueError("ring all-reduce needs at least two workers")
    shape = np.asarray(tensors[0]).shape
    for tensor in tensors:
        if np.asarray(tensor).shape != shape:
            raise ValueError("all workers must contribute the same shape")

    with telemetry.span("distributed.allreduce"):
        return _ring_allreduce(
            tensors, compressor, average, workers, shape, fault_injector, retry
        )


def _ring_allreduce(
    tensors: Sequence[np.ndarray],
    compressor: Optional[Compressor],
    average: bool,
    workers: int,
    shape,
    fault_injector: Optional[FaultInjector] = None,
    retry: Optional[RetryPolicy] = None,
) -> AllReduceResult:
    flat = [np.asarray(t, dtype=np.float64).reshape(-1).copy() for t in tensors]
    segments = np.array_split(np.arange(flat[0].size), workers)
    links = [  # link w -> w+1; all links share one injector (one fabric)
        Channel(
            compressor,
            fault_injector=fault_injector,
            retry=retry or RetryPolicy(),
        )
        for _ in range(workers)
    ]
    steps = 0

    # Phase 1: reduce-scatter.  After step s, worker w owns the partial
    # sum of segment (w - s) over s+1 contributions.
    for step in range(workers - 1):
        sends = []
        for worker in range(workers):
            segment = segments[(worker - step) % workers]
            sends.append(
                links[worker].send(flat[worker][segment], step=steps, tag="rs")
            )
        for worker in range(workers):
            source = (worker - 1) % workers
            segment = segments[(worker - 1 - step) % workers]
            flat[worker][segment] += sends[source]
        steps += 1

    # Phase 2: all-gather the finished segments around the ring.
    for step in range(workers - 1):
        sends = []
        for worker in range(workers):
            segment = segments[(worker + 1 - step) % workers]
            sends.append(
                links[worker].send(flat[worker][segment], step=steps, tag="ag")
            )
        for worker in range(workers):
            source = (worker - 1) % workers
            segment = segments[(worker - step) % workers]
            flat[worker][segment] = sends[source]
        steps += 1

    if average:
        for worker in range(workers):
            flat[worker] /= workers

    bytes_per_worker = links[0].total_compressed_bytes
    retransmissions = sum(link.total_retries for link in links)
    retransmitted_bytes = sum(link.total_retransmitted_bytes for link in links)
    registry = telemetry.current()
    if registry is not None:
        registry.count("allreduce.collectives")
        registry.count("allreduce.steps", steps)
        registry.observe("allreduce.bytes_per_worker", bytes_per_worker)
        if retransmissions:
            registry.count("allreduce.retransmissions", retransmissions)
    return AllReduceResult(
        reduced=[f.reshape(shape) for f in flat],
        bytes_per_worker=bytes_per_worker,
        steps=steps,
        retransmissions=retransmissions,
        retransmitted_bytes=retransmitted_bytes,
    )
