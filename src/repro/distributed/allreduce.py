"""Ring all-reduce simulation with byte-accurate link accounting.

The cluster model (Figure 16) charges data parallelism
``2 (p-1)/p * payload`` per GPU -- the textbook cost of ring
all-reduce.  This module *runs* that algorithm over simulated links so
the constant is derived, not asserted: reduce-scatter then all-gather,
one segment per step, with optional lossy compression applied to every
transmitted segment (how LLM.265 would sit inside a collective).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

import repro.telemetry as telemetry
from repro.distributed.comm import Channel, Compressor


@dataclass
class AllReduceResult:
    """Outcome of one simulated collective."""

    reduced: List[np.ndarray]  # per-worker result (identical if lossless)
    bytes_per_worker: float
    steps: int

    @property
    def textbook_bytes(self) -> float:
        """What the 2(p-1)/p formula predicts for this payload."""
        size = self.reduced[0].size * 2.0  # FP16 reference bytes
        workers = len(self.reduced)
        return 2.0 * (workers - 1) / workers * size


def ring_allreduce(
    tensors: Sequence[np.ndarray],
    compressor: Optional[Compressor] = None,
    average: bool = True,
) -> AllReduceResult:
    """Run ring all-reduce over per-worker tensors.

    ``tensors`` holds each worker's contribution (same shape).  Every
    hop crosses a :class:`Channel` with the given compressor, so lossy
    collectives (and their accumulated error) can be studied directly.
    """
    workers = len(tensors)
    if workers < 2:
        raise ValueError("ring all-reduce needs at least two workers")
    shape = np.asarray(tensors[0]).shape
    for tensor in tensors:
        if np.asarray(tensor).shape != shape:
            raise ValueError("all workers must contribute the same shape")

    with telemetry.span("distributed.allreduce"):
        return _ring_allreduce(tensors, compressor, average, workers, shape)


def _ring_allreduce(
    tensors: Sequence[np.ndarray],
    compressor: Optional[Compressor],
    average: bool,
    workers: int,
    shape,
) -> AllReduceResult:
    flat = [np.asarray(t, dtype=np.float64).reshape(-1).copy() for t in tensors]
    segments = np.array_split(np.arange(flat[0].size), workers)
    links = [Channel(compressor) for _ in range(workers)]  # link w -> w+1
    steps = 0

    # Phase 1: reduce-scatter.  After step s, worker w owns the partial
    # sum of segment (w - s) over s+1 contributions.
    for step in range(workers - 1):
        sends = []
        for worker in range(workers):
            segment = segments[(worker - step) % workers]
            sends.append(
                links[worker].send(flat[worker][segment], step=steps, tag="rs")
            )
        for worker in range(workers):
            source = (worker - 1) % workers
            segment = segments[(worker - 1 - step) % workers]
            flat[worker][segment] += sends[source]
        steps += 1

    # Phase 2: all-gather the finished segments around the ring.
    for step in range(workers - 1):
        sends = []
        for worker in range(workers):
            segment = segments[(worker + 1 - step) % workers]
            sends.append(
                links[worker].send(flat[worker][segment], step=steps, tag="ag")
            )
        for worker in range(workers):
            source = (worker - 1) % workers
            segment = segments[(worker - step) % workers]
            flat[worker][segment] = sends[source]
        steps += 1

    if average:
        for worker in range(workers):
            flat[worker] /= workers

    bytes_per_worker = links[0].total_compressed_bytes
    registry = telemetry.current()
    if registry is not None:
        registry.count("allreduce.collectives")
        registry.count("allreduce.steps", steps)
        registry.observe("allreduce.bytes_per_worker", bytes_per_worker)
    return AllReduceResult(
        reduced=[f.reshape(shape) for f in flat],
        bytes_per_worker=bytes_per_worker,
        steps=steps,
    )
