"""LLM.265 reproduction: video codecs repurposed as general-purpose tensor codecs.

This package reimplements, from scratch and in pure Python/numpy, every
system described in *"LLM.265: Video Codecs are Secretly Tensor Codecs"*
(MICRO 2025): an intra/inter video codec with a CABAC-style entropy
coder, the LLM.265 tensor codec built on top of it, the quantization
baselines it is compared against (RTN, GPTQ, AWQ, rotation-based),
a numpy transformer + autograd substrate with pipeline- and
data-parallel training simulators, and analytical models of the
NVENC/NVDEC engines and the proposed "three-in-one" hardware codec.

Quickstart::

    import numpy as np
    from repro import TensorCodec

    codec = TensorCodec()
    weight = np.random.randn(256, 256).astype(np.float32) * 0.02
    blob = codec.encode(weight, bits_per_value=3.0)
    restored = codec.decode(blob)
"""

__version__ = "1.0.0"

__all__ = [
    "TensorCodec",
    "CompressedTensor",
    "H264_PROFILE",
    "H265_PROFILE",
    "AV1_PROFILE",
    "telemetry",
    "__version__",
]

_LAZY_EXPORTS = {
    "TensorCodec": ("repro.tensor.codec", "TensorCodec"),
    "CompressedTensor": ("repro.tensor.codec", "CompressedTensor"),
    "H264_PROFILE": ("repro.codec.profiles", "H264_PROFILE"),
    "H265_PROFILE": ("repro.codec.profiles", "H265_PROFILE"),
    "AV1_PROFILE": ("repro.codec.profiles", "AV1_PROFILE"),
    "telemetry": ("repro.telemetry", None),
}


def __getattr__(name):
    """Lazily resolve the public API (PEP 562)."""
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, attr) if attr is not None else module
