"""Per-generation GPU codec support (Table 2 of the paper).

VP9 is decode-only on every generation, which is why the paper excludes
it: LLM.265 needs hardware for *both* directions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class CodecSupport:
    """What one GPU generation can do with one codec."""

    encode: bool
    decode: bool
    max_resolution: int  # long-edge pixels: 3840 = 4K, 7680 = 8K

    @property
    def usable_for_tensors(self) -> bool:
        """LLM.265 needs both directions in hardware."""
        return self.encode and self.decode

    def describe(self) -> str:
        res = "8K" if self.max_resolution >= 7680 else "4K"
        if self.encode and self.decode:
            return f"{res} Enc/Dec."
        if self.decode:
            return f"{res} Dec"
        return "-"


_4K, _8K = 3840, 7680

#: Table 2 verbatim: generation -> codec -> support.
GPU_CODEC_SUPPORT: Dict[str, Dict[str, CodecSupport]] = {
    "ada-lovelace": {
        "h264": CodecSupport(True, True, _4K),
        "h265": CodecSupport(True, True, _8K),
        "av1": CodecSupport(True, True, _8K),
        "vp9": CodecSupport(False, True, _8K),
    },
    "ampere": {
        "h264": CodecSupport(True, True, _4K),
        "h265": CodecSupport(True, True, _8K),
        "av1": CodecSupport(False, False, 0),
        "vp9": CodecSupport(False, True, _8K),
    },
    "volta": {
        "h264": CodecSupport(True, True, _4K),
        "h265": CodecSupport(True, True, _8K),
        "av1": CodecSupport(False, False, 0),
        "vp9": CodecSupport(False, True, _8K),
    },
}


def supports(generation: str, codec: str) -> CodecSupport:
    """Support entry for (generation, codec); raises on unknown keys."""
    try:
        return GPU_CODEC_SUPPORT[generation.lower()][codec.lower()]
    except KeyError:
        raise ValueError(f"unknown generation/codec: {generation}/{codec}") from None


def best_codec_for(generation: str) -> str:
    """The codec the paper picks: usable everywhere, largest frames.

    H.265 wins on every generation (Section 4.1.1): AV1 needs Ada,
    VP9 cannot encode, H.264 is capped at 4K.
    """
    candidates = [
        (name, entry)
        for name, entry in GPU_CODEC_SUPPORT[generation.lower()].items()
        if entry.usable_for_tensors
    ]
    if not candidates:
        raise ValueError(f"no dual-direction codec on {generation}")
    return max(candidates, key=lambda kv: kv[1].max_resolution)[0]
