"""NVENC/NVDEC throughput model (Section 6.1 measurements).

The paper measures ~1100 MB/s tensor compression on NVENC and
~1300 MB/s decompression on NVDEC, which caps end-to-end communication
bandwidth at ~1100 MB/s regardless of the link -- the motivation for
the three-in-one codec.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HardwareEngine:
    """A fixed-function engine processing bytes at a fixed rate."""

    name: str
    throughput_mb_s: float  # uncompressed tensor bytes per second
    sessions: int = 1  # concurrent streams the driver exposes

    @property
    def throughput_bytes_s(self) -> float:
        return self.throughput_mb_s * 1e6

    def seconds_for(self, nbytes: float) -> float:
        """Time to push ``nbytes`` of tensor data through the engine."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes / self.throughput_bytes_s


#: The paper's measured figures (Section 6.1).
NVENC = HardwareEngine("nvenc", throughput_mb_s=1100.0)
NVDEC = HardwareEngine("nvdec", throughput_mb_s=1300.0)


def effective_link_bandwidth(
    link_gb_s: float,
    compression_ratio: float,
    encoder: HardwareEngine = NVENC,
    decoder: HardwareEngine = NVDEC,
) -> float:
    """End-to-end bandwidth in *uncompressed* MB/s with codecs inline.

    The pipeline stages (encode -> transmit compressed -> decode) run
    concurrently, so the bottleneck is the slowest stage.  With
    NVENC/NVDEC the encoder is almost always that stage, reproducing
    the paper's 1100 MB/s ceiling.
    """
    if compression_ratio <= 0:
        raise ValueError("compression ratio must be positive")
    link_mb_s = link_gb_s * 1e3
    return min(
        encoder.throughput_mb_s,
        decoder.throughput_mb_s,
        link_mb_s * compression_ratio,
    )


def communication_speedup(
    link_gb_s: float, compression_ratio: float, use_codecs: bool = True
) -> float:
    """Speedup over raw transmission for one link.

    Without codecs the effective bandwidth is the link itself; with
    codecs it is :func:`effective_link_bandwidth`.  On slow links the
    codec wins ~ratio; on links faster than NVENC it can *lose*, which
    is the Section 6 argument for specialised hardware.
    """
    raw = link_gb_s * 1e3
    if not use_codecs:
        return 1.0
    return effective_link_bandwidth(link_gb_s, compression_ratio) / raw
