"""GPU video-engine models: capability matrix + NVENC/NVDEC throughput."""

from repro.gpu.capabilities import (
    GPU_CODEC_SUPPORT,
    CodecSupport,
    best_codec_for,
    supports,
)
from repro.gpu.engines import NVDEC, NVENC, HardwareEngine, effective_link_bandwidth

__all__ = [
    "GPU_CODEC_SUPPORT",
    "CodecSupport",
    "supports",
    "best_codec_for",
    "HardwareEngine",
    "NVENC",
    "NVDEC",
    "effective_link_bandwidth",
]
