"""Numpy neural-network substrate: autograd, layers, optimizers, data.

A small reverse-mode autograd engine (:mod:`repro.nn.autograd`) powers
GPT-style transformers (:mod:`repro.nn.transformer`) that stand in for
the paper's LLaMA / Pythia evaluation models.  Optimizers include Adam,
LAMB and the 1-bit Adam / 1-bit LAMB communication-compressed variants
the paper baselines against (:mod:`repro.nn.optim`).
"""

from repro.nn.autograd import Parameter, Tensor, no_grad
from repro.nn.generate import IncrementalDecoder, KVCache, generate
from repro.nn.layers import Embedding, LayerNorm, Linear, Module
from repro.nn.transformer import GPT, GPTConfig

__all__ = [
    "Tensor",
    "Parameter",
    "no_grad",
    "Module",
    "Linear",
    "LayerNorm",
    "Embedding",
    "GPT",
    "GPTConfig",
    "generate",
    "IncrementalDecoder",
    "KVCache",
]
