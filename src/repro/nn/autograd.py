"""Minimal reverse-mode autograd over numpy arrays.

Supports exactly the operator set a GPT-style transformer needs:
broadcast arithmetic, batched matmul, reshape/transpose, reductions,
GELU/tanh/ReLU, softmax, layer-norm, embedding gather, and a fused
softmax-cross-entropy loss.  Backward passes are hand-derived and
tested against finite differences.
"""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Disable graph construction inside the context (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (reverses numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array plus an optional gradient tape node."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: Tuple["Tensor", ...] = (),
        backward: Optional[Callable[[np.ndarray], None]] = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad and _GRAD_ENABLED
        self._parents = parents if self.requires_grad else ()
        self._backward = backward if self.requires_grad else None

    # -- construction helpers -------------------------------------------

    @staticmethod
    def _lift(value: Union["Tensor", np.ndarray, float, int]) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def detach(self) -> "Tensor":
        """A view of the same data cut off from the graph."""
        return Tensor(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    # -- graph plumbing --------------------------------------------------

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor (default seed: ones)."""
        if not self.requires_grad:
            raise RuntimeError("tensor does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("backward() without grad needs a scalar")
            grad = np.ones_like(self.data)
        order: List[Tensor] = []
        seen = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, False)]
            while stack:
                current, processed = stack.pop()
                if processed:
                    order.append(current)
                    continue
                if id(current) in seen:
                    continue
                seen.add(id(current))
                stack.append((current, True))
                for parent in current._parents:
                    if parent.requires_grad:
                        stack.append((parent, False))

        visit(self)
        self._accumulate(np.asarray(grad, dtype=np.float64))
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # -- arithmetic -------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data
        needs = self.requires_grad or other.requires_grad

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor(out_data, needs, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor(-self.data, self.requires_grad, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data
        needs = self.requires_grad or other.requires_grad

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor(out_data, needs, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data / other.data
        needs = self.requires_grad or other.requires_grad

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / other.data**2, other.shape)
                )

        return Tensor(out_data, needs, (self, other), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor(out_data, self.requires_grad, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data @ other.data
        needs = self.requires_grad or other.requires_grad

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(
                    _unbroadcast(grad @ np.swapaxes(other.data, -1, -2), self.shape)
                )
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(np.swapaxes(self.data, -1, -2) @ grad, other.shape)
                )

        return Tensor(out_data, needs, (self, other), backward)

    # -- shape ops ---------------------------------------------------------

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor(out_data, self.requires_grad, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)
        out_data = self.data.transpose(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor(out_data, self.requires_grad, (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, key, grad)
            self._accumulate(full)

        return Tensor(out_data, self.requires_grad, (self,), backward)

    # -- reductions ----------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(expanded, self.shape).copy())

        return Tensor(out_data, self.requires_grad, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # -- nonlinearities --------------------------------------------------------

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (self.data > 0))

        return Tensor(out_data, self.requires_grad, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return Tensor(out_data, self.requires_grad, (self,), backward)

    def gelu(self) -> "Tensor":
        """GELU with the tanh approximation (GPT-style)."""
        c = np.sqrt(2.0 / np.pi)
        x = self.data
        inner = c * (x + 0.044715 * x**3)
        t = np.tanh(inner)
        out_data = 0.5 * x * (1.0 + t)

        def backward(grad: np.ndarray) -> None:
            d_inner = c * (1.0 + 3 * 0.044715 * x**2)
            local = 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t**2) * d_inner
            self._accumulate(grad * local)

        return Tensor(out_data, self.requires_grad, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor(out_data, self.requires_grad, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor(out_data, self.requires_grad, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exps = np.exp(shifted)
        out_data = exps / exps.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            self._accumulate(out_data * (grad - dot))

        return Tensor(out_data, self.requires_grad, (self,), backward)


class Parameter(Tensor):
    """A trainable tensor (always requires grad)."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


def layer_norm(
    x: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5
) -> Tensor:
    """Layer normalisation over the last axis with affine parameters."""
    mu = x.data.mean(axis=-1, keepdims=True)
    var = x.data.var(axis=-1, keepdims=True)
    inv = 1.0 / np.sqrt(var + eps)
    norm = (x.data - mu) * inv
    out_data = norm * gamma.data + beta.data
    needs = x.requires_grad or gamma.requires_grad or beta.requires_grad

    def backward(grad: np.ndarray) -> None:
        if gamma.requires_grad:
            gamma._accumulate(_unbroadcast(grad * norm, gamma.shape))
        if beta.requires_grad:
            beta._accumulate(_unbroadcast(grad, beta.shape))
        if x.requires_grad:
            g = grad * gamma.data
            n = x.shape[-1]
            dx = (
                g - g.mean(axis=-1, keepdims=True)
                - norm * (g * norm).mean(axis=-1, keepdims=True)
            ) * inv
            x._accumulate(dx)

    return Tensor(out_data, needs, (x, gamma, beta), backward)


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Row gather with scatter-add backward."""
    indices = np.asarray(indices)
    out_data = weight.data[indices]

    def backward(grad: np.ndarray) -> None:
        full = np.zeros_like(weight.data)
        np.add.at(full, indices.reshape(-1), grad.reshape(-1, weight.shape[-1]))
        weight._accumulate(full)

    return Tensor(out_data, weight.requires_grad, (weight,), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Fused softmax + NLL, mean over all positions.

    ``logits`` has shape (..., vocab); ``targets`` the matching integer
    shape.  Positions with target -100 are ignored (padding).
    """
    targets = np.asarray(targets)
    flat_logits = logits.data.reshape(-1, logits.shape[-1])
    flat_targets = targets.reshape(-1)
    valid = flat_targets != -100
    count = max(1, int(valid.sum()))

    shifted = flat_logits - flat_logits.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    logprobs = shifted - logsumexp
    picked = np.where(valid, logprobs[np.arange(len(flat_targets)), np.where(valid, flat_targets, 0)], 0.0)
    loss_value = -picked.sum() / count

    def backward(grad: np.ndarray) -> None:
        probs = np.exp(logprobs)
        probs[np.arange(len(flat_targets)), np.where(valid, flat_targets, 0)] -= 1.0
        probs[~valid] = 0.0
        logits._accumulate((grad * probs / count).reshape(logits.shape))

    return Tensor(loss_value, logits.requires_grad, (logits,), backward)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate along ``axis`` with split backward."""
    datas = [t.data for t in tensors]
    out_data = np.concatenate(datas, axis=axis)
    needs = any(t.requires_grad for t in tensors)
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    return Tensor(out_data, needs, tuple(tensors), backward)
