"""Synthetic token corpus: the stand-in for the Pile / WikiText-2.

A fixed-seed hidden-Markov language over a small vocabulary.  The HMM
has low entropy (peaked transitions and emissions), so transformers
trained on it reduce perplexity far below the uniform baseline, and the
*oracle* forward algorithm provides ground-truth sequence probabilities
for building zero-shot evaluation tasks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np


def _peaked_rows(rng: np.random.Generator, rows: int, cols: int, alpha: float) -> np.ndarray:
    """Dirichlet rows with small alpha => peaked distributions."""
    return rng.dirichlet(np.full(cols, alpha), size=rows)


@dataclass(frozen=True)
class CorpusConfig:
    """Shape of the synthetic language."""

    vocab_size: int = 64
    num_states: int = 12
    seq_len: int = 64
    transition_alpha: float = 0.15
    emission_alpha: float = 0.08
    seed: int = 1234


class SyntheticCorpus:
    """Fixed-seed HMM corpus with oracle scoring."""

    def __init__(self, config: CorpusConfig = CorpusConfig()) -> None:
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.transitions = _peaked_rows(
            rng, config.num_states, config.num_states, config.transition_alpha
        )
        self.emissions = _peaked_rows(
            rng, config.num_states, config.vocab_size, config.emission_alpha
        )
        self.initial = rng.dirichlet(np.full(config.num_states, 1.0))

    # -- sampling ----------------------------------------------------------

    def sample(self, count: int, seq_len: int = 0, seed: int = 0) -> np.ndarray:
        """Sample ``count`` sequences, shape (count, seq_len)."""
        seq_len = seq_len or self.config.seq_len
        rng = np.random.default_rng(self.config.seed * 7919 + seed)
        states = rng.choice(self.config.num_states, size=count, p=self.initial)
        tokens = np.empty((count, seq_len), dtype=np.int64)
        for t in range(seq_len):
            # Vectorised categorical draw per row via inverse CDF.
            emit_cdf = np.cumsum(self.emissions[states], axis=1)
            tokens[:, t] = (rng.random((count, 1)) < emit_cdf).argmax(axis=1)
            trans_cdf = np.cumsum(self.transitions[states], axis=1)
            states = (rng.random((count, 1)) < trans_cdf).argmax(axis=1)
        return tokens

    def batches(
        self, batch_size: int, num_batches: int, seq_len: int = 0, seed: int = 0
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield (inputs, targets) pairs for next-token training."""
        for index in range(num_batches):
            tokens = self.sample(batch_size, seq_len, seed=seed + index + 1)
            yield tokens[:, :-1], tokens[:, 1:]

    # -- oracle -------------------------------------------------------------

    def oracle_logprob(self, tokens: np.ndarray) -> float:
        """Exact log P(sequence) under the HMM (forward algorithm)."""
        tokens = np.asarray(tokens)
        alpha = self.initial * self.emissions[:, tokens[0]]
        logprob = 0.0
        for tok in tokens[1:]:
            norm = alpha.sum()
            logprob += np.log(norm)
            alpha = (alpha / norm) @ self.transitions * self.emissions[:, tok]
        logprob += np.log(alpha.sum())
        return float(logprob)

    def oracle_continuation_logprob(
        self, context: np.ndarray, continuation: np.ndarray
    ) -> float:
        """log P(continuation | context) under the HMM."""
        full = np.concatenate([np.asarray(context), np.asarray(continuation)])
        return self.oracle_logprob(full) - self.oracle_logprob(np.asarray(context))

    @property
    def token_entropy_bound(self) -> float:
        """Upper bound on achievable per-token entropy (stationary mix)."""
        mix = self.initial @ self.emissions
        mix = mix[mix > 0]
        return float(-(mix * np.log(mix)).sum())
