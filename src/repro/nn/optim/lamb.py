"""LAMB optimizer (You et al.): layer-wise adaptive rates for large batches."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.nn.autograd import Parameter


class LAMB:
    """LAMB: Adam direction rescaled by the layer-wise trust ratio."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-6,
        weight_decay: float = 0.01,
    ) -> None:
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.step_count = 0
        self._m: List[np.ndarray] = [np.zeros_like(p.data) for p in self.params]
        self._v: List[np.ndarray] = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Apply one LAMB update from the accumulated gradients."""
        self.step_count += 1
        bc1 = 1.0 - self.beta1**self.step_count
        bc2 = 1.0 - self.beta2**self.step_count
        for index, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            self._m[index] = self.beta1 * self._m[index] + (1 - self.beta1) * grad
            self._v[index] = self.beta2 * self._v[index] + (1 - self.beta2) * grad**2
            m_hat = self._m[index] / bc1
            v_hat = self._v[index] / bc2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * param.data
            w_norm = float(np.linalg.norm(param.data))
            u_norm = float(np.linalg.norm(update))
            trust = w_norm / u_norm if w_norm > 0 and u_norm > 0 else 1.0
            param.data -= self.lr * trust * update

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()
