"""Plain SGD with optional momentum."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.nn.autograd import Parameter


class SGD:
    """Stochastic gradient descent."""

    def __init__(
        self, params: Sequence[Parameter], lr: float = 0.01, momentum: float = 0.0
    ) -> None:
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.params)

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        for index, param in enumerate(self.params):
            if param.grad is None:
                continue
            update = param.grad
            if self.momentum:
                if self._velocity[index] is None:
                    self._velocity[index] = np.zeros_like(param.data)
                self._velocity[index] = (
                    self.momentum * self._velocity[index] + update
                )
                update = self._velocity[index]
            param.data -= self.lr * update

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()
