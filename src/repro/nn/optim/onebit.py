"""1-bit Adam and 1-bit LAMB (the paper's gradient-compression baselines).

Both algorithms (Tang et al. 2021, Li et al. 2021) run in two phases:

- *warm-up* (the first ~15% of steps): vanilla Adam/LAMB with
  uncompressed FP16 gradient communication -- the model has not
  converged enough for momentum to compress;
- *compression*: the variance term is frozen and the per-worker
  momentum is communicated as ``scale * sign(m)`` (1 bit/value) with
  worker-side error feedback.

With 15% warm-up the average is 0.15*16 + 0.85*1 = 3.25 bits/value,
the figure quoted in Section 5.2.  These optimizers consume *per-worker*
gradients (the data-parallel trainer passes one list per replica) and
account communicated bits in :attr:`bits_log`.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.nn.autograd import Parameter


def _sign_compress(values: np.ndarray) -> np.ndarray:
    """Scaled sign compression preserving the L1 magnitude."""
    scale = float(np.mean(np.abs(values)))
    return scale * np.sign(values)


class _OneBitBase:
    """Shared machinery: warm-up switch, error feedback, bit accounting."""

    def __init__(
        self,
        params: Sequence[Parameter],
        num_workers: int,
        lr: float,
        betas: tuple,
        eps: float,
        warmup_steps: int,
    ) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.params = list(params)
        self.num_workers = num_workers
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.warmup_steps = warmup_steps
        self.step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._errors = [
            [np.zeros_like(p.data) for p in self.params] for _ in range(num_workers)
        ]
        self.bits_log: List[float] = []

    @property
    def in_warmup(self) -> bool:
        return self.step_count < self.warmup_steps

    @property
    def average_bits(self) -> float:
        """Average communicated bits/value across recorded steps."""
        return float(np.mean(self.bits_log)) if self.bits_log else 0.0

    def _aggregate(self, worker_grads: List[List[np.ndarray]]) -> List[np.ndarray]:
        """Aggregate per-worker tensors into averaged momentum updates."""
        if len(worker_grads) != self.num_workers:
            raise ValueError("one gradient list per worker required")
        aggregated: List[np.ndarray] = []
        if self.in_warmup:
            self.bits_log.append(16.0)
            for index in range(len(self.params)):
                grad = np.mean([g[index] for g in worker_grads], axis=0)
                self._m[index] = (
                    self.beta1 * self._m[index] + (1 - self.beta1) * grad
                )
                self._v[index] = (
                    self.beta2 * self._v[index] + (1 - self.beta2) * grad**2
                )
                aggregated.append(self._m[index])
        else:
            # ~1 bit/value plus one FP16 scale per tensor (negligible).
            self.bits_log.append(1.0)
            for index in range(len(self.params)):
                compressed_sum = np.zeros_like(self.params[index].data)
                for worker in range(self.num_workers):
                    local = (
                        self.beta1 * self._m[index]
                        + (1 - self.beta1) * worker_grads[worker][index]
                        + self._errors[worker][index]
                    )
                    compressed = _sign_compress(local)
                    self._errors[worker][index] = local - compressed
                    compressed_sum += compressed
                self._m[index] = compressed_sum / self.num_workers
                aggregated.append(self._m[index])
        return aggregated

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()


class OneBitAdam(_OneBitBase):
    """1-bit Adam: frozen variance + sign-compressed momentum."""

    def __init__(
        self,
        params: Sequence[Parameter],
        num_workers: int = 1,
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        warmup_steps: int = 100,
    ) -> None:
        super().__init__(params, num_workers, lr, betas, eps, warmup_steps)

    def step(self, worker_grads: List[List[np.ndarray]]) -> None:
        """One update from per-worker gradient lists."""
        momenta = self._aggregate(worker_grads)  # warm-up check uses pre-step count
        self.step_count += 1
        bc1 = 1.0 - self.beta1**self.step_count
        bc2 = 1.0 - self.beta2 ** min(self.step_count, self.warmup_steps)
        for index, param in enumerate(self.params):
            v_hat = self._v[index] / max(bc2, 1e-12)
            param.data -= self.lr * (momenta[index] / bc1) / (
                np.sqrt(v_hat) + self.eps
            )


class OneBitLAMB(_OneBitBase):
    """1-bit LAMB: compressed momentum with layer-wise trust ratios."""

    def __init__(
        self,
        params: Sequence[Parameter],
        num_workers: int = 1,
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-6,
        warmup_steps: int = 100,
        weight_decay: float = 0.01,
    ) -> None:
        super().__init__(params, num_workers, lr, betas, eps, warmup_steps)
        self.weight_decay = weight_decay

    def step(self, worker_grads: List[List[np.ndarray]]) -> None:
        """One update from per-worker gradient lists."""
        momenta = self._aggregate(worker_grads)  # warm-up check uses pre-step count
        self.step_count += 1
        bc1 = 1.0 - self.beta1**self.step_count
        bc2 = 1.0 - self.beta2 ** min(self.step_count, self.warmup_steps)
        for index, param in enumerate(self.params):
            v_hat = self._v[index] / max(bc2, 1e-12)
            update = (momenta[index] / bc1) / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * param.data
            w_norm = float(np.linalg.norm(param.data))
            u_norm = float(np.linalg.norm(update))
            trust = w_norm / u_norm if w_norm > 0 and u_norm > 0 else 1.0
            param.data -= self.lr * trust * update
