"""Optimizers: SGD / Adam / LAMB plus the 1-bit compressed variants."""

from repro.nn.optim.adam import Adam
from repro.nn.optim.lamb import LAMB
from repro.nn.optim.onebit import OneBitAdam, OneBitLAMB
from repro.nn.optim.sgd import SGD

__all__ = ["SGD", "Adam", "LAMB", "OneBitAdam", "OneBitLAMB"]
