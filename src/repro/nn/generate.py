"""Incremental decoding with a (compressible) KV cache.

A pure-numpy inference path for :class:`repro.nn.transformer.GPT`:
the prompt is prefilled once, then tokens decode one at a time against
cached keys/values.  The cache can be compressed in place on a stride
(``compress_every``) through any hook with the
``(k, v, layer_index) -> (k, v)`` signature -- the same seam the
Section 4.2 experiments use, now exercised during *generation* rather
than scoring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.nn.transformer import GPT


def _layer_norm(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray) -> np.ndarray:
    mu = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mu) / np.sqrt(var + 1e-5) * gamma + beta


def _gelu(x: np.ndarray) -> np.ndarray:
    c = np.sqrt(2.0 / np.pi)
    return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * x**3)))


def _softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max(axis=-1, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=-1, keepdims=True)


@dataclass
class KVCache:
    """Per-layer key/value arrays of shape (heads, tokens, head_dim)."""

    keys: List[np.ndarray] = field(default_factory=list)
    values: List[np.ndarray] = field(default_factory=list)

    @property
    def seq_len(self) -> int:
        return self.keys[0].shape[1] if self.keys else 0

    def nbytes_fp16(self) -> int:
        """What the cache would occupy at FP16."""
        return sum(k.size + v.size for k, v in zip(self.keys, self.values)) * 2

    def apply_hook(self, hook: Callable) -> None:
        """Run a KV hook over every layer's cache in place."""
        for layer, (k, v) in enumerate(zip(self.keys, self.values)):
            new_k, new_v = hook(k[None], v[None], layer)
            self.keys[layer] = np.asarray(new_k)[0]
            self.values[layer] = np.asarray(new_v)[0]


class IncrementalDecoder:
    """Stateful single-sequence decoder over a GPT's weights."""

    def __init__(self, model: GPT, kv_hook: Optional[Callable] = None,
                 compress_every: int = 0) -> None:
        self.model = model
        self.kv_hook = kv_hook
        self.compress_every = compress_every
        self.cache = KVCache()
        self._position = 0

    # -- internals -----------------------------------------------------------

    def _block_step(self, block, layer: int, x: np.ndarray) -> np.ndarray:
        """One transformer block over ``t_new`` tokens with caching."""
        attn = block.attn
        heads, head_dim = attn.num_heads, attn.head_dim
        t_new, dim = x.shape

        normed = _layer_norm(x, block.ln1.gamma.data, block.ln1.beta.data)
        qkv = normed @ attn.qkv.weight.data + attn.qkv.bias.data
        qkv = qkv.reshape(t_new, 3, heads, head_dim).transpose(1, 2, 0, 3)
        q, k, v = qkv[0], qkv[1], qkv[2]  # (H, t_new, Dh)

        if layer < len(self.cache.keys):
            k = np.concatenate([self.cache.keys[layer], k], axis=1)
            v = np.concatenate([self.cache.values[layer], v], axis=1)
            self.cache.keys[layer] = k
            self.cache.values[layer] = v
        else:
            self.cache.keys.append(k)
            self.cache.values.append(v)

        total = k.shape[1]
        scores = q @ k.transpose(0, 2, 1) / np.sqrt(head_dim)  # (H, t_new, T)
        # Causal mask: new token i may attend to positions <= past + i.
        past = total - t_new
        cols = np.arange(total)[None, None, :]
        rows = past + np.arange(t_new)[None, :, None]
        scores = np.where(cols <= rows, scores, -1e9)
        out = _softmax(scores) @ v  # (H, t_new, Dh)
        out = out.transpose(1, 0, 2).reshape(t_new, dim)
        x = x + out @ attn.proj.weight.data + attn.proj.bias.data

        normed = _layer_norm(x, block.ln2.gamma.data, block.ln2.beta.data)
        hidden = _gelu(normed @ block.mlp.fc.weight.data + block.mlp.fc.bias.data)
        x = x + hidden @ block.mlp.out.weight.data + block.mlp.out.bias.data
        return x

    def feed(self, tokens: np.ndarray) -> np.ndarray:
        """Process tokens, extend the cache, return last-position logits."""
        tokens = np.asarray(tokens).reshape(-1)
        if self._position + len(tokens) > self.model.config.max_seq_len:
            raise ValueError("sequence exceeds the model's maximum length")
        positions = self._position + np.arange(len(tokens))
        x = (
            self.model.tok_emb.weight.data[tokens]
            + self.model.pos_emb.weight.data[positions]
        )
        for layer, block in enumerate(self.model.blocks):
            x = self._block_step(block, layer, x)
        self._position += len(tokens)
        if self.compress_every and self._position % self.compress_every == 0:
            if self.kv_hook is not None:
                self.cache.apply_hook(self.kv_hook)
        x = _layer_norm(x, self.model.ln_f.gamma.data, self.model.ln_f.beta.data)
        logits = x @ self.model.head.weight.data + self.model.head.bias.data
        return logits[-1]


def generate(
    model: GPT,
    prompt: np.ndarray,
    max_new_tokens: int,
    temperature: float = 0.0,
    kv_hook: Optional[Callable] = None,
    compress_every: int = 0,
    seed: int = 0,
) -> Tuple[np.ndarray, KVCache]:
    """Greedy/sampled generation; returns (full sequence, final cache).

    With ``kv_hook`` + ``compress_every`` the cache is lossily
    re-compressed on that stride, modelling a memory-bounded deployment
    that stores the KV cache in LLM.265 form.
    """
    decoder = IncrementalDecoder(model, kv_hook=kv_hook, compress_every=compress_every)
    rng = np.random.default_rng(seed)
    tokens = list(np.asarray(prompt).reshape(-1))
    logits = decoder.feed(np.array(tokens))
    for _ in range(max_new_tokens):
        if temperature <= 0.0:
            next_token = int(np.argmax(logits))
        else:
            probs = _softmax(logits / temperature)
            next_token = int(rng.choice(len(probs), p=probs))
        tokens.append(next_token)
        logits = decoder.feed(np.array([next_token]))
    return np.array(tokens), decoder.cache
