"""Neural-network layers built on the autograd engine."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.nn import autograd
from repro.nn.autograd import Parameter, Tensor


class Module:
    """Base class: parameter discovery + state (de)serialisation."""

    def parameters(self) -> List[Parameter]:
        """All trainable parameters, depth-first, deterministic order."""
        found: List[Parameter] = []
        for _, param in self.named_parameters():
            found.append(param)
        return found

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, value in sorted(vars(self).items()):
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(f"{full}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{full}.{index}.")
                    elif isinstance(item, Parameter):
                        yield f"{full}.{index}", item

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        extra = set(state) - set(own)
        if missing or extra:
            raise ValueError(f"state mismatch: missing={missing} extra={extra}")
        for name, values in state.items():
            if own[name].data.shape != values.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{own[name].data.shape} vs {values.shape}"
                )
            own[name].data = values.astype(np.float64).copy()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def weight_matrices(self) -> Dict[str, np.ndarray]:
        """The 2-D weights compression studies target (not embeddings)."""
        return {
            name: param.data
            for name, param in self.named_parameters()
            if param.data.ndim == 2 and "emb" not in name
        }

    def apply_weight_transform(self, transform) -> None:
        """Replace each 2-D non-embedding weight with ``transform(name, w)``."""
        for name, param in self.named_parameters():
            if param.data.ndim == 2 and "emb" not in name:
                param.data = np.asarray(
                    transform(name, param.data), dtype=np.float64
                )


class Linear(Module):
    """Affine layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator) -> None:
        scale = 1.0 / np.sqrt(in_features)
        self.weight = Parameter(rng.normal(0.0, scale, (in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features))

    def __call__(self, x: Tensor) -> Tensor:
        return x @ self.weight + self.bias


class LayerNorm(Module):
    """Layer normalisation with learned affine."""

    def __init__(self, dim: int) -> None:
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def __call__(self, x: Tensor) -> Tensor:
        return autograd.layer_norm(x, self.gamma, self.beta)


class Embedding(Module):
    """Token (or position) embedding table."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator) -> None:
        self.weight = Parameter(rng.normal(0.0, 0.02, (num_embeddings, dim)))

    def __call__(self, indices: np.ndarray) -> Tensor:
        return autograd.embedding(self.weight, indices)


class CausalSelfAttention(Module):
    """Multi-head causal attention with optional KV-intervention hook.

    ``kv_hook(k_data, v_data, layer_index)`` -- when set, receives the
    raw key/value arrays (B, H, T, D) during the forward pass and
    returns replacements.  This is the seam LLM.265 uses to compress
    the KV cache: quantize/compress/decompress the arrays and attention
    proceeds with the lossy cache (Section 4.2).
    """

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator, layer_index: int = 0) -> None:
        if dim % num_heads != 0:
            raise ValueError("dim must divide num_heads")
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.layer_index = layer_index
        self.qkv = Linear(dim, 3 * dim, rng)
        self.proj = Linear(dim, dim, rng)
        self.kv_hook = None  # set externally for KV-cache experiments

    def __call__(self, x: Tensor) -> Tensor:
        batch, seq, dim = x.shape
        qkv = self.qkv(x)  # (B, T, 3D)
        qkv = qkv.reshape(batch, seq, 3, self.num_heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # (3, B, H, T, Dh)
        q, k, v = qkv[0], qkv[1], qkv[2]

        if self.kv_hook is not None:
            k_new, v_new = self.kv_hook(k.data, v.data, self.layer_index)
            k = Tensor(k_new)
            v = Tensor(v_new)

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (q @ k.transpose(0, 1, 3, 2)) * scale  # (B, H, T, T)
        mask = np.triu(np.full((seq, seq), -1e9), k=1)
        scores = scores + Tensor(mask)
        attn = scores.softmax(axis=-1)
        out = attn @ v  # (B, H, T, Dh)
        out = out.transpose(0, 2, 1, 3).reshape(batch, seq, dim)
        return self.proj(out)


class MLP(Module):
    """Transformer feed-forward block (GELU)."""

    def __init__(self, dim: int, hidden: int, rng: np.random.Generator) -> None:
        self.fc = Linear(dim, hidden, rng)
        self.out = Linear(hidden, dim, rng)

    def __call__(self, x: Tensor) -> Tensor:
        return self.out(self.fc(x).gelu())


class TransformerBlock(Module):
    """Pre-norm transformer block."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator, layer_index: int = 0) -> None:
        self.ln1 = LayerNorm(dim)
        self.attn = CausalSelfAttention(dim, num_heads, rng, layer_index)
        self.ln2 = LayerNorm(dim)
        self.mlp = MLP(dim, 4 * dim, rng)

    def __call__(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.ln1(x))
        x = x + self.mlp(self.ln2(x))
        return x
