"""GPT-style transformer: the stand-in for LLaMA / Pythia / T5 decoders."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.nn import autograd
from repro.nn.autograd import Tensor, no_grad
from repro.nn.layers import Embedding, LayerNorm, Linear, Module, TransformerBlock


@dataclass(frozen=True)
class GPTConfig:
    """Model hyper-parameters."""

    vocab_size: int = 128
    max_seq_len: int = 128
    dim: int = 64
    num_heads: int = 4
    num_layers: int = 4
    name: str = "gpt"


class GPT(Module):
    """Decoder-only transformer with weight access for compression studies."""

    def __init__(self, config: GPTConfig, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        self.config = config
        self.tok_emb = Embedding(config.vocab_size, config.dim, rng)
        self.pos_emb = Embedding(config.max_seq_len, config.dim, rng)
        self.blocks = [
            TransformerBlock(config.dim, config.num_heads, rng, layer_index=i)
            for i in range(config.num_layers)
        ]
        self.ln_f = LayerNorm(config.dim)
        self.head = Linear(config.dim, config.vocab_size, rng)
        #: inference-time activation interventions: {block_index: fn},
        #: applied to the block's output array.  This is the seam the
        #: Section 4.2 experiments use to compress activations crossing
        #: pipeline-stage boundaries (forward pass only; the training
        #: path uses repro.distributed.pipeline instead).
        self.activation_hooks = {}

    # -- forward -----------------------------------------------------------

    def forward(self, tokens: np.ndarray) -> Tensor:
        """Logits of shape (batch, seq, vocab)."""
        tokens = np.asarray(tokens)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        batch, seq = tokens.shape
        if seq > self.config.max_seq_len:
            raise ValueError(f"sequence length {seq} exceeds model maximum")
        positions = np.broadcast_to(np.arange(seq), (batch, seq))
        x = self.tok_emb(tokens) + self.pos_emb(positions)
        for index, block in enumerate(self.blocks):
            x = block(x)
            hook = self.activation_hooks.get(index)
            if hook is not None:
                x = Tensor(hook(x.data))
        return self.head(self.ln_f(x))

    __call__ = forward

    def loss(self, tokens: np.ndarray, targets: np.ndarray) -> Tensor:
        """Mean next-token cross-entropy (targets may use -100 padding)."""
        return autograd.cross_entropy(self.forward(tokens), targets)

    # -- inference utilities ---------------------------------------------

    def sequence_logprob(self, tokens: np.ndarray, start: int = 1) -> float:
        """Total log-probability of ``tokens[start:]`` given the prefix."""
        tokens = np.asarray(tokens)
        with no_grad():
            logits = self.forward(tokens[None, :]).data[0]
        shifted = logits[:-1]
        shifted = shifted - shifted.max(axis=-1, keepdims=True)
        logprobs = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        targets = tokens[1:]
        picked = logprobs[np.arange(len(targets)), targets]
        return float(picked[start - 1 :].sum())

    def perplexity(self, tokens: np.ndarray, batch_size: int = 8) -> float:
        """Perplexity over (num_sequences, seq_len) token arrays."""
        tokens = np.asarray(tokens)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        total_nll = 0.0
        total_count = 0
        with no_grad():
            for begin in range(0, len(tokens), batch_size):
                chunk = tokens[begin : begin + batch_size]
                logits = self.forward(chunk).data
                shifted = logits[:, :-1]
                shifted = shifted - shifted.max(axis=-1, keepdims=True)
                logprobs = shifted - np.log(
                    np.exp(shifted).sum(axis=-1, keepdims=True)
                )
                targets = chunk[:, 1:]
                rows, cols = np.indices(targets.shape)
                total_nll -= float(logprobs[rows, cols, targets].sum())
                total_count += targets.size
        return float(np.exp(total_nll / max(1, total_count)))

    # -- compression seams (weight_matrices / apply_weight_transform are
    # inherited from Module) -----------------------------------------------

    def set_kv_hook(self, hook: Optional[Callable]) -> None:
        """Install a KV-cache intervention on every attention layer."""
        for block in self.blocks:
            block.attn.kv_hook = hook

    def layer_output_hooks(self) -> List[TransformerBlock]:
        """Blocks, exposed for pipeline-stage slicing."""
        return self.blocks
