"""Evaluation harness: perplexity + synthetic zero-shot task suites.

Stands in for the LM Evaluation Harness: eight multiple-choice suites
mirroring the paper's commonsense-reasoning benchmarks (PIQA, COPA,
ARC-e/c, WinoGrande, HellaSwag, RTE, OpenbookQA), plus the four extra
Figure 7 task proxies (sentiment, retrieval, VQA, image
classification).
"""

from repro.evals.tasks import COMMONSENSE_SUITE, ZeroShotTask, build_suite
from repro.evals.harness import (
    average_normalized_accuracy,
    evaluate_model,
    evaluate_suite,
)

__all__ = [
    "ZeroShotTask",
    "build_suite",
    "COMMONSENSE_SUITE",
    "evaluate_suite",
    "evaluate_model",
    "average_normalized_accuracy",
]
