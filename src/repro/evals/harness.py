"""Evaluation driver: run suites, normalise accuracies, report tables."""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Mapping

import numpy as np

import repro.telemetry as telemetry
from repro.evals.tasks import ZeroShotTask
from repro.nn.data import SyntheticCorpus
from repro.nn.transformer import GPT


def evaluate_suite(model: GPT, tasks: Mapping[str, ZeroShotTask]) -> Dict[str, float]:
    """Per-task accuracy (each task timed under an ``eval.task.<name>`` span)."""
    results: Dict[str, float] = {}
    for name, task in tasks.items():
        start = perf_counter()
        with telemetry.span(f"eval.task.{name}"):
            results[name] = task.evaluate(model)
        registry = telemetry.current()
        if registry is not None:
            registry.count("eval.tasks")
            registry.observe("eval.task_seconds", perf_counter() - start)
    return results


def average_accuracy(results: Mapping[str, float]) -> float:
    """Unweighted mean accuracy across suites."""
    return float(np.mean(list(results.values()))) if results else 0.0


def average_normalized_accuracy(
    results: Mapping[str, float], baseline: Mapping[str, float]
) -> float:
    """Mean of per-task accuracy relative to the uncompressed model.

    This is the y-axis of Figures 6, 7 and 14(b): 1.0 means no
    degradation from compression.
    """
    ratios = []
    for name, accuracy in results.items():
        reference = baseline.get(name, 0.0)
        if reference > 0:
            ratios.append(accuracy / reference)
    return float(np.mean(ratios)) if ratios else 0.0


def evaluate_model(
    model: GPT,
    corpus: SyntheticCorpus,
    tasks: Mapping[str, ZeroShotTask],
    ppl_sequences: int = 32,
    ppl_seed: int = 4242,
) -> Dict[str, float]:
    """Accuracy per suite plus held-out perplexity (key ``perplexity``)."""
    results = evaluate_suite(model, tasks)
    held_out = corpus.sample(ppl_sequences, seed=ppl_seed)
    with telemetry.span("eval.perplexity"):
        results["perplexity"] = model.perplexity(held_out)
    return results


def compression_sweep(
    model_factory,
    transforms: Mapping[str, callable],
    tasks: Mapping[str, ZeroShotTask],
) -> Dict[str, Dict[str, float]]:
    """Evaluate a family of weight transforms on fresh model copies.

    ``model_factory()`` must return a fresh model; each transform is a
    ``(name, weight) -> new_weight`` callable applied via
    :meth:`GPT.apply_weight_transform`.
    """
    out: Dict[str, Dict[str, float]] = {}
    for label, transform in transforms.items():
        model = model_factory()
        if transform is not None:
            model.apply_weight_transform(transform)
        out[label] = evaluate_suite(model, tasks)
    return out
