"""Figure 7 task proxies: sentiment, retrieval, VQA, image classification.

Each builder returns a :class:`TaskBundle` whose ``model`` can be
weight-transformed (compressed) and re-evaluated, matching how the
paper applies LLM.265 to T5 / Qwen-VL / ViT checkpoints it did not
train itself.  Trained bundles are cached via the zoo cache directory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from repro.models.zoo import cache_dir
from repro.nn import autograd
from repro.nn.autograd import Tensor, no_grad
from repro.nn.data import CorpusConfig, SyntheticCorpus
from repro.nn.layers import Embedding, LayerNorm, Linear, Module, TransformerBlock
from repro.nn.optim import Adam


@dataclass
class TaskBundle:
    """A trained task model plus its evaluation closure."""

    name: str
    model: Module
    evaluate: Callable[[], float]
    chance: float


class SequenceClassifier(Module):
    """Transformer trunk + mean pooling + linear head."""

    def __init__(
        self,
        vocab: int,
        max_seq: int,
        dim: int,
        heads: int,
        layers: int,
        classes: int,
        seed: int = 0,
    ) -> None:
        rng = np.random.default_rng(seed)
        self.tok_emb = Embedding(vocab, dim, rng)
        self.pos_emb = Embedding(max_seq, dim, rng)
        self.blocks = [TransformerBlock(dim, heads, rng, i) for i in range(layers)]
        self.ln = LayerNorm(dim)
        self.head = Linear(dim, classes, rng)

    def forward(self, tokens: np.ndarray) -> Tensor:
        tokens = np.asarray(tokens)
        batch, seq = tokens.shape
        positions = np.broadcast_to(np.arange(seq), (batch, seq))
        x = self.tok_emb(tokens) + self.pos_emb(positions)
        for block in self.blocks:
            x = block(x)
        pooled = self.ln(x).mean(axis=1)
        return self.head(pooled)

    __call__ = forward

    def embed(self, tokens: np.ndarray) -> np.ndarray:
        """Mean-pooled hidden state (the retrieval embedding)."""
        tokens = np.asarray(tokens)
        batch, seq = tokens.shape
        positions = np.broadcast_to(np.arange(seq), (batch, seq))
        with no_grad():
            x = self.tok_emb(tokens) + self.pos_emb(positions)
            for block in self.blocks:
                x = block(x)
            return self.ln(x).data.mean(axis=1)

    def predict(self, tokens: np.ndarray) -> np.ndarray:
        with no_grad():
            return np.argmax(self.forward(tokens).data, axis=-1)


def _train_classifier(
    model: SequenceClassifier,
    batches: Callable[[int], Tuple[np.ndarray, np.ndarray]],
    steps: int,
    lr: float = 3e-3,
) -> None:
    optimizer = Adam(model.parameters(), lr=lr)
    for step in range(steps):
        tokens, labels = batches(step)
        logits = model.forward(tokens)
        loss = autograd.cross_entropy(logits, labels)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()


def _cached(model: Module, key: str, trainer: Callable[[], None]) -> None:
    """Train-or-load helper keyed into the shared zoo cache."""
    path = cache_dir() / f"{key}.npz"
    if path.exists():
        with np.load(path) as blob:
            model.load_state_dict({name: blob[name] for name in blob.files})
        return
    trainer()
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **model.state_dict())


# -- (a) sentiment ----------------------------------------------------------


def sentiment_task(
    num_eval: int = 120, train_steps: int = 120, seed: int = 21
) -> TaskBundle:
    """Binary classification: which of two synthetic 'dialects' produced it."""
    vocab, seq = 48, 24
    corpora = [
        SyntheticCorpus(CorpusConfig(vocab_size=vocab, seq_len=seq, seed=seed + c))
        for c in range(2)
    ]
    model = SequenceClassifier(vocab, seq, 32, 2, 2, classes=2, seed=seed)

    def make_batch(step: int, size: int = 16):
        rng = np.random.default_rng(seed * 31 + step)
        labels = rng.integers(0, 2, size)
        tokens = np.stack(
            [corpora[y].sample(1, seed=step * size + i + 1)[0] for i, y in enumerate(labels)]
        )
        return tokens, labels

    _cached(model, f"task-sentiment-{seed}", lambda: _train_classifier(model, make_batch, train_steps))
    eval_tokens, eval_labels = make_batch(999_999, num_eval)

    def evaluate() -> float:
        return float(np.mean(model.predict(eval_tokens) == eval_labels))

    return TaskBundle("sentiment", model, evaluate, chance=0.5)


# -- (b) retrieval ----------------------------------------------------------


def retrieval_task(
    num_pairs: int = 60, train_steps: int = 150, seed: int = 33
) -> TaskBundle:
    """Quora-style duplicate retrieval: match corrupted queries to docs."""
    vocab, seq = 48, 24
    corpus = SyntheticCorpus(CorpusConfig(vocab_size=vocab, seq_len=seq, seed=seed))
    # The trunk trains as a 2-class discriminator between in-distribution
    # sequences and noise, which shapes useful embeddings.
    noise_rng = np.random.default_rng(seed + 1)
    model = SequenceClassifier(vocab, seq, 32, 2, 2, classes=2, seed=seed)

    def make_batch(step: int, size: int = 16):
        rng = np.random.default_rng(seed * 17 + step)
        labels = rng.integers(0, 2, size)
        rows = []
        for i, y in enumerate(labels):
            if y:
                rows.append(corpus.sample(1, seed=step * size + i + 1)[0])
            else:
                rows.append(rng.integers(0, vocab, seq))
        return np.stack(rows), labels

    _cached(model, f"task-retrieval-{seed}", lambda: _train_classifier(model, make_batch, train_steps))

    docs = corpus.sample(num_pairs, seed=77)
    queries = docs.copy()
    flip = noise_rng.random(queries.shape) < 0.25
    queries[flip] = noise_rng.integers(0, vocab, int(flip.sum()))

    def evaluate() -> float:
        doc_emb = model.embed(docs)
        query_emb = model.embed(queries)
        doc_norm = doc_emb / (np.linalg.norm(doc_emb, axis=1, keepdims=True) + 1e-9)
        query_norm = query_emb / (np.linalg.norm(query_emb, axis=1, keepdims=True) + 1e-9)
        hits = np.argmax(query_norm @ doc_norm.T, axis=1) == np.arange(num_pairs)
        return float(np.mean(hits))

    return TaskBundle("retrieval", model, evaluate, chance=1.0 / num_pairs)


# -- (c) VQA -----------------------------------------------------------------


def vqa_task(num_eval: int = 120, train_steps: int = 150, seed: int = 45) -> TaskBundle:
    """Visual question answering proxy: image tokens + question token.

    Four 'scenes' render to token patterns; two question types ask for
    different scene attributes; the answer is a lookup the model must
    learn from (scene, question) pairs.
    """
    vocab, seq = 40, 18
    num_scenes, num_questions, num_answers = 4, 2, 4
    answer_table = np.array([[0, 2], [1, 3], [2, 0], [3, 1]])
    template_rng = np.random.default_rng(seed)
    templates = template_rng.integers(0, vocab - num_questions, (num_scenes, seq - 1))
    model = SequenceClassifier(vocab, seq, 32, 2, 2, classes=num_answers, seed=seed)

    def render(rng, scene: int) -> np.ndarray:
        tokens = templates[scene].copy()
        flips = rng.random(seq - 1) < 0.15
        tokens[flips] = rng.integers(0, vocab - num_questions, int(flips.sum()))
        return tokens

    def make_batch(step: int, size: int = 16):
        rng = np.random.default_rng(seed * 13 + step)
        scenes = rng.integers(0, num_scenes, size)
        questions = rng.integers(0, num_questions, size)
        tokens = np.stack(
            [
                np.concatenate([render(rng, s), [vocab - num_questions + q]])
                for s, q in zip(scenes, questions)
            ]
        )
        return tokens, answer_table[scenes, questions]

    _cached(model, f"task-vqa-{seed}", lambda: _train_classifier(model, make_batch, train_steps))
    eval_tokens, eval_labels = make_batch(888_888, num_eval)

    def evaluate() -> float:
        return float(np.mean(model.predict(eval_tokens) == eval_labels))

    return TaskBundle("vqa", model, evaluate, chance=1.0 / num_answers)


# -- (d) image classification -------------------------------------------------


class PatchClassifier(Module):
    """Tiny ViT: linear patch embedding + transformer + mean-pool head."""

    def __init__(
        self,
        image_size: int = 16,
        patch: int = 4,
        dim: int = 32,
        heads: int = 2,
        layers: int = 2,
        classes: int = 8,
        seed: int = 0,
    ) -> None:
        rng = np.random.default_rng(seed)
        self.patch = patch
        self.image_size = image_size
        num_patches = (image_size // patch) ** 2
        self.patch_proj = Linear(patch * patch, dim, rng)
        self.pos_emb = Embedding(num_patches, dim, rng)
        self.blocks = [TransformerBlock(dim, heads, rng, i) for i in range(layers)]
        self.ln = LayerNorm(dim)
        self.head = Linear(dim, classes, rng)

    def _patchify(self, images: np.ndarray) -> np.ndarray:
        batch, h, w = images.shape
        p = self.patch
        patches = images.reshape(batch, h // p, p, w // p, p)
        patches = patches.transpose(0, 1, 3, 2, 4).reshape(batch, -1, p * p)
        return patches

    def forward(self, images: np.ndarray) -> Tensor:
        patches = self._patchify(np.asarray(images, dtype=np.float64))
        batch, num_patches, _ = patches.shape
        positions = np.broadcast_to(np.arange(num_patches), (batch, num_patches))
        x = self.patch_proj(Tensor(patches)) + self.pos_emb(positions)
        for block in self.blocks:
            x = block(x)
        return self.head(self.ln(x).mean(axis=1))

    __call__ = forward

    def predict(self, images: np.ndarray) -> np.ndarray:
        with no_grad():
            return np.argmax(self.forward(images).data, axis=-1)


def image_classification_task(
    num_eval: int = 160, train_steps: int = 150, seed: int = 57
) -> TaskBundle:
    """ImageNet proxy: classify noisy renderings of 8 class templates."""
    classes, size = 8, 16
    rng = np.random.default_rng(seed)
    templates = rng.normal(0, 1, (classes, size, size))
    model = PatchClassifier(image_size=size, classes=classes, seed=seed)

    def make_batch(step: int, batch: int = 16):
        batch_rng = np.random.default_rng(seed * 7 + step)
        labels = batch_rng.integers(0, classes, batch)
        images = templates[labels] + batch_rng.normal(0, 0.7, (batch, size, size))
        return images, labels

    def trainer() -> None:
        optimizer = Adam(model.parameters(), lr=3e-3)
        for step in range(train_steps):
            images, labels = make_batch(step)
            loss = autograd.cross_entropy(model.forward(images), labels)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()

    _cached(model, f"task-image-{seed}", trainer)
    eval_images, eval_labels = make_batch(777_777, num_eval)

    def evaluate() -> float:
        return float(np.mean(model.predict(eval_images) == eval_labels))

    return TaskBundle("image-classification", model, evaluate, chance=1.0 / classes)


def all_extra_tasks() -> List[TaskBundle]:
    """The four Figure 7 bundles in paper order."""
    return [
        sentiment_task(),
        retrieval_task(),
        vqa_task(),
        image_classification_task(),
    ]
