"""Synthetic zero-shot multiple-choice tasks.

Each task item is (context, candidates, answer_index): the model scores
``log P(candidate | context)`` and picks the argmax, exactly how the LM
Evaluation Harness scores PIQA-style benchmarks.  Real candidates come
from the corpus HMM; distractors are corruption-controlled so the eight
suites span a difficulty range, giving compression sweeps a smooth
accuracy response.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.nn.data import SyntheticCorpus
from repro.nn.transformer import GPT


@dataclass(frozen=True)
class TaskSpec:
    """Generation recipe for one suite."""

    name: str
    num_items: int = 60
    context_len: int = 20
    continuation_len: int = 8
    num_choices: int = 4
    corruption: float = 1.0  # 1.0 = fully random distractors (easy)
    seed: int = 0


#: Mirrors of the paper's eight commonsense suites, difficulty-ordered.
COMMONSENSE_SUITE: Tuple[TaskSpec, ...] = (
    TaskSpec("piqa-sim", corruption=1.0, num_choices=2, seed=11),
    TaskSpec("copa-sim", corruption=0.9, num_choices=2, seed=12),
    TaskSpec("arc-easy-sim", corruption=0.8, num_choices=4, seed=13),
    TaskSpec("arc-challenge-sim", corruption=0.45, num_choices=4, seed=14),
    TaskSpec("winogrande-sim", corruption=0.6, num_choices=2, seed=15),
    TaskSpec("hellaswag-sim", corruption=0.55, num_choices=4, seed=16),
    TaskSpec("rte-sim", corruption=0.7, num_choices=2, seed=17),
    TaskSpec("openbookqa-sim", corruption=0.5, num_choices=4, seed=18),
)


@dataclass
class ZeroShotTask:
    """Materialised items: contexts, candidate sets, answers."""

    spec: TaskSpec
    contexts: List[np.ndarray]
    candidates: List[List[np.ndarray]]
    answers: List[int]

    def __len__(self) -> int:
        return len(self.contexts)

    @property
    def chance_accuracy(self) -> float:
        return 1.0 / self.spec.num_choices

    def evaluate(self, model: GPT) -> float:
        """Accuracy of the model's argmax-logprob choice.

        All of an item's candidates share the context length and the
        continuation length, so they are scored as one batched forward
        pass per item.
        """
        from repro.nn.autograd import no_grad

        correct = 0
        for context, cands, answer in zip(self.contexts, self.candidates, self.answers):
            batch = np.stack([np.concatenate([context, c]) for c in cands])
            with no_grad():
                logits = model.forward(batch).data
            shifted = logits[:, :-1]
            shifted = shifted - shifted.max(axis=-1, keepdims=True)
            logprobs = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
            targets = batch[:, 1:]
            rows, cols = np.indices(targets.shape)
            picked = logprobs[rows, cols, targets]
            scores = picked[:, len(context) - 1 :].sum(axis=1)
            if int(np.argmax(scores)) == answer:
                correct += 1
        return correct / len(self)


def _corrupt(
    rng: np.random.Generator,
    continuation: np.ndarray,
    corruption: float,
    vocab: int,
) -> np.ndarray:
    """Replace a fraction of tokens with random vocabulary draws."""
    out = continuation.copy()
    flips = rng.random(len(out)) < corruption
    if not flips.any():
        flips[rng.integers(len(out))] = True
    # Shift by a non-zero offset so a flipped token always changes.
    offsets = rng.integers(1, vocab, int(flips.sum()))
    out[flips] = (out[flips] + offsets) % vocab
    return out


def build_task(corpus: SyntheticCorpus, spec: TaskSpec) -> ZeroShotTask:
    """Generate one suite's items from the corpus HMM."""
    rng = np.random.default_rng(spec.seed * 7919 + 13)
    vocab = corpus.config.vocab_size
    total_len = spec.context_len + spec.continuation_len
    contexts: List[np.ndarray] = []
    candidates: List[List[np.ndarray]] = []
    answers: List[int] = []
    sequences = corpus.sample(spec.num_items, seq_len=total_len, seed=spec.seed)
    for item in range(spec.num_items):
        seq = sequences[item]
        context = seq[: spec.context_len]
        real = seq[spec.context_len :]
        cands = [
            _corrupt(rng, real, spec.corruption, vocab)
            for _ in range(spec.num_choices - 1)
        ]
        answer = int(rng.integers(spec.num_choices))
        cands.insert(answer, real)
        contexts.append(context)
        candidates.append(cands)
        answers.append(answer)
    return ZeroShotTask(spec=spec, contexts=contexts, candidates=candidates, answers=answers)


def build_suite(
    corpus: SyntheticCorpus,
    specs: Sequence[TaskSpec] = COMMONSENSE_SUITE,
    num_items: int = 0,
) -> Dict[str, ZeroShotTask]:
    """Materialise a set of suites (optionally overriding item counts)."""
    out: Dict[str, ZeroShotTask] = {}
    for spec in specs:
        if num_items:
            spec = TaskSpec(**{**spec.__dict__, "num_items": num_items})
        out[spec.name] = build_task(corpus, spec)
    return out
