"""Quantization baselines the paper compares LLM.265 against.

- :mod:`repro.quant.rtn` -- round-to-nearest, symmetric/asymmetric,
  optional group-wise scaling (the "RTN" and "-128G" baselines).
- :mod:`repro.quant.gptq` -- GPTQ: Hessian-guided post-training
  quantization with error compensation.
- :mod:`repro.quant.awq` -- AWQ: activation-aware per-channel scaling.
- :mod:`repro.quant.rotation` -- Hadamard-rotation quantization
  (QuaRot / SpinQuant family).
- :mod:`repro.quant.nf4` -- NormalFloat quantile codebooks.
- :mod:`repro.quant.mxfp` -- MX micro-scaling float formats (MXFP4/6/8).
- :mod:`repro.quant.kvcache` -- KV-cache quantizers and hooks.
"""

from repro.quant.awq import awq_quantize
from repro.quant.gptq import gptq_quantize
from repro.quant.kvcache import codec_kv_hook, quantize_kv, rotation_kv_hook, rtn_kv_hook
from repro.quant.mxfp import MXFP_FORMATS, mx_bits_per_value, mx_pack_bytes, mx_roundtrip
from repro.quant.nf4 import nf_quantize, normalfloat_codebook
from repro.quant.rotation import hadamard_matrix, incoherence, rotate_quantize
from repro.quant.rtn import rtn_dequantize, rtn_quantize, rtn_roundtrip

__all__ = [
    "rtn_quantize",
    "rtn_dequantize",
    "rtn_roundtrip",
    "gptq_quantize",
    "awq_quantize",
    "rotate_quantize",
    "hadamard_matrix",
    "incoherence",
    "nf_quantize",
    "normalfloat_codebook",
    "mx_roundtrip",
    "mx_pack_bytes",
    "mx_bits_per_value",
    "MXFP_FORMATS",
    "quantize_kv",
    "rtn_kv_hook",
    "rotation_kv_hook",
    "codec_kv_hook",
]
