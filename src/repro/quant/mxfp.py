"""MX micro-scaling floating-point formats (OCP MX spec; Rouhani et al.).

A block of 32 values shares one power-of-two scale (E8M0); each element
is a tiny float (FP4 E2M1 / FP6 E2M3 / FP8 E4M3).  These are the
"custom numeric format" half of the Figure 14 baseline grid: convert to
MXFP, then feed the packed bytes to a general compressor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np


@dataclass(frozen=True)
class ElementFormat:
    """A miniature IEEE-style float: sign + exponent + mantissa bits."""

    name: str
    exponent_bits: int
    mantissa_bits: int

    @property
    def bits(self) -> int:
        return 1 + self.exponent_bits + self.mantissa_bits

    @property
    def bias(self) -> int:
        return 2 ** (self.exponent_bits - 1) - 1

    @property
    def max_value(self) -> float:
        max_exp = 2**self.exponent_bits - 1 - self.bias  # no inf/nan reserved
        return float(2.0**max_exp * (2.0 - 2.0**-self.mantissa_bits))

    def grid(self) -> np.ndarray:
        """Every non-negative representable value, sorted ascending."""
        values = [0.0]
        for exp_code in range(2**self.exponent_bits):
            for mant in range(2**self.mantissa_bits):
                if exp_code == 0:  # subnormals
                    value = (mant / 2**self.mantissa_bits) * 2.0 ** (1 - self.bias)
                else:
                    value = (1.0 + mant / 2**self.mantissa_bits) * 2.0 ** (
                        exp_code - self.bias
                    )
                values.append(value)
        return np.unique(np.array(values))


FP4_E2M1 = ElementFormat("fp4_e2m1", 2, 1)
FP6_E2M3 = ElementFormat("fp6_e2m3", 2, 3)
FP6_E3M2 = ElementFormat("fp6_e3m2", 3, 2)
FP8_E4M3 = ElementFormat("fp8_e4m3", 4, 3)

MXFP_FORMATS: Dict[str, ElementFormat] = {
    "mxfp4": FP4_E2M1,
    "mxfp6": FP6_E2M3,
    "mxfp8": FP8_E4M3,
}

MX_BLOCK = 32
_SCALE_BITS = 8  # shared E8M0 scale per block


def _snap_to_grid(values: np.ndarray, grid: np.ndarray) -> np.ndarray:
    """Round each magnitude to the nearest grid point."""
    idx = np.searchsorted(grid, values)
    idx = np.clip(idx, 1, len(grid) - 1)
    left = grid[idx - 1]
    right = grid[idx]
    return np.where(values - left > right - values, right, left)


def mx_quantize(
    values: np.ndarray, fmt: ElementFormat, block: int = MX_BLOCK
) -> Tuple[np.ndarray, np.ndarray]:
    """Quantize to an MX format; returns (restored, shared_exponents)."""
    values = np.asarray(values, dtype=np.float64)
    flat = values.reshape(-1)
    pad = (-flat.size) % block
    if pad:
        flat = np.concatenate([flat, np.zeros(pad)])
    blocks = flat.reshape(-1, block)
    absmax = np.max(np.abs(blocks), axis=1, keepdims=True)
    # Shared scale: power of two placing the block max at the format max.
    with np.errstate(divide="ignore"):
        exponents = np.floor(np.log2(absmax / fmt.max_value))
    exponents = np.where(np.isfinite(exponents), exponents, 0.0)
    scale = 2.0**exponents
    grid = fmt.grid()
    magnitudes = np.abs(blocks) / scale
    snapped = _snap_to_grid(np.minimum(magnitudes, fmt.max_value), grid)
    restored = np.sign(blocks) * snapped * scale
    out = restored.reshape(-1)[: values.size].reshape(values.shape)
    return out, exponents.reshape(-1)


def mx_roundtrip(values: np.ndarray, fmt_name: str = "mxfp4") -> np.ndarray:
    """Quantize-dequantize with a named MX format."""
    return mx_quantize(values, MXFP_FORMATS[fmt_name])[0]


def mx_bits_per_value(fmt: ElementFormat, block: int = MX_BLOCK) -> float:
    """Element bits plus the amortised shared-scale overhead."""
    return fmt.bits + _SCALE_BITS / block


def mx_pack_bytes(values: np.ndarray, fmt: ElementFormat, block: int = MX_BLOCK) -> bytes:
    """Pack an MX-quantized tensor into bytes for downstream compressors.

    The packing stores, per block, the shared exponent byte followed by
    one byte per element (code index into the signed grid).  This is a
    byte-aligned stand-in for the dense bit packing real hardware uses;
    byte alignment is what lets Huffman/LZ4/CABAC baselines consume it.
    """
    values = np.asarray(values, dtype=np.float64)
    flat = values.reshape(-1)
    pad = (-flat.size) % block
    if pad:
        flat = np.concatenate([flat, np.zeros(pad)])
    blocks = flat.reshape(-1, block)
    absmax = np.max(np.abs(blocks), axis=1, keepdims=True)
    with np.errstate(divide="ignore"):
        exponents = np.floor(np.log2(absmax / fmt.max_value))
    exponents = np.where(np.isfinite(exponents), exponents, 0.0)
    scale = 2.0**exponents
    grid = fmt.grid()
    signed_grid = np.concatenate([-grid[::-1][:-1], grid])  # symmetric codes
    magnitudes = blocks / scale
    idx = np.searchsorted(signed_grid, magnitudes)
    idx = np.clip(idx, 1, len(signed_grid) - 1)
    left = signed_grid[idx - 1]
    right = signed_grid[idx]
    codes = np.where(magnitudes - left > right - magnitudes, idx, idx - 1)
    out = bytearray()
    for block_codes, exponent in zip(codes.astype(np.uint8), exponents.reshape(-1)):
        out.append(int(exponent) & 0xFF)
        out.extend(block_codes.tobytes())
    return bytes(out)
