"""Round-to-nearest (RTN) quantization, the vanilla baseline.

Implements the paper's Section 2.1 definition with both symmetric
(absmax) and asymmetric (min-max) grids and optional group-wise
scaling along the last axis ("128G" style).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass
class RTNQuantized:
    """Integer codes plus the affine grid(s) that produced them."""

    codes: np.ndarray
    scale: np.ndarray
    zero: np.ndarray
    bits: int
    symmetric: bool
    group_size: Optional[int]
    shape: Tuple[int, ...]

    @property
    def bits_per_value(self) -> float:
        """Code bits plus amortised scale/zero-point overhead (FP16 each)."""
        num = int(np.prod(self.shape))
        overhead = 16.0 * self.scale.size
        if not self.symmetric:
            overhead += 16.0 * self.zero.size
        return self.bits + overhead / max(1, num)


def _grouped(values: np.ndarray, group_size: Optional[int]) -> np.ndarray:
    """Reshape so the last axis is one quantization group."""
    flat = values.reshape(-1)
    if group_size is None:
        return flat.reshape(1, -1)
    if flat.size % group_size != 0:
        pad = group_size - flat.size % group_size
        flat = np.concatenate([flat, np.zeros(pad, dtype=flat.dtype)])
    return flat.reshape(-1, group_size)


def rtn_quantize(
    values: np.ndarray,
    bits: int,
    symmetric: bool = True,
    group_size: Optional[int] = None,
) -> RTNQuantized:
    """Quantize to ``bits``-bit integers with RTN rounding."""
    if not 1 <= bits <= 16:
        raise ValueError("bits must be in 1..16")
    values = np.asarray(values, dtype=np.float64)
    groups = _grouped(values, group_size)

    if symmetric:
        qmax = float(2 ** (bits - 1) - 1) if bits > 1 else 1.0
        absmax = np.max(np.abs(groups), axis=1, keepdims=True)
        scale = np.where(absmax > 0, absmax / qmax, 1.0)
        codes = np.clip(np.rint(groups / scale), -qmax - (bits > 1), qmax)
        zero = np.zeros_like(scale)
    else:
        levels = float(2**bits - 1)
        lo = np.min(groups, axis=1, keepdims=True)
        hi = np.max(groups, axis=1, keepdims=True)
        span = hi - lo
        scale = np.where(span > 0, span / levels, 1.0)
        zero = lo
        codes = np.clip(np.rint((groups - zero) / scale), 0, levels)

    return RTNQuantized(
        codes=codes.astype(np.int32),
        scale=scale.astype(np.float64),
        zero=zero.astype(np.float64),
        bits=bits,
        symmetric=symmetric,
        group_size=group_size,
        shape=tuple(values.shape),
    )


def rtn_dequantize(quantized: RTNQuantized) -> np.ndarray:
    """Reconstruct float values from :class:`RTNQuantized`."""
    if quantized.symmetric:
        groups = quantized.codes * quantized.scale
    else:
        groups = quantized.codes * quantized.scale + quantized.zero
    flat = groups.reshape(-1)[: int(np.prod(quantized.shape))]
    return flat.reshape(quantized.shape)


def rtn_roundtrip(
    values: np.ndarray,
    bits: int,
    symmetric: bool = True,
    group_size: Optional[int] = None,
) -> np.ndarray:
    """Quantize-dequantize in one call (what most callers want)."""
    return rtn_dequantize(rtn_quantize(values, bits, symmetric, group_size))
