"""Calibration-data collection for GPTQ / AWQ.

Both baselines need the activations flowing *into* each linear layer.
:func:`collect_linear_inputs` temporarily instruments every
:class:`~repro.nn.layers.Linear` in a model, runs calibration batches,
and returns per-parameter input matrices -- the WikiText-2 calibration
pass of the original methods, on our synthetic corpus.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.nn.autograd import Tensor, no_grad
from repro.nn.layers import Linear, Module


def collect_linear_inputs(
    model: Module,
    batches: Sequence[np.ndarray],
    forward=None,
    max_rows: int = 2048,
) -> Dict[str, np.ndarray]:
    """Run calibration batches and capture each Linear's input rows.

    Returns ``{"<linear>.weight": X}`` with ``X`` of shape
    ``(rows, in_features)``, keyed to match ``named_parameters``.
    ``forward`` defaults to calling the model on each batch.
    """
    forward = forward or (lambda tokens: model.forward(tokens))
    linears: Dict[int, str] = {}
    for name, _ in model.named_parameters():
        if name.endswith(".weight"):
            linears[name[: -len(".weight")]] = name

    # Map Linear objects to their parameter names via attribute walk.
    owners: Dict[int, str] = {}

    def walk(module: Module, prefix: str) -> None:
        for attr, value in sorted(vars(module).items()):
            full = f"{prefix}{attr}"
            if isinstance(value, Linear):
                owners[id(value)] = f"{full}.weight"
            elif isinstance(value, Module):
                walk(value, f"{full}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        walk(item, f"{full}.{index}.")

    walk(model, "")

    captured: Dict[str, List[np.ndarray]] = {name: [] for name in owners.values()}
    original_call = Linear.__call__

    def recording_call(self, x: Tensor) -> Tensor:
        name = owners.get(id(self))
        if name is not None:
            rows = x.data.reshape(-1, x.data.shape[-1])
            captured[name].append(rows.copy())
        return original_call(self, x)

    Linear.__call__ = recording_call
    try:
        with no_grad():
            for batch in batches:
                forward(np.asarray(batch))
    finally:
        Linear.__call__ = original_call

    out: Dict[str, np.ndarray] = {}
    for name, chunks in captured.items():
        if chunks:
            stacked = np.concatenate(chunks, axis=0)
            if stacked.shape[0] > max_rows:
                stride = stacked.shape[0] // max_rows
                stacked = stacked[::stride][:max_rows]
            out[name] = stacked
    return out
