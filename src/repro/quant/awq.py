"""AWQ: activation-aware weight quantization (Lin et al.).

Salient weight channels (those multiplying large activations) are
protected by scaling them up before RTN quantization and folding the
inverse scale into the activation path.  The per-channel scale is
``s_j = mean(|X_j|)^alpha`` with ``alpha`` grid-searched to minimise
the layer's output error -- which is why AWQ, like GPTQ, needs
calibration data while LLM.265 does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.quant.rtn import rtn_roundtrip


@dataclass
class AWQResult:
    """Dequantized weight plus the chosen smoothing exponent."""

    weight: np.ndarray
    scales: np.ndarray
    alpha: float


def awq_quantize(
    weight: np.ndarray,
    calibration_inputs: np.ndarray,
    bits: int = 4,
    group_size: Optional[int] = None,
    alpha_grid: Tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
) -> AWQResult:
    """Quantize ``weight`` (in_features, out_features) with AWQ.

    Returns the *effective* dequantized weight: scaling has been folded
    back so callers can substitute it directly for the original.
    """
    weight = np.asarray(weight, dtype=np.float64)
    inputs = np.asarray(calibration_inputs, dtype=np.float64)
    if inputs.shape[1] != weight.shape[0]:
        raise ValueError("calibration inputs must match in_features")

    importance = np.mean(np.abs(inputs), axis=0) + 1e-8
    reference = inputs @ weight

    best: Optional[AWQResult] = None
    best_err = np.inf
    for alpha in alpha_grid:
        scales = importance**alpha
        scales = scales / (np.sqrt(scales.max() * scales.min()) or 1.0)
        scaled = weight * scales[:, None]
        restored = rtn_roundtrip(scaled, bits, symmetric=True, group_size=group_size)
        effective = restored / scales[:, None]
        err = float(np.mean((inputs @ effective - reference) ** 2))
        if err < best_err:
            best_err = err
            best = AWQResult(weight=effective, scales=scales, alpha=alpha)
    assert best is not None
    return best
