"""GPTQ: Hessian-guided post-training quantization (Frantar et al.).

The algorithm quantizes a weight matrix column by column, each time
propagating the rounding error into the not-yet-quantized columns using
the inverse Hessian of the layer's calibration inputs.  This is the
calibrated baseline of Figure 5 / Table 1 -- unlike LLM.265 it *needs*
calibration activations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def calibration_hessian(inputs: np.ndarray, damping: float = 0.01) -> np.ndarray:
    """Layer Hessian ``2 X^T X`` from calibration activations (n, d)."""
    inputs = np.asarray(inputs, dtype=np.float64)
    hessian = 2.0 * inputs.T @ inputs
    mean_diag = float(np.mean(np.diag(hessian))) or 1.0
    hessian[np.diag_indices_from(hessian)] += damping * mean_diag
    return hessian


def _quantize_value(
    values: np.ndarray, scale: np.ndarray, qmax: float
) -> np.ndarray:
    codes = np.clip(np.rint(values / scale), -qmax - 1, qmax)
    return codes * scale


def gptq_quantize(
    weight: np.ndarray,
    calibration_inputs: np.ndarray,
    bits: int = 4,
    group_size: Optional[int] = None,
    damping: float = 0.01,
) -> np.ndarray:
    """Quantize ``weight`` (in_features, out_features) with GPTQ.

    ``calibration_inputs`` is (n_samples, in_features) -- activations
    flowing *into* this layer.  Returns the dequantized weight (what
    inference uses); the stored form would be ``bits``-bit codes plus
    per-(group,) scales.
    """
    if not 2 <= bits <= 8:
        raise ValueError("bits must be in 2..8")
    weight = np.asarray(weight, dtype=np.float64).copy()
    in_features = weight.shape[0]
    if calibration_inputs.shape[1] != in_features:
        raise ValueError("calibration inputs must match in_features")

    hessian = calibration_hessian(calibration_inputs, damping)
    # Cholesky of the inverse Hessian (upper), as in the reference code.
    hinv = np.linalg.inv(hessian)
    hinv_chol = np.linalg.cholesky(hinv).T  # upper triangular

    qmax = float(2 ** (bits - 1) - 1)
    out = np.empty_like(weight)
    scale = None
    for col in range(in_features):
        if group_size is None:
            if scale is None:
                absmax = np.max(np.abs(weight), axis=0)
                scale = np.where(absmax > 0, absmax / qmax, 1.0)
        elif col % group_size == 0:
            block = weight[col : col + group_size]
            absmax = np.max(np.abs(block), axis=0)
            scale = np.where(absmax > 0, absmax / qmax, 1.0)

        row = weight[col]
        quantized = _quantize_value(row, scale, qmax)
        out[col] = quantized
        error = (row - quantized) / hinv_chol[col, col]
        # Propagate error into the remaining (unquantized) rows.
        if col + 1 < in_features:
            weight[col + 1 :] -= np.outer(hinv_chol[col, col + 1 :], error)
    return out


def gptq_layer_error(
    original: np.ndarray, quantized: np.ndarray, inputs: np.ndarray
) -> float:
    """Output-space MSE ``||X W - X W_q||^2 / n`` (what GPTQ minimises)."""
    delta = inputs @ (original - quantized)
    return float(np.mean(delta**2))
