"""KV-cache quantizers: per-head asymmetric dynamic quantization.

The Figure 8 baselines ("KV3"/"KV4") quantize the key/value cache with
asymmetric min-max dynamic quantization per head; the LLM.265 path
routes the same tensors through the video codec instead.  Both are
exposed as KV hooks compatible with
:meth:`repro.nn.transformer.GPT.set_kv_hook`.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.quant.rotation import rotate_quantize
from repro.quant.rtn import rtn_roundtrip


def quantize_kv(cache: np.ndarray, bits: int, group_size: int = 128) -> np.ndarray:
    """Asymmetric min-max dynamic quantization of a KV tensor."""
    return rtn_roundtrip(cache, bits, symmetric=False, group_size=group_size)


def rtn_kv_hook(bits: int, group_size: int = 128) -> Callable:
    """KV hook applying per-group asymmetric RTN to keys and values."""

    def hook(k: np.ndarray, v: np.ndarray, layer_index: int):
        return (
            quantize_kv(k, bits, group_size),
            quantize_kv(v, bits, group_size),
        )

    return hook


def rotation_kv_hook(bits: int, seed: int = 0, group_size: int = 128) -> Callable:
    """KV hook in the QuaRot/SpinQuant style: rotate, quantize, unrotate."""

    def hook(k: np.ndarray, v: np.ndarray, layer_index: int):
        return (
            rotate_quantize(k, bits, seed=seed + layer_index, group_size=group_size),
            rotate_quantize(v, bits, seed=seed + layer_index + 1000, group_size=group_size),
        )

    return hook


def codec_kv_hook(codec, bits_per_value: float, qp_cache: Optional[dict] = None) -> Callable:
    """KV hook routing the cache through the LLM.265 tensor codec.

    ``qp_cache`` (optional dict) memoises the QP found for each layer's
    first call so later calls skip the bitrate search -- the same trick
    the throughput path uses on real NVENC sessions.
    """
    qp_cache = qp_cache if qp_cache is not None else {}

    def compress(tensor: np.ndarray, key) -> np.ndarray:
        if key in qp_cache:
            compressed = codec.encode(tensor, qp=qp_cache[key])
        else:
            compressed = codec.encode(tensor, bits_per_value=bits_per_value)
            qp_cache[key] = compressed.qp
        return codec.decode(compressed).astype(np.float64)

    def hook(k: np.ndarray, v: np.ndarray, layer_index: int):
        return (
            compress(k, ("k", layer_index, k.shape)),
            compress(v, ("v", layer_index, v.shape)),
        )

    return hook
