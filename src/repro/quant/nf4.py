"""NormalFloat quantization (QLoRA's NF4 and the general NF-k family).

The codebook places quantile centres of the standard normal so every
code is used equally often on Gaussian data; values are scaled by the
per-block absmax before lookup.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np


@lru_cache(maxsize=None)
def normalfloat_codebook(bits: int = 4) -> np.ndarray:
    """Symmetric quantile codebook in [-1, 1] with 2**bits entries."""
    if not 2 <= bits <= 8:
        raise ValueError("bits must be in 2..8")
    from scipy.stats import norm  # offline SciPy is available

    count = 2**bits
    # Evenly spaced quantiles, avoiding the infinite tails, split so that
    # zero is exactly representable (as in the QLoRA construction).
    half = count // 2
    neg = norm.ppf(np.linspace(0.03, 0.5, half, endpoint=False))
    pos = norm.ppf(np.linspace(0.5, 0.97, count - half, endpoint=True))
    levels = np.concatenate([neg, pos])
    levels[half] = 0.0
    return np.sort(levels / np.max(np.abs(levels)))


def nf_quantize(values: np.ndarray, bits: int = 4, block_size: int = 64) -> np.ndarray:
    """Quantize-dequantize with the NormalFloat codebook (blockwise absmax)."""
    values = np.asarray(values, dtype=np.float64)
    codebook = normalfloat_codebook(bits)
    flat = values.reshape(-1)
    pad = (-flat.size) % block_size
    if pad:
        flat = np.concatenate([flat, np.zeros(pad)])
    blocks = flat.reshape(-1, block_size)
    absmax = np.max(np.abs(blocks), axis=1, keepdims=True)
    absmax = np.where(absmax > 0, absmax, 1.0)
    normalised = blocks / absmax
    indices = np.searchsorted(codebook, normalised)
    indices = np.clip(indices, 1, len(codebook) - 1)
    left = codebook[indices - 1]
    right = codebook[indices]
    pick_right = (normalised - left) > (right - normalised)
    snapped = np.where(pick_right, right, left)
    restored = (snapped * absmax).reshape(-1)[: values.size]
    return restored.reshape(values.shape)
