"""Rotation-based quantization (the QuaRot / SpinQuant family).

A random orthogonal (Hadamard) rotation spreads outlier energy across
all channels, making the rotated tensor nearly Gaussian and hence easy
to quantize; the inverse rotation is applied after dequantization.
Used as the activation/KV baseline in Figure 8.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

import numpy as np

from repro.quant.rtn import rtn_roundtrip


@lru_cache(maxsize=None)
def hadamard_matrix(n: int) -> np.ndarray:
    """Sylvester Hadamard matrix of size ``n`` (power of two), normalised."""
    if n < 1 or n & (n - 1):
        raise ValueError("Hadamard size must be a power of two")
    h = np.array([[1.0]])
    while h.shape[0] < n:
        h = np.block([[h, h], [h, -h]])
    return h / np.sqrt(n)


def randomized_hadamard(n: int, seed: int = 0) -> np.ndarray:
    """Hadamard with random sign flips: a cheap random rotation."""
    rng = np.random.default_rng(seed)
    signs = rng.choice([-1.0, 1.0], size=n)
    return hadamard_matrix(n) * signs[None, :]


def rotate_quantize(
    values: np.ndarray,
    bits: int,
    seed: int = 0,
    group_size: Optional[int] = None,
    symmetric: bool = False,
) -> np.ndarray:
    """Quantize in the rotated domain; returns the dequantized tensor.

    The rotation acts on the last axis.  Non-power-of-two dims are
    zero-padded for the rotation and cropped afterwards.
    """
    values = np.asarray(values, dtype=np.float64)
    dim = values.shape[-1]
    padded = 1 << (dim - 1).bit_length()
    rotation = randomized_hadamard(padded, seed)
    flat = values.reshape(-1, dim)
    if padded != dim:
        flat = np.pad(flat, ((0, 0), (0, padded - dim)))
    rotated = flat @ rotation.T
    restored = rtn_roundtrip(rotated, bits, symmetric=symmetric, group_size=group_size)
    back = restored @ rotation
    return back[:, :dim].reshape(values.shape)


def incoherence(values: np.ndarray) -> float:
    """max|x| / (std * sqrt(2 log n)): ~1 for Gaussian, >>1 with outliers."""
    flat = np.asarray(values, dtype=np.float64).reshape(-1)
    std = float(np.std(flat)) or 1.0
    n = max(2, flat.size)
    return float(np.max(np.abs(flat)) / (std * np.sqrt(2.0 * np.log(n))))
