"""Supervision: detect crashed/hung work, restart pools, re-dispatch.

Two supervision shapes, both bounded and seeded:

- :meth:`Supervisor.run` guards **one unit of work** (a whole request
  attempt).  The work runs on a supervised thread so the caller's wait
  can be bounded (``attempt_timeout_s``): a hang is detected by the
  *supervisor's* clock, never by trusting the work to return.  The
  abandoned attempt is handed a child deadline, so the cooperative
  checks inside the codec stop it shortly after the supervisor gives
  up -- partial work cancels itself instead of running orphaned.

- :meth:`Supervisor.map` guards a **batch fan-out** over
  :mod:`repro.parallel`.  Item failures are tracked individually; a
  broken pool (``BrokenProcessPool`` -- a worker was SIGKILLed or
  OOMed) or a hung worker (item timeout) causes the dead pool to be
  discarded (:func:`repro.parallel.discard_pool`) and only the
  unfinished items re-dispatched to a fresh one, up to
  ``RetryPolicy.max_retries`` rounds.

Backoff between retries is real (the service actually waits) but tiny
and *seeded*: jitter comes from one ``numpy`` generator, so a chaos
run replays the same schedule.
"""

from __future__ import annotations

import time
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

import repro.telemetry as telemetry
from repro.telemetry import flightrecorder
from repro.telemetry.propagate import TracedTask, count_lost_deltas, merge_delta
from repro.parallel import (
    BrokenPoolError,
    ParallelConfig,
    WorkerTimeoutError,
    discard_pool,
    get_executor,
    parallel_map,
)
from repro.resilience.deadline import Deadline, effective_timeout
from repro.resilience.faults import RetryPolicy

__all__ = ["RetriesExhausted", "Supervisor", "WorkerCrashed"]

T = TypeVar("T")
R = TypeVar("R")

#: Exceptions treated as transient infrastructure faults: the work
#: itself may be fine, the worker running it died or stalled.  Note
#: ``ValueError`` (and so ``CorruptStreamError``) is deliberately NOT
#: here -- bad input fails identically on every retry.
RETRYABLE = (BrokenPoolError, WorkerTimeoutError, RuntimeError, OSError)


class WorkerCrashed(BrokenPoolError):
    """A worker died mid-task (also raised by simulated chaos crashes).

    Subclasses the stdlib broken-pool family so every supervision and
    fallback path treats real and injected crashes identically.
    """


class RetriesExhausted(RuntimeError):
    """Supervision gave up: the fault persisted through every retry."""

    def __init__(self, message: str, last_error: Optional[BaseException] = None,
                 attempts: int = 0) -> None:
        super().__init__(message)
        self.last_error = last_error
        self.attempts = attempts


class Supervisor:
    """Bounded-retry execution guard with seeded backoff.

    Parameters
    ----------
    retry:
        Retry budget and backoff curve (reuses the transport layer's
        :class:`~repro.resilience.faults.RetryPolicy`).
    seed:
        Seeds the backoff jitter; two supervisors with the same seed
        produce the same wait schedule.
    executor:
        Thread-pool policy used by :meth:`run` to make single-item
        waits boundable.  Threads, not processes: request bodies close
        over live codec objects, and a hung *thread* is cheap to
        abandon (its cooperative deadline reaps it).
    """

    def __init__(
        self,
        retry: Optional[RetryPolicy] = None,
        seed: int = 0,
        executor: Optional[ParallelConfig] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.retry = retry or RetryPolicy(max_retries=3, backoff_base_s=0.002)
        self._rng = np.random.default_rng(seed)
        self._executor_config = executor or ParallelConfig(
            workers=8, executor="thread"
        )
        self._sleep = sleep
        self.restarts = 0  # pools discarded + recreated
        self.timeouts = 0  # hung work detected
        self.retries = 0  # re-dispatched attempts

    # -- internals -----------------------------------------------------

    def _backoff(self, attempt: int, deadline: Optional[Deadline]) -> None:
        """Seeded-jitter exponential backoff, capped by the deadline."""
        wait_s = self.retry.backoff_s(attempt) * float(0.5 + self._rng.random())
        capped = effective_timeout(deadline, wait_s)
        if capped is not None and capped > 0:
            telemetry.observe("serving.backoff_s", capped)
            self._sleep(capped)

    # -- single-item supervision (request attempts) --------------------

    def run(
        self,
        work: Callable[[Optional[Deadline]], R],
        attempt_timeout_s: Optional[float] = None,
        deadline: Optional[Deadline] = None,
        retryable: Tuple[type, ...] = RETRYABLE,
    ) -> Tuple[R, int]:
        """Run ``work`` under supervision; returns ``(result, attempts)``.

        ``work`` receives the *attempt's* deadline (the request
        deadline capped at ``attempt_timeout_s``) and must thread it
        into whatever it calls, so an attempt the supervisor abandoned
        stops cooperating on its own.  Transient failures (``retryable``)
        are retried with seeded backoff until the retry budget or the
        request deadline runs out; anything else propagates immediately.

        With telemetry live on the calling thread, every attempt runs
        under a child registry whose delta is merged back as a sibling
        span (``attempt[0]``, ``attempt[1]``, ...) -- including
        *failed* attempts, so a trace shows what each retry actually
        did.  A hung attempt's delta is unrecoverable and is accounted
        in ``telemetry.worker_deltas_lost``.
        """
        pool = get_executor(self._executor_config)
        parent = telemetry.current()
        last_error: Optional[BaseException] = None
        attempts = 0
        for attempt in range(self.retry.max_retries + 1):
            if deadline is not None:
                deadline.check("supervisor.run")
            attempt_deadline = (
                deadline.child(attempt_timeout_s, label="attempt")
                if deadline is not None and attempt_timeout_s is not None
                else deadline
            )
            attempts += 1
            if parent is not None:
                task = TracedTask(
                    work,
                    ctx=parent.trace_ctx,
                    trace=parent.trace,
                    capture_error=True,
                    root=f"attempt[{attempt}]",
                )
            else:
                task = work
            future = pool.submit(task, attempt_deadline)
            wait_s = effective_timeout(deadline, attempt_timeout_s)
            try:
                outcome = future.result(timeout=wait_s)
                if parent is not None:
                    merge_delta(parent, outcome.delta, under=parent.current_path())
                    if outcome.error is not None:
                        raise outcome.error
                    result = outcome.result
                else:
                    result = outcome
                if attempt:
                    telemetry.count("serving.recovered_after_retry")
                return result, attempts
            except FuturesTimeoutError:
                future.cancel()
                self.timeouts += 1
                telemetry.count("serving.worker_timeouts")
                count_lost_deltas(parent, 1)
                last_error = WorkerTimeoutError(
                    f"attempt {attempt} exceeded {wait_s:.3f}s"
                )
                flightrecorder.record(
                    "supervisor.timeout", attempt=attempt, wait_s=wait_s
                )
            except retryable as exc:
                if isinstance(exc, BrokenPoolError):
                    telemetry.count("serving.worker_crashes")
                last_error = exc
                flightrecorder.record(
                    "supervisor.attempt_failed",
                    attempt=attempt,
                    error_type=type(exc).__name__,
                    error=str(exc),
                )
            if attempt < self.retry.max_retries:
                self.retries += 1
                flightrecorder.record("supervisor.retry", attempt=attempt + 1)
                self._backoff(attempt + 1, deadline)
        raise RetriesExhausted(
            f"work failed after {attempts} attempts: {last_error!r}",
            last_error=last_error,
            attempts=attempts,
        )

    # -- batch supervision (pool fan-outs) -----------------------------

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        config: ParallelConfig,
        label: str = "supervised",
        timeout_s: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> List[R]:
        """Fan ``items`` out with restart + re-dispatch supervision.

        Behaves like :func:`repro.parallel.parallel_map` (ordered
        results, earliest exception) except that pool breakage and hung
        workers are survived: the pool is restarted and only the items
        without a result yet are re-dispatched, up to the retry budget.
        ``fn`` must be deterministic/idempotent -- every codec fan-out
        body is, which is what makes re-dispatch sound.
        """
        items = list(items)
        results: List[Optional[Tuple[R]]] = [None] * len(items)  # boxed
        pending = list(range(len(items)))
        last_error: Optional[BaseException] = None
        for attempt in range(self.retry.max_retries + 1):
            if deadline is not None:
                deadline.check("supervisor.map")
            if attempt:
                self.retries += 1
                telemetry.count("serving.redispatches", len(pending))
                self._backoff(attempt, deadline)
            try:
                batch = parallel_map(
                    fn,
                    [items[i] for i in pending],
                    config,
                    label=label,
                    timeout_s=timeout_s,
                    deadline=deadline,
                    on_broken="raise",
                )
            except (BrokenPoolError, WorkerTimeoutError) as exc:
                # The pool is wrecked (dead worker) or wedged (hung
                # worker): discard it so the next round gets a fresh
                # one, then re-dispatch everything still unfinished.
                last_error = exc
                if not config.is_serial():
                    workers = min(config.resolved_workers(), len(pending))
                    discarded = discard_pool(config.executor, workers)
                    # parallel_map discards a broken pool itself before
                    # re-raising; either way the next round gets a fresh
                    # pool, which is what "restart" counts.
                    if discarded or isinstance(exc, BrokenPoolError):
                        self.restarts += 1
                        telemetry.count("serving.pool_restarts")
                        flightrecorder.record(
                            "supervisor.pool_restart",
                            pending=len(pending),
                            error_type=type(exc).__name__,
                        )
                if isinstance(exc, WorkerTimeoutError):
                    self.timeouts += 1
                continue
            for index, value in zip(pending, batch):
                results[index] = (value,)
            pending = []
            break
        if pending:
            raise RetriesExhausted(
                f"{len(pending)}/{len(items)} items unfinished after "
                f"{self.retry.max_retries + 1} dispatch rounds: {last_error!r}",
                last_error=last_error,
                attempts=self.retry.max_retries + 1,
            )
        return [box[0] for box in results]  # type: ignore[index]

    def stats(self) -> dict:
        return {
            "restarts": self.restarts,
            "timeouts": self.timeouts,
            "retries": self.retries,
        }
