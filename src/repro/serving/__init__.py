"""repro.serving: the fault-tolerant layer that turns the codec into a service.

The codec library raises or hangs like any library; a serving system
cannot.  This package composes the PR 2 resilience mechanisms (CRC
framing, typed errors, concealment, fault injection) and the PR 3
parallel engine into a supervised request path with measured
availability:

- :mod:`repro.serving.broker` -- bounded admission (typed
  :class:`Overloaded` backpressure instead of unbounded queues).
- :mod:`repro.serving.breaker` -- per-backend circuit breaking.
- :mod:`repro.serving.supervisor` -- crash/hang detection, pool
  restart, bounded retry with seeded backoff.
- :mod:`repro.serving.ladder` -- the degradation ladder (turbo ->
  vectorized -> legacy, shrinking parallelism).
- :mod:`repro.serving.slo` -- latency percentiles, availability, and
  shed/degraded/retried accounting exported as ``serving.*`` telemetry.
- :mod:`repro.serving.service` -- :class:`CodecService`, the request
  path itself.
- :mod:`repro.serving.chaos` -- the seeded chaos soak harness behind
  ``llm265 chaos`` / ``llm265 serve-bench``.

The contract every response obeys (asserted by the chaos harness over
seeded fault schedules): a completed request is bit-exact with its
serial reference, or a typed error (:class:`Overloaded`,
:class:`~repro.resilience.errors.DeadlineExceeded`,
:class:`~repro.resilience.errors.CorruptStreamError`), or explicitly
flagged ``degraded=True`` -- never a silent wrong answer.  See
``docs/SERVING.md``.
"""

from repro.resilience.deadline import Deadline, DeadlineExceeded
from repro.serving.breaker import CircuitBreaker
from repro.serving.broker import Overloaded, RequestBroker
from repro.serving.chaos import ChaosConfig, run_chaos, run_serve_bench
from repro.serving.ladder import DEFAULT_LADDER, DegradationLadder, Rung
from repro.serving.service import CodecService, ServeResponse, ServiceConfig
from repro.serving.slo import SloTracker
from repro.serving.supervisor import RetriesExhausted, Supervisor, WorkerCrashed

__all__ = [
    "ChaosConfig",
    "CircuitBreaker",
    "CodecService",
    "DEFAULT_LADDER",
    "Deadline",
    "DeadlineExceeded",
    "DegradationLadder",
    "Overloaded",
    "RequestBroker",
    "RetriesExhausted",
    "Rung",
    "ServeResponse",
    "ServiceConfig",
    "SloTracker",
    "Supervisor",
    "WorkerCrashed",
    "run_chaos",
    "run_serve_bench",
]
