"""`CodecService`: the supervised request path around the tensor codec.

One request = one :class:`ServeResponse`, always.  The service never
lets a library exception, a crashed worker, or a hung attempt escape
to the caller raw; every path funnels into the response contract the
chaos harness asserts:

- ``ok`` and not ``degraded``: the payload is bit-exact with what a
  healthy serial run at the same ladder rung would have produced.
- ``ok`` and ``degraded=True``: a reduced-fidelity answer, produced
  only by the explicit concealment fallback for damaged decode inputs
  (with the patched tiles enumerated in ``report``).
- not ``ok``: a *typed* error -- :class:`~repro.serving.broker.Overloaded`
  (shed at admission), :class:`~repro.resilience.errors.DeadlineExceeded`
  (budget expired), :class:`~repro.resilience.errors.CorruptStreamError`
  (input damaged beyond concealment), or
  :class:`~repro.serving.supervisor.RetriesExhausted` (infrastructure
  fault outlasted supervision).

Request flow: broker admission (bounded, typed shedding) -> ladder
rung selection (load + per-rung circuit breakers) -> supervised
execution (bounded attempt timeouts, seeded-backoff retries, child
deadlines so abandoned attempts self-cancel) -> on persistent failure,
step down the ladder; for damaged decodes, fall through to
concealment.  Every outcome lands in the SLO tracker.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

import repro.telemetry as telemetry
from repro.telemetry import flightrecorder
from repro.telemetry.metrics import (
    MetricsSnapshot,
    PeriodicSnapshotter,
    render_prometheus,
)
from repro.telemetry.propagate import TraceContext, mint_trace, trace_scope
from repro.parallel import ParallelConfig, warm_pool
from repro.resilience.deadline import Deadline, DeadlineExceeded
from repro.resilience.errors import ConcealmentReport, CorruptStreamError
from repro.resilience.faults import RetryPolicy
from repro.serving.broker import Overloaded, RequestBroker
from repro.serving.ladder import DEFAULT_LADDER, DegradationLadder, Rung
from repro.serving.slo import SloTracker
from repro.serving.supervisor import RetriesExhausted, Supervisor
from repro.tensor.codec import CompressedTensor, TensorCodec

__all__ = ["CodecService", "ServeResponse", "ServiceConfig"]

#: Hook signature for fault injection: called at the top of every
#: supervised attempt with the request kind ("encode" / "decode"); may
#: sleep (straggler/hang), raise (crash/exception), or do nothing.
FaultGate = Callable[[str], None]


@dataclass
class ServiceConfig:
    """Operating envelope of one :class:`CodecService`."""

    tile: int = 32
    default_qp: float = 26.0
    #: Default end-to-end request budget (overridable per request).
    deadline_s: float = 2.0
    #: Supervision bound on a single attempt; a hang is declared after
    #: this long and the attempt abandoned (its child deadline reaps
    #: it).  Must comfortably exceed one honest encode of your tensors.
    attempt_timeout_s: float = 0.25
    max_inflight: int = 2
    max_queue: int = 8
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(max_retries=3, backoff_base_s=0.002)
    )
    rungs: Sequence[Rung] = DEFAULT_LADDER
    breaker_failure_threshold: int = 3
    breaker_cooldown_s: float = 1.0
    #: Seeds supervision backoff jitter (reproducible soak schedules).
    seed: int = 0
    #: Thread count of the supervision pool that bounds attempt waits.
    #: Pools are shared per (kind, workers), so a cluster of in-process
    #: shards sizes this for headroom: a hung attempt parks a thread
    #: for its whole stall, and a starved pool turns queueing delay
    #: into spurious attempt timeouts.
    supervisor_workers: int = 8
    #: When set, a request that fails non-retryably (every retry and
    #: ladder rung exhausted) dumps a flight-recorder postmortem bundle
    #: into this directory (see ``docs/OBSERVABILITY.md``).
    postmortem_dir: Optional[str] = None


@dataclass
class ServeResponse:
    """The one shape every request resolves to."""

    ok: bool
    kind: str  # "encode" | "decode"
    value: object = None  # CompressedTensor (encode) / np.ndarray (decode)
    degraded: bool = False
    error: Optional[BaseException] = None
    rung: str = ""
    retries: int = 0  # extra attempts beyond the first, across rungs
    ladder_steps: int = 0  # rungs stepped down after the starting one
    concealed: int = 0  # tiles patched by concealment (decode only)
    report: Optional[ConcealmentReport] = None
    latency_s: float = 0.0
    trace_id: str = ""  # request identity; matches span events' args.trace

    @property
    def error_type(self) -> str:
        return type(self.error).__name__ if self.error is not None else ""

    def summary(self) -> str:
        if self.ok:
            flag = " DEGRADED" if self.degraded else ""
            return (
                f"{self.kind} ok rung={self.rung}{flag} "
                f"retries={self.retries} {1e3 * self.latency_s:.1f}ms"
            )
        return (
            f"{self.kind} {self.error_type}: {self.error} "
            f"({1e3 * self.latency_s:.1f}ms)"
        )


class CodecService:
    """Fault-tolerant encode/decode service over :class:`TensorCodec`."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        cfg = self.config
        self.broker = RequestBroker(cfg.max_inflight, cfg.max_queue)
        self.slo = SloTracker()
        self.supervisor = Supervisor(
            retry=cfg.retry,
            seed=cfg.seed,
            executor=ParallelConfig(
                workers=cfg.supervisor_workers, executor="thread"
            ),
        )
        self.ladder = DegradationLadder(
            cfg.rungs,
            failure_threshold=cfg.breaker_failure_threshold,
            cooldown_s=cfg.breaker_cooldown_s,
        )
        self._codecs = {
            rung.name: TensorCodec(
                tile=cfg.tile,
                parallel=rung.parallel,
                rd_search=rung.rd_search,
                decode=rung.decode,
                encode=rung.encode,
            )
            for rung in self.ladder.rungs
        }
        # Concealment of damaged inputs always runs on the serial legacy
        # decoder: the fast path is byte-identical there too (fuzz-gated),
        # but a salvage pass is the wrong moment for clever code.
        self._conceal_codec = TensorCodec(tile=cfg.tile, decode="legacy")
        # Decode pools are paid for at construction, not on the first
        # hot request.
        for rung in self.ladder.rungs:
            warm_pool(rung.parallel)
        #: Path of the most recent postmortem bundle, if any was dumped.
        self.last_postmortem: Optional[str] = None

    # -- public API ----------------------------------------------------

    def encode(
        self,
        tensor: np.ndarray,
        qp: Optional[float] = None,
        bits_per_value: Optional[float] = None,
        target_mse: Optional[float] = None,
        deadline_s: Optional[float] = None,
        fault_gate: Optional[FaultGate] = None,
        trace_ctx: Optional[TraceContext] = None,
    ) -> ServeResponse:
        """Compress ``tensor``; never raises, always a :class:`ServeResponse`."""
        targets = dict(qp=qp, bits_per_value=bits_per_value, target_mse=target_mse)
        if all(v is None for v in targets.values()):
            targets["qp"] = self.config.default_qp

        def attempt_factory(rung: Rung):
            codec = self._codecs[rung.name]

            def work(attempt_deadline: Optional[Deadline]):
                if fault_gate is not None:
                    fault_gate("encode")
                return codec.encode(tensor, deadline=attempt_deadline, **targets)

            return work

        return self._serve("encode", attempt_factory, deadline_s,
                           trace_ctx=trace_ctx)

    def decode(
        self,
        blob: bytes,
        deadline_s: Optional[float] = None,
        fault_gate: Optional[FaultGate] = None,
        trace_ctx: Optional[TraceContext] = None,
    ) -> ServeResponse:
        """Decompress ``blob``; damaged payloads degrade to concealment."""

        def attempt_factory(rung: Rung):
            codec = self._codecs[rung.name]

            def work(attempt_deadline: Optional[Deadline]):
                if fault_gate is not None:
                    fault_gate("decode")
                compressed = CompressedTensor.from_bytes(blob, strict=True)
                tensor, report = codec.decode_with_report(
                    compressed, conceal=False, deadline=attempt_deadline
                )
                return tensor, report

            return work

        def conceal_fallback(attempt_deadline: Optional[Deadline]):
            if fault_gate is not None:
                fault_gate("decode")
            compressed = CompressedTensor.from_bytes(blob, strict=False)
            return self._conceal_codec.decode_with_report(
                compressed, conceal=True, deadline=attempt_deadline
            )

        return self._serve(
            "decode", attempt_factory, deadline_s, conceal_fallback,
            trace_ctx=trace_ctx,
        )

    def snapshot(self) -> MetricsSnapshot:
        """Versioned :class:`MetricsSnapshot` of the whole service.

        Includes the calling thread's telemetry registry (empty
        sections when telemetry is disabled) plus the SLO, broker,
        ladder, and supervisor components.
        """
        return MetricsSnapshot.capture(
            slo=self.slo.snapshot(),
            broker=self.broker.stats(),
            ladder=self.ladder.stats(),
            supervisor=self.supervisor.stats(),
        )

    def stats(self) -> dict:
        """Service-wide SLO + component introspection (JSON-ready)."""
        return self.snapshot().to_dict()

    def metrics_text(self) -> str:
        """The service snapshot in Prometheus text exposition format."""
        return render_prometheus(self.snapshot())

    def start_snapshotter(
        self, path: str, interval_s: float = 5.0, render: str = "json"
    ) -> PeriodicSnapshotter:
        """Start (and return) a periodic metrics snapshotter for this
        service; the caller owns ``stop()``."""
        return PeriodicSnapshotter(
            self.snapshot, path, interval_s=interval_s, render=render
        ).start()

    # -- request machinery ---------------------------------------------

    def _serve(
        self,
        kind: str,
        attempt_factory: Callable[[Rung], Callable],
        deadline_s: Optional[float],
        conceal_fallback: Optional[Callable] = None,
        trace_ctx: Optional[TraceContext] = None,
    ) -> ServeResponse:
        start_time = time.perf_counter()
        deadline = Deadline.after(
            deadline_s if deadline_s is not None else self.config.deadline_s,
            label=kind,
        )
        # One trace context per request: everything this request does --
        # broker wait, every supervised attempt, worker-side encode and
        # decode spans shipped back as deltas -- carries this trace_id.
        # A caller that already owns the request identity (the cluster
        # router, one hop up) passes its context in, so shard-side
        # spans land under the *router's* trace id instead of minting a
        # second, unlinked one.
        ctx = trace_ctx or mint_trace(kind, budget_s=deadline.remaining())
        with trace_scope(ctx), telemetry.span(f"serving.{kind}"):
            try:
                self.broker.acquire(deadline)
            except Overloaded as exc:
                return self._finish(
                    ServeResponse(ok=False, kind=kind, error=exc),
                    start_time, ctx.trace_id,
                )
            except DeadlineExceeded as exc:
                return self._finish(
                    ServeResponse(ok=False, kind=kind, error=exc),
                    start_time, ctx.trace_id,
                )
            try:
                response = self._execute(
                    kind, attempt_factory, deadline, conceal_fallback
                )
            finally:
                self.broker.release()
        return self._finish(response, start_time, ctx.trace_id)

    def _execute(
        self,
        kind: str,
        attempt_factory: Callable[[Rung], Callable],
        deadline: Deadline,
        conceal_fallback: Optional[Callable],
    ) -> ServeResponse:
        cfg = self.config
        start = self.ladder.start_for_pressure(self.broker.pressure())
        index = start
        retries = 0
        last_error: Optional[BaseException] = None
        while True:
            index, rung = self.ladder.select(index)
            work = attempt_factory(rung)
            try:
                value, attempts = self.supervisor.run(
                    work, cfg.attempt_timeout_s, deadline
                )
                retries += attempts - 1
                self.ladder.record(index, True)
                return self._success(kind, rung, value, retries, index - start)
            except DeadlineExceeded as exc:
                # Budget gone: no rung can help.  Not a backend failure,
                # so the breaker is left alone.
                return ServeResponse(
                    ok=False, kind=kind, error=exc, rung=rung.name,
                    retries=retries, ladder_steps=index - start,
                )
            except RetriesExhausted as exc:
                retries += exc.attempts - 1
                last_error = exc.last_error or exc
                self.ladder.record(index, False)
                telemetry.count("serving.rung_failures")
                flightrecorder.record(
                    "serving.rung_failure",
                    kind=kind,
                    rung=rung.name,
                    attempts=exc.attempts,
                    last_error=repr(exc.last_error),
                )
                if index + 1 < len(self.ladder):
                    index += 1
                    continue
                # Non-retryable: the fault outlasted every retry on
                # every rung.  Leave the evidence behind.
                self._postmortem(kind, exc)
                return ServeResponse(
                    ok=False, kind=kind, error=exc, rung=rung.name,
                    retries=retries, ladder_steps=index - start,
                )
            except CorruptStreamError as exc:
                # Damaged input, not a sick backend: concealment is the
                # designed fallback (decode only), never a silent patch
                # -- the response is flagged degraded.
                self.ladder.record(index, True)
                if conceal_fallback is None:
                    return ServeResponse(
                        ok=False, kind=kind, error=exc, rung=rung.name,
                        retries=retries,
                    )
                return self._conceal(
                    kind, rung, conceal_fallback, deadline, retries, exc
                )
            except ValueError as exc:
                # Malformed request (bad targets, wrong dtype): typed,
                # immediate, no retry -- it fails identically every time.
                self.ladder.record(index, True)
                return ServeResponse(
                    ok=False, kind=kind, error=exc, rung=rung.name,
                    retries=retries,
                )

    def _conceal(
        self,
        kind: str,
        rung: Rung,
        conceal_fallback: Callable,
        deadline: Deadline,
        retries: int,
        strict_error: CorruptStreamError,
    ) -> ServeResponse:
        telemetry.count("serving.conceal_fallbacks")
        try:
            value, attempts = self.supervisor.run(
                conceal_fallback, self.config.attempt_timeout_s, deadline
            )
        except (CorruptStreamError, DeadlineExceeded, RetriesExhausted) as exc:
            # Metadata damage (nothing to conceal) or budget/fault
            # exhaustion: surface the typed failure.
            return ServeResponse(
                ok=False, kind=kind, error=exc, rung="concealed", retries=retries,
            )
        tensor, report = value
        degraded = not report.clean
        response = ServeResponse(
            ok=True,
            kind=kind,
            value=tensor,
            degraded=degraded,
            rung="concealed" if degraded else rung.name,
            retries=retries + attempts - 1,
            concealed=report.concealed_count,
            report=report,
        )
        if degraded:
            telemetry.count("serving.degraded_responses")
        return response

    def _success(
        self, kind: str, rung: Rung, value, retries: int, ladder_steps: int
    ) -> ServeResponse:
        report: Optional[ConcealmentReport] = None
        if kind == "decode":
            value, report = value
        return ServeResponse(
            ok=True,
            kind=kind,
            value=value,
            rung=rung.name,
            retries=retries,
            ladder_steps=max(0, ladder_steps),
            report=report,
        )

    def _postmortem(self, kind: str, error: BaseException) -> None:
        """Dump a flight-recorder bundle for a non-retryable failure."""
        if self.config.postmortem_dir is None:
            return
        try:
            self.last_postmortem = flightrecorder.dump_bundle(
                self.config.postmortem_dir,
                reason=f"{kind}-retries-exhausted",
                seed=self.config.seed,
                extra={"error": repr(error)},
            )
            telemetry.count("serving.postmortems")
        except OSError:
            # A failing disk must not turn a typed response into a raise.
            telemetry.count("serving.postmortem_write_failures")

    def _finish(
        self, response: ServeResponse, start_time: float, trace_id: str = ""
    ) -> ServeResponse:
        response.latency_s = time.perf_counter() - start_time
        response.trace_id = trace_id
        if response.ok:
            outcome = "degraded" if response.degraded else "ok"
        elif isinstance(response.error, Overloaded):
            outcome = "shed"
        elif isinstance(response.error, DeadlineExceeded):
            outcome = "deadline"
        else:
            outcome = "error"
        if not response.ok or response.degraded:
            flightrecorder.record(
                "serving.request_" + ("degraded" if response.ok else "failed"),
                kind=response.kind,
                outcome=outcome,
                error_type=response.error_type,
                rung=response.rung,
                trace=trace_id,
                latency_ms=round(1e3 * response.latency_s, 3),
            )
        self.slo.record(
            outcome,
            response.latency_s,
            retries=response.retries,
            ladder_steps=response.ladder_steps,
            concealed=response.concealed,
        )
        return response
