"""Chaos soak + serving benchmark for :class:`~repro.serving.service.CodecService`.

:func:`run_chaos` drives a seeded storm of encode/decode requests
through the service while a :class:`~repro.resilience.faults.FaultInjector`
crashes workers, hangs attempts, raises in-flight exceptions, delays
stragglers, and corrupts decode payloads -- then asserts the serving
contract on **every** response:

- ``ok`` and not ``degraded``: the payload is *bit-exact* with a clean
  serial run at the same ladder rung (encode: identical container
  bytes; decode: identical tensor).
- ``ok`` and ``degraded``: the input really was damaged, and the
  concealment report says what was patched.
- not ``ok``: the error is one of the typed serving failures.

Anything else is a **silent corruption** -- the one outcome the
serving layer exists to make impossible -- and fails the run (and the
CI gate).  Fault *sites* are chosen so the designed recovery path is
exercised rather than bypassed: worker faults fire inside the
supervised attempt (so supervision must catch them), and byte
corruption lands only in the frame-slice region of the container
(container metadata and the stream header are the regions concealment
explicitly cannot patch; their damage paths fail loudly and are
covered by the PR 2 fuzz suite).

:func:`run_serve_bench` measures the same service healthy: a clean
sequential pass for latency percentiles, then a threaded burst against
a deliberately small broker to exercise admission control and typed
shedding.
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

import repro.telemetry as telemetry
from repro.telemetry import flightrecorder
from repro.codec.encoder import _HEADER_SIZE
from repro.resilience.deadline import DeadlineExceeded
from repro.resilience.errors import CorruptStreamError
from repro.resilience.faults import FaultConfig, FaultInjector
from repro.serving.broker import Overloaded
from repro.serving.service import CodecService, ServeResponse, ServiceConfig
from repro.serving.supervisor import RetriesExhausted, WorkerCrashed
from repro.tensor.codec import CompressedTensor, TensorCodec

__all__ = [
    "ChaosConfig",
    "TYPED_ERRORS",
    "format_report",
    "run_chaos",
    "run_serve_bench",
]

#: The complete vocabulary of failures a response may carry.  Anything
#: outside this tuple escaping the service is a contract violation.
TYPED_ERRORS = (
    Overloaded,
    DeadlineExceeded,
    CorruptStreamError,
    RetriesExhausted,
    ValueError,
)


@dataclass
class ChaosConfig:
    """Knobs of one chaos soak (everything seeded, everything bounded)."""

    requests: int = 500
    seed: int = 0
    tensor_side: int = 32
    num_tensors: int = 4
    tile: int = 32
    qp: float = 26.0
    deadline_s: float = 2.0
    attempt_timeout_s: float = 0.2
    # Worker-level faults, evaluated inside each supervised attempt.
    crash_prob: float = 0.04
    hang_prob: float = 0.02
    raise_prob: float = 0.04
    straggler_prob: float = 0.05
    hang_s: float = 0.3
    straggler_delay_s: float = 0.02
    # Byte-level faults applied to decode-request payloads.
    bit_flip_prob: float = 0.06
    truncate_prob: float = 0.02
    #: Availability SLO the run (and the CI gate) must meet.
    availability_slo: float = 0.99
    #: Where contract-violation postmortem bundles land; ``None``
    #: disables bundle dumps (the report still lists violations).
    postmortem_dir: Optional[str] = None
    #: Drill switch: records one synthetic contract violation so the
    #: whole postmortem path (ring dump, bundle write, exit 2) can be
    #: exercised on demand without breaking the codec.
    force_violation: bool = False


class _ReferenceStore:
    """Clean serial encodes, per (tensor, ladder rung).

    The ladder legitimately changes encode *decisions* (turbo and
    vectorized pick different modes), so bit-exactness is judged
    against a healthy serial encode at the rung the response reports.
    """

    def __init__(self, tensors: List[np.ndarray], config: ChaosConfig,
                 rung_searches: Dict[str, str]) -> None:
        self._tensors = tensors
        self._config = config
        self._rung_searches = rung_searches
        self._blobs: Dict[Tuple[int, str], bytes] = {}
        self._decoded: Dict[int, np.ndarray] = {}

    def blob(self, tensor_index: int, rung: str) -> bytes:
        key = (tensor_index, rung)
        if key not in self._blobs:
            codec = TensorCodec(
                tile=self._config.tile, rd_search=self._rung_searches[rung]
            )
            compressed = codec.encode(
                self._tensors[tensor_index], qp=self._config.qp
            )
            self._blobs[key] = compressed.to_bytes()
        return self._blobs[key]

    def decoded(self, tensor_index: int) -> np.ndarray:
        """Reference reconstruction of the canonical (vectorized) blob."""
        if tensor_index not in self._decoded:
            blob = self.blob(tensor_index, "vectorized")
            codec = TensorCodec(tile=self._config.tile)
            self._decoded[tensor_index] = codec.decode(
                CompressedTensor.from_bytes(blob)
            )
        return self._decoded[tensor_index]

    def payload_start(self, tensor_index: int) -> int:
        """First corruptible byte: past container metadata + stream header."""
        blob = self.blob(tensor_index, "vectorized")
        compressed = CompressedTensor.from_bytes(blob)
        meta_len = compressed.nbytes - len(compressed.data)
        return meta_len + _HEADER_SIZE


def _make_fault_gate(
    injector: FaultInjector, sleep: Callable[[float], None] = time.sleep
) -> Callable[[str], None]:
    """Worker-fault hook run at the top of every supervised attempt.

    All randomness is drawn *before* any sleep, so even when the
    supervisor abandons a hung attempt the injector's stream is never
    touched concurrently -- the schedule stays seeded-deterministic.
    """

    def gate(kind: str) -> None:
        if injector.worker_crashes(step=0, worker=0):
            raise WorkerCrashed(f"injected worker crash during {kind}")
        if injector.worker_raises():
            raise RuntimeError(f"injected worker exception during {kind}")
        stall = injector.worker_hang_s()
        delay = injector.straggler_delay()
        if stall:
            sleep(stall)
        if delay:
            sleep(delay)

    return gate


def _damage_payload(
    blob: bytes, payload_start: int, injector: FaultInjector
) -> Tuple[bytes, bool]:
    """Corrupt the frame-slice region of a container (maybe), seeded."""
    cfg = injector.config
    rng = injector.rng
    body = blob[payload_start:]
    if cfg.bit_flip_prob and body and rng.random() < cfg.bit_flip_prob:
        flips = int(rng.integers(1, cfg.max_flips + 1))
        injector._record("faults.bit_flips")
        return blob[:payload_start] + injector.flip_bits(body, flips), True
    if cfg.truncate_prob and len(body) > 16 and rng.random() < cfg.truncate_prob:
        cut = int(rng.integers(8, len(body)))
        injector._record("faults.truncations")
        return blob[:payload_start] + body[:cut], True
    return blob, False


def run_chaos(config: Optional[ChaosConfig] = None) -> dict:
    """Run the chaos soak; returns the JSON-ready report document.

    The report's ``invariant`` section is the contract verdict:
    ``silent_corruptions`` and ``untyped_errors`` must be zero and
    ``availability`` must meet the SLO for ``passed`` to be true.

    When the verdict fails and ``config.postmortem_dir`` is set, a
    flight-recorder postmortem bundle (ring contents, telemetry
    snapshot, trace tree, seed) is dumped and its path returned under
    ``report["postmortem"]``.
    """
    config = config or ChaosConfig()
    # Aggregate telemetry for the whole soak (reusing an already-active
    # registry, e.g. the CLI's --trace session) so the postmortem
    # bundle can include a trace tree of what led up to a violation.
    active = telemetry.current()
    scope = nullcontext(active) if active is not None else telemetry.session()
    with scope as registry:
        report = _run_chaos_instrumented(config, registry)
    return report


def _run_chaos_instrumented(config: ChaosConfig, registry) -> dict:
    rng = np.random.default_rng(config.seed)
    tensors = [
        rng.standard_normal(
            (config.tensor_side, config.tensor_side)
        ).astype(np.float32)
        for _ in range(config.num_tensors)
    ]
    service = CodecService(
        ServiceConfig(
            tile=config.tile,
            default_qp=config.qp,
            deadline_s=config.deadline_s,
            attempt_timeout_s=config.attempt_timeout_s,
            seed=config.seed,
        )
    )
    rung_searches = {r.name: r.rd_search for r in service.ladder.rungs}
    references = _ReferenceStore(tensors, config, rung_searches)

    worker_faults = FaultInjector(
        seed=config.seed + 1,
        config=FaultConfig(
            crash_prob=config.crash_prob,
            hang_prob=config.hang_prob,
            raise_prob=config.raise_prob,
            straggler_prob=config.straggler_prob,
            hang_s=config.hang_s,
            straggler_delay_s=config.straggler_delay_s,
        ),
    )
    byte_faults = FaultInjector(
        seed=config.seed + 2,
        config=FaultConfig(
            bit_flip_prob=config.bit_flip_prob,
            truncate_prob=config.truncate_prob,
        ),
    )
    gate = _make_fault_gate(worker_faults)

    violations: List[dict] = []
    checked = {"encode": 0, "decode": 0, "damaged": 0}

    def violation(index: int, kind: str, reason: str, response: ServeResponse):
        violations.append(
            {
                "request": index,
                "kind": kind,
                "reason": reason,
                "rung": response.rung,
                "error_type": response.error_type,
                "trace_id": response.trace_id,
            }
        )
        flightrecorder.record(
            "chaos.contract_violation",
            request=index,
            kind=kind,
            reason=reason,
            rung=response.rung,
            trace=response.trace_id,
        )

    started = time.perf_counter()
    for index in range(config.requests):
        tensor_index = int(rng.integers(0, config.num_tensors))
        kind = "encode" if rng.random() < 0.5 else "decode"
        if kind == "encode":
            checked["encode"] += 1
            response = service.encode(
                tensors[tensor_index], qp=config.qp, fault_gate=gate
            )
            _check_encode(
                response, references, tensor_index, index, violation
            )
        else:
            checked["decode"] += 1
            clean = references.blob(tensor_index, "vectorized")
            blob, damaged = _damage_payload(
                clean, references.payload_start(tensor_index), byte_faults
            )
            checked["damaged"] += int(damaged)
            response = service.decode(blob, fault_gate=gate)
            _check_decode(
                response, references, tensor_index, damaged, index, violation
            )
    elapsed_s = time.perf_counter() - started

    if config.force_violation:
        # The drill: a synthetic violation that exercises ring dump,
        # bundle write, and the CLI's exit-2 path end to end.
        violation(
            -1, "drill", "drill: forced contract violation",
            ServeResponse(ok=False, kind="drill", rung="drill"),
        )

    slo = service.slo.snapshot()
    silent = sum(1 for v in violations if v["reason"].startswith("silent"))
    untyped = sum(1 for v in violations if v["reason"].startswith("untyped"))
    availability = slo["availability"]
    report = {
        "config": asdict(config),
        "elapsed_s": elapsed_s,
        "slo": slo,
        "service": service.stats(),
        "faults_injected": {
            "worker": worker_faults.injected,
            "bytes": byte_faults.injected,
        },
        "checked": checked,
        "invariant": {
            "silent_corruptions": silent,
            "untyped_errors": untyped,
            "violations": violations,
            "availability": availability,
            "availability_slo": config.availability_slo,
            "passed": (
                not violations and availability >= config.availability_slo
            ),
        },
    }
    report["postmortem"] = None
    if not report["invariant"]["passed"] and config.postmortem_dir:
        report["postmortem"] = flightrecorder.dump_bundle(
            config.postmortem_dir,
            reason="chaos-contract-violation",
            registry=registry,
            seed=config.seed,
            extra={
                "checked": checked,
                "invariant": report["invariant"],
            },
        )
    return report


def _check_encode(
    response: ServeResponse,
    references: _ReferenceStore,
    tensor_index: int,
    index: int,
    violation: Callable,
) -> None:
    if response.ok:
        if response.degraded:
            violation(index, "encode", "untyped: encode marked degraded",
                      response)
            return
        expected = references.blob(tensor_index, response.rung)
        if response.value.to_bytes() != expected:
            violation(
                index, "encode",
                f"silent corruption: bytes differ from serial "
                f"{response.rung} reference", response,
            )
    elif not isinstance(response.error, TYPED_ERRORS):
        violation(index, "encode",
                  f"untyped error {response.error_type}", response)


def _check_decode(
    response: ServeResponse,
    references: _ReferenceStore,
    tensor_index: int,
    damaged: bool,
    index: int,
    violation: Callable,
) -> None:
    if response.ok and not response.degraded:
        if not np.array_equal(
            response.value, references.decoded(tensor_index)
        ):
            violation(index, "decode",
                      "silent corruption: tensor differs from reference",
                      response)
        elif damaged:
            # Bit-exact output from a damaged blob would mean a CRC
            # collision repaired the data -- flag it; it should never
            # happen with <= 8 flipped bits.
            violation(index, "decode",
                      "silent corruption: damaged blob decoded clean",
                      response)
    elif response.ok:  # degraded
        if not damaged:
            violation(index, "decode",
                      "untyped: clean blob concealed", response)
        elif response.report is None or response.report.clean:
            violation(index, "decode",
                      "untyped: degraded without concealment report",
                      response)
    elif not isinstance(response.error, TYPED_ERRORS):
        violation(index, "decode",
                  f"untyped error {response.error_type}", response)


# -- healthy-path benchmark ------------------------------------------------


def run_serve_bench(
    requests: int = 60,
    seed: int = 0,
    tensor_side: int = 32,
    tile: int = 32,
    qp: float = 26.0,
    burst_threads: int = 8,
    burst_per_thread: int = 6,
) -> dict:
    """Measure the service healthy: clean latency, then an overload burst.

    Phase 1 runs ``requests`` sequential encode/decode pairs for honest
    p50/p99.  Phase 2 points ``burst_threads`` threads at a service
    with a deliberately tiny broker (2 in flight, 4 queued) so
    admission control must shed -- the point is typed ``Overloaded``
    responses, never queue collapse.
    """
    rng = np.random.default_rng(seed)
    tensor = rng.standard_normal((tensor_side, tensor_side)).astype(np.float32)

    sequential = CodecService(
        ServiceConfig(tile=tile, default_qp=qp, seed=seed)
    )
    blob = None
    for _ in range(requests // 2):
        encoded = sequential.encode(tensor, qp=qp)
        if encoded.ok and blob is None:
            blob = encoded.value.to_bytes()
        if blob is not None:
            sequential.decode(blob)

    burst = CodecService(
        ServiceConfig(
            tile=tile, default_qp=qp, seed=seed,
            max_inflight=2, max_queue=4, deadline_s=5.0,
        )
    )
    burst_blob = blob or sequential.encode(tensor, qp=qp).value.to_bytes()

    def worker() -> None:
        for turn in range(burst_per_thread):
            if turn % 2:
                burst.decode(burst_blob)
            else:
                burst.encode(tensor, qp=qp)

    threads = [
        threading.Thread(target=worker, name=f"burst-{i}")
        for i in range(burst_threads)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    burst_elapsed = time.perf_counter() - started

    burst_slo = burst.slo.snapshot()
    return {
        "sequential": sequential.slo.snapshot(),
        "burst": {
            "threads": burst_threads,
            "per_thread": burst_per_thread,
            "elapsed_s": burst_elapsed,
            "slo": burst_slo,
            "broker": burst.broker.stats(),
        },
        "shed_typed": burst_slo["outcomes"]["shed"],
    }


def format_report(report: dict) -> str:
    """Human-readable chaos verdict for the CLI."""
    lines = []
    slo = report["slo"]
    inv = report["invariant"]
    lines.append(
        f"chaos: {slo['requests']} requests in {report['elapsed_s']:.1f}s "
        f"({report['faults_injected']['worker']} worker faults, "
        f"{report['faults_injected']['bytes']} byte faults)"
    )
    outcomes = slo["outcomes"]
    lines.append(
        "outcomes: "
        + " ".join(f"{name}={outcomes[name]}" for name in sorted(outcomes))
    )
    latency = slo["latency_ms"]
    lines.append(
        f"latency: p50={latency['p50']:.1f}ms p99={latency['p99']:.1f}ms "
        f"max={latency['max']:.1f}ms"
    )
    lines.append(
        f"availability: {inv['availability']:.4f} "
        f"(slo {inv['availability_slo']:.2f})"
    )
    lines.append(
        f"invariant: silent_corruptions={inv['silent_corruptions']} "
        f"untyped_errors={inv['untyped_errors']} -> "
        + ("PASS" if inv["passed"] else "FAIL")
    )
    for violated in inv["violations"][:10]:
        lines.append(f"  violation: {violated}")
    if report.get("postmortem"):
        lines.append(f"postmortem bundle: {report['postmortem']}")
    return "\n".join(lines)
