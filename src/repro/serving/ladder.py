"""The degradation ladder: trade encode throughput knobs for survival.

PR 3 left the codec with a throughput ladder (turbo / vectorized /
legacy rd-search, slice parallelism); this module makes those rungs a
*runtime* policy.  Under pressure (broker queue building up) or
repeated failure (a rung's circuit breaker tripping), requests step
down to cheaper-to-supervise configurations instead of failing:

  rung 0  turbo       fastest search, slice-parallel threads
  rung 1  vectorized  batched exact search, no fan-out
  rung 2  legacy      scalar reference loop, serial

Every rung yields a *valid, full-fidelity* bitstream -- stepping down
changes speed and byte-level encode decisions, never correctness, so a
response served from a lower rung is not "degraded" in the lossy sense
(that flag is reserved for concealment).  The rung used is recorded in
the response and in ``serving.rung.*`` counters so capacity planning
can see how often the service is running hot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import repro.telemetry as telemetry
from repro.telemetry import flightrecorder
from repro.parallel import ParallelConfig
from repro.serving.breaker import CircuitBreaker

__all__ = ["DEFAULT_LADDER", "DegradationLadder", "Rung"]


@dataclass(frozen=True)
class Rung:
    """One service configuration: search/encode/decode strategies + fan-out."""

    name: str
    rd_search: str
    parallel: Optional[ParallelConfig] = None
    decode: str = "vectorized"
    encode: str = "native"

    def __post_init__(self) -> None:
        from repro.codec.decoder import DECODES
        from repro.codec.encoder import ENCODES, RD_SEARCHES

        if self.rd_search not in RD_SEARCHES:
            raise ValueError(f"unknown rd_search {self.rd_search!r}")
        if self.decode not in DECODES:
            raise ValueError(f"unknown decode {self.decode!r}")
        if self.encode not in ENCODES:
            raise ValueError(f"unknown encode {self.encode!r}")


#: turbo+threads -> vectorized serial -> legacy serial.  Thread (not
#: process) fan-out on the top rung: request bodies already run on
#: supervised threads, and numpy / the native scan and write kernels
#: release the GIL in the hot loops.  The decode axis steps down in
#: lockstep with rd-search: the floor rung serves with the interleaved
#: reference decoder and the pure-Python entropy writer, so a rung-2
#: response exercises no fast-path code at all.  (``encode="native"``
#: on the upper rungs degrades by itself to pure Python when no
#: compiler is present -- same bytes, slower -- so it is not a
#: correctness axis the ladder needs to step through.)
DEFAULT_LADDER: Tuple[Rung, ...] = (
    Rung(
        "turbo",
        "turbo",
        ParallelConfig(workers=2, executor="thread"),
        decode="vectorized",
        encode="native",
    ),
    Rung("vectorized", "vectorized", None, decode="vectorized", encode="native"),
    Rung("legacy", "legacy", None, decode="legacy", encode="python"),
)


class DegradationLadder:
    """Rungs plus one circuit breaker per rung.

    ``select(start)`` returns the first rung at or below ``start``
    whose breaker admits traffic; if every breaker is open the *last*
    rung is served anyway -- the ladder's floor is "always answer
    slowly", never "refuse because all breakers tripped" (refusal is
    the broker's job, on load, not the breaker's).
    """

    def __init__(
        self,
        rungs: Sequence[Rung] = DEFAULT_LADDER,
        failure_threshold: int = 3,
        cooldown_s: float = 1.0,
        clock=None,
    ) -> None:
        if not rungs:
            raise ValueError("need at least one rung")
        self.rungs = tuple(rungs)
        kwargs = {} if clock is None else {"clock": clock}
        self.breakers = tuple(
            CircuitBreaker(
                name=f"rung.{rung.name}",
                failure_threshold=failure_threshold,
                cooldown_s=cooldown_s,
                **kwargs,
            )
            for rung in self.rungs
        )

    def __len__(self) -> int:
        return len(self.rungs)

    def start_for_pressure(self, pressure: float) -> int:
        """Starting rung for the current load factor.

        Below 1.0 (slots free) start at the top; each additional unit
        of queued load steps one rung down -- under a thundering herd
        the whole fleet of requests shifts to cheaper configurations,
        which is precisely when cheap matters.
        """
        if pressure < 1.0:
            return 0
        step = min(len(self.rungs) - 1, int(pressure))
        if step:
            telemetry.count("serving.pressure_downshifts")
            flightrecorder.record(
                "ladder.pressure_downshift",
                rung=self.rungs[step].name,
                pressure=round(pressure, 3),
            )
        return step

    def select(self, start: int = 0) -> Tuple[int, Rung]:
        """First admissible rung at or below ``start`` (floor: last rung)."""
        start = max(0, min(start, len(self.rungs) - 1))
        for index in range(start, len(self.rungs)):
            if self.breakers[index].allow():
                telemetry.count(f"serving.rung.{self.rungs[index].name}")
                return index, self.rungs[index]
        index = len(self.rungs) - 1
        telemetry.count("serving.all_breakers_open")
        flightrecorder.record("ladder.all_breakers_open")
        telemetry.count(f"serving.rung.{self.rungs[index].name}")
        return index, self.rungs[index]

    def record(self, index: int, ok: bool) -> None:
        if ok:
            self.breakers[index].record_success()
        else:
            self.breakers[index].record_failure()

    def stats(self) -> dict:
        return {
            "rungs": [rung.name for rung in self.rungs],
            "breakers": [breaker.stats() for breaker in self.breakers],
        }
