"""SLO accounting: latency percentiles, availability, shed/degraded counts.

The telemetry core (:mod:`repro.telemetry`) keeps streaming summaries
(count/sum/min/max) -- enough for throughput work, not for SLOs, which
are quantile statements ("p99 under 250 ms").  This tracker keeps the
actual latency samples (bounded reservoir) so p50/p99 are exact for
soak-sized runs, and mirrors every outcome into ``serving.*`` counters
so traces and SLO reports cross-check.

Outcome vocabulary (one per request, disjoint):

- ``ok``        -- full-fidelity success.
- ``degraded``  -- explicit reduced-fidelity success (concealed decode);
  counts as *available* but is separately visible.
- ``shed``      -- typed :class:`~repro.serving.broker.Overloaded`.
- ``deadline``  -- typed deadline expiry.
- ``error``     -- typed failure (e.g. corrupt input past concealment).

Availability is ``(ok + degraded) / total``: the fraction of requests
that got a usable answer.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List

import repro.telemetry as telemetry

__all__ = ["OUTCOMES", "SloTracker"]

OUTCOMES = ("ok", "degraded", "shed", "deadline", "error")


def _nearest_rank(samples: List[float], p: float) -> float:
    """Nearest-rank percentile over *sorted* ``samples``.

    The textbook definition: the smallest sample such that at least
    ``p`` percent of the data is <= it, i.e. index ``ceil(p/100 * n)``
    (1-based).  ``math.ceil`` rather than ``round`` matters: banker's
    rounding maps (n=10, p=25) to rank 2 instead of 3, and on tiny
    samples (n=1, n=2) rounding half-to-even made p50 collapse onto the
    minimum.  p=0 is pinned to the minimum, and any p > 0 on a single
    sample returns that sample.
    """
    if not samples:
        return 0.0
    rank = math.ceil(p / 100.0 * len(samples))
    return samples[max(0, min(len(samples) - 1, rank - 1))]

#: Reservoir cap: beyond this many samples, new latencies overwrite the
#: oldest (ring buffer).  Soaks are well under it, so percentiles stay
#: exact where it matters.
MAX_SAMPLES = 100_000


class SloTracker:
    """Thread-safe request-outcome and latency-percentile accounting."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._latencies: List[float] = []
        self._ring_at = 0
        self._outcomes: Dict[str, int] = {name: 0 for name in OUTCOMES}
        self._retries = 0
        self._ladder_steps = 0
        self._concealed = 0

    def record(
        self,
        outcome: str,
        latency_s: float,
        retries: int = 0,
        ladder_steps: int = 0,
        concealed: int = 0,
    ) -> None:
        if outcome not in self._outcomes:
            raise ValueError(f"unknown outcome {outcome!r}")
        with self._lock:
            self._outcomes[outcome] += 1
            self._retries += retries
            self._ladder_steps += ladder_steps
            self._concealed += concealed
            if len(self._latencies) < MAX_SAMPLES:
                self._latencies.append(latency_s)
            else:
                self._latencies[self._ring_at] = latency_s
                self._ring_at = (self._ring_at + 1) % MAX_SAMPLES
        telemetry.count("serving.requests")
        telemetry.count(f"serving.{outcome}")
        if retries:
            telemetry.count("serving.retries", retries)
        if ladder_steps:
            telemetry.count("serving.ladder_steps", ladder_steps)
        if concealed:
            telemetry.count("serving.concealed_tiles", concealed)
        telemetry.observe("serving.latency_s", latency_s)

    # -- reading -------------------------------------------------------

    @property
    def total(self) -> int:
        with self._lock:
            return sum(self._outcomes.values())

    def availability(self) -> float:
        """Usable answers (ok + degraded) over all requests; 1.0 if idle."""
        with self._lock:
            total = sum(self._outcomes.values())
            if not total:
                return 1.0
            usable = self._outcomes["ok"] + self._outcomes["degraded"]
            return usable / total

    def percentile(self, p: float) -> float:
        """Exact latency percentile (seconds) by nearest-rank."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            samples = sorted(self._latencies)
        return _nearest_rank(samples, p)

    def snapshot(self) -> dict:
        """One JSON-ready dict: counts, availability, latency quantiles."""
        with self._lock:
            outcomes = dict(self._outcomes)
            samples = sorted(self._latencies)
            retries = self._retries
            ladder_steps = self._ladder_steps
            concealed = self._concealed
        total = sum(outcomes.values())

        return {
            "requests": total,
            "outcomes": outcomes,
            "availability": (
                (outcomes["ok"] + outcomes["degraded"]) / total if total else 1.0
            ),
            "retries": retries,
            "ladder_steps": ladder_steps,
            "concealed_tiles": concealed,
            "latency_ms": {
                "p50": 1e3 * _nearest_rank(samples, 50.0),
                "p90": 1e3 * _nearest_rank(samples, 90.0),
                "p99": 1e3 * _nearest_rank(samples, 99.0),
                "p999": 1e3 * _nearest_rank(samples, 99.9),
                "max": 1e3 * samples[-1] if samples else 0.0,
                "mean": 1e3 * sum(samples) / len(samples) if samples else 0.0,
            },
        }
