"""Per-backend circuit breaking: stop hammering what keeps failing.

Classic three-state breaker (Nygard's *Release It!* pattern) with an
injectable clock so tests and the chaos harness never sleep:

- **closed** -- requests flow; consecutive failures are counted.
- **open** -- after ``failure_threshold`` consecutive failures the
  breaker trips: :meth:`allow` answers False until ``cooldown_s`` has
  elapsed, so a struggling backend (a degenerate rd-search rung, a
  crash-looping pool) gets air instead of a retry storm.
- **half-open** -- after the cooldown a bounded number of probe
  requests are let through; one success re-closes the breaker, one
  failure re-opens it (with a fresh cooldown).

In the serving layer each degradation-ladder rung owns one breaker, so
"turbo keeps dying" trips only the turbo rung while vectorized and
legacy keep serving.
"""

from __future__ import annotations

import time
from typing import Callable

import repro.telemetry as telemetry
from repro.telemetry import flightrecorder

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with monotonic-clock cooldowns.

    Thread-compatible by construction (single writer per request path;
    all state transitions are idempotent), deterministic under an
    injected ``clock``.
    """

    def __init__(
        self,
        name: str = "backend",
        failure_threshold: int = 3,
        cooldown_s: float = 1.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self.trips = 0  # closed/half-open -> open transitions

    @property
    def state(self) -> str:
        """Current state, accounting for an elapsed cooldown."""
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.cooldown_s
        ):
            return HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """Whether a request may be sent to this backend right now."""
        return self.admit() != "rejected"

    def admit(self) -> str:
        """Admission verdict: ``"ok"``, ``"probe"``, or ``"rejected"``.

        ``"probe"`` means this request is a half-open probe: it is the
        breaker's only evidence about a possibly-still-sick backend, so
        the caller must bound it (a short child
        :class:`~repro.resilience.deadline.Deadline`) -- a hung backend
        would otherwise wedge the probe slot and with it the whole
        re-admission path.  Callers that cannot probe specially may
        keep using :meth:`allow`.
        """
        state = self.state
        if state == CLOSED:
            return "ok"
        if state == HALF_OPEN:
            if self._state == OPEN:
                # Cooldown just elapsed; materialise the transition.
                self._state = HALF_OPEN
                self._probes_in_flight = 0
            if self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                telemetry.count("serving.breaker_probes")
                return "probe"
            return "rejected"
        telemetry.count("serving.breaker_rejections")
        return "rejected"

    def trip(self, reason: str = "forced") -> None:
        """Open the breaker directly (e.g. failure-rate EWMA crossed).

        Consecutive-failure counting is the default trip condition, but
        router-level health also drains a shard whose *rate* of failure
        is unhealthy even without a long consecutive streak; that path
        needs an explicit trip so re-admission still flows through the
        one half-open probe mechanism.
        """
        if self._state != OPEN:
            self.trips += 1
            telemetry.count("serving.breaker_trips")
            flightrecorder.record(
                "breaker.trip",
                name=self.name,
                consecutive_failures=self._consecutive_failures,
                reason=reason,
            )
        self._state = OPEN
        self._opened_at = self._clock()
        self._probes_in_flight = 0

    def record_success(self) -> None:
        if self._state == HALF_OPEN:
            telemetry.count("serving.breaker_closes")
            flightrecorder.record("breaker.close", name=self.name)
        self._state = CLOSED
        self._consecutive_failures = 0
        self._probes_in_flight = 0

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        if self._state == HALF_OPEN or (
            self._consecutive_failures >= self.failure_threshold
        ):
            self.trip(reason="consecutive-failures")

    def stats(self) -> dict:
        return {
            "name": self.name,
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "trips": self.trips,
        }

    def __repr__(self) -> str:
        return f"CircuitBreaker({self.name!r}, state={self.state})"
