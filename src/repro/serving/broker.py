"""Bounded admission: the request broker that makes overload loud.

An unsupervised entry point under overload grows an unbounded queue
until memory dies; a production broker instead *sheds* -- the caller
gets a typed :class:`Overloaded` immediately and can back off.  The
broker tracks two bounded populations:

- **in-flight** requests (holding an execution slot), capped at
  ``max_inflight``;
- **queued** callers (blocked waiting for a slot), capped at
  ``max_queue``.

Admission beyond both caps raises :class:`Overloaded` synchronously --
the cheapest possible rejection, costing the caller one lock
acquisition.  Queued callers respect their deadline: a request whose
budget expires while queued raises
:class:`~repro.resilience.errors.DeadlineExceeded` without ever
executing, which is exactly the cancel-early behaviour deadlines exist
to buy.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Optional

import repro.telemetry as telemetry
from repro.telemetry import flightrecorder
from repro.resilience.deadline import Deadline, effective_timeout

__all__ = ["Overloaded", "RequestBroker"]


class Overloaded(RuntimeError):
    """Typed admission rejection: queue and execution slots are full.

    Deliberately *not* a :class:`CorruptStreamError` or a transport
    fault -- the request was fine, the service is saturated.  Callers
    should back off and retry later (the broker's depth is bounded, so
    the condition clears as in-flight work drains).
    """

    def __init__(self, message: str, inflight: int = 0, queued: int = 0) -> None:
        super().__init__(message)
        self.inflight = inflight
        self.queued = queued


class RequestBroker:
    """Bounded two-stage admission gate (execution slots + wait queue)."""

    def __init__(self, max_inflight: int = 4, max_queue: int = 16) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self._lock = threading.Lock()
        self._slot_free = threading.Condition(self._lock)
        self._inflight = 0
        self._queued = 0
        self.admitted = 0
        self.shed = 0
        self.peak_inflight = 0
        self.peak_queued = 0

    # -- introspection -------------------------------------------------

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def queued(self) -> int:
        return self._queued

    def pressure(self) -> float:
        """Load factor in [0, ~2]: 1.0 = all execution slots busy.

        The degradation ladder reads this to pick a starting rung;
        values above 1.0 mean callers are already queueing.
        """
        with self._lock:
            return (self._inflight + self._queued) / self.max_inflight

    def stats(self) -> dict:
        with self._lock:
            return {
                "inflight": self._inflight,
                "queued": self._queued,
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
                "admitted": self.admitted,
                "shed": self.shed,
                "peak_inflight": self.peak_inflight,
                "peak_queued": self.peak_queued,
            }

    # -- admission -----------------------------------------------------

    def acquire(self, deadline: Optional[Deadline] = None) -> None:
        """Take an execution slot, queueing (bounded) if none is free.

        Raises :class:`Overloaded` when the wait queue is also full and
        :class:`DeadlineExceeded` when the budget expires while queued.
        """
        with self._slot_free:
            if self._inflight < self.max_inflight:
                self._admit_locked()
                return
            if self._queued >= self.max_queue:
                self.shed += 1
                telemetry.count("serving.shed")
                flightrecorder.record(
                    "broker.shed", inflight=self._inflight, queued=self._queued
                )
                raise Overloaded(
                    f"service saturated ({self._inflight} in flight, "
                    f"{self._queued} queued)",
                    inflight=self._inflight,
                    queued=self._queued,
                )
            self._queued += 1
            self.peak_queued = max(self.peak_queued, self._queued)
            telemetry.count("serving.queued")
            try:
                while self._inflight >= self.max_inflight:
                    wait_s = effective_timeout(deadline, None)
                    if wait_s is not None and wait_s <= 0.0:
                        telemetry.count("serving.queue_deadline_expired")
                        flightrecorder.record(
                            "broker.queue_deadline_expired",
                            inflight=self._inflight, queued=self._queued,
                        )
                        deadline.check("broker.queue")
                    if not self._slot_free.wait(timeout=wait_s):
                        # Timed out: the deadline expired while queued.
                        telemetry.count("serving.queue_deadline_expired")
                        flightrecorder.record(
                            "broker.queue_deadline_expired",
                            inflight=self._inflight, queued=self._queued,
                        )
                        deadline.check("broker.queue")
            finally:
                self._queued -= 1
            self._admit_locked()

    def _admit_locked(self) -> None:
        self._inflight += 1
        self.admitted += 1
        self.peak_inflight = max(self.peak_inflight, self._inflight)

    def release(self) -> None:
        with self._slot_free:
            if self._inflight <= 0:
                raise RuntimeError("release() without a matching acquire()")
            self._inflight -= 1
            self._slot_free.notify()

    @contextmanager
    def slot(self, deadline: Optional[Deadline] = None):
        """``with broker.slot(deadline):`` -- acquire/release pairing."""
        self.acquire(deadline)
        try:
            yield
        finally:
            self.release()
