"""Trace-context propagation and cross-worker telemetry merge.

The registry in :mod:`repro.telemetry.core` is thread-local by design
(zero overhead when disabled), which means spans and counters emitted
on a *different* thread -- a pool worker, a supervised attempt, a
process-pool child -- used to vanish silently.  This module closes
that gap with two pieces:

- A :class:`TraceContext`: a small, picklable request identity
  (trace id, owning span path, remaining deadline budget) minted once
  per service request and carried along every hand-off.  While a
  context is active (:func:`trace_scope`) each recorded span event is
  tagged with the trace id, so a Chrome trace groups all work --
  including worker-side work merged in later -- under the originating
  request.

- A **delta protocol**: :class:`TracedTask` wraps a callable so it
  runs under a fresh child registry on whatever thread or process
  executes it, then ships a compact serialized snapshot of everything
  it collected (:func:`snapshot_delta`) back with the result.  The
  dispatcher merges the delta into its own registry with
  :func:`merge_delta`: counters add, histograms combine
  (count/sum/min/max), span paths are reparented under the dispatch
  site, and trace events are rebased onto the parent clock.  Both
  directions are plain dicts of plain values, so the protocol crosses
  process boundaries without pickle-ing any live telemetry object.

Accounting is honest about loss: a worker that is killed, hangs past
its timeout, or dies with its pool cannot ship a delta.  Dispatchers
count every unrecovered delta in ``telemetry.worker_deltas_lost``
(and every recovered one in ``telemetry.worker_deltas_merged``), so a
trace that is missing worker-side spans says so instead of looking
mysteriously idle.

Clock note: event timestamps are rebased using each registry's
``perf_counter`` origin.  On Linux (the platform the pool engine
targets) ``perf_counter`` is ``CLOCK_MONOTONIC``, which is
system-wide, so rebasing is exact across processes; elsewhere
worker events may shift relative to the parent but aggregates are
unaffected.
"""

from __future__ import annotations

import itertools
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Optional

from repro.telemetry import core
from repro.telemetry.core import MAX_TRACE_EVENTS, Histogram, Registry, SpanStat

__all__ = [
    "DELTA_VERSION",
    "TraceContext",
    "TracedOutcome",
    "TracedTask",
    "count_lost_deltas",
    "current_trace",
    "merge_delta",
    "mint_trace",
    "snapshot_delta",
    "trace_scope",
]

#: Version tag carried in every serialized delta; bump on shape change.
DELTA_VERSION = 1

_trace_sequence = itertools.count(1)


@dataclass(frozen=True)
class TraceContext:
    """Picklable request identity threaded through every hand-off.

    Parameters
    ----------
    trace_id:
        Globally unique id for one request (``"<label>-<pid>-<seq>"``).
    parent_span:
        The span path that owned the work when the context was
        captured; informational (merges use the live dispatch path).
    budget_s:
        The request's remaining deadline budget at mint time, so a
        worker that only sees the context still knows how urgent the
        request was.
    """

    trace_id: str
    parent_span: str = ""
    budget_s: Optional[float] = None


def mint_trace(label: str = "req", budget_s: Optional[float] = None) -> TraceContext:
    """A fresh :class:`TraceContext` with a process-unique trace id."""
    sequence = next(_trace_sequence)
    return TraceContext(
        trace_id=f"{label}-{os.getpid():x}-{sequence:06d}",
        budget_s=budget_s,
    )


def current_trace() -> Optional[TraceContext]:
    """The calling thread's active trace context, or ``None``."""
    registry = core.current()
    return registry.trace_ctx if registry is not None else None


@contextmanager
def trace_scope(ctx: Optional[TraceContext]):
    """Activate ``ctx`` on the calling thread's registry for the block.

    A no-op when telemetry is disabled or ``ctx`` is ``None``; nests
    correctly (the prior context is restored on exit).
    """
    registry = core.current()
    if registry is None or ctx is None:
        yield ctx
        return
    previous = registry.trace_ctx
    registry.trace_ctx = ctx
    try:
        yield ctx
    finally:
        registry.trace_ctx = previous


# -- the delta protocol ----------------------------------------------------


def snapshot_delta(registry: Registry) -> dict:
    """Everything ``registry`` collected, as one plain-data dict.

    The shape is the wire format workers ship back to their
    dispatcher; it contains no live objects, so it survives pickling
    across a process boundary unchanged.
    """
    return {
        "v": DELTA_VERSION,
        "start": registry.start,
        "pid": os.getpid(),
        "counters": dict(registry.counters),
        "histograms": {
            name: {
                "count": hist.count,
                "total": hist.total,
                "min": hist.min,
                "max": hist.max,
            }
            for name, hist in registry.histograms.items()
            if hist.count
        },
        "spans": {
            path: {"calls": stat.calls, "total_s": stat.total_s}
            for path, stat in registry.spans.items()
        },
        "events": list(registry.events),
        "dropped_events": registry.dropped_events,
    }


def merge_delta(
    parent: Registry,
    delta: dict,
    under: str = "",
    trace_id: Optional[str] = None,
) -> None:
    """Fold a worker's serialized ``delta`` into ``parent``.

    Semantics (pinned by ``tests/test_telemetry_propagation.py``):

    - counters **add**;
    - histograms **combine**: counts and totals add, min/max widen;
    - span paths are **reparented** under ``under`` (the dispatch
      site's span path), then aggregate like same-path spans;
    - trace events are **rebased** onto the parent clock, their
      ``args.path`` reparented, and tagged with ``trace_id`` when
      given (worker-side events that already carry a trace id keep
      it); the parent's ``MAX_TRACE_EVENTS`` cap still applies, with
      overflow counted in ``dropped_events``;
    - the worker's own ``dropped_events`` carry over.

    Every merge bumps ``telemetry.worker_deltas_merged`` on the
    parent.
    """
    for name, value in delta["counters"].items():
        parent.count(name, value)
    for name, data in delta["histograms"].items():
        hist = parent.histograms.get(name)
        if hist is None:
            hist = parent.histograms[name] = Histogram()
        hist.count += data["count"]
        hist.total += data["total"]
        if data["min"] < hist.min:
            hist.min = data["min"]
        if data["max"] > hist.max:
            hist.max = data["max"]
    for path, data in delta["spans"].items():
        full = f"{under}/{path}" if under else path
        stat = parent.spans.get(full)
        if stat is None:
            stat = parent.spans[full] = SpanStat()
        stat.calls += data["calls"]
        stat.total_s += data["total_s"]
    if parent.trace and delta["events"]:
        offset_us = (delta["start"] - parent.start) * 1e6
        for event in delta["events"]:
            if len(parent.events) >= MAX_TRACE_EVENTS:
                parent.dropped_events += 1
                continue
            merged = dict(event)
            merged["ts"] = merged["ts"] + offset_us
            args = dict(merged.get("args") or {})
            if under and args.get("path"):
                args["path"] = f"{under}/{args['path']}"
            if trace_id and "trace" not in args:
                args["trace"] = trace_id
            merged["args"] = args
            parent.events.append(merged)
    parent.dropped_events += delta["dropped_events"]
    parent.count("telemetry.worker_deltas_merged")


def count_lost_deltas(parent: Optional[Registry], lost: int) -> None:
    """Account ``lost`` worker deltas that can never be recovered."""
    if parent is not None and lost > 0:
        parent.count("telemetry.worker_deltas_lost", lost)


# -- the worker-side wrapper -----------------------------------------------


class TracedOutcome:
    """What a :class:`TracedTask` returns: result/error + the delta."""

    __slots__ = ("result", "error", "delta")

    def __init__(
        self,
        result: object,
        error: Optional[BaseException],
        delta: dict,
    ) -> None:
        self.result = result
        self.error = error
        self.delta = delta


class TracedTask:
    """Picklable wrapper that runs ``fn`` under a fresh child registry.

    The child registry is installed on the executing thread for the
    duration of the call (and removed after, restoring whatever was
    there), the trace context is activated inside it, and the call's
    telemetry is shipped back as a :class:`TracedOutcome`.

    Parameters
    ----------
    fn:
        The callable to wrap.  Must be picklable itself when the task
        is dispatched to a process pool (the same requirement the bare
        fan-out already had).
    ctx:
        Trace context to activate in the worker, if any.
    trace:
        Whether the child registry records individual span events
        (mirrors the dispatcher's ``Registry.trace`` flag).
    capture_error:
        When True, an exception from ``fn`` is captured into the
        outcome instead of propagating, so the dispatcher can merge
        the telemetry of a *failed* attempt before re-raising.  When
        False (pool fan-outs), exceptions propagate exactly as the
        unwrapped call's would -- the delta of a failing item is lost
        and must be accounted by the dispatcher.
    root:
        Optional span name wrapped around the whole call in the child
        registry (e.g. ``"attempt[2]"``), so sibling dispatches of the
        same work stay distinguishable after the merge.
    """

    __slots__ = ("fn", "ctx", "trace", "capture_error", "root")

    def __init__(
        self,
        fn: Callable,
        ctx: Optional[TraceContext] = None,
        trace: bool = False,
        capture_error: bool = False,
        root: Optional[str] = None,
    ) -> None:
        self.fn = fn
        self.ctx = ctx
        self.trace = trace
        self.capture_error = capture_error
        self.root = root

    def __call__(self, *args) -> TracedOutcome:
        previous = core.current()
        registry = Registry(trace=self.trace)
        registry.trace_ctx = self.ctx
        core._local.registry = registry
        result: object = None
        error: Optional[BaseException] = None
        try:
            try:
                if self.root:
                    with core.span(self.root):
                        result = self.fn(*args)
                else:
                    result = self.fn(*args)
            except BaseException as exc:
                if not self.capture_error:
                    raise
                error = exc
        finally:
            core._local.registry = previous
        return TracedOutcome(result, error, snapshot_delta(registry))
