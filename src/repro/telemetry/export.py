"""Exporters for a telemetry :class:`~repro.telemetry.core.Registry`.

Three output shapes:

- :func:`summary_table` -- an aligned human-readable text report;
- :func:`to_json` -- a plain-dict snapshot (counters, histograms,
  span aggregates) for machine consumption;
- :func:`chrome_trace` / :func:`write_chrome_trace` -- the Chrome
  trace-event format (open the file at ``chrome://tracing`` or
  https://ui.perfetto.dev).
"""

from __future__ import annotations

import json
from typing import List

from repro.telemetry.core import MAX_TRACE_EVENTS, Registry

__all__ = [
    "chrome_trace",
    "summary_table",
    "to_json",
    "trace_tree",
    "write_chrome_trace",
]


def to_json(registry: Registry) -> dict:
    """Snapshot every aggregate as JSON-ready plain data."""
    return {
        "counters": dict(registry.counters),
        "histograms": {
            name: hist.to_dict() for name, hist in registry.histograms.items()
        },
        "spans": {path: stat.to_dict() for path, stat in registry.spans.items()},
        "trace_events": len(registry.events),
        "dropped_events": registry.dropped_events,
        "max_trace_events": MAX_TRACE_EVENTS,
    }


def trace_tree(registry: Registry) -> dict:
    """The span aggregates as a nested tree (the request trace tree).

    Each node: ``{"name", "calls", "total_s", "children": [...]}``.
    Paths like ``serving.encode/attempt[0]/frames.encode`` become the
    obvious nesting; interior nodes that were never themselves a span
    (only a reparenting point) carry zero calls.
    """
    root = {"name": "", "calls": 0, "total_s": 0.0, "children": []}
    index = {"": root}
    for path in sorted(registry.spans):
        stat = registry.spans[path]
        parts = path.split("/")
        walked = ""
        for part in parts:
            child_path = f"{walked}/{part}" if walked else part
            node = index.get(child_path)
            if node is None:
                node = {
                    "name": part,
                    "calls": 0,
                    "total_s": 0.0,
                    "children": [],
                }
                index[walked]["children"].append(node)
                index[child_path] = node
            walked = child_path
        index[path]["calls"] = stat.calls
        index[path]["total_s"] = stat.total_s
    return root


def chrome_trace(registry: Registry) -> dict:
    """Trace-event-format document for ``chrome://tracing`` / Perfetto."""
    metadata = {
        "name": "process_name",
        "ph": "M",
        "pid": 0,
        "args": {"name": "llm265"},
    }
    return {
        "traceEvents": [metadata] + list(registry.events),
        "displayTimeUnit": "ms",
        "otherData": {"dropped_events": registry.dropped_events},
    }


def write_chrome_trace(registry: Registry, path: str) -> None:
    """Serialise :func:`chrome_trace` to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(registry), handle)


def _format_count(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.2f}"
    return f"{int(value)}"


def summary_table(registry: Registry) -> str:
    """Human-readable report of spans, counters, and histograms."""
    lines: List[str] = []

    if registry.spans:
        lines.append("-- spans (wall time) --")
        width = max(len(path) for path in registry.spans)
        lines.append(f"{'path':<{width}}  {'calls':>8s}  {'total':>10s}  {'mean':>10s}")
        for path in sorted(registry.spans):
            stat = registry.spans[path]
            mean_ms = 1e3 * stat.total_s / stat.calls if stat.calls else 0.0
            lines.append(
                f"{path:<{width}}  {stat.calls:>8d}  "
                f"{stat.total_s * 1e3:>8.2f}ms  {mean_ms:>8.3f}ms"
            )

    if registry.counters:
        if lines:
            lines.append("")
        lines.append("-- counters --")
        width = max(len(name) for name in registry.counters)
        for name in sorted(registry.counters):
            lines.append(f"{name:<{width}}  {_format_count(registry.counters[name]):>14s}")

    if registry.histograms:
        if lines:
            lines.append("")
        lines.append("-- histograms --")
        width = max(len(name) for name in registry.histograms)
        lines.append(
            f"{'name':<{width}}  {'count':>8s}  {'mean':>10s}  {'min':>10s}  {'max':>10s}"
        )
        for name in sorted(registry.histograms):
            hist = registry.histograms[name]
            lines.append(
                f"{name:<{width}}  {hist.count:>8d}  {hist.mean:>10.3f}  "
                f"{(hist.min if hist.count else 0.0):>10.3f}  "
                f"{(hist.max if hist.count else 0.0):>10.3f}"
            )

    if registry.trace or registry.dropped_events:
        lines.append("")
        lines.append(
            f"-- trace buffer: {len(registry.events)} events stored "
            f"(cap {MAX_TRACE_EVENTS}), {registry.dropped_events} dropped --"
        )

    return "\n".join(lines) if lines else "(telemetry registry is empty)"
