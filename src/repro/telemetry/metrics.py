"""Versioned metrics snapshots and a Prometheus-style text exposition.

One snapshot type serves every consumer: ``llm265 stats --format
json`` emits it for a single CLI run, ``CodecService.stats()`` returns
it with the serving components (SLO, broker, ladder, supervisor)
attached, and :func:`render_prometheus` turns it into the standard
text exposition format so an external scraper -- or a human with
``curl`` -- reads the same numbers the JSON consumers do.

:class:`PeriodicSnapshotter` is the push-side counterpart: a daemon
thread that captures a snapshot every ``interval_s`` and writes it
atomically to one file (rename over), giving long soaks a continuously
fresh metrics file without any consumer in the loop.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.telemetry import core
from repro.telemetry.core import MAX_TRACE_EVENTS, Registry
from repro.telemetry.export import to_json
from repro.telemetry.flightrecorder import get_recorder

__all__ = [
    "METRICS_SCHEMA",
    "MetricsSnapshot",
    "PeriodicSnapshotter",
    "render_prometheus",
]

#: Schema tag carried by every snapshot; bump on shape change.
METRICS_SCHEMA = "llm265-metrics-v1"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


@dataclass
class MetricsSnapshot:
    """One point-in-time capture of everything measurable.

    ``counters`` / ``histograms`` / ``spans`` mirror the telemetry
    registry (empty when telemetry is disabled); the serving fields
    are attached by :meth:`CodecService.snapshot
    <repro.serving.service.CodecService.snapshot>` and ``None``
    elsewhere.
    """

    created_unix: float
    counters: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, dict] = field(default_factory=dict)
    spans: Dict[str, dict] = field(default_factory=dict)
    trace_events: int = 0
    dropped_events: int = 0
    max_trace_events: int = MAX_TRACE_EVENTS
    recorder: Optional[dict] = None
    slo: Optional[dict] = None
    broker: Optional[dict] = None
    ladder: Optional[dict] = None
    supervisor: Optional[dict] = None

    @classmethod
    def capture(
        cls,
        registry: Optional[Registry] = None,
        slo: Optional[dict] = None,
        broker: Optional[dict] = None,
        ladder: Optional[dict] = None,
        supervisor: Optional[dict] = None,
    ) -> "MetricsSnapshot":
        """Snapshot ``registry`` (default: the thread's active one)."""
        if registry is None:
            registry = core.current()
        doc = to_json(registry) if registry is not None else {}
        return cls(
            created_unix=time.time(),
            counters=doc.get("counters", {}),
            histograms=doc.get("histograms", {}),
            spans=doc.get("spans", {}),
            trace_events=doc.get("trace_events", 0),
            dropped_events=doc.get("dropped_events", 0),
            recorder=get_recorder().stats(),
            slo=slo,
            broker=broker,
            ladder=ladder,
            supervisor=supervisor,
        )

    def to_dict(self) -> dict:
        """JSON-ready document.  Serving keys (``slo``/``broker``/
        ``ladder``/``supervisor``) stay top-level for compatibility
        with the pre-snapshot ``CodecService.stats()`` shape."""
        doc = {
            "schema": METRICS_SCHEMA,
            "created_unix": self.created_unix,
            "counters": dict(self.counters),
            "histograms": dict(self.histograms),
            "spans": dict(self.spans),
            "trace_events": self.trace_events,
            "dropped_events": self.dropped_events,
            "max_trace_events": self.max_trace_events,
            "recorder": self.recorder,
        }
        for name in ("slo", "broker", "ladder", "supervisor"):
            value = getattr(self, name)
            if value is not None:
                doc[name] = value
        return doc


def _metric_name(name: str) -> str:
    return "llm265_" + _NAME_RE.sub("_", name)


def render_prometheus(snapshot: MetricsSnapshot) -> str:
    """The snapshot in the Prometheus text exposition format (0.0.4).

    Counters become ``counter`` metrics, histograms become summary-ish
    ``_count``/``_sum`` pairs plus ``_min``/``_max`` gauges, span
    aggregates become two labelled totals, and the serving SLO becomes
    labelled gauges/counters.  Metric names are the telemetry names
    with ``.`` folded to ``_`` under an ``llm265_`` prefix, so the
    stable-name contract of ``docs/TELEMETRY.md`` carries over.
    """
    lines = []

    def emit(name: str, value, kind: Optional[str] = None, labels: str = "") -> None:
        if kind:
            lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name}{labels} {value}")

    for name in sorted(snapshot.counters):
        emit(_metric_name(name), snapshot.counters[name], "counter")
    for name in sorted(snapshot.histograms):
        hist = snapshot.histograms[name]
        base = _metric_name(name)
        emit(f"{base}_count", hist["count"], "counter")
        emit(f"{base}_sum", hist["total"])
        emit(f"{base}_min", hist["min"], "gauge")
        emit(f"{base}_max", hist["max"], "gauge")
    if snapshot.spans:
        lines.append("# TYPE llm265_span_calls_total counter")
        lines.append("# TYPE llm265_span_seconds_total counter")
        for path in sorted(snapshot.spans):
            stat = snapshot.spans[path]
            label = '{path="' + path.replace('"', "'") + '"}'
            lines.append(f"llm265_span_calls_total{label} {stat['calls']}")
            lines.append(f"llm265_span_seconds_total{label} {stat['total_s']}")
    emit("llm265_trace_events", snapshot.trace_events, "gauge")
    emit("llm265_trace_events_dropped", snapshot.dropped_events, "counter")
    if snapshot.recorder:
        emit(
            "llm265_flight_recorder_events_total",
            snapshot.recorder["total_recorded"],
            "counter",
        )
        emit("llm265_flight_recorder_stored", snapshot.recorder["stored"], "gauge")
    if snapshot.slo:
        slo = snapshot.slo
        emit("llm265_slo_availability", slo["availability"], "gauge")
        lines.append("# TYPE llm265_slo_requests_total counter")
        for outcome in sorted(slo["outcomes"]):
            lines.append(
                f'llm265_slo_requests_total{{outcome="{outcome}"}} '
                f"{slo['outcomes'][outcome]}"
            )
        lines.append("# TYPE llm265_slo_latency_ms gauge")
        for quantile, value in sorted(slo["latency_ms"].items()):
            lines.append(
                f'llm265_slo_latency_ms{{quantile="{quantile}"}} {value}'
            )
    if snapshot.broker:
        for key in ("inflight", "queued", "admitted", "shed"):
            emit(f"llm265_broker_{key}", snapshot.broker[key], "gauge")
    if snapshot.ladder:
        lines.append("# TYPE llm265_breaker_open gauge")
        lines.append("# TYPE llm265_breaker_trips_total counter")
        for breaker in snapshot.ladder.get("breakers", []):
            label = '{rung="' + breaker["name"] + '"}'
            is_open = 0 if breaker["state"] == "closed" else 1
            lines.append(f"llm265_breaker_open{label} {is_open}")
            lines.append(f"llm265_breaker_trips_total{label} {breaker['trips']}")
    if snapshot.supervisor:
        for key, value in sorted(snapshot.supervisor.items()):
            emit(f"llm265_supervisor_{key}_total", value, "counter")
    return "\n".join(lines) + "\n"


class PeriodicSnapshotter:
    """Daemon thread writing a fresh snapshot to one file on a cadence.

    ``capture`` is called on the snapshotter's thread every
    ``interval_s`` and the result written atomically (tmp + rename) as
    JSON (``render="json"``) or Prometheus text
    (``render="prometheus"``).  ``stop()`` writes one final snapshot
    so the file never lags a clean shutdown.
    """

    def __init__(
        self,
        capture: Callable[[], MetricsSnapshot],
        path: str,
        interval_s: float = 5.0,
        render: str = "json",
    ) -> None:
        if render not in ("json", "prometheus"):
            raise ValueError(f"render must be 'json' or 'prometheus', got {render!r}")
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self._capture = capture
        self.path = path
        self.interval_s = interval_s
        self.render = render
        self.writes = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _write_once(self) -> None:
        snapshot = self._capture()
        if self.render == "prometheus":
            payload = render_prometheus(snapshot)
        else:
            payload = json.dumps(snapshot.to_dict(), indent=2, default=repr) + "\n"
        tmp = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload)
        os.replace(tmp, self.path)
        self.writes += 1

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._write_once()

    def start(self) -> "PeriodicSnapshotter":
        if self._thread is not None:
            raise RuntimeError("snapshotter already started")
        self._write_once()  # the file exists from the very first tick
        self._thread = threading.Thread(
            target=self._loop, name="llm265-snapshotter", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self._write_once()
