"""Zero-overhead-when-disabled tracing and metrics core.

The registry lives in a thread-local slot.  While no registry is
installed (the default), every instrumentation entry point --
:func:`span`, :func:`count`, :func:`observe` -- reduces to one
``getattr`` on a ``threading.local`` plus a ``None`` check, and
:func:`span` hands back a shared no-op context manager, so instrumented
hot paths pay essentially nothing.  Nothing is allocated and no
registry entry is created until :func:`enable` (or :func:`session`)
installs a registry on the calling thread.

Three primitive instrument kinds:

- **spans** -- hierarchical timed regions.  Nesting is tracked per
  registry: a span opened inside another is keyed by the joined path
  (``"tensor.encode/frames.encode/frame"``), which is also what the
  Chrome trace export emits.
- **counters** -- monotonic numeric totals (``encode.bits.level``).
- **histograms** -- summary statistics (count/sum/min/max/mean) of an
  observed value stream (``encode.qp``).

The stable metric names used across the codebase are documented in
``docs/TELEMETRY.md``; they are a contract that perf PRs regress
against.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, List, Optional

__all__ = [
    "Histogram",
    "Registry",
    "SpanStat",
    "count",
    "current",
    "disable",
    "enable",
    "enabled",
    "observe",
    "session",
    "span",
]

#: Hard cap on stored Chrome trace events; beyond it events are counted
#: in ``Registry.dropped_events`` instead of growing memory unboundedly.
MAX_TRACE_EVENTS = 200_000

_local = threading.local()


def current() -> Optional["Registry"]:
    """The calling thread's active registry, or ``None`` when disabled."""
    return getattr(_local, "registry", None)


def enabled() -> bool:
    """True when telemetry is collecting on the calling thread."""
    return current() is not None


def enable(trace: bool = False) -> "Registry":
    """Install a fresh registry on the calling thread and return it.

    ``trace=True`` additionally records individual span events for the
    Chrome ``chrome://tracing`` export (costs memory; aggregates alone
    do not).
    """
    registry = Registry(trace=trace)
    _local.registry = registry
    return registry


def disable() -> Optional["Registry"]:
    """Remove the calling thread's registry (if any) and return it."""
    registry = current()
    _local.registry = None
    return registry


@contextmanager
def session(trace: bool = False):
    """Scoped :func:`enable`: yields the registry, restores the prior state."""
    previous = current()
    registry = Registry(trace=trace)
    _local.registry = registry
    try:
        yield registry
    finally:
        _local.registry = previous


class Histogram:
    """Streaming summary of an observed value series."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
        }


class SpanStat:
    """Aggregate for one span path: invocation count and total wall time."""

    __slots__ = ("calls", "total_s")

    def __init__(self) -> None:
        self.calls = 0
        self.total_s = 0.0

    def to_dict(self) -> Dict[str, float]:
        return {"calls": self.calls, "total_s": self.total_s}


class Registry:
    """All telemetry collected on one thread between enable/disable."""

    def __init__(self, trace: bool = False) -> None:
        self.trace = trace
        self.counters: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.spans: Dict[str, SpanStat] = {}
        self.events: List[dict] = []
        self.dropped_events = 0
        self.start = time.perf_counter()
        self._stack: List[str] = []
        #: Active :class:`~repro.telemetry.propagate.TraceContext`, if a
        #: request identity is being propagated (see ``trace_scope``).
        #: Span events record its trace_id so cross-process/thread
        #: merges can attribute work to the owning request.
        self.trace_ctx = None

    # -- recording -----------------------------------------------------

    def count(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    def current_path(self) -> str:
        """The innermost open span path ('' at top level)."""
        return self._stack[-1] if self._stack else ""

    def reset(self) -> None:
        """Drop all collected data but keep the registry installed."""
        self.counters.clear()
        self.histograms.clear()
        self.spans.clear()
        self.events.clear()
        self.dropped_events = 0
        self._stack.clear()
        self.start = time.perf_counter()


class _NullSpan:
    """Shared no-op span handed out while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("_registry", "_name", "path", "_start")

    def __init__(self, registry: Registry, name: str) -> None:
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Span":
        registry = self._registry
        parent = registry._stack[-1] if registry._stack else ""
        self.path = f"{parent}/{self._name}" if parent else self._name
        registry._stack.append(self.path)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        end = time.perf_counter()
        registry = self._registry
        if registry._stack and registry._stack[-1] == self.path:
            registry._stack.pop()
        stat = registry.spans.get(self.path)
        if stat is None:
            stat = registry.spans[self.path] = SpanStat()
        stat.calls += 1
        duration = end - self._start
        stat.total_s += duration
        if registry.trace:
            if len(registry.events) < MAX_TRACE_EVENTS:
                args = {"path": self.path}
                if registry.trace_ctx is not None:
                    args["trace"] = registry.trace_ctx.trace_id
                registry.events.append(
                    {
                        "name": self._name,
                        "cat": "llm265",
                        "ph": "X",
                        "ts": (self._start - registry.start) * 1e6,
                        "dur": duration * 1e6,
                        "pid": 0,
                        "tid": threading.get_ident() & 0xFFFFFF,
                        "args": args,
                    }
                )
            else:
                registry.dropped_events += 1
        return False


def span(name: str):
    """Open a timed region; a no-op context manager when disabled."""
    registry = current()
    if registry is None:
        return _NULL_SPAN
    return _Span(registry, name)


def count(name: str, value: float = 1) -> None:
    """Bump a monotonic counter; no-op when disabled."""
    registry = current()
    if registry is not None:
        registry.count(name, value)


def observe(name: str, value: float) -> None:
    """Record one histogram observation; no-op when disabled."""
    registry = current()
    if registry is not None:
        registry.observe(name, value)
