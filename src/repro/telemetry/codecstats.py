"""Per-encode instrumentation ledger for the frame codec.

One :class:`EncodeStats` is created per :meth:`FrameEncoder.encode`
call *when telemetry is enabled* and travels with the resulting
:class:`~repro.codec.encoder.EncodeResult`.  It holds the exact
per-syntax-element bit split of that one bitstream -- measured with
:meth:`BinaryEncoder.tell_bits` deltas, so the classes plus ``header``
and ``flush`` always sum to ``8 * len(data)`` exactly -- alongside
stage timings and structural counters.

Keeping the ledger per-encode (rather than only in the global
registry) matters because rate control runs the encoder many times;
the ledger of the *returned* encode describes the bytes that actually
ship, while the registry aggregates every attempt.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.telemetry.core import Registry

__all__ = ["BIT_CLASSES", "DecodeStats", "EncodeStats"]

#: Stable syntax-element bit classes, in stream order.  ``header`` is
#: the fixed stream header, ``slice_hdr`` the per-slice CRC32 framing
#: (length + checksum, 8 bytes per frame), ``flush`` the per-slice
#: arithmetic-coder termination residue; the rest are CABAC-coded
#: element families.
BIT_CLASSES = (
    "header",
    "slice_hdr",
    "split",
    "pred_flag",
    "intra_mode",
    "mv",
    "cbf",
    "last",
    "sig",
    "level",
    "flush",
)


class EncodeStats:
    """Mutable ledger the encoder fills in while writing one stream."""

    __slots__ = ("bits", "counts", "seconds", "qp_values")

    def __init__(self) -> None:
        self.bits: Dict[str, int] = {}
        self.counts: Dict[str, int] = {}
        self.seconds: Dict[str, float] = {}
        self.qp_values: List[int] = []

    # -- recording -----------------------------------------------------

    def add_bits(self, element: str, bits: int) -> None:
        self.bits[element] = self.bits.get(element, 0) + bits

    def add_count(self, name: str, value: int = 1) -> None:
        self.counts[name] = self.counts.get(name, 0) + value

    def add_seconds(self, stage: str, seconds: float) -> None:
        self.seconds[stage] = self.seconds.get(stage, 0.0) + seconds

    def add_qp(self, qp: int) -> None:
        self.qp_values.append(qp)

    def merge(self, other: "EncodeStats") -> None:
        """Fold another ledger into this one (parallel slice workers).

        Slice-parallel encoding gives each worker its own ledger (the
        telemetry registry is thread-local and absent in workers); the
        session merges them back in frame order, so bit totals still
        telescope exactly and the QP sequence matches the serial path.
        Stage ``seconds`` become summed *CPU* time across workers --
        they no longer bound wall-clock time under parallelism.
        """
        for element, bits in other.bits.items():
            self.add_bits(element, bits)
        for name, value in other.counts.items():
            self.add_count(name, value)
        for stage, seconds in other.seconds.items():
            self.add_seconds(stage, seconds)
        self.qp_values.extend(other.qp_values)

    # -- consuming -----------------------------------------------------

    @property
    def total_bits(self) -> int:
        return sum(self.bits.values())

    def as_dict(self) -> dict:
        """Plain-data snapshot (what rides on ``EncodeResult.stats``)."""
        qp = self.qp_values
        return {
            "bits": dict(self.bits),
            "counts": dict(self.counts),
            "seconds": dict(self.seconds),
            "qp": {
                "count": len(qp),
                "min": min(qp) if qp else 0,
                "max": max(qp) if qp else 0,
                "mean": (sum(qp) / len(qp)) if qp else 0.0,
            },
        }

    def publish(self, registry: Optional[Registry], prefix: str = "encode") -> None:
        """Merge this ledger into a registry's global aggregates."""
        if registry is None:
            return
        for element, bits in self.bits.items():
            registry.count(f"{prefix}.bits.{element}", bits)
        for name, value in self.counts.items():
            registry.count(f"{prefix}.{name}", value)
        for stage, seconds in self.seconds.items():
            registry.count(f"{prefix}.seconds.{stage}", seconds)
        for qp in self.qp_values:
            registry.observe(f"{prefix}.qp", qp)


#: Stage names of the two-phase (vectorized) decoder, in pipeline order.
DECODE_STAGES = ("entropy", "reconstruct", "predict")


class DecodeStats:
    """Per-decode ledger: stage timings + structural counters.

    The decode-side sibling of :class:`EncodeStats`, filled by the
    vectorized two-phase :class:`~repro.codec.decoder.FrameDecoder`
    path: wall seconds per stage (``entropy`` -- draining the range
    decoder into the leaf plan, ``reconstruct`` -- batched dequantize +
    inverse transform, ``predict`` -- dependency-order prediction) and
    counters (``coeff_bins`` consumed by the fused scan loop,
    ``batched_blocks`` / ``batches`` describing the GEMM grouping).
    The legacy interleaved path cannot split its stages, so it
    publishes no ledger; structural ``decode.*`` registry counters are
    emitted identically by both paths.
    """

    __slots__ = ("counts", "seconds")

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self.seconds: Dict[str, float] = {}

    def add_count(self, name: str, value: int = 1) -> None:
        self.counts[name] = self.counts.get(name, 0) + value

    def add_seconds(self, stage: str, seconds: float) -> None:
        self.seconds[stage] = self.seconds.get(stage, 0.0) + seconds

    def merge(self, other: "DecodeStats") -> None:
        """Fold another ledger into this one (multi-stream sessions)."""
        for name, value in other.counts.items():
            self.add_count(name, value)
        for stage, seconds in other.seconds.items():
            self.add_seconds(stage, seconds)

    def as_dict(self) -> dict:
        """Plain-data snapshot for reports and tests."""
        return {"counts": dict(self.counts), "seconds": dict(self.seconds)}

    def publish(self, registry: Optional[Registry], prefix: str = "decode") -> None:
        """Merge this ledger into a registry's global aggregates."""
        if registry is None:
            return
        for name, value in self.counts.items():
            registry.count(f"{prefix}.{name}", value)
        for stage, seconds in self.seconds.items():
            registry.count(f"{prefix}.seconds.{stage}", seconds)
