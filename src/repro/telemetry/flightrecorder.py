"""Flight recorder: a bounded ring of recent structured events.

Telemetry aggregates answer "how much, how fast"; they cannot answer
"what just happened" when a request fails non-retryably or the chaos
harness catches a contract violation.  The flight recorder keeps the
last N structured events -- rung changes, breaker trips, retries,
typed errors, queue depths -- in a fixed-size ring that is always on
(one lock + one ``deque.append`` per event; the serving layer only
records *notable* events, never per-span), so a postmortem can be
assembled after the fact without having had tracing enabled.

:func:`dump_bundle` writes the postmortem: the ring contents, a
snapshot of the active telemetry registry, the request trace tree,
and the seed that reproduces the run.  The chaos harness dumps one on
any contract violation, :class:`~repro.serving.service.CodecService`
dumps one when a request exhausts every retry and rung (when
``postmortem_dir`` is configured), and ``llm265 chaos`` prints the
bundle path on exit 2.  Bundle shape is documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Dict, List, Optional

__all__ = [
    "BUNDLE_SCHEMA",
    "DEFAULT_CAPACITY",
    "FlightRecorder",
    "dump_bundle",
    "get_recorder",
    "record",
    "set_recorder",
]

#: Schema tag written into every postmortem bundle.
BUNDLE_SCHEMA = "llm265-postmortem-v1"

#: Default ring size.  Events are small dicts; 512 of them comfortably
#: cover the interesting tail of a soak while staying trivial to dump.
DEFAULT_CAPACITY = 512


class FlightRecorder:
    """Thread-safe fixed-size ring of ``{seq, t_mono, kind, fields}``."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=capacity)
        self._seq = 0
        self.total_recorded = 0

    def record(self, kind: str, /, **fields) -> None:
        """Append one event; oldest events fall off past the capacity.

        ``kind`` is positional-only so a field may itself be named
        ``kind`` (e.g. a request kind) without colliding.
        """
        with self._lock:
            self._seq += 1
            self.total_recorded += 1
            self._ring.append(
                {
                    "seq": self._seq,
                    "t_mono": time.monotonic(),
                    "kind": kind,
                    "fields": fields,
                }
            )

    def snapshot(self) -> List[dict]:
        """The ring contents, oldest first (copies, JSON-ready)."""
        with self._lock:
            return [dict(event) for event in self._ring]

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "stored": len(self._ring),
                "total_recorded": self.total_recorded,
                "evicted": max(0, self.total_recorded - len(self._ring)),
            }

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()


#: Process-wide default recorder.  Always installed: recording must
#: never depend on a setup step, or the events leading up to the first
#: failure are exactly the ones missing.
_recorder = FlightRecorder()


def get_recorder() -> FlightRecorder:
    return _recorder


def set_recorder(recorder: FlightRecorder) -> FlightRecorder:
    """Swap the process-wide recorder (tests); returns the previous one."""
    global _recorder
    previous = _recorder
    _recorder = recorder
    return previous


def record(kind: str, /, **fields) -> None:
    """Record one event on the process-wide recorder."""
    _recorder.record(kind, **fields)


def _json_safe(value):
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


def dump_bundle(
    directory: str,
    reason: str,
    registry=None,
    seed: Optional[int] = None,
    extra: Optional[dict] = None,
) -> str:
    """Write a postmortem bundle into ``directory``; returns its path.

    The bundle holds the flight-recorder ring, a full snapshot of
    ``registry`` (or the calling thread's active registry when omitted)
    plus its span trace tree, the reproducing ``seed``, and any
    caller-supplied ``extra`` document (e.g. the chaos invariant
    verdict).
    """
    from repro.telemetry import core
    from repro.telemetry.export import to_json, trace_tree

    if registry is None:
        registry = core.current()
    recorder = get_recorder()
    slug = "".join(c if c.isalnum() or c == "-" else "-" for c in reason)[:48]
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(
        directory,
        f"postmortem-{slug}-{os.getpid()}-{recorder.total_recorded}.json",
    )
    bundle = {
        "schema": BUNDLE_SCHEMA,
        "created_unix": time.time(),
        "reason": reason,
        "seed": seed,
        "ring": recorder.snapshot(),
        "ring_stats": recorder.stats(),
        "telemetry": to_json(registry) if registry is not None else None,
        "trace_tree": trace_tree(registry) if registry is not None else None,
        "extra": extra,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(bundle, handle, indent=2, default=_json_safe)
        handle.write("\n")
    return path
