"""repro.telemetry: tracing, metrics, and codec instrumentation.

Usage::

    from repro import telemetry

    with telemetry.session(trace=True) as registry:
        codec.encode(tensor, qp=24)
        print(telemetry.summary_table(registry))
        telemetry.write_chrome_trace(registry, "trace.json")

Everything is a no-op (one thread-local lookup) until a registry is
installed with :func:`enable` or :func:`session`, so instrumented code
can stay instrumented in production.  See ``docs/TELEMETRY.md`` for
the stable metric-name contract.
"""

from repro.telemetry.codecstats import (
    BIT_CLASSES,
    DECODE_STAGES,
    DecodeStats,
    EncodeStats,
)
from repro.telemetry.core import (
    MAX_TRACE_EVENTS,
    Histogram,
    Registry,
    SpanStat,
    count,
    current,
    disable,
    enable,
    enabled,
    observe,
    session,
    span,
)
from repro.telemetry.export import (
    chrome_trace,
    summary_table,
    to_json,
    trace_tree,
    write_chrome_trace,
)
from repro.telemetry.flightrecorder import (
    FlightRecorder,
    dump_bundle,
    get_recorder,
)
from repro.telemetry.metrics import (
    METRICS_SCHEMA,
    MetricsSnapshot,
    PeriodicSnapshotter,
    render_prometheus,
)
from repro.telemetry.propagate import (
    TraceContext,
    TracedOutcome,
    TracedTask,
    current_trace,
    merge_delta,
    mint_trace,
    snapshot_delta,
    trace_scope,
)

__all__ = [
    "BIT_CLASSES",
    "DECODE_STAGES",
    "DecodeStats",
    "EncodeStats",
    "FlightRecorder",
    "Histogram",
    "MAX_TRACE_EVENTS",
    "METRICS_SCHEMA",
    "MetricsSnapshot",
    "PeriodicSnapshotter",
    "Registry",
    "SpanStat",
    "TraceContext",
    "TracedOutcome",
    "TracedTask",
    "chrome_trace",
    "count",
    "current",
    "current_trace",
    "disable",
    "dump_bundle",
    "enable",
    "enabled",
    "get_recorder",
    "merge_delta",
    "mint_trace",
    "observe",
    "render_prometheus",
    "session",
    "snapshot_delta",
    "span",
    "summary_table",
    "to_json",
    "trace_scope",
    "trace_tree",
    "write_chrome_trace",
]
