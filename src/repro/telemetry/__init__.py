"""repro.telemetry: tracing, metrics, and codec instrumentation.

Usage::

    from repro import telemetry

    with telemetry.session(trace=True) as registry:
        codec.encode(tensor, qp=24)
        print(telemetry.summary_table(registry))
        telemetry.write_chrome_trace(registry, "trace.json")

Everything is a no-op (one thread-local lookup) until a registry is
installed with :func:`enable` or :func:`session`, so instrumented code
can stay instrumented in production.  See ``docs/TELEMETRY.md`` for
the stable metric-name contract.
"""

from repro.telemetry.codecstats import (
    BIT_CLASSES,
    DECODE_STAGES,
    DecodeStats,
    EncodeStats,
)
from repro.telemetry.core import (
    MAX_TRACE_EVENTS,
    Histogram,
    Registry,
    SpanStat,
    count,
    current,
    disable,
    enable,
    enabled,
    observe,
    session,
    span,
)
from repro.telemetry.export import (
    chrome_trace,
    summary_table,
    to_json,
    write_chrome_trace,
)

__all__ = [
    "BIT_CLASSES",
    "DECODE_STAGES",
    "DecodeStats",
    "EncodeStats",
    "Histogram",
    "MAX_TRACE_EVENTS",
    "Registry",
    "SpanStat",
    "chrome_trace",
    "count",
    "current",
    "disable",
    "enable",
    "enabled",
    "observe",
    "session",
    "span",
    "summary_table",
    "to_json",
    "write_chrome_trace",
]
