"""Variable per-layer bit allocation (Section 4.1, footnote 2).

In variable-bit-width mode the per-layer budget is ``B_l = k*l + b``:
``l`` is the layer index, ``k`` a searched slope, and ``b`` chosen so
the average matches the user's budget.  The search evaluates a small
``k`` grid with a caller-supplied loss (defaulting to total relative
reconstruction error) and keeps the best slope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.tensor.codec import CompressedTensor, TensorCodec

_MIN_BITS = 0.4  # below this the codec degenerates; clamp and renormalise


def linear_schedule(num_layers: int, avg_bits: float, k: float) -> List[float]:
    """Per-layer budgets ``k*l + b`` hitting ``avg_bits`` on average."""
    if num_layers < 1:
        raise ValueError("need at least one layer")
    indices = np.arange(num_layers, dtype=np.float64)
    b = avg_bits - k * float(indices.mean())
    budgets = k * indices + b
    budgets = np.maximum(budgets, _MIN_BITS)
    # Clamping shifts the mean; rescale the slack above the floor.
    excess = budgets - _MIN_BITS
    target_excess = max(0.0, avg_bits - _MIN_BITS) * num_layers
    if excess.sum() > 0:
        budgets = _MIN_BITS + excess * (target_excess / excess.sum())
    return budgets.tolist()


def relative_error_loss(
    originals: Sequence[np.ndarray], restored: Sequence[np.ndarray]
) -> float:
    """Sum of per-layer MSE normalised by layer variance."""
    total = 0.0
    for orig, rest in zip(originals, restored):
        var = float(np.var(orig)) or 1.0
        total += float(np.mean((orig - rest) ** 2)) / var
    return total


@dataclass
class AllocationResult:
    """Outcome of a variable-bit-width search."""

    k: float
    budgets: List[float]
    compressed: List[CompressedTensor]
    loss: float

    @property
    def average_bits(self) -> float:
        total_bits = sum(c.nbytes * 8 for c in self.compressed)
        total_values = sum(c.num_values for c in self.compressed)
        return total_bits / max(1, total_values)


def compress_with_schedule(
    codec: TensorCodec, layers: Sequence[np.ndarray], budgets: Sequence[float]
) -> List[CompressedTensor]:
    """Compress each layer at its own fractional bit budget."""
    if len(layers) != len(budgets):
        raise ValueError("one budget per layer required")
    return [
        codec.encode(layer, bits_per_value=budget)
        for layer, budget in zip(layers, budgets)
    ]


def search_allocation(
    codec: TensorCodec,
    layers: Sequence[np.ndarray],
    avg_bits: float,
    k_grid: Sequence[float] = (-0.08, -0.04, 0.0, 0.04, 0.08),
    loss_fn: Optional[Callable[[Sequence[np.ndarray], Sequence[np.ndarray]], float]] = None,
) -> AllocationResult:
    """Search the slope ``k`` that minimises the reconstruction loss."""
    loss_fn = loss_fn or relative_error_loss
    best: Optional[AllocationResult] = None
    for k in k_grid:
        budgets = linear_schedule(len(layers), avg_bits, k)
        compressed = compress_with_schedule(codec, layers, budgets)
        restored = [codec.decode(c) for c in compressed]
        loss = loss_fn(layers, restored)
        candidate = AllocationResult(k=k, budgets=budgets, compressed=compressed, loss=loss)
        if best is None or candidate.loss < best.loss:
            best = candidate
    assert best is not None
    return best


def sensitivity_schedule(
    codec: TensorCodec,
    layers: Sequence[np.ndarray],
    avg_bits: float,
    probe_bits: Sequence[float] = (1.5, 3.0),
    floor: float = _MIN_BITS,
) -> List[float]:
    """Per-layer budgets from measured rate-distortion slopes (extension).

    The paper's ``B = k*l + b`` assumes difficulty varies linearly with
    depth.  This water-filling variant measures it instead: each layer
    is probed at two rates; the layer's relative-error *slope* between
    them estimates how much it gains per extra bit, and the global
    budget is split proportionally to those gains (floored and
    renormalised like :func:`linear_schedule`).
    """
    if len(probe_bits) != 2 or probe_bits[0] >= probe_bits[1]:
        raise ValueError("probe_bits must be (low, high) with low < high")
    low, high = probe_bits
    gains = []
    for layer in layers:
        var = float(np.var(layer)) or 1.0
        errs = []
        for bits in (low, high):
            compressed = codec.encode(layer, bits_per_value=bits)
            restored = codec.decode(compressed)
            errs.append(float(np.mean((restored - layer) ** 2)) / var)
        # Error improvement per bit; tiny floor keeps degenerate layers sane.
        gains.append(max(1e-9, (errs[0] - errs[1]) / (high - low)))
    weights = np.sqrt(np.asarray(gains))
    weights = weights / weights.sum() * len(layers)
    budgets = np.maximum(avg_bits * weights, floor)
    # Renormalise the mass above the floor to restore the average.
    excess = budgets - floor
    target_excess = max(0.0, avg_bits - floor) * len(layers)
    if excess.sum() > 0:
        budgets = floor + excess * (target_excess / excess.sum())
    return budgets.tolist()
