"""Data-type alignment unit (Section 7, Figure 13(a)).

The three-in-one codec front-ends the shared pipeline with a hardware
block that converts arbitrary floating-point inputs to the codec's
8-bit samples, including *micro-scaling* support: one shared
power-of-two exponent per 32-value block, so a block of tiny values
keeps full sample resolution even when another block holds outliers.

Functionally this is an alternative to the per-frame min-max mapping:

- ``minmax``: one affine grid per frame (the paper's default path);
- ``mx``: per-32-block E8M0 exponents + fixed [-1, 1) sample grid,
  with the exponent plane entropy-coded as side information.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.codec.entropy.bytecoder import byte_arith_decode, byte_arith_encode

MX_BLOCK = 32
_SAMPLE_SCALE = 127.5  # [-1, 1) mapped onto 0..255


@dataclass
class MXAlignment:
    """Per-block exponents plus the encoded side-information size."""

    exponents: np.ndarray  # int8 per block
    original_size: int
    side_info: bytes

    @property
    def side_bits_per_value(self) -> float:
        return 8.0 * len(self.side_info) / max(1, self.original_size)


def mx_align(values: np.ndarray, block: int = MX_BLOCK) -> Tuple[np.ndarray, MXAlignment]:
    """Map floats to 8-bit codes with shared per-block exponents."""
    values = np.asarray(values, dtype=np.float64)
    if not np.isfinite(values).all():
        raise ValueError("tensor contains NaN/inf; refuse to align")
    flat = values.reshape(-1)
    pad = (-flat.size) % block
    if pad:
        flat = np.concatenate([flat, np.zeros(pad)])
    blocks = flat.reshape(-1, block)
    absmax = np.max(np.abs(blocks), axis=1)
    with np.errstate(divide="ignore"):
        exponents = np.where(absmax > 0, np.ceil(np.log2(absmax / 0.999)), -127.0)
    exponents = np.clip(exponents, -127, 127).astype(np.int8)
    scale = 2.0 ** exponents.astype(np.float64)
    normalised = blocks / scale[:, None]  # in [-1, 1]
    codes = np.clip(
        np.rint(normalised * _SAMPLE_SCALE + _SAMPLE_SCALE), 0, 255
    ).astype(np.uint8)
    side_info = byte_arith_encode((exponents.astype(np.int16) + 128).astype(np.uint8).tobytes())
    alignment = MXAlignment(
        exponents=exponents, original_size=values.size, side_info=side_info
    )
    return codes.reshape(-1)[: flat.size].reshape(-1), alignment


def mx_from_side_info(side_info: bytes, original_size: int) -> MXAlignment:
    """Rebuild an :class:`MXAlignment` from its serialized fields.

    The exponent plane is fully determined by ``side_info`` (it is the
    entropy-coded exponents), so containers only need to persist the
    side info and the pre-padding value count.
    """
    raw = byte_arith_decode(side_info)
    exponents = (
        np.frombuffer(raw, dtype=np.uint8).astype(np.int16) - 128
    ).astype(np.int8)
    return MXAlignment(
        exponents=exponents, original_size=original_size, side_info=side_info
    )


def mx_unalign(
    codes: np.ndarray, alignment: MXAlignment, shape: Tuple[int, ...], block: int = MX_BLOCK
) -> np.ndarray:
    """Inverse of :func:`mx_align` (uses the stored exponent plane)."""
    raw = byte_arith_decode(alignment.side_info)
    exponents = np.frombuffer(raw, dtype=np.uint8).astype(np.int16) - 128
    scale = 2.0 ** exponents.astype(np.float64)
    flat = codes.astype(np.float64).reshape(-1)
    pad = (-flat.size) % block
    if pad:
        flat = np.concatenate([flat, np.full(pad, _SAMPLE_SCALE)])
    blocks = (flat.reshape(-1, block) - _SAMPLE_SCALE) / _SAMPLE_SCALE
    restored = blocks * scale[: blocks.shape[0], None]
    return restored.reshape(-1)[: alignment.original_size].reshape(shape)


def alignment_mse_bound(block_values: np.ndarray) -> float:
    """Worst-case rounding MSE of the MX sample grid for one block."""
    absmax = float(np.max(np.abs(block_values))) or 1.0
    exponent = np.ceil(np.log2(absmax / 0.999))
    step = 2.0**exponent / _SAMPLE_SCALE
    return step**2 / 12.0
