"""The LLM.265 tensor codec: public encode/decode API.

Pipeline (Section 3.2 of the paper):

1. view the tensor as 2-D and cut it into frame tiles (NVENC frame
   dimension limits),
2. min-max quantize each tile to 8-bit Luma samples,
3. run the intra-only video encoder over the tile sequence,
4. on decode, reverse every step bit-exactly.

Rate control supports three mutually exclusive targets: a raw ``qp``,
a fractional ``bits_per_value`` budget, or a tensor-domain
``target_mse``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

import repro.telemetry as telemetry
from repro.codec.decoder import DECODES, FrameDecoder
from repro.codec.encoder import ENCODES, RD_SEARCHES, EncoderConfig, FrameEncoder
from repro.codec.profiles import H265_PROFILE, CodecProfile
from repro.parallel import ParallelConfig
from repro.resilience.deadline import Deadline
from repro.resilience.errors import (
    ChecksumError,
    ConcealmentReport,
    CorruptStreamError,
    TruncatedStreamError,
)
from repro.resilience.framing import SLICE_OVERHEAD, crc32
from repro.tensor.alignment import MXAlignment, mx_align, mx_from_side_info, mx_unalign
from repro.tensor.frames import TileLayout, join_tiles, split_tiles
from repro.tensor.precision import QuantizationGrid, grid_for

_DEFAULT_TILE = 256

# -- container format -----------------------------------------------------
#
# ``to_bytes`` writes a compact binary container (it used to pickle the
# metadata, which made the *actual* serialized size several hundred
# bytes larger than the ``nbytes`` accounting claimed).  The format is
# deliberately minimal: everything derivable from the tensor shape and
# tile edge (2-D view dimensions, frame shape, tile count) is derived,
# not stored, and ``nbytes`` reports the exact serialized size.
#
#   magic "L5" | version u8 | flags u8 (bit0 = budget_met) | qp f32
#   tile u16 | ndim u8 | dims u32[ndim]
#   dtype  u8 code (255 = escape: u8 length + utf-8 name)
#   profile u8 code (255 = escape: u8 length + utf-8 name)
#   per tile, in raster order:
#     tag u8 = 0 (minmax): scale f64 | offset f64
#     tag u8 = 1 (mx):     original_size u32 | side_len u32 | side bytes
#   payload_len u32 | meta_crc u32 (CRC32 of all preceding bytes)
#   payload bytes (the video bitstream, itself CRC-sliced per frame)
#
# Version 3 added the trailing ``payload_len``/``meta_crc`` pair: the
# metadata is the one region concealment cannot patch (a wrong grid
# silently destroys every value), so it fails loudly via its own CRC,
# while payload damage is localised by the per-frame slice checksums.

_MAGIC = b"L5"
_CONTAINER_VERSION = 3
_DTYPE_CODES = {
    "float16": 1,
    "float32": 2,
    "float64": 3,
    "int8": 4,
    "uint8": 5,
    "int16": 6,
    "int32": 7,
    "int64": 8,
}
_DTYPE_NAMES = {code: name for name, code in _DTYPE_CODES.items()}
_PROFILE_CODES = {"h264": 1, "h265": 2, "av1": 3}
_PROFILE_NAMES = {code: name for name, code in _PROFILE_CODES.items()}
_ESCAPE = 0xFF
_GRID_MINMAX = 0
_GRID_MX = 1


def _pack_name(name: str, codes: dict) -> bytes:
    code = codes.get(name)
    if code is not None:
        return struct.pack("<B", code)
    raw = name.encode("utf-8")
    if len(raw) > 255:
        raise ValueError(f"name too long to serialize: {name!r}")
    return struct.pack("<BB", _ESCAPE, len(raw)) + raw


def _unpack_name(raw: bytes, offset: int, names: dict) -> Tuple[str, int]:
    code = raw[offset]
    if code != _ESCAPE:
        try:
            return names[code], offset + 1
        except KeyError:
            raise CorruptStreamError(f"unknown name code {code}") from None
    length = raw[offset + 1]
    start = offset + 2
    return raw[start : start + length].decode("utf-8"), start + length


def _stream_fixed_bits(n_frames: int) -> float:
    """QP-independent bits inside the frame stream itself.

    The 21-byte checksummed header plus the 8-byte length+CRC framing
    of each frame slice; rate control uses this (plus the container
    metadata size) to recognise budgets that only fixed overhead, not
    coding quality, can blow.
    """
    from repro.codec.encoder import _HEADER_SIZE

    return 8.0 * (_HEADER_SIZE + SLICE_OVERHEAD * n_frames)


def _rows_cols(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """2-D view dimensions, mirroring :func:`repro.tensor.frames.as_2d`."""
    if len(shape) == 0:
        return 1, 1
    if len(shape) == 1:
        return 1, shape[0]
    rows = 1
    for dim in shape[:-1]:
        rows *= dim
    return rows, shape[-1]


@dataclass
class CompressedTensor:
    """A tensor in compressed form, self-contained for decoding."""

    data: bytes
    layout: TileLayout
    grids: Tuple[QuantizationGrid, ...]
    frame_shape: Tuple[int, int]
    dtype: str
    profile_name: str
    qp: float
    #: False when a bits_per_value budget could not be met because the
    #: container overhead exceeds it (tiny tensors); the codec then
    #: returns its *finest* encode rather than silently destroying data.
    budget_met: bool = True
    #: Per-stream instrumentation of the final encode (bits per syntax
    #: element class, stage timings); populated only while telemetry is
    #: enabled.  Never serialized and excluded from equality.
    encode_stats: Optional[dict] = field(default=None, repr=False, compare=False)

    @property
    def num_values(self) -> int:
        return int(np.prod(self.layout.shape)) if self.layout.shape else 1

    @property
    def nbytes(self) -> int:
        """Exact serialized size: ``len(to_bytes())`` without building it all."""
        return len(self._pack_meta()) + len(self.data)

    @property
    def bits_per_value(self) -> float:
        return 8.0 * self.nbytes / max(1, self.num_values)

    @property
    def compression_ratio(self) -> float:
        """Ratio versus the FP16 representation the paper baselines on."""
        return 16.0 / self.bits_per_value

    def summary(self) -> str:
        """One-line human-readable description."""
        return (
            f"CompressedTensor(shape={self.layout.shape}, dtype={self.dtype}, "
            f"codec={self.profile_name}, qp={self.qp:.2f}, "
            f"{self.nbytes} bytes, {self.bits_per_value:.2f} bits/value, "
            f"{self.compression_ratio:.1f}x vs FP16, "
            f"budget_met={self.budget_met})"
        )

    def __repr__(self) -> str:
        return self.summary()

    # -- serialization -------------------------------------------------

    def _pack_meta(self) -> bytes:
        shape = self.layout.shape
        if not 0 < self.layout.tile <= 0xFFFF:
            raise ValueError(f"tile edge {self.layout.tile} out of range")
        if len(shape) > 255 or any(dim > 0xFFFFFFFF for dim in shape):
            raise ValueError(f"shape {shape} not serializable")
        parts = [
            _MAGIC,
            struct.pack(
                "<BBfHB",
                _CONTAINER_VERSION,
                1 if self.budget_met else 0,
                float(self.qp),
                self.layout.tile,
                len(shape),
            ),
            struct.pack(f"<{len(shape)}I", *shape) if shape else b"",
            _pack_name(self.dtype, _DTYPE_CODES),
            _pack_name(self.profile_name, _PROFILE_CODES),
        ]
        for grid in self.grids:
            if isinstance(grid, MXAlignment):
                parts.append(
                    struct.pack(
                        "<BII", _GRID_MX, grid.original_size, len(grid.side_info)
                    )
                )
                parts.append(grid.side_info)
            else:
                parts.append(
                    struct.pack("<Bdd", _GRID_MINMAX, grid.scale, grid.offset)
                )
        parts.append(struct.pack("<I", len(self.data)))
        meta = b"".join(parts)
        return meta + struct.pack("<I", crc32(meta))

    def to_bytes(self) -> bytes:
        """Serialize to a portable byte string (compact binary, no pickle)."""
        return self._pack_meta() + self.data

    @classmethod
    def from_bytes(cls, raw: bytes, strict: bool = True) -> "CompressedTensor":
        """Inverse of :meth:`to_bytes`.

        Raises :class:`CorruptStreamError` (a ``ValueError``) on any
        damage to the metadata: bad magic, version, checksum, or
        truncation.  ``strict=False`` tolerates a payload whose length
        disagrees with the header (the per-slice checksums localise
        that damage during a concealment-mode decode); the metadata
        itself must always verify -- a wrong quantization grid cannot
        be concealed.
        """
        if raw[: len(_MAGIC)] != _MAGIC:
            raise CorruptStreamError("not an LLM.265 tensor container")
        try:
            return cls._parse(raw, strict)
        except (struct.error, IndexError):
            raise TruncatedStreamError("truncated LLM.265 tensor container") from None

    @classmethod
    def _parse(cls, raw: bytes, strict: bool) -> "CompressedTensor":
        offset = len(_MAGIC)
        version, flags, qp, tile, ndim = struct.unpack_from("<BBfHB", raw, offset)
        if version != _CONTAINER_VERSION:
            raise CorruptStreamError(f"unsupported container version {version}")
        offset += struct.calcsize("<BBfHB")
        shape = struct.unpack_from(f"<{ndim}I", raw, offset) if ndim else ()
        offset += 4 * ndim
        dtype, offset = _unpack_name(raw, offset, _DTYPE_NAMES)
        profile_name, offset = _unpack_name(raw, offset, _PROFILE_NAMES)

        rows, cols = _rows_cols(shape)
        layout = TileLayout(shape=tuple(shape), rows=rows, cols=cols, tile=tile)
        frame_shape = (min(tile, rows), min(tile, cols))

        grids: List = []
        for _ in range(layout.num_tiles):
            tag = raw[offset]
            offset += 1
            if tag == _GRID_MINMAX:
                scale, grid_offset = struct.unpack_from("<dd", raw, offset)
                offset += 16
                grids.append(QuantizationGrid(scale=scale, offset=grid_offset))
            elif tag == _GRID_MX:
                original_size, side_len = struct.unpack_from("<II", raw, offset)
                offset += 8
                side_info = raw[offset : offset + side_len]
                if len(side_info) < side_len:
                    raise TruncatedStreamError("truncated MX side info")
                offset += side_len
                grids.append(mx_from_side_info(side_info, original_size))
            else:
                raise CorruptStreamError(f"unknown grid tag {tag}")

        (payload_len,) = struct.unpack_from("<I", raw, offset)
        offset += 4
        (stored_crc,) = struct.unpack_from("<I", raw, offset)
        actual_crc = crc32(raw[:offset])
        offset += 4
        if actual_crc != stored_crc:
            raise ChecksumError(
                "container metadata checksum mismatch",
                expected=stored_crc,
                actual=actual_crc,
            )
        data = raw[offset:]
        if strict and len(data) != payload_len:
            raise TruncatedStreamError(
                f"container payload length mismatch: header says {payload_len} "
                f"bytes, found {len(data)}"
            )
        return cls(
            data=data,
            layout=layout,
            grids=tuple(grids),
            frame_shape=frame_shape,
            dtype=dtype,
            profile_name=profile_name,
            qp=qp,
            budget_met=bool(flags & 1),
        )


class TensorCodec:
    """Video-codec-backed tensor compressor (the LLM.265 system).

    Parameters
    ----------
    profile:
        Codec toolset (H.264 / H.265 / AV1).  Defaults to H.265 as the
        paper does (Section 4.1.1).
    tile:
        Maximum frame edge; larger tensors become multiple frames.
    use_inter:
        Enable inter-frame prediction across tiles.  Off by default:
        the paper shows it *hurts* tensors (Figure 2(b) step 6).
    alignment:
        How floats map to 8-bit samples: ``"minmax"`` (one affine per
        frame, the paper's default) or ``"mx"`` (per-32-block shared
        exponents via the three-in-one alignment unit, Section 7 --
        robust to extreme outliers at ~0.25 bits/value side info).
    parallel:
        Optional :class:`~repro.parallel.ParallelConfig` enabling
        slice-parallel encode and decode over tiles.  Bitstreams and
        reconstructions are bit-identical to serial operation (slices
        are independently codable); ``None`` keeps everything serial.
    rd_search:
        Mode-search strategy forwarded to the frame encoder
        (``"vectorized"`` default, ``"turbo"`` fastest, ``"legacy"``
        reference); the serving degradation ladder steps requests down
        this axis under load.
    decode:
        Decode-path strategy forwarded to the frame decoder:
        ``"vectorized"`` (default) runs the two-phase plan/reconstruct
        decoder, ``"legacy"`` the interleaved reference decoder.  Both
        produce byte-identical reconstructions; stored as
        :attr:`decode_mode` (``decode`` the method keeps its name).
    encode:
        Entropy/costing backend forwarded to the frame encoder:
        ``"native"`` (default) uses the compiled write/cost kernels
        when available, ``"python"`` pins the pure-Python reference
        paths.  Bitstreams are byte-identical either way; stored as
        :attr:`encode_mode` (``encode`` the method keeps its name).
    """

    def __init__(
        self,
        profile: CodecProfile = H265_PROFILE,
        tile: int = _DEFAULT_TILE,
        use_inter: bool = False,
        qp_search_precision: float = 0.25,
        alignment: str = "minmax",
        parallel: Optional[ParallelConfig] = None,
        rd_search: str = "vectorized",
        decode: str = "vectorized",
        encode: str = "native",
    ) -> None:
        if alignment not in ("minmax", "mx"):
            raise ValueError("alignment must be 'minmax' or 'mx'")
        if rd_search not in RD_SEARCHES:
            raise ValueError(
                f"rd_search must be one of {RD_SEARCHES}, got {rd_search!r}"
            )
        if decode not in DECODES:
            raise ValueError(f"decode must be one of {DECODES}, got {decode!r}")
        if encode not in ENCODES:
            raise ValueError(f"encode must be one of {ENCODES}, got {encode!r}")
        self.profile = profile
        self.tile = tile
        self.use_inter = use_inter
        self.qp_search_precision = qp_search_precision
        self.alignment = alignment
        self.parallel = parallel
        self.rd_search = rd_search
        self.decode_mode = decode
        self.encode_mode = encode

    # -- encoding --------------------------------------------------------

    def encode(
        self,
        tensor: np.ndarray,
        qp: Optional[float] = None,
        bits_per_value: Optional[float] = None,
        target_mse: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> CompressedTensor:
        """Compress ``tensor`` under exactly one rate/quality target.

        ``deadline`` is a cooperative time budget checked between
        rate-control iterations and at every frame boundary inside the
        encoder; when it expires the encode raises
        :class:`~repro.resilience.errors.DeadlineExceeded` cleanly (no
        partial container is ever returned).
        """
        chosen = [t is not None for t in (qp, bits_per_value, target_mse)]
        if sum(chosen) == 0:
            qp = 24.0
        elif sum(chosen) > 1:
            raise ValueError("pass only one of qp / bits_per_value / target_mse")

        tensor = np.asarray(tensor)
        with telemetry.span("tensor.encode"):
            telemetry.count("tensor.encodes")
            if deadline is not None:
                deadline.check("tensor.encode")
            frames, grids, layout, frame_shape = self._to_frames(tensor)

            if qp is not None:
                compressed = self._encode_at(
                    frames, grids, layout, frame_shape, tensor, qp, deadline
                )
            elif bits_per_value is not None:
                telemetry.observe("ratecontrol.bits_requested", bits_per_value)
                compressed = self._search_bitrate(
                    frames, grids, layout, frame_shape, tensor, bits_per_value,
                    deadline,
                )
            else:
                compressed = self._search_mse(
                    frames, grids, layout, frame_shape, tensor, target_mse,
                    deadline,
                )
        telemetry.observe("tensor.bits_per_value", compressed.bits_per_value)
        if not compressed.budget_met:
            telemetry.count("ratecontrol.budget_miss")
        return compressed

    def decode(
        self,
        compressed: CompressedTensor,
        conceal: bool = False,
        deadline: Optional[Deadline] = None,
    ) -> np.ndarray:
        """Reconstruct the tensor from its compressed form.

        With ``conceal=True`` damaged frame slices are patched (zero /
        neighbor prediction) instead of failing; use
        :meth:`decode_with_report` to learn *which* tiles were patched.
        """
        tensor, _ = self.decode_with_report(
            compressed, conceal=conceal, deadline=deadline
        )
        return tensor

    def decode_with_report(
        self,
        compressed: CompressedTensor,
        conceal: bool = True,
        deadline: Optional[Deadline] = None,
    ) -> Tuple[np.ndarray, ConcealmentReport]:
        """Like :meth:`decode` but also returns the concealment report.

        Each concealed slice index is a tile index in raster order, so
        the report pinpoints exactly which region of the tensor carries
        predicted rather than decoded values.
        """
        with telemetry.span("tensor.decode"):
            telemetry.count("tensor.decodes")
            decoder = FrameDecoder(
                compressed.data,
                conceal=conceal,
                parallel=self.parallel,
                deadline=deadline,
                decode=self.decode_mode,
            )
            decoded_frames = decoder.decode()
            if not decoder.report.clean:
                telemetry.count(
                    "tensor.tiles_concealed", decoder.report.concealed_count
                )
            tiles: List[np.ndarray] = []
            for index, frame in enumerate(decoded_frames):
                y0, x0, h, w = compressed.layout.tile_box(index)
                grid = compressed.grids[index]
                cropped = frame[:h, :w]
                if isinstance(grid, MXAlignment):
                    tiles.append(mx_unalign(cropped.reshape(-1), grid, (h, w)))
                else:
                    tiles.append(grid.to_values(cropped))
            restored = join_tiles(tiles, compressed.layout)
        return restored.astype(compressed.dtype, copy=False), decoder.report

    def roundtrip(
        self, tensor: np.ndarray, **targets
    ) -> Tuple[np.ndarray, CompressedTensor]:
        """Encode then decode; returns (restored, compressed)."""
        compressed = self.encode(tensor, **targets)
        return self.decode(compressed), compressed

    # -- internals ---------------------------------------------------------

    def _encoder_config(
        self, qp: float, deadline: Optional[Deadline] = None
    ) -> EncoderConfig:
        return EncoderConfig(
            profile=self.profile,
            qp=qp,
            use_inter=self.use_inter,
            parallel=self.parallel,
            rd_search=self.rd_search,
            encode=self.encode_mode,
            deadline=deadline,
        )

    def _to_frames(self, tensor: np.ndarray):
        with telemetry.span("tensor.to_frames"):
            tiles, layout = split_tiles(tensor, self.tile)
            telemetry.count("tensor.tiles", len(tiles))
            frame_h = min(self.tile, layout.rows)
            frame_w = min(self.tile, layout.cols)
            frames: List[np.ndarray] = []
            grids: List = []
            for piece in tiles:
                values = piece.astype(np.float64)
                if self.alignment == "mx":
                    flat_codes, grid = mx_align(values.reshape(-1))
                    codes = flat_codes.reshape(values.shape)
                else:
                    grid = grid_for(values)
                    codes = grid.to_codes(values)
                pad_h = frame_h - codes.shape[0]
                pad_w = frame_w - codes.shape[1]
                if pad_h or pad_w:
                    codes = np.pad(codes, ((0, pad_h), (0, pad_w)), mode="edge")
                frames.append(codes)
                grids.append(grid)
        return frames, tuple(grids), layout, (frame_h, frame_w)

    def _encode_at(
        self, frames, grids, layout, frame_shape, tensor, qp: float,
        deadline: Optional[Deadline] = None,
    ) -> CompressedTensor:
        telemetry.count("tensor.encoder_runs")
        result = FrameEncoder(self._encoder_config(qp, deadline)).encode(frames)
        return CompressedTensor(
            data=result.data,
            layout=layout,
            grids=grids,
            frame_shape=frame_shape,
            dtype=str(tensor.dtype),
            profile_name=self.profile.name,
            qp=qp,
            encode_stats=result.stats,
        )

    def _tensor_mse(self, compressed: CompressedTensor, tensor: np.ndarray) -> float:
        restored = self.decode(compressed)
        delta = restored.astype(np.float64) - tensor.astype(np.float64)
        return float(np.mean(delta**2))

    def _search_bitrate(
        self, frames, grids, layout, frame_shape, tensor, budget: float,
        deadline: Optional[Deadline] = None,
    ) -> CompressedTensor:
        """Smallest QP whose total rate (payload + metadata) fits the budget.

        For tensors so small that the fixed container overhead alone
        exceeds the budget, no QP can help -- returning the coarsest
        (data-destroying) encode would be perverse, so the codec
        returns its *finest* encode with ``budget_met = False``.  The
        absolute overshoot is a few dozen bytes by construction.

        The same principle applies *before* the budget becomes strictly
        unmeetable: when the QP-independent bytes (container metadata,
        stream header, slice framing) eat more than half the budget,
        any QP that technically fits does so by obliterating the
        payload, not by coding it better.  Such budgets are declared
        unmeetable in spirit and also get the finest-encode fallback.
        """
        with telemetry.span("ratecontrol.search_bitrate"):
            lo, hi = 0.0, 51.0
            telemetry.count("ratecontrol.iterations")
            best = self._encode_at(
                frames, grids, layout, frame_shape, tensor, hi, deadline
            )
            fixed_bits = 8.0 * (best.nbytes - len(best.data)) + _stream_fixed_bits(
                layout.num_tiles
            )
            if fixed_bits > 0.5 * budget * max(1, best.num_values):
                telemetry.count("ratecontrol.iterations")
                finest = self._encode_at(
                    frames, grids, layout, frame_shape, tensor, lo, deadline
                )
                finest.budget_met = False
                return finest
            if best.bits_per_value > budget:
                telemetry.count("ratecontrol.iterations")
                finest = self._encode_at(
                    frames, grids, layout, frame_shape, tensor, lo, deadline
                )
                finest.budget_met = False
                return finest
            telemetry.count("ratecontrol.iterations")
            finest = self._encode_at(
                frames, grids, layout, frame_shape, tensor, lo, deadline
            )
            if finest.bits_per_value <= budget:
                return finest
            while hi - lo > self.qp_search_precision:
                if deadline is not None:
                    deadline.check("ratecontrol.search_bitrate")
                mid = (lo + hi) / 2.0
                telemetry.count("ratecontrol.iterations")
                candidate = self._encode_at(
                    frames, grids, layout, frame_shape, tensor, mid, deadline
                )
                if candidate.bits_per_value <= budget:
                    best, hi = candidate, mid
                else:
                    lo = mid
        return best

    def _search_mse(
        self, frames, grids, layout, frame_shape, tensor, max_mse: float,
        deadline: Optional[Deadline] = None,
    ) -> CompressedTensor:
        """Largest QP whose tensor-domain MSE stays within the budget."""
        with telemetry.span("ratecontrol.search_mse"):
            lo, hi = 0.0, 51.0
            telemetry.count("ratecontrol.iterations")
            finest = self._encode_at(
                frames, grids, layout, frame_shape, tensor, lo, deadline
            )
            if self._tensor_mse(finest, tensor) > max_mse:
                telemetry.count("ratecontrol.target_miss")
                return finest  # cannot meet the target; return best effort
            best = finest
            while hi - lo > self.qp_search_precision:
                if deadline is not None:
                    deadline.check("ratecontrol.search_mse")
                mid = (lo + hi) / 2.0
                telemetry.count("ratecontrol.iterations")
                candidate = self._encode_at(
                    frames, grids, layout, frame_shape, tensor, mid, deadline
                )
                if self._tensor_mse(candidate, tensor) <= max_mse:
                    best, lo = candidate, mid
                else:
                    hi = mid
        return best
