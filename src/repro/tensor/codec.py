"""The LLM.265 tensor codec: public encode/decode API.

Pipeline (Section 3.2 of the paper):

1. view the tensor as 2-D and cut it into frame tiles (NVENC frame
   dimension limits),
2. min-max quantize each tile to 8-bit Luma samples,
3. run the intra-only video encoder over the tile sequence,
4. on decode, reverse every step bit-exactly.

Rate control supports three mutually exclusive targets: a raw ``qp``,
a fractional ``bits_per_value`` budget, or a tensor-domain
``target_mse``.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.codec.decoder import decode_frames
from repro.codec.encoder import EncoderConfig, FrameEncoder
from repro.codec.profiles import H265_PROFILE, CodecProfile
from repro.tensor.alignment import MXAlignment, mx_align, mx_unalign
from repro.tensor.frames import TileLayout, join_tiles, split_tiles
from repro.tensor.precision import QuantizationGrid, grid_for

_DEFAULT_TILE = 256
_METADATA_BYTES_PER_FRAME = 8  # two float32 grid parameters


@dataclass
class CompressedTensor:
    """A tensor in compressed form, self-contained for decoding."""

    data: bytes
    layout: TileLayout
    grids: Tuple[QuantizationGrid, ...]
    frame_shape: Tuple[int, int]
    dtype: str
    profile_name: str
    qp: float
    #: False when a bits_per_value budget could not be met because the
    #: container overhead exceeds it (tiny tensors); the codec then
    #: returns its *finest* encode rather than silently destroying data.
    budget_met: bool = True

    @property
    def num_values(self) -> int:
        return int(np.prod(self.layout.shape)) if self.layout.shape else 1

    @property
    def nbytes(self) -> int:
        """Compressed size including per-frame alignment metadata."""
        overhead = 16
        for grid in self.grids:
            if isinstance(grid, MXAlignment):
                overhead += len(grid.side_info) + 4
            else:
                overhead += _METADATA_BYTES_PER_FRAME
        return len(self.data) + overhead

    @property
    def bits_per_value(self) -> float:
        return 8.0 * self.nbytes / max(1, self.num_values)

    @property
    def compression_ratio(self) -> float:
        """Ratio versus the FP16 representation the paper baselines on."""
        return 16.0 / self.bits_per_value

    def to_bytes(self) -> bytes:
        """Serialize to a portable byte string."""
        meta = {
            "layout": self.layout,
            "grids": self.grids,
            "frame_shape": self.frame_shape,
            "dtype": self.dtype,
            "profile_name": self.profile_name,
            "qp": self.qp,
            "budget_met": self.budget_met,
        }
        blob = pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)
        return struct.pack("<I", len(blob)) + blob + self.data

    @classmethod
    def from_bytes(cls, raw: bytes) -> "CompressedTensor":
        """Inverse of :meth:`to_bytes`."""
        (meta_len,) = struct.unpack_from("<I", raw, 0)
        meta = pickle.loads(raw[4 : 4 + meta_len])
        return cls(data=raw[4 + meta_len :], **meta)


class TensorCodec:
    """Video-codec-backed tensor compressor (the LLM.265 system).

    Parameters
    ----------
    profile:
        Codec toolset (H.264 / H.265 / AV1).  Defaults to H.265 as the
        paper does (Section 4.1.1).
    tile:
        Maximum frame edge; larger tensors become multiple frames.
    use_inter:
        Enable inter-frame prediction across tiles.  Off by default:
        the paper shows it *hurts* tensors (Figure 2(b) step 6).
    alignment:
        How floats map to 8-bit samples: ``"minmax"`` (one affine per
        frame, the paper's default) or ``"mx"`` (per-32-block shared
        exponents via the three-in-one alignment unit, Section 7 --
        robust to extreme outliers at ~0.25 bits/value side info).
    """

    def __init__(
        self,
        profile: CodecProfile = H265_PROFILE,
        tile: int = _DEFAULT_TILE,
        use_inter: bool = False,
        qp_search_precision: float = 0.25,
        alignment: str = "minmax",
    ) -> None:
        if alignment not in ("minmax", "mx"):
            raise ValueError("alignment must be 'minmax' or 'mx'")
        self.profile = profile
        self.tile = tile
        self.use_inter = use_inter
        self.qp_search_precision = qp_search_precision
        self.alignment = alignment

    # -- encoding --------------------------------------------------------

    def encode(
        self,
        tensor: np.ndarray,
        qp: Optional[float] = None,
        bits_per_value: Optional[float] = None,
        target_mse: Optional[float] = None,
    ) -> CompressedTensor:
        """Compress ``tensor`` under exactly one rate/quality target."""
        chosen = [t is not None for t in (qp, bits_per_value, target_mse)]
        if sum(chosen) == 0:
            qp = 24.0
        elif sum(chosen) > 1:
            raise ValueError("pass only one of qp / bits_per_value / target_mse")

        tensor = np.asarray(tensor)
        frames, grids, layout, frame_shape = self._to_frames(tensor)

        if qp is not None:
            return self._encode_at(frames, grids, layout, frame_shape, tensor, qp)
        if bits_per_value is not None:
            return self._search_bitrate(
                frames, grids, layout, frame_shape, tensor, bits_per_value
            )
        return self._search_mse(
            frames, grids, layout, frame_shape, tensor, target_mse
        )

    def decode(self, compressed: CompressedTensor) -> np.ndarray:
        """Reconstruct the tensor from its compressed form."""
        decoded_frames = decode_frames(compressed.data)
        tiles: List[np.ndarray] = []
        for index, frame in enumerate(decoded_frames):
            y0, x0, h, w = compressed.layout.tile_box(index)
            grid = compressed.grids[index]
            cropped = frame[:h, :w]
            if isinstance(grid, MXAlignment):
                tiles.append(mx_unalign(cropped.reshape(-1), grid, (h, w)))
            else:
                tiles.append(grid.to_values(cropped))
        restored = join_tiles(tiles, compressed.layout)
        return restored.astype(compressed.dtype, copy=False)

    def roundtrip(
        self, tensor: np.ndarray, **targets
    ) -> Tuple[np.ndarray, CompressedTensor]:
        """Encode then decode; returns (restored, compressed)."""
        compressed = self.encode(tensor, **targets)
        return self.decode(compressed), compressed

    # -- internals ---------------------------------------------------------

    def _encoder_config(self, qp: float) -> EncoderConfig:
        return EncoderConfig(profile=self.profile, qp=qp, use_inter=self.use_inter)

    def _to_frames(self, tensor: np.ndarray):
        tiles, layout = split_tiles(tensor, self.tile)
        frame_h = min(self.tile, layout.rows)
        frame_w = min(self.tile, layout.cols)
        frames: List[np.ndarray] = []
        grids: List = []
        for piece in tiles:
            values = piece.astype(np.float64)
            if self.alignment == "mx":
                flat_codes, grid = mx_align(values.reshape(-1))
                codes = flat_codes.reshape(values.shape)
            else:
                grid = grid_for(values)
                codes = grid.to_codes(values)
            pad_h = frame_h - codes.shape[0]
            pad_w = frame_w - codes.shape[1]
            if pad_h or pad_w:
                codes = np.pad(codes, ((0, pad_h), (0, pad_w)), mode="edge")
            frames.append(codes)
            grids.append(grid)
        return frames, tuple(grids), layout, (frame_h, frame_w)

    def _encode_at(
        self, frames, grids, layout, frame_shape, tensor, qp: float
    ) -> CompressedTensor:
        result = FrameEncoder(self._encoder_config(qp)).encode(frames)
        return CompressedTensor(
            data=result.data,
            layout=layout,
            grids=grids,
            frame_shape=frame_shape,
            dtype=str(tensor.dtype),
            profile_name=self.profile.name,
            qp=qp,
        )

    def _tensor_mse(self, compressed: CompressedTensor, tensor: np.ndarray) -> float:
        restored = self.decode(compressed)
        delta = restored.astype(np.float64) - tensor.astype(np.float64)
        return float(np.mean(delta**2))

    def _search_bitrate(
        self, frames, grids, layout, frame_shape, tensor, budget: float
    ) -> CompressedTensor:
        """Smallest QP whose total rate (payload + metadata) fits the budget.

        For tensors so small that the fixed container overhead alone
        exceeds the budget, no QP can help -- returning the coarsest
        (data-destroying) encode would be perverse, so the codec
        returns its *finest* encode with ``budget_met = False``.  The
        absolute overshoot is a few dozen bytes by construction.
        """
        lo, hi = 0.0, 51.0
        best = self._encode_at(frames, grids, layout, frame_shape, tensor, hi)
        if best.bits_per_value > budget:
            finest = self._encode_at(frames, grids, layout, frame_shape, tensor, lo)
            finest.budget_met = False
            return finest
        finest = self._encode_at(frames, grids, layout, frame_shape, tensor, lo)
        if finest.bits_per_value <= budget:
            return finest
        while hi - lo > self.qp_search_precision:
            mid = (lo + hi) / 2.0
            candidate = self._encode_at(
                frames, grids, layout, frame_shape, tensor, mid
            )
            if candidate.bits_per_value <= budget:
                best, hi = candidate, mid
            else:
                lo = mid
        return best

    def _search_mse(
        self, frames, grids, layout, frame_shape, tensor, max_mse: float
    ) -> CompressedTensor:
        """Largest QP whose tensor-domain MSE stays within the budget."""
        lo, hi = 0.0, 51.0
        finest = self._encode_at(frames, grids, layout, frame_shape, tensor, lo)
        if self._tensor_mse(finest, tensor) > max_mse:
            return finest  # cannot meet the target; return best effort
        best = finest
        while hi - lo > self.qp_search_precision:
            mid = (lo + hi) / 2.0
            candidate = self._encode_at(
                frames, grids, layout, frame_shape, tensor, mid
            )
            if self._tensor_mse(candidate, tensor) <= max_mse:
                best, lo = candidate, mid
            else:
                hi = mid
        return best
