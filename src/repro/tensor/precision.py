"""Precision conversion: floating-point tensors <-> 8-bit integer frames.

Hardware video codecs only accept 8-bit samples, so LLM.265 first maps
the FP16/FP32 tensor onto the 0..255 grid with an asymmetric min-max
affine (Section 3.2).  The mapping is *data-independent* in the paper's
sense: it uses only the tensor being compressed, never a calibration
set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QuantizationGrid:
    """Affine map ``value ~= code * scale + offset`` for one frame."""

    scale: float
    offset: float

    def to_codes(self, values: np.ndarray) -> np.ndarray:
        """Map float values onto the 0..255 grid."""
        if self.scale == 0.0:
            return np.zeros(values.shape, dtype=np.uint8)
        codes = np.rint((values - self.offset) / self.scale)
        return np.clip(codes, 0, 255).astype(np.uint8)

    def to_values(self, codes: np.ndarray) -> np.ndarray:
        """Map 0..255 codes back to float values."""
        return codes.astype(np.float64) * self.scale + self.offset

    @property
    def step_mse(self) -> float:
        """Expected MSE of the rounding alone (uniform-error model)."""
        return self.scale**2 / 12.0


def grid_for(values: np.ndarray) -> QuantizationGrid:
    """Min-max asymmetric grid covering every value (outlier-free).

    Raises ``ValueError`` on NaN/inf-free violations: a single NaN
    would silently poison the whole affine map otherwise.
    """
    if values.size == 0:
        return QuantizationGrid(scale=0.0, offset=0.0)
    if not np.isfinite(values).all():
        raise ValueError("tensor contains NaN/inf; refuse to quantize")
    lo = float(np.min(values))
    hi = float(np.max(values))
    if hi == lo:
        return QuantizationGrid(scale=0.0, offset=lo)
    return QuantizationGrid(scale=(hi - lo) / 255.0, offset=lo)


def quantize_to_uint8(values: np.ndarray) -> tuple:
    """Quantize a float array to uint8 codes plus its grid."""
    grid = grid_for(np.asarray(values, dtype=np.float64))
    return grid.to_codes(np.asarray(values, dtype=np.float64)), grid


def dequantize_from_uint8(codes: np.ndarray, grid: QuantizationGrid) -> np.ndarray:
    """Inverse of :func:`quantize_to_uint8`."""
    return grid.to_values(codes)
