"""Residual-compensated gradient compression (Section 5.1).

Gradients are harder to compress than activations; the paper's fix is
two-level coding: compress ``G`` to ~3.5 bits, then compress the
residual ``G - Comp(G)`` with a schedule that switches from another
3.5-bit LLM.265 pass to 8-bit RTN after 2500 steps (the range variance
of gradients grows by 1-3 orders of magnitude as training progresses,
defeating the low-bit residual pass).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.quant.rtn import rtn_roundtrip
from repro.tensor.codec import TensorCodec


@dataclass
class ResidualStats:
    """Per-step bookkeeping for the average-bits accounting."""

    step: int
    base_bits: float
    residual_bits: float
    mse: float

    @property
    def total_bits(self) -> float:
        return self.base_bits + self.residual_bits


class ResidualGradientCompressor:
    """Two-stage residual compensation for activation gradients.

    ``compress(grad, step)`` returns the receiver-side gradient (what
    comes out after decode) so training loops can simply substitute it
    for the true gradient; per-step bit accounting accumulates in
    :attr:`history`.
    """

    def __init__(
        self,
        codec: Optional[TensorCodec] = None,
        base_bits: float = 3.5,
        residual_bits: float = 3.5,
        switch_step: int = 2500,
        rtn_bits: int = 8,
        rtn_group: int = 128,
    ) -> None:
        self.codec = codec or TensorCodec()
        self.base_bits = base_bits
        self.residual_bits = residual_bits
        self.switch_step = switch_step
        self.rtn_bits = rtn_bits
        self.rtn_group = rtn_group
        self.history: List[ResidualStats] = []
        self._qp_cache: dict = {}

    def _encode_cached(self, tensor: np.ndarray, budget: float, tag: str):
        """Encode at a budget, pinning the found QP per (tag, shape).

        A fresh bitrate search per step would dominate training time;
        like the NVENC deployment path, the QP is re-searched only when
        drifting tensor statistics push the rate off-budget by >25%.
        """
        key = (tag, tensor.shape)
        cached_qp = self._qp_cache.get(key)
        if cached_qp is not None:
            compressed = self.codec.encode(tensor, qp=cached_qp)
            if 0.6 * budget <= compressed.bits_per_value <= 1.25 * budget:
                return compressed
        compressed = self.codec.encode(tensor, bits_per_value=budget)
        self._qp_cache[key] = compressed.qp
        return compressed

    def compress(self, grad: np.ndarray, step: int) -> np.ndarray:
        """Compress one gradient tensor at training step ``step``."""
        grad = np.asarray(grad, dtype=np.float64)
        base_ct = self._encode_cached(grad, self.base_bits, "base")
        base = self.codec.decode(base_ct)
        residual = grad - base

        if step < self.switch_step:
            res_ct = self._encode_cached(residual, self.residual_bits, "residual")
            res_rec = self.codec.decode(res_ct)
            res_bits = res_ct.bits_per_value
        else:
            res_rec = rtn_roundtrip(
                residual, self.rtn_bits, symmetric=True, group_size=self.rtn_group
            )
            res_bits = float(self.rtn_bits) + 16.0 * 2 / self.rtn_group

        restored = base + res_rec
        self.history.append(
            ResidualStats(
                step=step,
                base_bits=base_ct.bits_per_value,
                residual_bits=res_bits,
                mse=float(np.mean((restored - grad) ** 2)),
            )
        )
        return restored

    @property
    def average_bits(self) -> float:
        """Average communicated bits/value across the recorded steps."""
        if not self.history:
            return 0.0
        return float(np.mean([s.total_bits for s in self.history]))


def paper_average_bits(
    switch_step: int = 2500,
    total_steps: int = 8000,
    base_bits: float = 3.5,
    residual_bits: float = 3.5,
    rtn_bits: float = 8.0,
) -> float:
    """The paper's closed-form average: ((3.5+3.5)*2500+(3.5+8)*5500)/8000."""
    stage1 = (base_bits + residual_bits) * switch_step
    stage2 = (base_bits + rtn_bits) * (total_steps - switch_step)
    return (stage1 + stage2) / total_steps
