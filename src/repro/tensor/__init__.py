"""LLM.265 tensor codec: tensors in, video bitstreams out.

- :mod:`repro.tensor.precision` -- FP tensors <-> 8-bit frames (the
  conversion NVENC requires).
- :mod:`repro.tensor.frames` -- chunking tensors into frame tiles.
- :mod:`repro.tensor.codec` -- the public :class:`TensorCodec` API with
  QP / bitrate / MSE targeting at fractional bitrates.
- :mod:`repro.tensor.allocation` -- variable per-layer bit-width search
  (the ``B = k*l + b`` scheme of Section 4.1).
- :mod:`repro.tensor.residual` -- residual-compensated gradient
  compression (the two-stage scheme of Section 5.1).
- :mod:`repro.tensor.checkpoint` -- whole state dicts stored at
  fractional bit-widths.
"""

from repro.tensor.checkpoint import load_checkpoint, save_checkpoint
from repro.tensor.codec import CompressedTensor, TensorCodec
from repro.tensor.precision import QuantizationGrid, dequantize_from_uint8, quantize_to_uint8

__all__ = [
    "TensorCodec",
    "CompressedTensor",
    "QuantizationGrid",
    "quantize_to_uint8",
    "dequantize_from_uint8",
    "save_checkpoint",
    "load_checkpoint",
]
