"""Chunking tensors into video frames and back.

NVENC/NVDEC cap frame dimensions (4K/8K depending on codec, Table 2),
so a large weight matrix becomes several frames: the tensor is viewed
as 2-D (leading axes flattened) and tiled.  Layer stacks can map the
layer index to the temporal axis, which is how the paper probes
inter-frame prediction (and finds it does not help).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class TileLayout:
    """How a 2-D view of a tensor was cut into frame tiles."""

    shape: Tuple[int, ...]  # original tensor shape
    rows: int  # 2-D view height
    cols: int  # 2-D view width
    tile: int  # tile edge length

    @property
    def grid(self) -> Tuple[int, int]:
        """Tile grid dimensions (tiles_down, tiles_across)."""
        down = (self.rows + self.tile - 1) // self.tile
        across = (self.cols + self.tile - 1) // self.tile
        return down, across

    @property
    def num_tiles(self) -> int:
        down, across = self.grid
        return down * across

    def tile_box(self, index: int) -> Tuple[int, int, int, int]:
        """(y0, x0, height, width) of tile ``index`` in raster order."""
        down, across = self.grid
        if not 0 <= index < down * across:
            raise IndexError(f"tile index {index} out of range")
        ty, tx = divmod(index, across)
        y0 = ty * self.tile
        x0 = tx * self.tile
        return (
            y0,
            x0,
            min(self.tile, self.rows - y0),
            min(self.tile, self.cols - x0),
        )


def as_2d(tensor: np.ndarray) -> np.ndarray:
    """View any tensor as 2-D: flatten leading axes, keep the last."""
    array = np.asarray(tensor)
    if array.ndim == 0:
        return array.reshape(1, 1)
    if array.ndim == 1:
        return array.reshape(1, -1)
    return array.reshape(-1, array.shape[-1])


def split_tiles(tensor: np.ndarray, tile: int) -> Tuple[List[np.ndarray], TileLayout]:
    """Cut a tensor into frame tiles of at most ``tile`` x ``tile``."""
    if tile < 8:
        raise ValueError("tile edge must be at least 8")
    flat = as_2d(tensor)
    layout = TileLayout(
        shape=tuple(np.asarray(tensor).shape),
        rows=flat.shape[0],
        cols=flat.shape[1],
        tile=tile,
    )
    tiles = []
    for index in range(layout.num_tiles):
        y0, x0, h, w = layout.tile_box(index)
        tiles.append(np.ascontiguousarray(flat[y0 : y0 + h, x0 : x0 + w]))
    return tiles, layout


def join_tiles(tiles: Sequence[np.ndarray], layout: TileLayout) -> np.ndarray:
    """Inverse of :func:`split_tiles`."""
    if len(tiles) != layout.num_tiles:
        raise ValueError(
            f"expected {layout.num_tiles} tiles, got {len(tiles)}"
        )
    flat = np.empty((layout.rows, layout.cols), dtype=np.asarray(tiles[0]).dtype)
    for index, piece in enumerate(tiles):
        y0, x0, h, w = layout.tile_box(index)
        if piece.shape != (h, w):
            raise ValueError(
                f"tile {index} has shape {piece.shape}, expected {(h, w)}"
            )
        flat[y0 : y0 + h, x0 : x0 + w] = piece
    return flat.reshape(layout.shape)
