"""Compressed model checkpoints: whole state dicts through LLM.265.

The paper's weight-compression result (Section 4.1) as a storage
format: every 2-D weight is video-coded at a fractional bit budget,
1-D parameters (norms, biases -- a tiny fraction) stay FP32 verbatim.
A 16-bit checkpoint shrinks ~5.5x at 2.9 bits/value.
"""

from __future__ import annotations

import io
import pickle
import struct
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.tensor.codec import CompressedTensor, TensorCodec

_MAGIC = b"LVCK"
_VERSION = 1


@dataclass
class CheckpointStats:
    """Size accounting for one saved checkpoint."""

    compressed_bytes: int
    raw_fp16_bytes: int
    num_compressed_tensors: int
    num_raw_tensors: int

    @property
    def compression_ratio(self) -> float:
        return self.raw_fp16_bytes / max(1, self.compressed_bytes)


def save_checkpoint(
    state: Dict[str, np.ndarray],
    path: str,
    bits_per_value: float = 2.9,
    codec: Optional[TensorCodec] = None,
    min_compress_size: int = 256,
) -> CheckpointStats:
    """Write ``state`` to ``path`` with LLM.265-compressed weights.

    Tensors with >= 2 dims and at least ``min_compress_size`` elements
    go through the codec; everything else is stored raw (FP32).
    """
    codec = codec or TensorCodec(tile=128)
    compressed: Dict[str, bytes] = {}
    raw: Dict[str, np.ndarray] = {}
    for name, tensor in state.items():
        tensor = np.asarray(tensor)
        if tensor.ndim >= 2 and tensor.size >= min_compress_size:
            compressed[name] = codec.encode(
                tensor, bits_per_value=bits_per_value
            ).to_bytes()
        else:
            raw[name] = tensor.astype(np.float32)

    buffer = io.BytesIO()
    payload = pickle.dumps(
        {"compressed": compressed, "raw": raw}, protocol=pickle.HIGHEST_PROTOCOL
    )
    buffer.write(_MAGIC)
    buffer.write(struct.pack("<B", _VERSION))
    buffer.write(payload)
    blob = buffer.getvalue()
    with open(path, "wb") as handle:
        handle.write(blob)

    raw_fp16 = sum(np.asarray(t).size * 2 for t in state.values())
    return CheckpointStats(
        compressed_bytes=len(blob),
        raw_fp16_bytes=raw_fp16,
        num_compressed_tensors=len(compressed),
        num_raw_tensors=len(raw),
    )


def load_checkpoint(
    path: str, codec: Optional[TensorCodec] = None
) -> Dict[str, np.ndarray]:
    """Load a checkpoint written by :func:`save_checkpoint`."""
    codec = codec or TensorCodec(tile=128)
    with open(path, "rb") as handle:
        blob = handle.read()
    if blob[:4] != _MAGIC:
        raise ValueError("not an LLM.265 checkpoint")
    version = blob[4]
    if version != _VERSION:
        raise ValueError(f"unsupported checkpoint version {version}")
    payload = pickle.loads(blob[5:])
    state: Dict[str, np.ndarray] = {}
    for name, data in payload["compressed"].items():
        state[name] = codec.decode(CompressedTensor.from_bytes(data))
    for name, tensor in payload["raw"].items():
        state[name] = np.asarray(tensor, dtype=np.float64)
    return state
