"""Compressed model checkpoints: whole state dicts through LLM.265.

The paper's weight-compression result (Section 4.1) as a storage
format: every 2-D weight is video-coded at a fractional bit budget,
1-D parameters (norms, biases -- a tiny fraction) stay FP32 verbatim.
A 16-bit checkpoint shrinks ~5.5x at 2.9 bits/value.

The on-disk format is a flat, non-executable binary table (version 2
replaced the original pickle payload -- loading a checkpoint must
never run code):

    magic "LVCK" | version u8 | count u32
    per entry, ``count`` times:
      name_len u16 | name utf-8
      kind u8 (0 = LLM.265 container, 1 = raw ndarray)
      payload_len u32 | payload_crc u32 (CRC32 of payload)
      payload bytes

Raw-ndarray payloads are themselves self-describing:

    dtype_len u8 | dtype ascii | ndim u8 | dims u32[ndim] | C-order bytes

Writes are crash-safe (temp file + ``os.replace``), and every entry
carries its own CRC32 so :func:`load_checkpoint_with_report` can skip
exactly the damaged tensors instead of losing the whole file.
"""

from __future__ import annotations

import itertools
import os
import struct
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

import repro.telemetry as telemetry
from repro.resilience.errors import (
    ChecksumError,
    CorruptStreamError,
    TruncatedStreamError,
)
from repro.parallel import ParallelConfig
from repro.resilience.framing import crc32
from repro.tensor.codec import CompressedTensor, TensorCodec

_MAGIC = b"LVCK"
_VERSION = 2
_KIND_LV265 = 0
_KIND_RAW = 1
_ENTRY_HEADER = struct.Struct("<BII")  # kind, payload_len, payload_crc


@dataclass
class CheckpointStats:
    """Size accounting for one saved checkpoint."""

    compressed_bytes: int
    raw_fp16_bytes: int
    num_compressed_tensors: int
    num_raw_tensors: int

    @property
    def compression_ratio(self) -> float:
        return self.raw_fp16_bytes / max(1, self.compressed_bytes)


@dataclass
class CheckpointLoadReport:
    """What a tolerant load recovered and what it had to skip."""

    total_entries: int = 0
    loaded: List[str] = field(default_factory=list)
    skipped: List[Tuple[str, str]] = field(default_factory=list)  # (name, reason)

    @property
    def clean(self) -> bool:
        return not self.skipped

    def summary(self) -> str:
        if self.clean:
            return f"all {self.total_entries} tensors loaded"
        details = ", ".join(f"{name} ({reason})" for name, reason in self.skipped)
        return (
            f"{len(self.loaded)}/{self.total_entries} tensors loaded; "
            f"skipped: {details}"
        )


def _pack_raw(tensor: np.ndarray) -> bytes:
    tensor = np.ascontiguousarray(tensor)
    dtype = tensor.dtype.str.encode("ascii")
    if len(dtype) > 255 or tensor.ndim > 255:
        raise ValueError(f"tensor not serializable: dtype={dtype!r} ndim={tensor.ndim}")
    header = struct.pack("<B", len(dtype)) + dtype + struct.pack("<B", tensor.ndim)
    dims = struct.pack(f"<{tensor.ndim}I", *tensor.shape) if tensor.ndim else b""
    return header + dims + tensor.tobytes()


def _unpack_raw(payload: bytes) -> np.ndarray:
    try:
        dtype_len = payload[0]
        dtype = np.dtype(payload[1 : 1 + dtype_len].decode("ascii"))
        if dtype.hasobject:
            raise CorruptStreamError("checkpoint entry with object dtype")
        offset = 1 + dtype_len
        ndim = payload[offset]
        offset += 1
        shape = struct.unpack_from(f"<{ndim}I", payload, offset) if ndim else ()
        offset += 4 * ndim
        count = 1
        for dim in shape:
            count *= dim
        data = payload[offset : offset + count * dtype.itemsize]
        if len(data) < count * dtype.itemsize:
            raise TruncatedStreamError("truncated raw tensor payload")
        return np.frombuffer(data, dtype=dtype).reshape(shape).copy()
    except (IndexError, struct.error, TypeError) as exc:
        raise CorruptStreamError(f"corrupt raw tensor payload: {exc}") from None


_tmp_counter = itertools.count()


def _atomic_write(path: str, blob: bytes) -> None:
    """Crash-safe write: the path either keeps its old content or gets
    the complete new one, never a partial file.

    The temp name is unique per (process, thread, write), not just per
    process: two threads racing ``save()`` on the same path must each
    stage a complete private file, so whichever ``os.replace`` lands
    last wins wholesale -- the survivor is always one writer's intact
    checkpoint, never an interleaving of both.
    """
    tmp = (
        f"{path}.tmp.{os.getpid()}.{threading.get_ident()}.{next(_tmp_counter)}"
    )
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def save_checkpoint(
    state: Dict[str, np.ndarray],
    path: str,
    bits_per_value: float = 2.9,
    codec: Optional[TensorCodec] = None,
    min_compress_size: int = 256,
    parallel: Optional[ParallelConfig] = None,
) -> CheckpointStats:
    """Write ``state`` to ``path`` with LLM.265-compressed weights.

    Tensors with >= 2 dims and at least ``min_compress_size`` elements
    go through the codec; everything else is stored raw (FP32).

    ``parallel`` (ignored when an explicit ``codec`` is passed) enables
    slice-parallel tile encoding inside the default codec; the written
    bytes are identical to a serial save.
    """
    codec = codec or TensorCodec(tile=128, parallel=parallel)
    num_compressed = 0
    num_raw = 0
    parts: List[bytes] = []
    for name, tensor in state.items():
        tensor = np.asarray(tensor)
        if tensor.ndim >= 2 and tensor.size >= min_compress_size:
            kind = _KIND_LV265
            payload = codec.encode(tensor, bits_per_value=bits_per_value).to_bytes()
            num_compressed += 1
        else:
            kind = _KIND_RAW
            payload = _pack_raw(tensor.astype(np.float32))
            num_raw += 1
        encoded_name = name.encode("utf-8")
        if len(encoded_name) > 0xFFFF:
            raise ValueError(f"tensor name too long: {name!r}")
        parts.append(struct.pack("<H", len(encoded_name)))
        parts.append(encoded_name)
        parts.append(_ENTRY_HEADER.pack(kind, len(payload), crc32(payload)))
        parts.append(payload)

    blob = b"".join(
        [_MAGIC, struct.pack("<BI", _VERSION, len(state))] + parts
    )
    _atomic_write(path, blob)
    telemetry.count("checkpoint.saves")

    raw_fp16 = sum(np.asarray(t).size * 2 for t in state.values())
    return CheckpointStats(
        compressed_bytes=len(blob),
        raw_fp16_bytes=raw_fp16,
        num_compressed_tensors=num_compressed,
        num_raw_tensors=num_raw,
    )


def _iter_entries(blob: bytes):
    """Yield ``(name, kind, payload, crc_ok)`` for each entry.

    Structural damage (truncation inside headers) raises
    :class:`TruncatedStreamError`; payload damage is reported via
    ``crc_ok`` so callers choose strict or tolerant handling.
    """
    if blob[: len(_MAGIC)] != _MAGIC:
        raise CorruptStreamError("not an LLM.265 checkpoint")
    try:
        version, count = struct.unpack_from("<BI", blob, len(_MAGIC))
    except struct.error:
        raise TruncatedStreamError("checkpoint shorter than its header") from None
    if version != _VERSION:
        raise CorruptStreamError(f"unsupported checkpoint version {version}")
    offset = len(_MAGIC) + struct.calcsize("<BI")
    for _ in range(count):
        try:
            (name_len,) = struct.unpack_from("<H", blob, offset)
            offset += 2
            name = blob[offset : offset + name_len].decode("utf-8", "replace")
            if len(blob) - offset < name_len:
                raise TruncatedStreamError("truncated checkpoint entry name")
            offset += name_len
            kind, payload_len, payload_crc = _ENTRY_HEADER.unpack_from(blob, offset)
            offset += _ENTRY_HEADER.size
        except struct.error:
            raise TruncatedStreamError("truncated checkpoint entry header") from None
        payload = blob[offset : offset + payload_len]
        if len(payload) < payload_len:
            raise TruncatedStreamError(f"truncated payload for entry {name!r}")
        offset += payload_len
        yield name, kind, payload, crc32(payload) == payload_crc


def _decode_entry(
    name: str, kind: int, payload: bytes, codec: TensorCodec
) -> np.ndarray:
    if kind == _KIND_LV265:
        return codec.decode(CompressedTensor.from_bytes(payload))
    if kind == _KIND_RAW:
        return np.asarray(_unpack_raw(payload), dtype=np.float64)
    raise CorruptStreamError(f"unknown entry kind {kind} for {name!r}")


def load_checkpoint(
    path: str,
    codec: Optional[TensorCodec] = None,
    parallel: Optional[ParallelConfig] = None,
    decode: str = "vectorized",
) -> Dict[str, np.ndarray]:
    """Load a checkpoint written by :func:`save_checkpoint`.

    Strict: any damaged entry raises :class:`CorruptStreamError`.  Use
    :func:`load_checkpoint_with_report` to salvage the intact tensors
    from a damaged file.  ``parallel`` and ``decode`` (both ignored
    when an explicit ``codec`` is passed) select slice-parallel tile
    decoding and the decode path (``"vectorized"`` / ``"legacy"``).
    """
    codec = codec or TensorCodec(tile=128, parallel=parallel, decode=decode)
    with open(path, "rb") as handle:
        blob = handle.read()
    state: Dict[str, np.ndarray] = {}
    for name, kind, payload, crc_ok in _iter_entries(blob):
        if not crc_ok:
            raise ChecksumError(f"checkpoint entry {name!r}: checksum mismatch")
        state[name] = _decode_entry(name, kind, payload, codec)
    return state


def load_checkpoint_with_report(
    path: str,
    codec: Optional[TensorCodec] = None,
    decode: str = "vectorized",
) -> Tuple[Dict[str, np.ndarray], CheckpointLoadReport]:
    """Tolerant load: skip damaged entries, report what was lost.

    Structural damage to the file header still raises -- there is
    nothing to salvage without the entry table.  ``decode`` selects
    the decode path when no explicit ``codec`` is passed.
    """
    codec = codec or TensorCodec(tile=128, decode=decode)
    with open(path, "rb") as handle:
        blob = handle.read()
    report = CheckpointLoadReport()
    state: Dict[str, np.ndarray] = {}
    try:
        for name, kind, payload, crc_ok in _iter_entries(blob):
            report.total_entries += 1
            if not crc_ok:
                report.skipped.append((name, "checksum mismatch"))
                continue
            try:
                state[name] = _decode_entry(name, kind, payload, codec)
            except CorruptStreamError as exc:
                report.skipped.append((name, str(exc)))
                continue
            report.loaded.append(name)
    except TruncatedStreamError as exc:
        # Entries past the truncation point are unrecoverable; keep
        # what decoded cleanly and record the cut.
        report.skipped.append(("<rest of file>", str(exc)))
    if report.skipped:
        telemetry.count("checkpoint.entries_skipped", len(report.skipped))
    return state, report
