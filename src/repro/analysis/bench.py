"""Throughput benchmark for the codec engine (``llm265 bench``).

Measures encode / decode MB/s on a seeded synthetic tensor at the
standard QPs, for a fixed ladder of engine configurations:

- ``baseline``   -- the pre-optimisation serial path (legacy scalar RD
  search, primitive-call entropy writer).  This is the reference the
  tracked speedups are measured against.
- ``vectorized`` -- the default engine: vectorized RD mode search and
  the fused entropy writer, still serial.  Byte-identical to
  ``baseline`` by construction (same decisions, faster evaluation);
  the bench verifies that on every run.
- ``turbo``      -- the two-pass transform-domain search
  (``rd_search="turbo"``): batched whole-frame mode costing against
  source references, quadtree DP, exact re-coding of the chosen
  leaves.  Streams are fully decodable and drift-free but *decisions*
  may differ slightly from the exact search, so its bytes/MSE are
  tracked as a quality delta rather than required identical.
- ``parallel``   -- the turbo engine plus slice-parallel encode and
  decode over a worker pool.  Byte-identical to serial ``turbo``
  (verified on every run; divergence fails the bench, and CI runs
  ``llm265 bench --quick`` exactly to catch that).

Results are written as JSON (``BENCH_codec.json`` at the repo root is
the tracked baseline) with the git revision, configuration, per-QP
throughput, and speedup versus baseline.
"""

from __future__ import annotations

import json
import subprocess
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.codec.decoder import decode_frames
from repro.codec.encoder import EncoderConfig, FrameEncoder
from repro.codec.profiles import H265_PROFILE, CodecProfile
from repro.parallel import ParallelConfig
from repro.tensor.frames import split_tiles
from repro.tensor.precision import grid_for

#: JSON schema identifier written into every result file.
SCHEMA = "llm265-bench-v1"
#: Standard QPs: fine / mid / coarse operating points.
DEFAULT_QPS = (18.0, 26.0, 34.0)
_SEED = 20260806


def _git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def make_frames(size_mb: float, tile: int = 128) -> Tuple[List[np.ndarray], int]:
    """Seeded tensor -> 8-bit frame tiles; returns (frames, tensor bytes).

    The tensor is a smooth low-rank field plus noise, so the encoder
    exercises realistic mode decisions (not pure-noise worst case, not
    trivially flat either).
    """
    values = int(size_mb * (1 << 20) / 4)  # float32
    edge = max(tile, tile * int(round(values**0.5 / tile)))
    rng = np.random.default_rng(_SEED)
    u = rng.standard_normal((edge, 8))
    v = rng.standard_normal((8, edge))
    tensor = (u @ v + 0.25 * rng.standard_normal((edge, edge))).astype(np.float32)
    tiles, _layout = split_tiles(tensor, tile)
    frames = []
    for piece in tiles:
        grid = grid_for(piece.astype(np.float64))
        frames.append(grid.to_codes(piece.astype(np.float64)))
    return frames, tensor.nbytes


def _time_best(fn, repeats: int) -> Tuple[float, object]:
    """Best-of-N wall time; returns (seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_configs(workers: int) -> Dict[str, EncoderConfig]:
    """The benchmark ladder, slowest (pre-PR reference) first."""

    def cfg(**kw) -> EncoderConfig:
        return EncoderConfig(profile=H265_PROFILE, qp=24.0, **kw)

    return {
        "baseline": cfg(rd_search="legacy", fast_entropy=False),
        "vectorized": cfg(),
        "turbo": cfg(rd_search="turbo"),
        "parallel": cfg(
            rd_search="turbo",
            parallel=ParallelConfig(workers=workers, executor="thread"),
        ),
    }


def run_benchmark(
    size_mb: float = 1.0,
    qps: Sequence[float] = DEFAULT_QPS,
    workers: int = 4,
    repeats: int = 3,
    tile: int = 128,
    profile: CodecProfile = H265_PROFILE,
) -> dict:
    """Run the full ladder; returns the JSON-ready result document."""
    frames, tensor_bytes = make_frames(size_mb, tile=tile)
    mb = tensor_bytes / (1 << 20)
    ladder = bench_configs(workers)

    results = []
    divergent = False
    for qp in qps:
        row: dict = {"qp": qp, "encode": {}, "decode": {}}
        streams: Dict[str, bytes] = {}
        for name, base_cfg in ladder.items():
            cfg = EncoderConfig(
                profile=profile,
                qp=qp,
                rd_search=base_cfg.rd_search,
                fast_entropy=base_cfg.fast_entropy,
                parallel=base_cfg.parallel,
            )
            seconds, result = _time_best(
                lambda c=cfg: FrameEncoder(c).encode(frames), repeats
            )
            streams[name] = result.data
            row["encode"][name] = {
                "seconds": round(seconds, 6),
                "mb_per_s": round(mb / seconds, 3),
                "bytes": len(result.data),
                "mse": round(result.mse, 6),
            }
        row["bitstreams_identical"] = (
            streams["vectorized"] == streams["baseline"]
            and streams["parallel"] == streams["turbo"]
        )
        row["turbo_matches_exact"] = streams["turbo"] == streams["vectorized"]
        divergent = divergent or not row["bitstreams_identical"]
        row["encode_speedup"] = {
            name: round(
                row["encode"]["baseline"]["seconds"]
                / row["encode"][name]["seconds"],
                3,
            )
            for name in ladder
        }

        data = streams["turbo"]
        dec_serial, serial_frames = _time_best(
            lambda: decode_frames(data), repeats
        )
        dec_par, par_frames = _time_best(
            lambda: decode_frames(
                data,
                parallel=ParallelConfig(workers=workers, executor="thread"),
            ),
            repeats,
        )
        decode_identical = all(
            np.array_equal(a, b) for a, b in zip(serial_frames, par_frames)
        )
        divergent = divergent or not decode_identical
        row["decode"] = {
            "serial": {
                "seconds": round(dec_serial, 6),
                "mb_per_s": round(mb / dec_serial, 3),
            },
            "parallel": {
                "seconds": round(dec_par, 6),
                "mb_per_s": round(mb / dec_par, 3),
            },
            "identical": decode_identical,
        }
        results.append(row)

    speedups = [r["encode_speedup"]["parallel"] for r in results]
    return {
        "schema": SCHEMA,
        "git_rev": _git_rev(),
        "config": {
            "size_mb": round(mb, 4),
            "tile": tile,
            "profile": profile.name,
            "workers": workers,
            "repeats": repeats,
            "qps": list(qps),
            "seed": _SEED,
        },
        "results": results,
        "summary": {
            "best_encode_speedup": max(speedups),
            "mean_encode_speedup": round(sum(speedups) / len(speedups), 3),
            "all_identical": not divergent,
        },
    }


def format_report(doc: dict) -> str:
    """Human-readable table for the CLI."""
    lines = [
        f"llm265 bench  rev={doc['git_rev']}  "
        f"{doc['config']['size_mb']:.2f} MB tensor, "
        f"{doc['config']['workers']} workers, "
        f"best of {doc['config']['repeats']}",
        f"{'QP':>5s} {'config':<12s} {'MB/s':>9s} {'speedup':>8s} {'bytes':>9s}",
    ]
    for row in doc["results"]:
        for name, enc in row["encode"].items():
            lines.append(
                f"{row['qp']:5.1f} {name:<12s} {enc['mb_per_s']:>9.2f} "
                f"{row['encode_speedup'][name]:>7.2f}x {enc['bytes']:>9d}"
            )
        dec = row["decode"]
        lines.append(
            f"{row['qp']:5.1f} {'decode':<12s} "
            f"{dec['serial']['mb_per_s']:>9.2f} "
            f"{dec['serial']['seconds'] / dec['parallel']['seconds']:>7.2f}x "
            f"{'par' if dec['identical'] else 'DIVERGED':>9s}"
        )
        if not row["bitstreams_identical"]:
            lines.append(f"{row['qp']:5.1f} ** ENCODE BITSTREAMS DIVERGED **")
    s = doc["summary"]
    lines.append(
        f"summary: encode speedup mean {s['mean_encode_speedup']:.2f}x, "
        f"best {s['best_encode_speedup']:.2f}x, "
        f"identical={s['all_identical']}"
    )
    return "\n".join(lines)


def write_results(doc: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=False)
        handle.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python benchmarks/bench_throughput.py``)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small tensor, single QP (CI smoke mode)")
    parser.add_argument("--size-mb", type=float, default=1.0)
    parser.add_argument("--qps", default=None,
                        help="comma-separated QP list (default 18,26,34)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--output", default=None,
                        help="write the JSON document here")
    args = parser.parse_args(argv)

    size_mb = 0.0625 if args.quick else args.size_mb
    repeats = 1 if args.quick else args.repeats
    if args.qps:
        qps: Sequence[float] = [float(v) for v in args.qps.split(",")]
    else:
        qps = (26.0,) if args.quick else DEFAULT_QPS

    doc = run_benchmark(
        size_mb=size_mb, qps=qps, workers=args.workers, repeats=repeats
    )
    print(format_report(doc))
    if args.output:
        write_results(doc, args.output)
        print(f"wrote {args.output}")
    return 0 if doc["summary"]["all_identical"] else 2
