"""Throughput benchmark for the codec engine (``llm265 bench``).

Measures encode / decode MB/s on a seeded synthetic tensor at the
standard QPs, for a fixed ladder of engine configurations:

- ``baseline``   -- the pre-optimisation serial path (legacy scalar RD
  search, primitive-call entropy writer, pure-Python coder).  This is
  the reference the tracked speedups are measured against.
- ``vectorized`` -- the default engine: vectorized RD mode search and
  the fused entropy writer, still serial and still pure Python
  (``encode="python"``).  Byte-identical to ``baseline`` by
  construction (same decisions, faster evaluation); the bench
  verifies that on every run.
- ``turbo``      -- the two-pass transform-domain search
  (``rd_search="turbo"``), pure Python: batched whole-frame mode
  costing against source references, quadtree DP, exact re-coding of
  the chosen leaves.  Streams are fully decodable and drift-free but
  *decisions* may differ slightly from the exact search, so its
  bytes/MSE are tracked as a quality delta rather than required
  identical.
- ``native``     -- turbo plus the self-building C kernels
  (``encode="native"``): the fused entropy write kernel, the batched
  RD cost kernel, and the reference-gather kernel.  Byte-identical to
  pure-Python ``turbo`` (same decisions, same bits -- the kernels are
  bit-exact transliterations) and verified on every run; this rung's
  speedup over ``baseline`` is the headline encode number.
- ``parallel``   -- the native engine plus slice-parallel encode and
  decode over a worker pool.  Byte-identical to serial ``native``
  (verified on every run; divergence fails the bench, and CI runs
  ``llm265 bench --quick`` exactly to catch that).

Decode gets its own ladder, timed on the ``turbo`` stream of each QP
and gated on byte-identity against the first rung:

- ``legacy``     -- the interleaved reference decoder, serial.  The
  tracked decode speedups are measured against this rung.
- ``vectorized`` -- the two-phase plan/reconstruct decoder (native
  scan kernel when available, fused pure-Python loop otherwise).
- ``parallel``   -- the vectorized decoder behind slice-parallel
  fan-out.  The decoder itself falls back to serial below its
  payload/slice/CPU thresholds; the bench records what actually ran.

Results are written as JSON (``BENCH_codec.json`` at the repo root is
the tracked baseline) with the git revision, configuration, per-QP
throughput, and speedup versus baseline.
"""

from __future__ import annotations

import json
import subprocess
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.codec.decoder import decode_frames
from repro.codec.encoder import EncoderConfig, FrameEncoder
from repro.codec.entropy import native
from repro.codec.profiles import H265_PROFILE, CodecProfile
from repro.parallel import ParallelConfig, warm_pool
from repro.tensor.frames import split_tiles
from repro.tensor.precision import grid_for

#: JSON schema identifier written into every result file.
#: v2 added the decode ladder (legacy / vectorized / parallel) with
#: per-rung ``decode_speedup`` fields.  v3 added the ``native`` encode
#: rung (C write/cost/refs kernels, gated byte-identical to pure-Python
#: turbo), pinned the pure rungs to ``encode="python"``, replaced the
#: ``scan_kernel`` config string with the per-kernel ``kernels`` map,
#: and added ``median_native_encode_speedup`` to the summary.
SCHEMA = "llm265-bench-v3"
#: Standard QPs: fine / mid / coarse operating points.
DEFAULT_QPS = (18.0, 26.0, 34.0)
_SEED = 20260806


def _git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def make_frames(size_mb: float, tile: int = 128) -> Tuple[List[np.ndarray], int]:
    """Seeded tensor -> 8-bit frame tiles; returns (frames, tensor bytes).

    The tensor is a smooth low-rank field plus noise, so the encoder
    exercises realistic mode decisions (not pure-noise worst case, not
    trivially flat either).
    """
    values = int(size_mb * (1 << 20) / 4)  # float32
    edge = max(tile, tile * int(round(values**0.5 / tile)))
    rng = np.random.default_rng(_SEED)
    u = rng.standard_normal((edge, 8))
    v = rng.standard_normal((8, edge))
    tensor = (u @ v + 0.25 * rng.standard_normal((edge, edge))).astype(np.float32)
    tiles, _layout = split_tiles(tensor, tile)
    frames = []
    for piece in tiles:
        grid = grid_for(piece.astype(np.float64))
        frames.append(grid.to_codes(piece.astype(np.float64)))
    return frames, tensor.nbytes


def _time_best(fn, repeats: int) -> Tuple[float, object]:
    """Best-of-N wall time; returns (seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _time_best_interleaved(fns: Dict[str, object], repeats: int):
    """Best-of-N for several functions, sampled round-robin.

    Sequential best-of-N is unfair when rungs are compared against each
    other: a background load spike lasting longer than one rung's whole
    sampling window slows *only* that rung and survives the min().
    Interleaving the samples makes any spike hit every rung equally, so
    per-rung bests stay comparable.  Returns {name: (seconds, result)}.
    """
    best: Dict[str, float] = {name: float("inf") for name in fns}
    samples: Dict[str, List[float]] = {name: [] for name in fns}
    results: Dict[str, object] = {}
    for _ in range(max(1, repeats)):
        for name, fn in fns.items():
            start = time.perf_counter()
            results[name] = fn()
            elapsed = time.perf_counter() - start
            samples[name].append(elapsed)
            best[name] = min(best[name], elapsed)
    return {name: (best[name], results[name], samples[name]) for name in fns}


def _paired_ratio(a: List[float], b: List[float]) -> float:
    """Median of per-round a/b ratios from interleaved samples.

    Adjacent samples share whatever the machine was doing that instant,
    so the per-round ratio cancels load drift that a ratio of two
    independent bests cannot.  This is the statistic behind the
    "parallel decode never loses to serial" summary claim: on a box
    where parallel falls back to serial the true ratio is exactly 1.0,
    and this estimator actually lands there instead of crediting noise
    to one side.
    """
    ratios = sorted(x / y for x, y in zip(a, b))
    mid = len(ratios) // 2
    if len(ratios) % 2:
        return ratios[mid]
    return (ratios[mid - 1] + ratios[mid]) / 2


def bench_configs(workers: int) -> Dict[str, EncoderConfig]:
    """The benchmark ladder, slowest (pre-PR reference) first."""

    def cfg(**kw) -> EncoderConfig:
        return EncoderConfig(profile=H265_PROFILE, qp=24.0, **kw)

    return {
        "baseline": cfg(rd_search="legacy", fast_entropy=False, encode="python"),
        "vectorized": cfg(encode="python"),
        "turbo": cfg(rd_search="turbo", encode="python"),
        "native": cfg(rd_search="turbo", encode="native"),
        "parallel": cfg(
            rd_search="turbo",
            encode="native",
            parallel=ParallelConfig(workers=workers, executor="thread"),
        ),
    }


def run_benchmark(
    size_mb: float = 1.0,
    qps: Sequence[float] = DEFAULT_QPS,
    workers: int = 4,
    repeats: int = 3,
    tile: int = 128,
    profile: CodecProfile = H265_PROFILE,
) -> dict:
    """Run the full ladder; returns the JSON-ready result document."""
    frames, tensor_bytes = make_frames(size_mb, tile=tile)
    mb = tensor_bytes / (1 << 20)
    ladder = bench_configs(workers)

    results = []
    divergent = False
    for qp in qps:
        row: dict = {"qp": qp, "encode": {}, "decode": {}}
        streams: Dict[str, bytes] = {}
        for name, base_cfg in ladder.items():
            cfg = EncoderConfig(
                profile=profile,
                qp=qp,
                rd_search=base_cfg.rd_search,
                fast_entropy=base_cfg.fast_entropy,
                encode=base_cfg.encode,
                parallel=base_cfg.parallel,
            )
            seconds, result = _time_best(
                lambda c=cfg: FrameEncoder(c).encode(frames), repeats
            )
            streams[name] = result.data
            row["encode"][name] = {
                "seconds": round(seconds, 6),
                "mb_per_s": round(mb / seconds, 3),
                "bytes": len(result.data),
                "mse": round(result.mse, 6),
            }
        row["bitstreams_identical"] = (
            streams["vectorized"] == streams["baseline"]
            and streams["native"] == streams["turbo"]
            and streams["parallel"] == streams["native"]
        )
        row["turbo_matches_exact"] = streams["turbo"] == streams["vectorized"]
        divergent = divergent or not row["bitstreams_identical"]
        row["encode_speedup"] = {
            name: round(
                row["encode"]["baseline"]["seconds"]
                / row["encode"][name]["seconds"],
                3,
            )
            for name in ladder
        }

        # -- decode ladder, on this QP's turbo stream ------------------
        data = streams["turbo"]
        par_cfg = ParallelConfig(workers=workers, executor="thread")
        warm_pool(par_cfg)
        decode_ladder = {
            "legacy": lambda: decode_frames(data, decode="legacy"),
            "vectorized": lambda: decode_frames(data, decode="vectorized"),
            "parallel": lambda: decode_frames(
                data, parallel=par_cfg, decode="vectorized"
            ),
        }
        decoded: Dict[str, list] = {}
        # Decode is cheap next to encode, so spend extra samples: the
        # summary compares decode rungs against each other and needs
        # per-rung bests that are stable to scheduler noise.
        timed = _time_best_interleaved(decode_ladder, max(repeats, 2 * repeats + 1))
        for name, (seconds, frames_out, _samples) in timed.items():
            decoded[name] = frames_out
            row["decode"][name] = {
                "seconds": round(seconds, 6),
                "mb_per_s": round(mb / seconds, 3),
            }
        # Two decimals: wall-clock jitter on these sub-second decodes is
        # a few percent per sample, so a third digit is false precision.
        row["decode"]["parallel_vs_serial"] = round(
            _paired_ratio(timed["vectorized"][2], timed["parallel"][2]), 2
        )
        decode_identical = all(
            np.array_equal(a, b)
            for name in ("vectorized", "parallel")
            for a, b in zip(decoded["legacy"], decoded[name])
        )
        divergent = divergent or not decode_identical
        row["decode"]["identical"] = decode_identical
        row["decode_speedup"] = {
            name: round(
                row["decode"]["legacy"]["seconds"]
                / row["decode"][name]["seconds"],
                3,
            )
            for name in decode_ladder
        }
        results.append(row)

    speedups = [r["encode_speedup"]["parallel"] for r in results]
    native_speedups = sorted(r["encode_speedup"]["native"] for r in results)
    dec_speedups = [r["decode_speedup"]["vectorized"] for r in results]
    par_vs_serial = [r["decode"]["parallel_vs_serial"] for r in results]
    mid = len(native_speedups) // 2
    median_native = (
        native_speedups[mid]
        if len(native_speedups) % 2
        else (native_speedups[mid - 1] + native_speedups[mid]) / 2
    )
    return {
        "schema": SCHEMA,
        "git_rev": _git_rev(),
        "config": {
            "size_mb": round(mb, 4),
            "tile": tile,
            "profile": profile.name,
            "workers": workers,
            "repeats": repeats,
            "qps": list(qps),
            "seed": _SEED,
            "kernels": native.kernel_status(),
        },
        "results": results,
        "summary": {
            "best_encode_speedup": max(speedups),
            "mean_encode_speedup": round(sum(speedups) / len(speedups), 3),
            # The headline encode number: serial native-kernel rung over
            # baseline, median across QPs (robust to one noisy QP).
            "median_native_encode_speedup": round(median_native, 3),
            "mean_native_encode_speedup": round(
                sum(native_speedups) / len(native_speedups), 3
            ),
            "best_decode_speedup": max(dec_speedups),
            "mean_decode_speedup": round(
                sum(dec_speedups) / len(dec_speedups), 3
            ),
            # min over QPs of the paired serial/parallel ratio;
            # >= 1.0 means the parallel rung never loses to serial.
            "parallel_vs_serial_decode": min(par_vs_serial),
            "all_identical": not divergent,
        },
    }


def format_report(doc: dict) -> str:
    """Human-readable table for the CLI."""
    lines = [
        f"llm265 bench  rev={doc['git_rev']}  "
        f"{doc['config']['size_mb']:.2f} MB tensor, "
        f"{doc['config']['workers']} workers, "
        f"best of {doc['config']['repeats']}",
        "kernels: "
        + "  ".join(
            f"{name}={state}"
            for name, state in doc["config"].get("kernels", {}).items()
        ),
        f"{'QP':>5s} {'config':<14s} {'MB/s':>9s} {'speedup':>8s} {'bytes':>9s}",
    ]
    for row in doc["results"]:
        for name, enc in row["encode"].items():
            lines.append(
                f"{row['qp']:5.1f} {name:<14s} {enc['mb_per_s']:>9.2f} "
                f"{row['encode_speedup'][name]:>7.2f}x {enc['bytes']:>9d}"
            )
        dec = row["decode"]
        for name in ("legacy", "vectorized", "parallel"):
            lines.append(
                f"{row['qp']:5.1f} {'dec:' + name:<14s} "
                f"{dec[name]['mb_per_s']:>9.2f} "
                f"{row['decode_speedup'][name]:>7.2f}x "
                f"{'ok' if dec['identical'] else 'DIVERGED':>9s}"
            )
        if not row["bitstreams_identical"]:
            lines.append(f"{row['qp']:5.1f} ** ENCODE BITSTREAMS DIVERGED **")
    s = doc["summary"]
    lines.append(
        f"summary: encode speedup mean {s['mean_encode_speedup']:.2f}x "
        f"best {s['best_encode_speedup']:.2f}x "
        f"native median {s['median_native_encode_speedup']:.2f}x | "
        f"decode speedup mean {s['mean_decode_speedup']:.2f}x "
        f"best {s['best_decode_speedup']:.2f}x "
        f"(parallel/serial {s['parallel_vs_serial_decode']:.2f}x) | "
        f"identical={s['all_identical']}"
    )
    return "\n".join(lines)


def write_results(doc: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=False)
        handle.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python benchmarks/bench_throughput.py``)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small tensor, single QP (CI smoke mode)")
    parser.add_argument("--size-mb", type=float, default=1.0)
    parser.add_argument("--qps", default=None,
                        help="comma-separated QP list (default 18,26,34)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--output", default=None,
                        help="write the JSON document here")
    args = parser.parse_args(argv)

    size_mb = 0.0625 if args.quick else args.size_mb
    repeats = 1 if args.quick else args.repeats
    if args.qps:
        qps: Sequence[float] = [float(v) for v in args.qps.split(",")]
    else:
        qps = (26.0,) if args.quick else DEFAULT_QPS

    doc = run_benchmark(
        size_mb=size_mb, qps=qps, workers=args.workers, repeats=repeats
    )
    print(format_report(doc))
    if args.output:
        write_results(doc, args.output)
        print(f"wrote {args.output}")
    return 0 if doc["summary"]["all_identical"] else 2
