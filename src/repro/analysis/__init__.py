"""Diagnostics: Section 3.1 tensor statistics + Section 4 memory math."""

from repro.analysis.memory import (
    LLAMA2_7B,
    LLAMA3_70B,
    kv_cache_bytes,
    paper_deployment_table,
    per_device_memory,
    weight_bytes,
)
from repro.analysis.statistics import (
    channel_structure_score,
    outlier_ratio,
    rate_distortion_sweep,
    tensor_entropy_bits,
)

__all__ = [
    "tensor_entropy_bits",
    "outlier_ratio",
    "channel_structure_score",
    "rate_distortion_sweep",
    "weight_bytes",
    "kv_cache_bytes",
    "per_device_memory",
    "paper_deployment_table",
    "LLAMA2_7B",
    "LLAMA3_70B",
]
