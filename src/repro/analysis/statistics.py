"""Why-it-works diagnostics: the statistics Section 3.1 appeals to.

Three measurable properties make video codecs effective on tensors:
bell-shaped values (entropy coding), channel-wise structure (intra
prediction), and sparse outliers (transform coding).  These functions
quantify each, plus a rate-distortion sweep utility used by several
benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.tensor.codec import TensorCodec
from repro.tensor.precision import quantize_to_uint8


def tensor_entropy_bits(tensor: np.ndarray) -> float:
    """Order-0 entropy (bits/value) of the 8-bit mapped tensor.

    The gap below 8.0 is what pure entropy coding can reclaim
    (Figure 2(b) step 2).
    """
    codes, _ = quantize_to_uint8(np.asarray(tensor, dtype=np.float64))
    counts = np.bincount(codes.reshape(-1), minlength=256)
    probs = counts[counts > 0] / codes.size
    return float(-(probs * np.log2(probs)).sum())


def outlier_ratio(tensor: np.ndarray, sigma: float = 4.0) -> float:
    """Fraction of values beyond ``sigma`` standard deviations."""
    flat = np.asarray(tensor, dtype=np.float64).reshape(-1)
    std = float(np.std(flat)) or 1.0
    return float(np.mean(np.abs(flat - flat.mean()) > sigma * std))


def channel_structure_score(tensor: np.ndarray) -> float:
    """How much of the variance per-column means explain (0..1).

    High values mean the tensor, viewed as an image, has the vertical
    stripe/edge structure intra prediction exploits (Figure 4).
    """
    matrix = np.asarray(tensor, dtype=np.float64)
    if matrix.ndim != 2:
        matrix = matrix.reshape(-1, matrix.shape[-1])
    total = float(np.var(matrix))
    if total == 0:
        return 0.0
    col_means = matrix.mean(axis=0)
    explained = float(np.var(col_means))
    return min(1.0, explained / total)


def rate_distortion_sweep(
    tensor: np.ndarray,
    qps: Sequence[float] = (8, 16, 24, 32, 40),
    codec: Optional[TensorCodec] = None,
) -> List[Tuple[float, float, float]]:
    """(qp, bits/value, MSE) curve for one tensor."""
    codec = codec or TensorCodec(tile=256)
    tensor = np.asarray(tensor, dtype=np.float64)
    points = []
    for qp in qps:
        compressed = codec.encode(tensor, qp=float(qp))
        restored = codec.decode(compressed)
        points.append(
            (
                float(qp),
                compressed.bits_per_value,
                float(np.mean((restored - tensor) ** 2)),
            )
        )
    return points


def profile_tensor(tensor: np.ndarray) -> Dict[str, float]:
    """One-call summary of the three Section 3.1 properties."""
    return {
        "entropy_bits": tensor_entropy_bits(tensor),
        "outlier_ratio": outlier_ratio(tensor),
        "channel_structure": channel_structure_score(tensor),
    }
