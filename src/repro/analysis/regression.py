"""Perf-regression sentinel: compare a fresh bench run against a baseline.

``llm265 bench --check`` / ``llm265 serve-bench --check`` re-run the
benchmark and hand both documents (the tracked ``BENCH_*.json`` and the
fresh run) to this module.  The hard problem is that raw MB/s and raw
latency milliseconds are *machine* numbers -- a laptop baseline checked
on a CI runner would always "regress".  The sentinel therefore compares
only statistics that are **self-normalized within one run**:

- encode/decode *speedups* (each rung's time over the same run's
  reference rung) -- the quantity the optimisation PRs actually claim;
- the paired parallel-vs-serial decode ratio (median of per-round
  ratios from interleaved sampling, see ``bench._paired_ratio``);
- compression ratio proxies (bytes, mse) at fixed seed/config, which
  are decision-deterministic, not timing-dependent;
- serving availability and the p99/p50 tail-amplification ratio.

Noise handling is explicit rather than wished away:

- every perf check has a relative tolerance, scaled by a ``slack``
  multiplier so CI (shared, noisy runners) can loosen all thresholds
  with one knob;
- **min-sample guards**: checks whose statistic is meaningless on tiny
  runs (best-of-1 timing, percentiles over a handful of requests) are
  *skipped* -- reported as ``skipped`` with the guard that fired, never
  silently passed;
- config mismatches (different seed, tensor size, QP ladder, worker
  count) skip the affected checks instead of comparing apples to
  oranges.

Findings are classified, and the classes map to exit codes in the CLI:

- ``divergence`` -- a correctness invariant failed in the *fresh* run
  (bitstreams diverged, chaos contract violated).  Exit 2, same as the
  pre-sentinel behaviour.
- ``regression`` -- fresh perf fell outside tolerance of baseline.
  Exit 3, so CI can distinguish "broken" from "slower".
"""

from __future__ import annotations

import json
from typing import Callable, List, Optional

__all__ = [
    "EXIT_DIVERGENCE",
    "EXIT_OK",
    "EXIT_REGRESSION",
    "compare_cluster_bench",
    "compare_codec_bench",
    "compare_serving_bench",
    "format_comparison",
    "load_baseline",
]

EXIT_OK = 0
EXIT_DIVERGENCE = 2
EXIT_REGRESSION = 3

#: Relative tolerance on within-run speedup ratios (before slack).
#: Interleaved best-of-N sampling keeps run-to-run speedup drift well
#: under this on an idle box; CI passes ``--slack`` to widen it.
SPEEDUP_REL_TOL = 0.25
#: Compressed size / mse may drift only this much before it's flagged
#: (decisions are deterministic at fixed seed; real drift means a codec
#: change that should update the baseline deliberately).
SIZE_REL_TOL = 0.10
#: Availability is compared absolutely (it is already in [0, 1]).
AVAILABILITY_ABS_TOL = 0.02
#: Tail amplification (p99/p50) may grow by this factor before flagged.
TAIL_RATIO_FACTOR = 3.0
#: Min-sample guards.
MIN_REPEATS = 2  # best-of-1 timing is a coin flip
MIN_REQUESTS = 100  # percentiles/availability need a population
#: The hedge A/B's tracked statistic is ``p99_ratio`` (no-hedge p99 over
#: hedged p99).  The *claim* is ratio > 1, but on a loaded single-core
#: box the ratio swings widely run to run (the p99 of a few hundred
#: requests moves with scheduler noise), so the sentinel only flags
#: hedging that made the tail distinctly *worse*: fresh ratio below
#: ``1 - HEDGE_RATIO_TOL * slack``.  Improvements of any size pass.
HEDGE_RATIO_TOL = 0.30
#: A hedge A/B whose hedged run fired fewer backups than this proves
#: nothing either way; the check is skipped, not passed.
MIN_HEDGES = 8


class _Comparison:
    """Accumulates findings and renders the final report document."""

    def __init__(self, kind: str, slack: float) -> None:
        if slack <= 0:
            raise ValueError("slack must be > 0")
        self.kind = kind
        self.slack = slack
        self.findings: List[dict] = []

    def _add(self, status: str, metric: str, detail: str,
             baseline=None, fresh=None) -> None:
        self.findings.append({
            "status": status,
            "metric": metric,
            "detail": detail,
            "baseline": baseline,
            "fresh": fresh,
        })

    def ok(self, metric, detail, baseline=None, fresh=None):
        self._add("ok", metric, detail, baseline, fresh)

    def skip(self, metric, guard):
        self._add("skipped", metric, guard)

    def regression(self, metric, detail, baseline, fresh):
        self._add("regression", metric, detail, baseline, fresh)

    def divergence(self, metric, detail, baseline=None, fresh=None):
        self._add("divergence", metric, detail, baseline, fresh)

    def floor_check(self, metric: str, baseline: float, fresh: float,
                    rel_tol: float) -> None:
        """Fresh must be >= baseline * (1 - rel_tol * slack)."""
        floor = baseline * (1.0 - rel_tol * self.slack)
        if fresh < floor:
            self.regression(
                metric,
                f"{fresh:.3f} below floor {floor:.3f} "
                f"(baseline {baseline:.3f}, tol {rel_tol:.0%} x "
                f"slack {self.slack:g})",
                baseline, fresh,
            )
        else:
            self.ok(metric, f"{fresh:.3f} >= floor {floor:.3f}",
                    baseline, fresh)

    def ceiling_check(self, metric: str, baseline: float, fresh: float,
                      factor: float) -> None:
        """Fresh must be <= baseline * factor * slack (bigger is worse)."""
        ceiling = baseline * factor * self.slack
        if fresh > ceiling:
            self.regression(
                metric,
                f"{fresh:.3f} above ceiling {ceiling:.3f} "
                f"(baseline {baseline:.3f}, factor {factor:g} x "
                f"slack {self.slack:g})",
                baseline, fresh,
            )
        else:
            self.ok(metric, f"{fresh:.3f} <= ceiling {ceiling:.3f}",
                    baseline, fresh)

    def report(self) -> dict:
        regressions = sum(1 for f in self.findings
                          if f["status"] == "regression")
        divergences = sum(1 for f in self.findings
                          if f["status"] == "divergence")
        if divergences:
            exit_code = EXIT_DIVERGENCE
        elif regressions:
            exit_code = EXIT_REGRESSION
        else:
            exit_code = EXIT_OK
        return {
            "kind": self.kind,
            "slack": self.slack,
            "checked": sum(1 for f in self.findings if f["status"] == "ok"),
            "skipped": sum(1 for f in self.findings
                           if f["status"] == "skipped"),
            "regressions": regressions,
            "divergences": divergences,
            "passed": exit_code == EXIT_OK,
            "exit_code": exit_code,
            "findings": self.findings,
        }


def load_baseline(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


# -- codec bench (BENCH_codec.json) ----------------------------------------


def compare_codec_bench(baseline: dict, fresh: dict,
                        slack: float = 1.0) -> dict:
    """Check a fresh ``run_benchmark`` document against the baseline."""
    cmp = _Comparison("codec", slack)

    if fresh.get("schema") != baseline.get("schema"):
        cmp.skip("schema", f"schema changed "
                 f"({baseline.get('schema')} -> {fresh.get('schema')}); "
                 f"only correctness checked")
    if not fresh.get("summary", {}).get("all_identical", False):
        cmp.divergence("all_identical",
                       "fresh run's bitstream/decode identity checks failed")
    else:
        cmp.ok("all_identical", "fresh bitstreams and decodes identical")

    bcfg, fcfg = baseline.get("config", {}), fresh.get("config", {})
    same_data = all(bcfg.get(k) == fcfg.get(k)
                    for k in ("seed", "size_mb", "tile", "qps", "profile"))
    same_shape = same_data and bcfg.get("workers") == fcfg.get("workers")

    # Deterministic drift: bytes / mse at fixed seed and config.
    if not same_data:
        cmp.skip("bytes,mse", "config differs (seed/size/tile/qps/profile); "
                 "deterministic checks skipped")
    else:
        brows = {row["qp"]: row for row in baseline.get("results", [])}
        for row in fresh.get("results", []):
            brow = brows.get(row["qp"])
            if brow is None:
                continue
            for rung, enc in row["encode"].items():
                base_enc = brow["encode"].get(rung)
                if base_enc is None:
                    continue
                metric = f"qp{row['qp']:g}.{rung}"
                if enc["bytes"] > base_enc["bytes"] * (
                        1.0 + SIZE_REL_TOL * slack):
                    cmp.regression(f"{metric}.bytes",
                                   "compressed size grew past tolerance",
                                   base_enc["bytes"], enc["bytes"])
                elif enc["mse"] > base_enc["mse"] * (
                        1.0 + SIZE_REL_TOL * slack) + 1e-9:
                    cmp.regression(f"{metric}.mse",
                                   "reconstruction error grew past tolerance",
                                   base_enc["mse"], enc["mse"])
                else:
                    cmp.ok(metric, "bytes/mse within tolerance",
                           base_enc["bytes"], enc["bytes"])

    # Perf: within-run speedups (machine-portable by construction).
    min_repeats = min(bcfg.get("repeats", 0), fcfg.get("repeats", 0))
    if not same_shape:
        cmp.skip("speedups", "config differs (data shape or workers); "
                 "speedup comparison skipped")
    elif min_repeats < MIN_REPEATS:
        cmp.skip("speedups", f"min-sample guard: repeats={min_repeats} < "
                 f"{MIN_REPEATS}; best-of-N timing too noisy to compare")
    else:
        bsum, fsum = baseline["summary"], fresh["summary"]
        for metric, rel_tol in (
            ("mean_encode_speedup", SPEEDUP_REL_TOL),
            ("best_encode_speedup", SPEEDUP_REL_TOL),
            # v3: the serial native-kernel rung's median speedup over
            # baseline -- the claim of the native-encode PR.  Guarded by
            # presence in both summaries so a v2 baseline is skipped,
            # not failed.
            ("median_native_encode_speedup", SPEEDUP_REL_TOL),
            ("mean_decode_speedup", SPEEDUP_REL_TOL),
            ("best_decode_speedup", SPEEDUP_REL_TOL),
            # The paired ratio is the steadiest statistic in the file;
            # still, parallel decode hovering at ~1.0x on small payloads
            # makes a tight floor false-positive-prone.
            ("parallel_vs_serial_decode", 2 * SPEEDUP_REL_TOL),
        ):
            if metric in bsum and metric in fsum:
                cmp.floor_check(metric, bsum[metric], fsum[metric], rel_tol)
    return cmp.report()


# -- serving bench (BENCH_serving.json) ------------------------------------


def compare_serving_bench(baseline: dict, fresh: dict,
                          slack: float = 1.0) -> dict:
    """Check fresh chaos + serve-bench sections against the baseline.

    Both documents use the ``BENCH_serving.json`` layout: a ``chaos``
    section (``run_chaos`` report) and/or a ``serve_bench`` section
    (``run_serve_bench`` report); sections absent from either side are
    skipped with a guard.
    """
    cmp = _Comparison("serving", slack)

    bchaos, fchaos = baseline.get("chaos"), fresh.get("chaos")
    if fchaos is None or bchaos is None:
        cmp.skip("chaos", "chaos section missing from "
                 + ("fresh" if fchaos is None else "baseline"))
    else:
        inv = fchaos.get("invariant", {})
        if not inv.get("passed", False):
            cmp.divergence("chaos.invariant",
                           "fresh chaos run violated the serving contract "
                           f"({inv.get('silent_corruptions', '?')} silent, "
                           f"{inv.get('untyped_errors', '?')} untyped)")
        else:
            cmp.ok("chaos.invariant", "fresh chaos contract holds")
        _availability_check(cmp, "chaos.availability",
                            bchaos.get("slo", {}), fchaos.get("slo", {}))
        _tail_check(cmp, "chaos.tail",
                    bchaos.get("slo", {}), fchaos.get("slo", {}))

    bsb, fsb = baseline.get("serve_bench"), fresh.get("serve_bench")
    if fsb is None or bsb is None:
        cmp.skip("serve_bench", "serve_bench section missing from "
                 + ("fresh" if fsb is None else "baseline"))
    else:
        _availability_check(cmp, "sequential.availability",
                            bsb.get("sequential", {}),
                            fsb.get("sequential", {}))
        _tail_check(cmp, "sequential.tail",
                    bsb.get("sequential", {}), fsb.get("sequential", {}))
        if bsb.get("shed_typed", 0) > 0 and fsb.get("shed_typed", 0) == 0:
            # Not a perf number: the burst phase exists to prove typed
            # shedding.  Zero sheds where the baseline had some means
            # admission control stopped engaging under the same load.
            cmp.regression("shed_typed",
                           "burst produced no typed Overloaded responses "
                           "where baseline shed under identical load",
                           bsb.get("shed_typed"), fsb.get("shed_typed"))
        else:
            cmp.ok("shed_typed", "typed shedding engaged (or baseline idle)",
                   bsb.get("shed_typed"), fsb.get("shed_typed"))
    return cmp.report()


# -- cluster bench (BENCH_cluster.json) ------------------------------------


def compare_cluster_bench(baseline: dict, fresh: dict,
                          slack: float = 1.0) -> dict:
    """Check a fresh ``run_cluster_bench`` document against the baseline.

    Gates, in order of severity:

    - the fresh chaos section's invariant (contract violations through
      shard kills) -- any violation is a **divergence**, exit 2;
    - per-shard-count availability floors against the baseline sweep;
    - per-shard-count tail amplification (p99/p50) ceilings;
    - the hedge A/B: backups must actually fire, and the tracked
      ``p99_ratio`` must not show hedging making the tail distinctly
      worse (see ``HEDGE_RATIO_TOL`` for why the floor is loose).
    """
    cmp = _Comparison("cluster", slack)

    if fresh.get("schema") != baseline.get("schema"):
        cmp.skip("schema", f"schema changed "
                 f"({baseline.get('schema')} -> {fresh.get('schema')}); "
                 f"only correctness checked")

    # -- chaos: the robustness claim ------------------------------------
    bchaos, fchaos = baseline.get("chaos"), fresh.get("chaos")
    if fchaos is None:
        cmp.skip("chaos", "chaos section missing from fresh run")
    else:
        inv = fchaos.get("invariant", {})
        violations = fchaos.get("violation_count",
                                0 if inv.get("passed") else 1)
        if violations or not inv.get("passed", False):
            cmp.divergence(
                "chaos.invariant",
                "fresh cluster chaos run violated the typed-response "
                f"contract ({violations} violations, "
                f"availability {inv.get('availability', 0.0):.4f} vs "
                f"slo {inv.get('availability_slo', 0.0):.3f})",
            )
        else:
            cmp.ok("chaos.invariant",
                   "contract held through shard kills "
                   f"(availability {inv.get('availability', 0.0):.4f})")
        if bchaos is not None:
            _availability_check(
                cmp, "chaos.availability",
                {"requests": bchaos.get("requests", 0),
                 "availability": bchaos.get("invariant", {}).get(
                     "availability")},
                {"requests": fchaos.get("requests", 0),
                 "availability": inv.get("availability")},
            )

    # -- shard sweep: availability + tail shape per shard count ---------
    bsweep = {p.get("shards"): p for p in baseline.get("shard_sweep", [])}
    for point in fresh.get("shard_sweep", []):
        shards = point.get("shards")
        base_point = bsweep.get(shards)
        if base_point is None:
            continue
        prefix = f"sweep[{shards}]"
        if base_point.get("replication") != point.get("replication"):
            cmp.skip(prefix, "replication factor differs between runs")
            continue
        _availability_check(cmp, f"{prefix}.availability",
                            base_point, point)
        _tail_check(cmp, f"{prefix}.tail", base_point, point)

    # -- hedge A/B: the tail-at-scale claim -----------------------------
    bhedge, fhedge = baseline.get("hedge"), fresh.get("hedge")
    if fhedge is None or bhedge is None:
        cmp.skip("hedge", "hedge section missing from "
                 + ("fresh" if fhedge is None else "baseline"))
        return cmp.report()

    hedged_point = fhedge.get("hedged", {})
    fired = hedged_point.get("router", {}).get("hedges", 0)
    requests = min(hedged_point.get("requests", 0),
                   fhedge.get("no_hedge", {}).get("requests", 0))
    if requests < MIN_REQUESTS:
        cmp.skip("hedge.p99_ratio",
                 f"min-sample guard: requests={requests} < {MIN_REQUESTS}")
    elif fired < MIN_HEDGES:
        if bhedge.get("hedged", {}).get("router", {}).get(
                "hedges", 0) >= MIN_HEDGES:
            # Baseline fired plenty under the same workload: zero/few
            # fresh hedges means the mechanism disengaged, not that the
            # tail got quiet.
            cmp.regression(
                "hedge.fired",
                f"only {fired} hedges fired (baseline "
                f"{bhedge['hedged']['router']['hedges']}); "
                "hedging appears disengaged",
                bhedge["hedged"]["router"]["hedges"], fired,
            )
        else:
            cmp.skip("hedge.p99_ratio",
                     f"min-sample guard: hedges={fired} < {MIN_HEDGES}")
    else:
        ratio = fhedge.get("p99_ratio", 0.0)
        floor = 1.0 - HEDGE_RATIO_TOL * slack
        if ratio < floor:
            cmp.regression(
                "hedge.p99_ratio",
                f"no-hedge/hedged p99 ratio {ratio:.2f} below floor "
                f"{floor:.2f}: hedging made the tail distinctly worse",
                bhedge.get("p99_ratio"), ratio,
            )
        else:
            cmp.ok("hedge.p99_ratio",
                   f"ratio {ratio:.2f} >= floor {floor:.2f} "
                   f"({fired} hedges, "
                   f"{hedged_point.get('router', {}).get('hedge_wins', 0)} "
                   f"wins)",
                   bhedge.get("p99_ratio"), ratio)
    return cmp.report()


def _availability_check(cmp: _Comparison, metric: str,
                        base_slo: dict, fresh_slo: dict) -> None:
    requests = min(base_slo.get("requests", 0), fresh_slo.get("requests", 0))
    if requests < MIN_REQUESTS:
        cmp.skip(metric, f"min-sample guard: requests={requests} < "
                 f"{MIN_REQUESTS}")
        return
    base, fresh = base_slo.get("availability"), fresh_slo.get("availability")
    if base is None or fresh is None:
        cmp.skip(metric, "availability missing")
        return
    floor = base - AVAILABILITY_ABS_TOL * cmp.slack
    if fresh < floor:
        cmp.regression(metric, f"availability {fresh:.4f} below floor "
                       f"{floor:.4f}", base, fresh)
    else:
        cmp.ok(metric, f"availability {fresh:.4f} >= floor {floor:.4f}",
               base, fresh)


def _tail_check(cmp: _Comparison, metric: str,
                base_slo: dict, fresh_slo: dict) -> None:
    """p99/p50 tail amplification -- self-normalized, so portable."""
    requests = min(base_slo.get("requests", 0), fresh_slo.get("requests", 0))
    if requests < MIN_REQUESTS:
        cmp.skip(metric, f"min-sample guard: requests={requests} < "
                 f"{MIN_REQUESTS}")
        return
    try:
        base = base_slo["latency_ms"]["p99"] / base_slo["latency_ms"]["p50"]
        fresh = fresh_slo["latency_ms"]["p99"] / fresh_slo["latency_ms"]["p50"]
    except (KeyError, ZeroDivisionError):
        cmp.skip(metric, "latency percentiles missing or degenerate")
        return
    cmp.ceiling_check(metric, base, fresh, TAIL_RATIO_FACTOR)


def format_comparison(report: dict) -> str:
    """Human-readable sentinel verdict for the CLI."""
    lines = [
        f"regression check ({report['kind']}, slack {report['slack']:g}): "
        f"{report['checked']} ok, {report['skipped']} skipped, "
        f"{report['regressions']} regressions, "
        f"{report['divergences']} divergences"
    ]
    for finding in report["findings"]:
        if finding["status"] == "ok":
            continue
        tag = finding["status"].upper()
        lines.append(f"  {tag:<10s} {finding['metric']}: {finding['detail']}")
    lines.append("verdict: " + ("PASS" if report["passed"] else "FAIL"))
    return "\n".join(lines)
