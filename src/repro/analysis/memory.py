"""Deployment memory arithmetic (Section 4's headline numbers).

Reproduces the paper's claims exactly from model shapes:

- LLaMA-3-70B FP16 weights ~141 GB -> ~25 GB at 5.5x compression;
- a 128k-token KV cache ~40 GB FP16 -> 7.2 GB at 2.9 bits;
- distributed over 4 pipeline stages: ~6.3 GB weights + ~1.8 GB cache
  per device ~= 8 GB -- edge-device territory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class LLMShape:
    """Architecture numbers of a deployment-target LLM."""

    name: str
    params: float
    layers: int
    hidden: int
    num_heads: int
    num_kv_heads: int  # grouped-query attention

    @property
    def head_dim(self) -> int:
        return self.hidden // self.num_heads

    @property
    def kv_dim(self) -> int:
        return self.num_kv_heads * self.head_dim


#: The paper's deployment target.
LLAMA3_70B = LLMShape(
    name="llama-3-70b", params=70.6e9, layers=80, hidden=8192,
    num_heads=64, num_kv_heads=8,
)
LLAMA2_7B = LLMShape(
    name="llama-2-7b", params=6.7e9, layers=32, hidden=4096,
    num_heads=32, num_kv_heads=32,
)
DEEPSEEK_V3 = LLMShape(
    name="deepseek-v3", params=671e9, layers=61, hidden=7168,
    num_heads=128, num_kv_heads=128,
)


def weight_bytes(shape: LLMShape, bits_per_value: float = 16.0) -> float:
    """Bytes to store the parameters at a (fractional) bit-width."""
    if bits_per_value <= 0:
        raise ValueError("bits_per_value must be positive")
    return shape.params * bits_per_value / 8.0


def kv_cache_bytes(
    shape: LLMShape, context_tokens: int, bits_per_value: float = 16.0
) -> float:
    """Bytes of KV cache for one sequence of ``context_tokens``."""
    values = 2.0 * shape.layers * shape.kv_dim * context_tokens  # K and V
    return values * bits_per_value / 8.0


def per_device_memory(
    shape: LLMShape,
    pipeline_stages: int,
    context_tokens: int,
    weight_bits: float,
    kv_bits: float,
) -> Dict[str, float]:
    """Memory per pipeline stage (bytes) under LLM.265 compression."""
    if pipeline_stages < 1:
        raise ValueError("need at least one stage")
    weights = weight_bytes(shape, weight_bits) / pipeline_stages
    cache = kv_cache_bytes(shape, context_tokens, kv_bits) / pipeline_stages
    return {
        "weights_bytes": weights,
        "kv_cache_bytes": cache,
        "total_bytes": weights + cache,
    }


def paper_deployment_table(
    shape: LLMShape = LLAMA3_70B,
    context_tokens: int = 128 * 1024,
    weight_bits: float = 2.9,
    kv_bits: float = 2.9,
    pipeline_stages: int = 4,
) -> Dict[str, float]:
    """The Section 4.2 bottom line, in GB."""
    gb = 1e9
    return {
        "weights_fp16_gb": weight_bytes(shape, 16.0) / gb,
        "weights_compressed_gb": weight_bytes(shape, weight_bits) / gb,
        "kv_fp16_gb": kv_cache_bytes(shape, context_tokens, 16.0) / gb,
        "kv_compressed_gb": kv_cache_bytes(shape, context_tokens, kv_bits) / gb,
        "per_device_gb": per_device_memory(
            shape, pipeline_stages, context_tokens, weight_bits, kv_bits
        )["total_bytes"] / gb,
    }
