"""Stage-by-stage codec pipeline ablation (reproduces Figure 2(b)).

The paper activates the H.265 encoding pipeline incrementally and
measures the bits/value needed to stay under an MSE budget:

1. 8-bit quantization only (raw)            -> 8.0 bits
2. + entropy coding                          -> ~7.6 bits
3. + DCT transform coding                    -> lower
4. + CTU quad-tree partitioning              -> lower
5. + intra-frame prediction (full pipeline)  -> ~2-3 bits
6. + inter-frame prediction                  -> *increases* for tensors

Stages 3-6 search QP for the distortion budget; stages 1-2 are
lossless in the 8-bit pixel domain.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.codec.encoder import EncoderConfig
from repro.codec.entropy.bytecoder import byte_arith_encode
from repro.codec.profiles import H265_PROFILE, CodecProfile
from repro.codec.ratecontrol import search_qp_for_mse


class PipelineStage(enum.Enum):
    """Cumulative pipeline configurations, in paper order."""

    QUANTIZE_ONLY = 1
    ENTROPY = 2
    TRANSFORM = 3
    PARTITION = 4
    INTRA = 5
    INTER = 6


@dataclass
class StageResult:
    """Outcome of one ablation point."""

    stage: PipelineStage
    bits_per_value: float
    pixel_mse: float
    qp: Optional[float] = None


def stage_config(stage: PipelineStage, profile: CodecProfile) -> EncoderConfig:
    """Encoder configuration for a lossy ablation stage (3-6)."""
    if stage == PipelineStage.TRANSFORM:
        return EncoderConfig(
            profile=profile,
            use_intra=False,
            use_partition=False,
            use_transform=True,
            fixed_cu_size=8,
        )
    if stage == PipelineStage.PARTITION:
        return EncoderConfig(
            profile=profile, use_intra=False, use_partition=True, use_transform=True
        )
    if stage == PipelineStage.INTRA:
        return EncoderConfig(profile=profile)
    if stage == PipelineStage.INTER:
        return EncoderConfig(profile=profile, use_inter=True)
    raise ValueError(f"stage {stage} has no encoder configuration")


def run_pipeline_ablation(
    frames: Sequence[np.ndarray],
    pixel_mse_target: float,
    profile: CodecProfile = H265_PROFILE,
    stages: Optional[Sequence[PipelineStage]] = None,
) -> List[StageResult]:
    """Measure bits/value under a distortion budget per pipeline stage."""
    frames = [np.asarray(f, dtype=np.uint8) for f in frames]
    num_values = sum(f.size for f in frames)
    stages = list(stages) if stages is not None else list(PipelineStage)

    results: List[StageResult] = []
    for stage in stages:
        if stage == PipelineStage.QUANTIZE_ONLY:
            results.append(StageResult(stage, 8.0, 0.0))
        elif stage == PipelineStage.ENTROPY:
            blob = byte_arith_encode(b"".join(f.tobytes() for f in frames))
            results.append(StageResult(stage, 8.0 * len(blob) / num_values, 0.0))
        else:
            if stage == PipelineStage.INTER and len(frames) < 2:
                continue  # inter needs a reference frame
            config = stage_config(stage, profile)
            qp, encoded = search_qp_for_mse(frames, pixel_mse_target, config)
            results.append(
                StageResult(stage, encoded.bits_per_value, encoded.mse, qp)
            )
    return results
