"""Codec toolset profiles: H.264-, H.265-, and AV1-flavoured configurations.

The three standards share the block-coding skeleton this package
implements; what differs per generation is the toolset size: CTU
dimensions, minimum CU size, and how many angular prediction directions
the encoder may choose from.  Table 2 / Figure 6 of the paper treat the
codecs at exactly this level, so profiles parametrise one engine rather
than forking three.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

from repro.codec import intra

#: Angular modes evaluated in the coarse RDO pass before refinement.
_COARSE_ANGULAR = (2, 6, 10, 14, 18, 22, 26, 30, 34)
#: H.264 only has 8 directional modes (plus DC / plane).
_H264_ANGULAR = (2, 6, 10, 14, 18, 22, 26, 30, 34)
_FULL_ANGULAR = tuple(range(intra.ANGULAR_FIRST, intra.ANGULAR_LAST + 1))


@dataclass(frozen=True)
class CodecProfile:
    """Immutable description of a codec generation's toolset."""

    name: str
    profile_id: int
    ctu_size: int
    min_cu_size: int
    angular_modes: Tuple[int, ...]
    coarse_angular_modes: Tuple[int, ...] = _COARSE_ANGULAR
    angular_refine_radius: int = 2
    supports_inter: bool = True
    deadzone: float = 0.15
    max_resolution: int = 3840  # per-instance hardware limit (Table 2)

    @property
    def all_modes(self) -> Tuple[int, ...]:
        """Every intra mode the profile may signal."""
        return (intra.PLANAR, intra.DC) + self.angular_modes

    @lru_cache(maxsize=None)
    def coarse_modes(self) -> Tuple[int, ...]:
        """Modes evaluated in the first RDO pass (memoized -- this is
        asked once per leaf trial in the RD search)."""
        coarse = tuple(
            m for m in self.coarse_angular_modes if m in self.angular_modes
        )
        return (intra.PLANAR, intra.DC) + coarse

    @lru_cache(maxsize=None)
    def refine_modes(self, best: int) -> Tuple[int, ...]:
        """Neighbouring angular modes to re-evaluate around ``best``."""
        if best < intra.ANGULAR_FIRST:
            return ()
        radius = self.angular_refine_radius
        lo = max(intra.ANGULAR_FIRST, best - radius)
        hi = min(intra.ANGULAR_LAST, best + radius)
        return tuple(
            m for m in range(lo, hi + 1) if m != best and m in self.angular_modes
        )


H264_PROFILE = CodecProfile(
    name="h264",
    profile_id=0,
    ctu_size=16,
    min_cu_size=4,
    angular_modes=_H264_ANGULAR,
    coarse_angular_modes=_H264_ANGULAR,
    angular_refine_radius=0,
    max_resolution=3840,  # 4K encode/decode per Table 2
)

H265_PROFILE = CodecProfile(
    name="h265",
    profile_id=1,
    ctu_size=32,
    min_cu_size=8,
    angular_modes=_FULL_ANGULAR,
    max_resolution=7680,  # 8K encode/decode per Table 2
)

AV1_PROFILE = CodecProfile(
    name="av1",
    profile_id=2,
    ctu_size=32,
    min_cu_size=8,
    angular_modes=_FULL_ANGULAR,
    angular_refine_radius=3,
    deadzone=0.2,
    max_resolution=7680,
)

PROFILES_BY_ID = {p.profile_id: p for p in (H264_PROFILE, H265_PROFILE, AV1_PROFILE)}
PROFILES_BY_NAME = {p.name: p for p in (H264_PROFILE, H265_PROFILE, AV1_PROFILE)}


def profile_by_name(name: str) -> CodecProfile:
    """Look up a profile by codec name ('h264', 'h265', 'av1')."""
    try:
        return PROFILES_BY_NAME[name.lower()]
    except KeyError:
        raise ValueError(f"unknown codec profile {name!r}") from None
