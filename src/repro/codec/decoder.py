"""Bit-exact decoder for the bitstreams produced by :mod:`repro.codec.encoder`."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

import repro.telemetry as telemetry
from repro.codec import intra
from repro.codec.encoder import QpDither, unpack_header
from repro.codec.entropy.arithmetic import BinaryDecoder
from repro.codec.profiles import PROFILES_BY_ID
from repro.codec.quantizer import dequantize
from repro.codec.syntax import (
    CodecContexts,
    decode_coeff_block,
    decode_intra_mode,
    decode_mv,
)
from repro.codec.transform import inverse_dct2_batch


class FrameDecoder:
    """Parses a bitstream and reconstructs the frame sequence."""

    def __init__(self, data: bytes) -> None:
        self._header = unpack_header(data)
        self._profile = PROFILES_BY_ID[self._header["profile_id"]]
        self._dec = BinaryDecoder(data[self._header["header_size"] :])
        self._ctx = CodecContexts()
        self._registry = None

    def decode(self) -> List[np.ndarray]:
        """Return the decoded frames (uint8, original dimensions)."""
        h = self._header
        ctu = h["ctu"]
        width, height = h["width"], h["height"]
        pad_w = width + ((-width) % ctu)
        pad_h = height + ((-height) % ctu)
        dither = QpDither(h["qp_base"], h["qp_frac"])
        self._reference: Optional[np.ndarray] = None
        self._registry = telemetry.current()

        frames: List[np.ndarray] = []
        with telemetry.span("frames.decode"):
            for frame_index in range(h["n_frames"]):
                with telemetry.span("frame"):
                    recon = self._decode_frame(pad_h, pad_w, frame_index, dither)
                frames.append(
                    np.clip(np.rint(recon[:height, :width]), 0, 255).astype(np.uint8)
                )
                self._reference = recon
        if self._registry is not None:
            self._registry.count("decode.frames", h["n_frames"])
        return frames

    def _decode_frame(
        self, height: int, width: int, frame_index: int, dither: QpDither
    ) -> np.ndarray:
        h = self._header
        ctu = h["ctu"]
        self._recon = np.zeros((height, width), dtype=np.float64)
        self._mask = np.zeros((height, width), dtype=bool)
        self._modes = np.full((height, width), -1, dtype=np.int16)
        self._inter_allowed = (
            h["use_inter"] and frame_index > 0 and self._reference is not None
        )
        registry = self._registry
        for y0 in range(0, height, ctu):
            for x0 in range(0, width, ctu):
                self._qp = dither.next()
                if registry is not None:
                    registry.count("decode.ctu")
                    registry.observe("decode.qp", self._qp)
                self._decode_cu(y0, x0, ctu, depth=0)
        return self._recon

    def _decode_cu(self, y0: int, x0: int, size: int, depth: int) -> None:
        h = self._header
        if h["use_partition"] and size > h["min_cu"]:
            if self._dec.decode_bit(self._ctx.split, min(depth, 5)):
                if self._registry is not None:
                    self._registry.count("decode.cu.split")
                half = size // 2
                for qy in (0, 1):
                    for qx in (0, 1):
                        self._decode_cu(
                            y0 + qy * half, x0 + qx * half, half, depth + 1
                        )
                return
        self._decode_leaf(y0, x0, size)

    def _decode_leaf(self, y0: int, x0: int, size: int) -> None:
        h = self._header
        is_inter = False
        if self._inter_allowed:
            is_inter = bool(self._dec.decode_bit(self._ctx.pred_flag, 0))
        if self._registry is not None:
            self._registry.count("decode.cu.leaf")
            self._registry.count(
                "decode.mode.inter" if is_inter else "decode.mode.intra"
            )

        mode: Optional[int] = None
        if is_inter:
            mv = decode_mv(self._dec, self._ctx)
            ry, rx = y0 + mv[0], x0 + mv[1]
            prediction = self._reference[ry : ry + size, rx : rx + size].astype(
                np.float64
            )
        elif h["use_intra"]:
            left_mode = self._neighbor_mode(y0, x0 - 1)
            top_mode = self._neighbor_mode(y0 - 1, x0)
            mode = decode_intra_mode(
                self._dec, self._ctx, left_mode, top_mode, self._profile.all_modes
            )
            top, left = intra.gather_references(
                self._recon, self._mask, y0, x0, size
            )
            prediction = intra.predict(top, left, mode, size)
        else:
            prediction = np.full((size, size), 128.0)

        levels = decode_coeff_block(self._dec, self._ctx, size)
        dequant = dequantize(levels[None], self._qp)
        if h["use_transform"]:
            residual = inverse_dct2_batch(dequant)[0]
        else:
            residual = dequant[0]
        recon = np.clip(prediction + residual, 0.0, 255.0)

        sl = (slice(y0, y0 + size), slice(x0, x0 + size))
        self._recon[sl] = recon
        self._mask[sl] = True
        self._modes[sl] = mode if mode is not None else intra.DC

    def _neighbor_mode(self, y: int, x: int) -> Optional[int]:
        if y < 0 or x < 0:
            return None
        if not self._mask[y, x]:
            return None
        value = int(self._modes[y, x])
        return value if value >= 0 else None


def decode_frames(data: bytes) -> List[np.ndarray]:
    """Decode a complete bitstream into its frame sequence."""
    return FrameDecoder(data).decode()
