"""Bit-exact decoder for the bitstreams produced by :mod:`repro.codec.encoder`.

Version-2 streams are cut into one CRC32-framed slice per frame (see
``docs/RESILIENCE.md``).  The decoder verifies every slice checksum on
arrival and supports two failure policies:

- **strict** (default): any damage raises
  :class:`~repro.resilience.errors.CorruptStreamError` -- no other
  exception type ever escapes a decode.
- **concealment** (``conceal=True``): a damaged slice is skipped and
  its frame synthesised by neighbour prediction (copy of the previous
  decoded frame) or mid-gray zero-fill for the first frame; decoding
  continues with the next slice and every patched region is listed in
  the returned :class:`~repro.resilience.errors.ConcealmentReport`.

Two decode implementations share that contract (``decode=`` on
:class:`FrameDecoder` / :func:`decode_frames`):

- ``"legacy"``     -- the original interleaved loop: per leaf, drain
  bins, dequantize, inverse-transform, predict, write.  Kept as the
  reference implementation.
- ``"vectorized"`` -- the default two-phase *plan -> reconstruct*
  path.  Phase one drains the range decoder into a flat leaf plan
  (modes, motion vectors, coefficient scans) using the fused
  :meth:`~repro.codec.entropy.arithmetic.BinaryDecoder.decode_coeff_scan`
  hot loop; phase two dequantizes and inverse-transforms all
  same-size leaves in one batched GEMM (sharing the encoder's
  lru-cached DCT basis / zigzag operators) and then applies
  prediction in dependency order.  Byte-identical to ``"legacy"`` on
  every stream, including corrupt-stream and concealment behaviour --
  the bench identity gate and ``tests/test_fast_decode.py`` /
  ``tests/test_decode_fuzz.py`` enforce this.
"""

from __future__ import annotations

import os
import time
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import numpy as np

import repro.telemetry as telemetry
from repro.codec import intra
from repro.codec.encoder import QpDither, unpack_header
from repro.codec.entropy.arithmetic import BinaryDecoder
from repro.codec.profiles import PROFILES_BY_ID
from repro.codec.quantizer import dequantize, qstep
from repro.codec.syntax import (
    CodecContexts,
    decode_coeff_block,
    decode_coeff_block_scanned,
    decode_intra_mode,
    decode_mv,
)
from repro.codec.transform import inverse_dct2_batch, zigzag_order
from repro.parallel import ParallelConfig, parallel_map, warm_pool
from repro.resilience.deadline import Deadline
from repro.resilience.errors import ConcealmentReport, CorruptStreamError
from repro.resilience.framing import deframe_slices
from repro.telemetry.codecstats import DecodeStats

#: Mid-gray sample used to zero-fill a concealed frame with no neighbour.
_CONCEAL_FILL = 128.0

#: Decode implementations selectable via ``decode=`` (fastest first).
DECODES = ("vectorized", "legacy")

#: Parallel decode dispatch thresholds.  Below either bound the fan-out
#: overhead (task submission, result marshalling, worker warm-up) costs
#: more than the decode itself, so the decoder silently stays serial.
#: Streams must have at least this many slices ...
_PARALLEL_MIN_SLICES = 4
#: ... and at least this many payload bytes (32 KiB) to fan out.
_PARALLEL_MIN_BYTES = 1 << 15


def _effective_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without affinity masks
        return os.cpu_count() or 1


class FrameDecoder:
    """Parses a bitstream and reconstructs the frame sequence.

    ``conceal=True`` switches from fail-loud to decode-past-damage;
    :attr:`report` describes what (if anything) was concealed.
    ``decode`` selects the implementation (see module docstring); both
    produce byte-identical samples, reports, and typed errors.
    """

    def __init__(
        self,
        data: bytes,
        conceal: bool = False,
        parallel: Optional[ParallelConfig] = None,
        deadline: Optional[Deadline] = None,
        decode: str = "vectorized",
    ) -> None:
        if decode not in DECODES:
            raise ValueError(f"decode must be one of {DECODES}, got {decode!r}")
        self._deadline = deadline
        self._header = unpack_header(data)
        try:
            self._profile = PROFILES_BY_ID[self._header["profile_id"]]
        except KeyError:
            raise CorruptStreamError(
                f"unknown profile id {self._header['profile_id']}"
            ) from None
        self._raw_header = bytes(data[: self._header["header_size"]])
        self._payload = data[self._header["header_size"] :]
        self._conceal = conceal
        self._parallel = parallel
        self._decode_mode = decode
        self._ctx: Optional[CodecContexts] = None
        self._dec: Optional[BinaryDecoder] = None
        self._registry = None
        self._stats: Optional[DecodeStats] = None
        self.report = ConcealmentReport()

    def decode(self) -> List[np.ndarray]:
        """Return the decoded frames (uint8, original dimensions)."""
        h = self._header
        ctu = h["ctu"]
        width, height = h["width"], h["height"]
        pad_w = width + ((-width) % ctu)
        pad_h = height + ((-height) % ctu)
        dither = QpDither(h["qp_base"], h["qp_frac"])
        ctus_per_frame = (pad_h // ctu) * (pad_w // ctu)
        self._reference: Optional[np.ndarray] = None
        self._registry = telemetry.current()
        self._stats = DecodeStats() if self._registry is not None else None
        self.report = ConcealmentReport(total_slices=h["n_frames"])

        slices, damage = deframe_slices(
            self._payload, expected=h["n_frames"], strict=not self._conceal
        )
        damage_reasons = dict(damage)

        par = self._parallel
        # Eligibility (slice independence) and profitability (payload
        # large enough to amortise fan-out) are separate questions: a
        # parallel-capable stream below the dispatch thresholds decodes
        # serially -- small payloads were measurably *slower* parallel.
        par_capable = (
            par is not None
            and not par.is_serial()
            and h["n_frames"] > 1
            and not h["use_inter"]
            and not self._conceal
            and not damage_reasons
        )
        use_parallel = (
            par_capable
            and h["n_frames"] >= _PARALLEL_MIN_SLICES
            and len(self._payload) >= _PARALLEL_MIN_BYTES
            # On a single-CPU machine fan-out is pure overhead no matter
            # how large the payload: decode is CPU-bound end to end.
            and _effective_cpus() > 1
        )
        if par_capable and not use_parallel:
            telemetry.count("decode.parallel_threshold_fallbacks")
        if use_parallel:
            # Every slice is independently decodable (fresh entropy state,
            # per-frame dither restart via the closed form) and, with inter
            # prediction off, carries no cross-frame reference -- so slices
            # decode concurrently to the exact same samples as the serial
            # loop.  Concealment and inter streams stay on the serial path.
            # Tasks ship the 21 raw header bytes (workers parse + cache
            # them once per stream shape), not the unpacked frame context.
            warm_pool(par)
            tasks = [
                (
                    self._raw_header,
                    slices[i],
                    i,
                    pad_h,
                    pad_w,
                    i * ctus_per_frame,
                    self._decode_mode,
                )
                for i in range(h["n_frames"])
            ]
            with telemetry.span("frames.decode"):
                recons = parallel_map(
                    _decode_slice_worker,
                    tasks,
                    par,
                    label="decode",
                    deadline=self._deadline,
                )
            frames = [
                np.clip(np.rint(r[:height, :width]), 0, 255).astype(np.uint8)
                for r in recons
            ]
            self._reference = recons[-1]
            if self._registry is not None:
                self._registry.count("decode.frames", h["n_frames"])
                self._stats.publish(self._registry)
            return frames

        frames: List[np.ndarray] = []
        with telemetry.span("frames.decode"):
            for frame_index in range(h["n_frames"]):
                if self._deadline is not None:
                    self._deadline.check("frames.decode")
                segment = slices[frame_index] if frame_index < len(slices) else None
                with telemetry.span("frame"):
                    recon = self._decode_slice(
                        segment,
                        damage_reasons.get(frame_index, "slice missing"),
                        pad_h,
                        pad_w,
                        frame_index,
                        dither,
                        ctus_per_frame,
                    )
                frames.append(
                    np.clip(np.rint(recon[:height, :width]), 0, 255).astype(np.uint8)
                )
                self._reference = recon
        if self._registry is not None:
            self._registry.count("decode.frames", h["n_frames"])
            self._stats.publish(self._registry)
        return frames

    # -- per-slice -----------------------------------------------------

    def _decode_slice(
        self,
        segment: Optional[bytes],
        damage_reason: str,
        height: int,
        width: int,
        frame_index: int,
        dither: QpDither,
        ctus_per_frame: int,
    ) -> np.ndarray:
        if segment is None:
            return self._conceal_frame(
                damage_reason, height, width, frame_index, dither, ctus_per_frame
            )
        # Fresh entropy state per slice: this is what makes slices
        # independently decodable (and bit-exact with the encoder).
        self._dec = BinaryDecoder(segment)
        self._ctx = CodecContexts()
        try:
            return self._decode_frame_any(height, width, frame_index, dither)
        except CorruptStreamError:
            if not self._conceal:
                raise
        except Exception as exc:
            # A CRC-valid slice that still fails to parse (crafted or
            # colliding damage) must not leak raw IndexError/EOFError.
            if not self._conceal:
                raise CorruptStreamError(
                    f"slice {frame_index}: undecodable ({type(exc).__name__}: {exc})"
                ) from exc
        # The damaged slice may have consumed an arbitrary number of
        # dither steps before failing; rebuilding the dither is not
        # possible mid-stream, so re-derive it deterministically from
        # the frame index (every frame has the same CTU count).
        rebuilt = QpDither(self._header["qp_base"], self._header["qp_frac"])
        for _ in range((frame_index + 1) * ctus_per_frame):
            rebuilt.next()
        dither.__dict__.update(rebuilt.__dict__)
        return self._conceal_frame(
            "undecodable slice", height, width, frame_index, dither, ctus_per_frame,
            advance_dither=False,
        )

    def _conceal_frame(
        self,
        reason: str,
        height: int,
        width: int,
        frame_index: int,
        dither: QpDither,
        ctus_per_frame: int,
        advance_dither: bool = True,
    ) -> np.ndarray:
        """Synthesise a frame for a damaged slice and keep state aligned."""
        if advance_dither:
            # Later slices must see the same per-CTU QP sequence as the
            # encoder, so the dither is advanced as if decoded.
            for _ in range(ctus_per_frame):
                dither.next()
        self.report.concealed.append((frame_index, reason))
        if self._registry is not None:
            self._registry.count("decode.slices_concealed")
        telemetry.count("resilience.slices_concealed")
        if self._reference is not None:
            return self._reference.copy()  # neighbour (temporal) prediction
        return np.full((height, width), _CONCEAL_FILL, dtype=np.float64)

    def _decode_frame_any(
        self, height: int, width: int, frame_index: int, dither: QpDither
    ) -> np.ndarray:
        if self._decode_mode == "legacy":
            return self._decode_frame(height, width, frame_index, dither)
        return self._decode_frame_vectorized(height, width, frame_index, dither)

    # -- per-frame (legacy: interleaved CABAC replay) -------------------

    def _decode_frame(
        self, height: int, width: int, frame_index: int, dither: QpDither
    ) -> np.ndarray:
        h = self._header
        ctu = h["ctu"]
        self._recon = np.zeros((height, width), dtype=np.float64)
        self._mask = np.zeros((height, width), dtype=bool)
        self._modes = np.full((height, width), -1, dtype=np.int16)
        self._inter_allowed = (
            h["use_inter"] and frame_index > 0 and self._reference is not None
        )
        registry = self._registry
        for y0 in range(0, height, ctu):
            for x0 in range(0, width, ctu):
                self._qp = dither.next()
                if registry is not None:
                    registry.count("decode.ctu")
                    registry.observe("decode.qp", self._qp)
                self._decode_cu(y0, x0, ctu, depth=0)
        return self._recon

    def _decode_cu(self, y0: int, x0: int, size: int, depth: int) -> None:
        h = self._header
        if h["use_partition"] and size > h["min_cu"]:
            if self._dec.decode_bit(self._ctx.split, min(depth, 5)):
                if self._registry is not None:
                    self._registry.count("decode.cu.split")
                half = size // 2
                for qy in (0, 1):
                    for qx in (0, 1):
                        self._decode_cu(
                            y0 + qy * half, x0 + qx * half, half, depth + 1
                        )
                return
        self._decode_leaf(y0, x0, size)

    def _decode_leaf(self, y0: int, x0: int, size: int) -> None:
        h = self._header
        is_inter = False
        if self._inter_allowed:
            is_inter = bool(self._dec.decode_bit(self._ctx.pred_flag, 0))
        if self._registry is not None:
            self._registry.count("decode.cu.leaf")
            self._registry.count(
                "decode.mode.inter" if is_inter else "decode.mode.intra"
            )

        mode: Optional[int] = None
        if is_inter:
            mv = decode_mv(self._dec, self._ctx)
            ry, rx = y0 + mv[0], x0 + mv[1]
            ref_h, ref_w = self._reference.shape
            if not (0 <= ry <= ref_h - size and 0 <= rx <= ref_w - size):
                raise CorruptStreamError(
                    f"motion vector {mv} points outside the reference frame"
                )
            prediction = self._reference[ry : ry + size, rx : rx + size].astype(
                np.float64
            )
        elif h["use_intra"]:
            left_mode = self._neighbor_mode(y0, x0 - 1)
            top_mode = self._neighbor_mode(y0 - 1, x0)
            mode = decode_intra_mode(
                self._dec, self._ctx, left_mode, top_mode, self._profile.all_modes
            )
            top, left = intra.gather_references(
                self._recon, self._mask, y0, x0, size
            )
            prediction = intra.predict(top, left, mode, size)
        else:
            prediction = np.full((size, size), 128.0)

        levels = decode_coeff_block(self._dec, self._ctx, size)
        dequant = dequantize(levels[None], self._qp)
        if h["use_transform"]:
            residual = inverse_dct2_batch(dequant)[0]
        else:
            residual = dequant[0]
        recon = np.clip(prediction + residual, 0.0, 255.0)

        sl = (slice(y0, y0 + size), slice(x0, x0 + size))
        self._recon[sl] = recon
        self._mask[sl] = True
        self._modes[sl] = mode if mode is not None else intra.DC

    def _neighbor_mode(self, y: int, x: int) -> Optional[int]:
        if y < 0 or x < 0:
            return None
        if not self._mask[y, x]:
            return None
        value = int(self._modes[y, x])
        return value if value >= 0 else None

    # -- per-frame (vectorized: plan -> batched reconstruct) ------------
    #
    # Bit-exactness argument.  Phase one touches every adaptive context
    # and every dither step in exactly the legacy order (the quadtree
    # walk is identical; mode decoding depends only on *neighbour
    # modes*, which the plan records leaf-by-leaf, never on pixels), so
    # the entropy decode consumes identical bins and fails on identical
    # inputs.  Phase two's batched dequantize is the same elementwise
    # multiply legacy performs per leaf, the batched inverse DCT runs
    # the same (n, n) x (n, n) GEMM per stacked slice as the legacy
    # batch-of-one call, and prediction replays in decode order against
    # a reconstruction mask that is, at every leaf, the exact mask the
    # interleaved loop would have had.

    def _decode_frame_vectorized(
        self, height: int, width: int, frame_index: int, dither: QpDither
    ) -> np.ndarray:
        h = self._header
        ctu = h["ctu"]
        self._recon = np.zeros((height, width), dtype=np.float64)
        self._mask = np.zeros((height, width), dtype=bool)
        self._modes = np.full((height, width), -1, dtype=np.int16)
        self._inter_allowed = (
            h["use_inter"] and frame_index > 0 and self._reference is not None
        )
        registry = self._registry
        stats = self._stats

        # Phase 1: drain the range decoder into a flat leaf plan.
        started = time.perf_counter() if stats is not None else 0.0
        leaves: List[tuple] = []
        with telemetry.span("decode.entropy"):
            for y0 in range(0, height, ctu):
                for x0 in range(0, width, ctu):
                    self._qp = dither.next()
                    if registry is not None:
                        registry.count("decode.ctu")
                        registry.observe("decode.qp", self._qp)
                    self._plan_cu(y0, x0, ctu, 0, leaves)
        if stats is not None:
            now = time.perf_counter()
            stats.add_seconds("entropy", now - started)
            stats.add_count("coeff_bins", self._dec.scan_bins)
            started = now

        # Phase 2: one batched dequantize + inverse transform per size.
        with telemetry.span("decode.reconstruct"):
            residuals = self._batch_residuals(leaves, h["use_transform"], stats)
        if stats is not None:
            now = time.perf_counter()
            stats.add_seconds("reconstruct", now - started)
            started = now

        # Phase 3: prediction in dependency (decode) order.
        with telemetry.span("decode.predict"):
            self._apply_predictions(leaves, residuals, height, width)
        if stats is not None:
            stats.add_seconds("predict", time.perf_counter() - started)
        return self._recon

    def _plan_cu(
        self, y0: int, x0: int, size: int, depth: int, leaves: List[tuple]
    ) -> None:
        h = self._header
        if h["use_partition"] and size > h["min_cu"]:
            if self._dec.decode_bit(self._ctx.split, min(depth, 5)):
                if self._registry is not None:
                    self._registry.count("decode.cu.split")
                half = size // 2
                for qy in (0, 1):
                    for qx in (0, 1):
                        self._plan_cu(
                            y0 + qy * half, x0 + qx * half, half, depth + 1, leaves
                        )
                return
        self._plan_leaf(y0, x0, size, leaves)

    def _plan_leaf(
        self, y0: int, x0: int, size: int, leaves: List[tuple]
    ) -> None:
        h = self._header
        is_inter = False
        if self._inter_allowed:
            is_inter = bool(self._dec.decode_bit(self._ctx.pred_flag, 0))
        if self._registry is not None:
            self._registry.count("decode.cu.leaf")
            self._registry.count(
                "decode.mode.inter" if is_inter else "decode.mode.intra"
            )

        mode: Optional[int] = None
        ry = rx = 0
        if is_inter:
            mv = decode_mv(self._dec, self._ctx)
            ry, rx = y0 + mv[0], x0 + mv[1]
            ref_h, ref_w = self._reference.shape
            # Validated at plan time so a corrupt MV surfaces at the
            # same bin position (and with the same message) as legacy.
            if not (0 <= ry <= ref_h - size and 0 <= rx <= ref_w - size):
                raise CorruptStreamError(
                    f"motion vector {mv} points outside the reference frame"
                )
        elif h["use_intra"]:
            left_mode = self._neighbor_mode(y0, x0 - 1)
            top_mode = self._neighbor_mode(y0 - 1, x0)
            mode = decode_intra_mode(
                self._dec, self._ctx, left_mode, top_mode, self._profile.all_modes
            )

        scanned = decode_coeff_block_scanned(self._dec, self._ctx, size)
        leaves.append((y0, x0, size, mode, is_inter, ry, rx, self._qp, scanned))
        # The plan-time mask/mode maps drive neighbour-mode contexts
        # exactly as the interleaved loop's post-leaf updates would.
        sl = (slice(y0, y0 + size), slice(x0, x0 + size))
        self._mask[sl] = True
        self._modes[sl] = mode if mode is not None else intra.DC

    def _batch_residuals(
        self,
        leaves: List[tuple],
        use_transform: bool,
        stats: Optional[DecodeStats],
    ) -> Dict[int, np.ndarray]:
        """Dequantize + inverse-transform every coded leaf, batched by size.

        Returns residual grids keyed by leaf index; cbf=0 leaves are
        absent (their residual is exactly zero, added as such by the
        prediction pass -- the legacy path's IDCT of an all-zero block
        is also exactly zero).
        """
        groups: Dict[int, List[int]] = {}
        for index, leaf in enumerate(leaves):
            if leaf[8] is not None:
                groups.setdefault(leaf[2], []).append(index)
        residuals: Dict[int, np.ndarray] = {}
        for n, indices in sorted(groups.items()):
            scan_rows = np.stack([leaves[i][8] for i in indices])
            steps = np.array(
                [qstep(leaves[i][7]) for i in indices], dtype=np.float64
            )
            # Same elementwise product as per-leaf ``dequantize``; the
            # zigzag unscan is one fancy-index store across the batch.
            dequant = scan_rows.astype(np.float64) * steps[:, None]
            flat = np.empty((len(indices), n * n), dtype=np.float64)
            flat[:, zigzag_order(n)] = dequant
            grids = flat.reshape(len(indices), n, n)
            if use_transform:
                grids = inverse_dct2_batch(grids)
            for j, index in enumerate(indices):
                residuals[index] = grids[j]
        if stats is not None:
            stats.add_count("batches", len(groups))
            stats.add_count("batched_blocks", len(residuals))
        return residuals

    def _apply_predictions(
        self,
        leaves: List[tuple],
        residuals: Dict[int, np.ndarray],
        height: int,
        width: int,
    ) -> None:
        h = self._header
        use_intra = h["use_intra"]
        recon = self._recon
        # Fresh mask: at leaf k it holds exactly leaves 0..k-1, which is
        # what the interleaved loop's reference gather saw at leaf k.
        mask = np.zeros((height, width), dtype=bool)
        zeros: Dict[int, np.ndarray] = {}
        for index, (y0, x0, size, mode, is_inter, ry, rx, _qp, _sc) in enumerate(
            leaves
        ):
            if is_inter:
                prediction = self._reference[
                    ry : ry + size, rx : rx + size
                ].astype(np.float64)
            elif use_intra:
                top, left = intra.gather_references(recon, mask, y0, x0, size)
                prediction = intra.predict(top, left, mode, size)
            else:
                prediction = np.full((size, size), 128.0)
            residual = residuals.get(index)
            if residual is None:
                residual = zeros.get(size)
                if residual is None:
                    residual = zeros.setdefault(
                        size, np.zeros((size, size), dtype=np.float64)
                    )
            sl = (slice(y0, y0 + size), slice(x0, x0 + size))
            recon[sl] = np.clip(prediction + residual, 0.0, 255.0)
            mask[sl] = True
        self._mask = mask


@lru_cache(maxsize=64)
def _worker_header(raw_header: bytes) -> dict:
    """Parse (and memoise) a stream header inside a worker.

    Slice tasks ship the 21 raw header bytes instead of the unpacked
    frame-context dict, so a process pool pickles a tiny bytes object
    per task and each worker pays the parse once per distinct stream
    shape.  The returned dict is shared -- callers must not mutate it.
    """
    return unpack_header(raw_header)


def _decode_slice_worker(args) -> np.ndarray:
    """Decode one framed slice in isolation (module-level: picklable).

    Mirrors the strict-mode body of :meth:`FrameDecoder._decode_slice`:
    fresh entropy state per slice, the frame's dither jumped to via the
    closed form, and the same exception wrapping so parallel failures
    surface as the identical :class:`CorruptStreamError`.
    """
    raw_header, segment, frame_index, pad_h, pad_w, dither_steps, mode = args
    header = _worker_header(raw_header)
    dec = FrameDecoder.__new__(FrameDecoder)
    dec._header = header
    dec._profile = PROFILES_BY_ID[header["profile_id"]]
    dec._conceal = False
    dec._parallel = None
    dec._registry = None
    dec._stats = None
    dec._reference = None
    dec._decode_mode = mode
    dec.report = ConcealmentReport()
    dither = QpDither.advanced(header["qp_base"], header["qp_frac"], dither_steps)
    dec._dec = BinaryDecoder(segment)
    dec._ctx = CodecContexts()
    try:
        return dec._decode_frame_any(pad_h, pad_w, frame_index, dither)
    except CorruptStreamError:
        raise
    except Exception as exc:
        raise CorruptStreamError(
            f"slice {frame_index}: undecodable ({type(exc).__name__}: {exc})"
        ) from exc


def decode_frames(
    data: bytes,
    conceal: bool = False,
    parallel: Optional[ParallelConfig] = None,
    decode: str = "vectorized",
) -> List[np.ndarray]:
    """Decode a complete bitstream into its frame sequence.

    Strict by default (raises :class:`CorruptStreamError` on damage);
    ``conceal=True`` decodes past damaged slices -- use
    :func:`decode_frames_with_report` when the concealment details
    matter.  ``parallel`` opts intra-only, undamaged streams into
    slice-parallel decoding (sample-identical to serial decode; streams
    below the slice/byte dispatch thresholds stay serial).  ``decode``
    selects the implementation ladder rung (``"vectorized"`` default,
    ``"legacy"`` reference) -- output is byte-identical either way.
    """
    return FrameDecoder(
        data, conceal=conceal, parallel=parallel, decode=decode
    ).decode()


def decode_frames_with_report(
    data: bytes, conceal: bool = True, decode: str = "vectorized"
) -> Tuple[List[np.ndarray], ConcealmentReport]:
    """Decode and return ``(frames, concealment report)``."""
    decoder = FrameDecoder(data, conceal=conceal, decode=decode)
    frames = decoder.decode()
    return frames, decoder.report
