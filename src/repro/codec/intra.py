"""Intra-frame prediction: planar, DC, and the 33 HEVC angular modes.

This is the stage the paper singles out (Figure 4) as the surprise
winner for tensors: channel-wise weight structure looks like edges and
planar regions, which directional prediction captures with a few bits
of mode signalling, leaving small residuals for the transform stage.

Mode numbering follows HEVC: 0 = planar, 1 = DC, 2..34 = angular
(2..17 horizontal-ish predicting from the left reference, 18..34
vertical-ish predicting from the top reference).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

PLANAR = 0
DC = 1
ANGULAR_FIRST = 2
ANGULAR_LAST = 34
NUM_MODES = 35

# HEVC intraPredAngle for modes 2..34.
_ANGLES = [
    32, 26, 21, 17, 13, 9, 5, 2, 0, -2, -5, -9, -13, -17, -21, -26, -32,
    -26, -21, -17, -13, -9, -5, -2, 0, 2, 5, 9, 13, 17, 21, 26, 32,
]

_DEFAULT_SAMPLE = 128


def mode_angle(mode: int) -> int:
    """Displacement (in 1/32 pel per row) for an angular mode."""
    if not ANGULAR_FIRST <= mode <= ANGULAR_LAST:
        raise ValueError(f"mode {mode} is not angular")
    return _ANGLES[mode - ANGULAR_FIRST]


def _inv_angle(angle: int) -> int:
    """HEVC inverse-angle used to project the side reference."""
    return round(256 * 32 / abs(angle))


def gather_references(
    recon: np.ndarray, mask: np.ndarray, y0: int, x0: int, n: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Collect top/left reference arrays with HEVC-style substitution.

    Returns ``(top, left)``, each of length ``2n + 1`` with index 0
    holding the corner sample.  Unavailable samples (outside the frame
    or not yet reconstructed per ``mask``) are filled by propagating the
    nearest available neighbour along the boundary; a fully unavailable
    boundary falls back to the mid-grey constant 128.
    """
    height, width = recon.shape
    # Boundary walk: left column bottom-to-top, corner, top row left-to-right.
    coords: List[Tuple[int, int]] = []
    for i in range(2 * n, 0, -1):
        coords.append((y0 + i - 1, x0 - 1))
    coords.append((y0 - 1, x0 - 1))
    for i in range(1, 2 * n + 1):
        coords.append((y0 - 1, x0 + i - 1))

    values = np.empty(len(coords), dtype=np.float64)
    available = np.zeros(len(coords), dtype=bool)
    for idx, (r, c) in enumerate(coords):
        if 0 <= r < height and 0 <= c < width and mask[r, c]:
            values[idx] = recon[r, c]
            available[idx] = True

    if not available.any():
        values[:] = _DEFAULT_SAMPLE
    else:
        first = int(np.argmax(available))
        values[:first] = values[first]
        available[:first] = True
        for idx in range(first + 1, len(coords)):
            if not available[idx]:
                values[idx] = values[idx - 1]

    left = values[: 2 * n + 1][::-1].copy()  # left[0] = corner, then downward
    top = values[2 * n :].copy()  # top[0] = corner, then rightward
    return top, left


def predict_dc(top: np.ndarray, left: np.ndarray, n: int) -> np.ndarray:
    """DC prediction: mean of the immediate top row and left column."""
    dc = (top[1 : n + 1].sum() + left[1 : n + 1].sum()) / (2 * n)
    return np.full((n, n), dc, dtype=np.float64)


def predict_planar(top: np.ndarray, left: np.ndarray, n: int) -> np.ndarray:
    """HEVC planar prediction (bilinear blend toward top-right/bottom-left)."""
    xs = np.arange(n, dtype=np.float64)
    ys = np.arange(n, dtype=np.float64)
    top_row = top[1 : n + 1]
    left_col = left[1 : n + 1]
    top_right = top[n + 1]
    bottom_left = left[n + 1]
    horizontal = (n - 1 - xs)[None, :] * left_col[:, None] + (xs + 1)[None, :] * bottom_left
    vertical = (n - 1 - ys)[:, None] * top_row[None, :] + (ys + 1)[:, None] * top_right
    return (horizontal + vertical) / (2 * n)


def _angular_from_main(
    main: np.ndarray, side: np.ndarray, angle: int, n: int
) -> np.ndarray:
    """Angular prediction along the main reference (vertical orientation).

    ``main``/``side`` are the (2n+1)-length reference arrays with the
    corner at index 0.  Returns the n x n prediction for the vertical
    family; the horizontal family transposes the result.
    """
    # Extended reference: indices -n .. 2n (+1 replicate pad so that the
    # fact==0 / angle==32 corner case can safely index one past the end).
    ext = np.empty(3 * n + 2, dtype=np.float64)
    offset = n
    ext[offset : offset + 2 * n + 1] = main
    ext[offset + 2 * n + 1] = main[2 * n]
    if angle < 0:
        inv = _inv_angle(angle)
        for k in range(1, n + 1):
            j = (k * inv + 128) >> 8
            ext[offset - k] = side[min(j, 2 * n)]
    rows = np.arange(1, n + 1)
    pos = rows * angle
    idx = pos >> 5
    fact = pos & 31
    cols = np.arange(n)
    # base index into ext for (row y, col x): x + idx[y] + 1 (+offset).
    base = offset + cols[None, :] + idx[:, None] + 1
    w = fact[:, None].astype(np.float64)
    return ((32.0 - w) * ext[base] + w * ext[base + 1]) / 32.0


def predict_angular(
    top: np.ndarray, left: np.ndarray, mode: int, n: int
) -> np.ndarray:
    """Angular prediction for HEVC mode ``mode`` (2..34)."""
    angle = mode_angle(mode)
    if mode >= 18:  # vertical family: main reference is the top row
        return _angular_from_main(top, left, angle, n)
    return _angular_from_main(left, top, angle, n).T


def predict(
    top: np.ndarray, left: np.ndarray, mode: int, n: int
) -> np.ndarray:
    """Dispatch to the prediction for ``mode``."""
    if mode == PLANAR:
        return predict_planar(top, left, n)
    if mode == DC:
        return predict_dc(top, left, n)
    return predict_angular(top, left, mode, n)


def predict_batch(
    top: np.ndarray, left: np.ndarray, modes: List[int], n: int
) -> np.ndarray:
    """Stack predictions for several candidate modes, shape (m, n, n)."""
    return np.stack([predict(top, left, mode, n) for mode in modes])


def most_probable_modes(
    left_mode: Optional[int], top_mode: Optional[int]
) -> List[int]:
    """Three most-probable modes derived from decoded neighbours (HEVC-like)."""
    a = left_mode if left_mode is not None else DC
    b = top_mode if top_mode is not None else DC
    if a == b:
        if a < ANGULAR_FIRST:
            return [PLANAR, DC, 26]
        prev_mode = ANGULAR_FIRST + (a - ANGULAR_FIRST - 1) % 33
        next_mode = ANGULAR_FIRST + (a - ANGULAR_FIRST + 1) % 33
        return [a, prev_mode, next_mode]
    mpm = [a, b]
    for candidate in (PLANAR, DC, 26):
        if candidate not in mpm:
            mpm.append(candidate)
            break
    return mpm
