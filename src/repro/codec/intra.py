"""Intra-frame prediction: planar, DC, and the 33 HEVC angular modes.

This is the stage the paper singles out (Figure 4) as the surprise
winner for tensors: channel-wise weight structure looks like edges and
planar regions, which directional prediction captures with a few bits
of mode signalling, leaving small residuals for the transform stage.

Mode numbering follows HEVC: 0 = planar, 1 = DC, 2..34 = angular
(2..17 horizontal-ish predicting from the left reference, 18..34
vertical-ish predicting from the top reference).
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.codec.entropy import native

PLANAR = 0
DC = 1
ANGULAR_FIRST = 2
ANGULAR_LAST = 34
NUM_MODES = 35

# HEVC intraPredAngle for modes 2..34.
_ANGLES = [
    32, 26, 21, 17, 13, 9, 5, 2, 0, -2, -5, -9, -13, -17, -21, -26, -32,
    -26, -21, -17, -13, -9, -5, -2, 0, 2, 5, 9, 13, 17, 21, 26, 32,
]

_DEFAULT_SAMPLE = 128


def mode_angle(mode: int) -> int:
    """Displacement (in 1/32 pel per row) for an angular mode."""
    if not ANGULAR_FIRST <= mode <= ANGULAR_LAST:
        raise ValueError(f"mode {mode} is not angular")
    return _ANGLES[mode - ANGULAR_FIRST]


def _inv_angle(angle: int) -> int:
    """HEVC inverse-angle used to project the side reference."""
    return round(256 * 32 / abs(angle))


@lru_cache(maxsize=None)
def _boundary_offsets(n: int) -> Tuple[np.ndarray, np.ndarray]:
    """(dy, dx) offsets of the reference boundary walk for size ``n``.

    The walk is: left column bottom-to-top, corner, top row
    left-to-right -- ``4n + 1`` samples relative to the block origin.
    """
    dy = np.concatenate(
        [
            np.arange(2 * n - 1, -1, -1, dtype=np.int64),  # left column, upward
            np.full(2 * n + 1, -1, dtype=np.int64),  # corner + top row
        ]
    )
    dx = np.concatenate(
        [
            np.full(2 * n, -1, dtype=np.int64),
            np.array([-1], dtype=np.int64),
            np.arange(0, 2 * n, dtype=np.int64),
        ]
    )
    dy.setflags(write=False)
    dx.setflags(write=False)
    return dy, dx


def gather_references(
    recon: np.ndarray, mask: np.ndarray, y0: int, x0: int, n: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Collect top/left reference arrays with HEVC-style substitution.

    Returns ``(top, left)``, each of length ``2n + 1`` with index 0
    holding the corner sample.  Unavailable samples (outside the frame
    or not yet reconstructed per ``mask``) are filled by propagating the
    nearest available neighbour along the boundary; a fully unavailable
    boundary falls back to the mid-grey constant 128.

    The boundary walk, availability test, and nearest-neighbour fill
    are fully vectorised (this runs once per candidate block in the RD
    search, so it is hot); output is bit-identical to the original
    per-sample loop.  When the compiled refs kernel is available it
    does the walk instead -- pure data movement, so the arrays (and
    every stream downstream of them) are unchanged byte for byte.
    """
    gathered = native.refs(recon, mask, y0, x0, n)
    if gathered is not None:
        return gathered
    height, width = recon.shape
    dy, dx = _boundary_offsets(n)
    rows = y0 + dy
    cols = x0 + dx
    total = 4 * n + 1

    in_bounds = (rows >= 0) & (rows < height) & (cols >= 0) & (cols < width)
    available = np.zeros(total, dtype=bool)
    available[in_bounds] = mask[rows[in_bounds], cols[in_bounds]]

    values = np.empty(total, dtype=np.float64)
    if not available.any():
        values[:] = _DEFAULT_SAMPLE
    else:
        values[available] = recon[rows[available], cols[available]]
        # Nearest-previous-available fill: each position maps to the
        # last available index at or before it; positions before the
        # first available sample borrow the first one.
        fill = np.where(available, np.arange(total), -1)
        np.maximum.accumulate(fill, out=fill)
        first = int(np.argmax(available))
        fill[:first] = first
        values = values[fill]

    left = values[: 2 * n + 1][::-1].copy()  # left[0] = corner, then downward
    top = values[2 * n :].copy()  # top[0] = corner, then rightward
    return top, left


def gather_references_scalar(
    recon: np.ndarray, mask: np.ndarray, y0: int, x0: int, n: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Original per-sample reference walk, preserved verbatim.

    Bit-identical to :func:`gather_references`; kept (and used by the
    ``rd_search="legacy"`` encoder path) so the benchmark baseline's
    per-leaf cost profile stays faithful to the pre-optimisation
    encoder rather than silently inheriting the vectorised walk.
    """
    height, width = recon.shape
    # Boundary walk: left column bottom-to-top, corner, top row left-to-right.
    coords: List[Tuple[int, int]] = []
    for i in range(2 * n, 0, -1):
        coords.append((y0 + i - 1, x0 - 1))
    coords.append((y0 - 1, x0 - 1))
    for i in range(1, 2 * n + 1):
        coords.append((y0 - 1, x0 + i - 1))

    values = np.empty(len(coords), dtype=np.float64)
    available = np.zeros(len(coords), dtype=bool)
    for idx, (r, c) in enumerate(coords):
        if 0 <= r < height and 0 <= c < width and mask[r, c]:
            values[idx] = recon[r, c]
            available[idx] = True

    if not available.any():
        values[:] = _DEFAULT_SAMPLE
    else:
        first = int(np.argmax(available))
        values[:first] = values[first]
        available[:first] = True
        for idx in range(first + 1, len(coords)):
            if not available[idx]:
                values[idx] = values[idx - 1]

    left = values[: 2 * n + 1][::-1].copy()  # left[0] = corner, then downward
    top = values[2 * n :].copy()  # top[0] = corner, then rightward
    return top, left


def predict_dc(top: np.ndarray, left: np.ndarray, n: int) -> np.ndarray:
    """DC prediction: mean of the immediate top row and left column."""
    dc = (top[1 : n + 1].sum() + left[1 : n + 1].sum()) / (2 * n)
    return np.full((n, n), dc, dtype=np.float64)


@lru_cache(maxsize=None)
def _planar_weights(n: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Constant blend-weight grids for planar prediction of size ``n``."""
    xs = np.arange(n, dtype=np.float64)
    ys = np.arange(n, dtype=np.float64)
    far_x = (n - 1 - xs)[None, :]
    near_x = (xs + 1)[None, :]
    far_y = (n - 1 - ys)[:, None]
    near_y = (ys + 1)[:, None]
    for arr in (far_x, near_x, far_y, near_y):
        arr.setflags(write=False)
    return far_x, near_x, far_y, near_y


def predict_planar(top: np.ndarray, left: np.ndarray, n: int) -> np.ndarray:
    """HEVC planar prediction (bilinear blend toward top-right/bottom-left)."""
    far_x, near_x, far_y, near_y = _planar_weights(n)
    top_row = top[1 : n + 1]
    left_col = left[1 : n + 1]
    top_right = top[n + 1]
    bottom_left = left[n + 1]
    horizontal = far_x * left_col[:, None] + near_x * bottom_left
    vertical = far_y * top_row[None, :] + near_y * top_right
    return (horizontal + vertical) / (2 * n)


def _angular_from_main(
    main: np.ndarray, side: np.ndarray, angle: int, n: int
) -> np.ndarray:
    """Angular prediction along the main reference (vertical orientation).

    ``main``/``side`` are the (2n+1)-length reference arrays with the
    corner at index 0.  Returns the n x n prediction for the vertical
    family; the horizontal family transposes the result.
    """
    # Extended reference: indices -n .. 2n (+1 replicate pad so that the
    # fact==0 / angle==32 corner case can safely index one past the end).
    ext = np.empty(3 * n + 2, dtype=np.float64)
    offset = n
    ext[offset : offset + 2 * n + 1] = main
    ext[offset + 2 * n + 1] = main[2 * n]
    if angle < 0:
        inv = _inv_angle(angle)
        for k in range(1, n + 1):
            j = (k * inv + 128) >> 8
            ext[offset - k] = side[min(j, 2 * n)]
    rows = np.arange(1, n + 1)
    pos = rows * angle
    idx = pos >> 5
    fact = pos & 31
    cols = np.arange(n)
    # base index into ext for (row y, col x): x + idx[y] + 1 (+offset).
    base = offset + cols[None, :] + idx[:, None] + 1
    w = fact[:, None].astype(np.float64)
    return ((32.0 - w) * ext[base] + w * ext[base + 1]) / 32.0


def predict_angular(
    top: np.ndarray, left: np.ndarray, mode: int, n: int
) -> np.ndarray:
    """Angular prediction for HEVC mode ``mode`` (2..34)."""
    angle = mode_angle(mode)
    if mode >= 18:  # vertical family: main reference is the top row
        return _angular_from_main(top, left, angle, n)
    return _angular_from_main(left, top, angle, n).T


def predict(
    top: np.ndarray, left: np.ndarray, mode: int, n: int
) -> np.ndarray:
    """Dispatch to the prediction for ``mode``."""
    if mode == PLANAR:
        return predict_planar(top, left, n)
    if mode == DC:
        return predict_dc(top, left, n)
    return predict_angular(top, left, mode, n)


def predict_batch(
    top: np.ndarray, left: np.ndarray, modes: List[int], n: int
) -> np.ndarray:
    """Stack predictions for several candidate modes, shape (m, n, n).

    This is the scalar reference path (one :func:`predict` call per
    mode), kept as-is so the ``rd_search="legacy"`` encoder config is
    both bit- and performance-faithful to the pre-parallel encoder.
    The vectorised RD search uses :func:`predict_many` instead.
    """
    return np.stack([predict(top, left, mode, n) for mode in modes])


@lru_cache(maxsize=None)
def _angular_tables(
    angle: int, n: int
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Memoized gather tables for one (angle, block size) pair.

    Returns ``(base, w, proj)`` where ``base`` is the (n, n) index grid
    into the extended reference array, ``w`` the (n, 1) interpolation
    weights, and ``proj`` the side-reference projection indices used to
    extend the main reference for negative angles (``None`` for
    non-negative angles).  These depend only on the mode geometry, so
    the 33-angle loop never recomputes them.
    """
    rows = np.arange(1, n + 1)
    pos = rows * angle
    idx = pos >> 5
    fact = pos & 31
    cols = np.arange(n)
    # offset == n in the (3n + 2)-long extended reference.
    base = n + cols[None, :] + idx[:, None] + 1
    w = fact[:, None].astype(np.float64)
    proj: Optional[np.ndarray] = None
    if angle < 0:
        inv = _inv_angle(angle)
        k = np.arange(1, n + 1)
        proj = np.minimum((k * inv + 128) >> 8, 2 * n)
        proj.setflags(write=False)
    base.setflags(write=False)
    w.setflags(write=False)
    return base, w, proj


@lru_cache(maxsize=None)
def _family_tables(angles: Tuple[int, ...], n: int):
    """Stacked gather tables for a whole candidate-angle family.

    The per-angle tables from :func:`_angular_tables` stacked along a
    leading mode axis, plus the lane indices and reversed projection
    rows for the negative angles, so :func:`_angular_many` is a single
    batched gather with no per-mode Python work.  Candidate sets come
    from profiles (coarse / refine tuples), so the cache stays tiny.
    """
    parts = [_angular_tables(angle, n) for angle in angles]
    bases = np.stack([base for base, _, _ in parts])
    ws = np.stack([w for _, w, _ in parts])
    ws_inv = 32.0 - ws
    neg_lanes = np.array(
        [i for i, (_, _, proj) in enumerate(parts) if proj is not None],
        dtype=np.int64,
    )
    if neg_lanes.size:
        proj_rev = np.stack(
            [proj[::-1] for _, _, proj in parts if proj is not None]
        )
    else:
        proj_rev = np.empty((0, n), dtype=np.int64)
    lanes = np.arange(len(angles))[:, None, None]
    # Flat indices into the ravelled (m, 3n + 2) extended-reference
    # array, so the hot path is a single np.take per interpolation tap.
    flat_lo = lanes * (3 * n + 2) + bases
    for arr in (bases, ws, ws_inv, neg_lanes, proj_rev, lanes, flat_lo):
        arr.setflags(write=False)
    return ws, ws_inv, neg_lanes, proj_rev, flat_lo


def _angular_many(
    main: np.ndarray, side: np.ndarray, angles: Tuple[int, ...], n: int
) -> np.ndarray:
    """All angular predictions of one family in a single vectorised gather.

    Bit-identical to calling :func:`_angular_from_main` per angle: the
    extended reference rows and per-element blend arithmetic are the
    same operations, just batched over the leading mode axis.
    """
    ws, ws_inv, neg_lanes, proj_rev, flat_lo = _family_tables(angles, n)
    m = len(angles)
    ext = np.zeros((m, 3 * n + 2), dtype=np.float64)
    ext[:, n : 3 * n + 1] = main
    ext[:, 3 * n + 1] = main[2 * n]
    if neg_lanes.size:
        # ext[offset - k] = side[proj[k-1]] for k = 1..n, i.e. the
        # ascending slice ext[0:n] is the reversed projection.
        ext[neg_lanes, :n] = side[proj_rev]
    lo = np.take(ext, flat_lo)
    hi = np.take(ext, flat_lo + 1)
    return (ws_inv * lo + ws * hi) / 32.0


def predict_many(
    top: np.ndarray, left: np.ndarray, modes: Sequence[int], n: int
) -> np.ndarray:
    """Predictions for all candidate ``modes`` in one shot, shape (m, n, n).

    The vectorised counterpart of :func:`predict_batch`: angular modes
    are grouped by family (vertical / horizontal) and evaluated with a
    single batched gather each instead of one Python dispatch per mode.
    Each output plane is bit-identical to ``predict(top, left, mode, n)``.
    """
    out = np.empty((len(modes), n, n), dtype=np.float64)
    vertical: List[Tuple[int, int]] = []
    horizontal: List[Tuple[int, int]] = []
    for i, mode in enumerate(modes):
        if mode == PLANAR:
            out[i] = predict_planar(top, left, n)
        elif mode == DC:
            out[i] = predict_dc(top, left, n)
        elif mode >= 18:
            vertical.append((i, mode))
        else:
            horizontal.append((i, mode))
    if vertical:
        idx = [i for i, _ in vertical]
        angles = tuple(mode_angle(mode) for _, mode in vertical)
        out[idx] = _angular_many(top, left, angles, n)
    if horizontal:
        idx = [i for i, _ in horizontal]
        angles = tuple(mode_angle(mode) for _, mode in horizontal)
        out[idx] = _angular_many(left, top, angles, n).transpose(0, 2, 1)
    return out


def most_probable_modes(
    left_mode: Optional[int], top_mode: Optional[int]
) -> List[int]:
    """Three most-probable modes derived from decoded neighbours (HEVC-like)."""
    a = left_mode if left_mode is not None else DC
    b = top_mode if top_mode is not None else DC
    if a == b:
        if a < ANGULAR_FIRST:
            return [PLANAR, DC, 26]
        prev_mode = ANGULAR_FIRST + (a - ANGULAR_FIRST - 1) % 33
        next_mode = ANGULAR_FIRST + (a - ANGULAR_FIRST + 1) % 33
        return [a, prev_mode, next_mode]
    mpm = [a, b]
    for candidate in (PLANAR, DC, 26):
        if candidate not in mpm:
            mpm.append(candidate)
            break
    return mpm
