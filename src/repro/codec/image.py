"""Still-image coding through the intra pipeline (Section 7).

The three-in-one codec supports images via the AVC Image Format trick:
"disable all inter-frame compression features", which aligns the image
path exactly with the tensor path.  This module is that path as a
convenience API -- one grayscale image in, one bitstream out -- and it
is what the three-in-one model's ``InputKind.IMAGE`` maps to.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.codec.decoder import decode_frames
from repro.codec.encoder import EncoderConfig, FrameEncoder
from repro.codec.profiles import H264_PROFILE, CodecProfile
from repro.codec.ratecontrol import search_qp_for_bitrate, search_qp_for_mse


def encode_image(
    image: np.ndarray,
    qp: Optional[float] = None,
    bits_per_pixel: Optional[float] = None,
    max_mse: Optional[float] = None,
    profile: CodecProfile = H264_PROFILE,
) -> bytes:
    """Encode an 8-bit grayscale image (intra-only, like AVC-I).

    Exactly one of ``qp`` / ``bits_per_pixel`` / ``max_mse`` selects the
    rate-control mode (default: qp=28).
    """
    image = np.asarray(image)
    if image.ndim != 2:
        raise ValueError("encode_image expects a 2-D grayscale image")
    if image.dtype != np.uint8:
        raise ValueError("encode_image expects uint8 samples")
    chosen = [t is not None for t in (qp, bits_per_pixel, max_mse)]
    if sum(chosen) > 1:
        raise ValueError("pass only one of qp / bits_per_pixel / max_mse")

    config = EncoderConfig(profile=profile, use_inter=False)
    if bits_per_pixel is not None:
        _, result = search_qp_for_bitrate([image], bits_per_pixel, config)
        return result.data
    if max_mse is not None:
        _, result = search_qp_for_mse([image], max_mse, config)
        return result.data
    from dataclasses import replace

    config = replace(config, qp=qp if qp is not None else 28.0)
    return FrameEncoder(config).encode([image]).data


def decode_image(data: bytes) -> np.ndarray:
    """Decode a bitstream produced by :func:`encode_image`."""
    frames = decode_frames(data)
    if len(frames) != 1:
        raise ValueError("image stream must contain exactly one frame")
    return frames[0]


def image_psnr(original: np.ndarray, decoded: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (the image-quality yardstick)."""
    mse = float(
        np.mean((original.astype(np.float64) - decoded.astype(np.float64)) ** 2)
    )
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(255.0**2 / mse)
