"""Bit-level writer/reader used by the fixed-length and Golomb coders."""

from __future__ import annotations


class BitWriter:
    """Accumulates bits MSB-first and renders them as ``bytes``."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._current = 0
        self._nbits = 0
        self._total_bits = 0

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        self._current = (self._current << 1) | (bit & 1)
        self._nbits += 1
        self._total_bits += 1
        if self._nbits == 8:
            self._buffer.append(self._current)
            self._current = 0
            self._nbits = 0

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value``, most significant first."""
        if width < 0:
            raise ValueError("width must be non-negative")
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_unary(self, value: int) -> None:
        """Append ``value`` one-bits followed by a terminating zero."""
        for _ in range(value):
            self.write_bit(1)
        self.write_bit(0)

    @property
    def bit_length(self) -> int:
        """Number of bits written so far (excluding flush padding)."""
        return self._total_bits

    def getvalue(self) -> bytes:
        """Return the bitstream, zero-padded to a byte boundary."""
        data = bytearray(self._buffer)
        if self._nbits:
            data.append((self._current << (8 - self._nbits)) & 0xFF)
        return bytes(data)


class BitReader:
    """Reads bits MSB-first from a ``bytes`` object."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def read_bit(self) -> int:
        """Read one bit; raises ``EOFError`` past the end of the stream."""
        byte_index = self._pos >> 3
        if byte_index >= len(self._data):
            raise EOFError("bitstream exhausted")
        bit = (self._data[byte_index] >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits, most significant first."""
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self) -> int:
        """Read a unary code: count of one-bits before the first zero."""
        count = 0
        while self.read_bit():
            count += 1
        return count

    @property
    def bits_consumed(self) -> int:
        """Number of bits read so far."""
        return self._pos
