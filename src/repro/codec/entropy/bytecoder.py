"""Adaptive order-0 arithmetic coding of byte streams.

Each byte is coded as eight binary decisions walking a 255-node context
tree (the scheme LZMA uses for literals).  This is the "CABAC" baseline
of the Figure 14/15 comparison grid, and also the entropy-only stage of
the Figure 2(b) pipeline ablation.
"""

from __future__ import annotations

import struct
from typing import Optional, Sequence

from repro.codec.entropy.arithmetic import BinaryDecoder, BinaryEncoder, ContextSet
from repro.resilience.errors import CorruptStreamError, TruncatedStreamError


def byte_arith_encode(data: bytes, num_trees: int = 1) -> bytes:
    """Compress ``data`` with adaptive binary-tree byte contexts.

    ``num_trees`` > 1 switches context trees round-robin by position,
    which helps when the stream interleaves fields of different
    statistics (e.g. packed exponents and mantissas).
    """
    if num_trees < 1:
        raise ValueError("num_trees must be >= 1")
    encoder = BinaryEncoder()
    trees = [ContextSet(256) for _ in range(num_trees)]
    for pos, byte in enumerate(data):
        ctx = trees[pos % num_trees]
        node = 1
        for shift in range(7, -1, -1):
            bit = (byte >> shift) & 1
            encoder.encode_bit(ctx, node, bit)
            node = (node << 1) | bit
    payload = encoder.finish()
    header = struct.pack("<IB", len(data), num_trees)
    return header + payload


def byte_arith_decode(blob: bytes) -> bytes:
    """Inverse of :func:`byte_arith_encode`.

    Raises :class:`CorruptStreamError` on a truncated or inconsistent
    header.
    """
    try:
        length, num_trees = struct.unpack_from("<IB", blob, 0)
    except struct.error:
        raise TruncatedStreamError("byte-coder stream shorter than its header") from None
    if num_trees < 1:
        raise CorruptStreamError("corrupt byte-coder header: zero context trees")
    decoder = BinaryDecoder(blob[5:])
    trees = [ContextSet(256) for _ in range(num_trees)]
    out = bytearray(length)
    for pos in range(length):
        ctx = trees[pos % num_trees]
        node = 1
        for _ in range(8):
            node = (node << 1) | decoder.decode_bit(ctx, node)
        out[pos] = node & 0xFF
    return bytes(out)


def estimate_entropy_bits(data: Sequence[int], alphabet: Optional[int] = None) -> float:
    """Shannon (order-0) entropy of ``data`` in total bits.

    A quick lower-bound estimate used by rate-distortion proxies; the
    real coders above get close to it on memoryless sources.
    """
    import math
    from collections import Counter

    counts = Counter(data)
    total = sum(counts.values())
    if total == 0:
        return 0.0
    bits = 0.0
    for count in counts.values():
        p = count / total
        bits -= count * math.log2(p)
    return bits
