/* Native batched RD costing for the turbo quadtree search.
 *
 * Two layouts share the one entry point:
 *
 *   pred == NULL  "flat" mode: row r of `cscaled` IS the candidate
 *                 coefficient block already scaled into step units
 *                 (n_modes is ignored, rows = n_blocks).
 *   pred != NULL  "fused" mode: candidate row r is block r / n_modes
 *                 of `cscaled` minus row r of `pred` -- the broadcast
 *                 subtraction the numpy fallback materialises as a
 *                 full (blocks * modes, width) temporary happens here
 *                 element by element instead, saving that allocation
 *                 and a complete memory round-trip per QP group.
 *
 * For every candidate row the kernel performs the dead-zone quantize
 * and accumulates the three integer rate statistics the Python cost
 * model needs:
 *
 *   out[r][i]     emit_err == 0: the quantized level, as float64.
 *                 emit_err != 0: level - x, the quantization error the
 *                 SSE term consumes (the subtraction is the identical
 *                 single float op the numpy fallback performs on the
 *                 identical operands, so it is bitwise equal).
 *   rate[r]       sum of rate_table[min(|level|, table_len - 1)], an
 *                 int64 fixed-point (2^15-scaled log2(m + 1)) sum that
 *                 is order-independent and therefore exactly equal to
 *                 the numpy np.take(...).sum() fallback.
 *   nnz[r]        count of nonzero levels.
 *   last[r]       highest nonzero index, -1 for an all-zero row.
 *
 * rint() under the default FE_TONEAREST mode is round-half-even and
 * trunc/copysign are exact, so levels are bitwise identical to
 * np.rint / np.trunc(x + copysign(...)).  Distortion (sum of squared
 * error) deliberately stays in numpy on both the native and fallback
 * paths: float summation order matters there, and numpy's pairwise
 * reduction is not worth reproducing in C.  Since the errors produced
 * here are bitwise identical to the numpy quantizer's, both paths feed
 * the same floats into the same numpy sum and every downstream cost,
 * argmin, and bitstream byte agrees.
 *
 * Built on demand by repro.codec.entropy.native (GIL released).
 * Return status: 0 = ok, 1 = a row wider than the stack level buffer
 * (the wrapper falls back to numpy; no output was written).
 */

#include <math.h>
#include <stdint.h>

/* Largest n * n of any profile (64 x 64 CTU). */
#define MAX_WIDTH 4096

int64_t llm265_cost_blocks(
    const double *cscaled, const double *pred,
    int64_t n_blocks, int64_t n_modes, int64_t width, double deadzone,
    const int64_t *rate_table, int64_t table_len, int64_t emit_err,
    double *out, int64_t *rate, int64_t *nnz, int64_t *last)
{
    int64_t n_rows = pred ? n_blocks * n_modes : n_blocks;
    int64_t r, i;
    double top = (double)(table_len - 1);
    double off = 0.5 - deadzone;
    double lvbuf[MAX_WIDTH];

    if (width < 1 || width > MAX_WIDTH)
        return 1;
    for (r = 0; r < n_rows; r++) {
        const double *crow =
            pred ? cscaled + (r / n_modes) * width : cscaled + r * width;
        const double *prow = pred ? pred + r * width : 0;
        double *orow = out + r * width;
        /* The stats pass reads exact levels; in emit_err mode they go
         * to the stack row (L1-resident) while `out` receives errors. */
        double *lrow = emit_err ? lvbuf : orow;
        int64_t row_rate = 0, row_nnz = 0, row_last = -1;
        /* Quantize first in branch-hoisted loops the compiler can
         * vectorize (trunc/copysign/rint inline to single packed
         * instructions with SSE4.1), then gather the rate stats in a
         * second pass. */
        if (deadzone != 0.0) {
            if (prow)
                for (i = 0; i < width; i++) {
                    double x = crow[i] - prow[i];
                    double lv = trunc(x + copysign(off, x));
                    lrow[i] = lv;
                    if (emit_err)
                        orow[i] = lv - x;
                }
            else
                for (i = 0; i < width; i++) {
                    double x = crow[i];
                    double lv = trunc(x + copysign(off, x));
                    lrow[i] = lv;
                    if (emit_err)
                        orow[i] = lv - x;
                }
        } else {
            if (prow)
                for (i = 0; i < width; i++) {
                    double x = crow[i] - prow[i];
                    double lv = rint(x);
                    lrow[i] = lv;
                    if (emit_err)
                        orow[i] = lv - x;
                }
            else
                for (i = 0; i < width; i++) {
                    double x = crow[i];
                    double lv = rint(x);
                    lrow[i] = lv;
                    if (emit_err)
                        orow[i] = lv - x;
                }
        }
        for (i = 0; i < width; i++) {
            double mag = fabs(lrow[i]);
            if (mag > 0.0) {
                row_nnz++;
                row_last = i;
                /* Clamp before the cast: magnitudes beyond the table
                 * share its top entry, and casting a double above
                 * INT64_MAX would be undefined. */
                int64_t m = mag < top ? (int64_t)mag : table_len - 1;
                row_rate += rate_table[m];
            }
        }
        rate[r] = row_rate;
        nnz[r] = row_nnz;
        last[r] = row_last;
    }
    return 0;
}
