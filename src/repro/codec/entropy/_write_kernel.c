/* Native hot loop for coefficient-block entropy encoding.
 *
 * Encodes one whole coefficient block exactly as the Python fast path
 * in syntax.encode_coeff_block does: the cbf=1 context bin, the
 * last-position adaptive-UEG code, then the fused significance /
 * level / sign scan of BinaryEncoder.encode_coeff_scan.  The range
 * coder is the same LZMA-style design (32-bit range, 64-bit low with
 * carry propagation, 11-bit probabilities, shift-5 adaptation) and
 * every integer operation is exact in uint32/uint64, so the bytes
 * emitted -- and the coder state left behind (low/range/carry cache
 * and every context probability) -- are bit-identical to the
 * pure-Python loops.  tests/test_native_encode.py and
 * tests/test_encode_fuzz.py lock the two together.
 *
 * Carry propagation never rewrites already-emitted bytes: a carry out
 * of the 32-bit low lands in the pending (cache, cache_size) pair at
 * the moment those bytes are flushed, which is what lets this kernel
 * append to a caller-provided scratch buffer that Python then extends
 * onto the encoder's output bytearray.  The scratch capacity the
 * Python wrapper allocates is derived from the worst-case bin count
 * (each bin triggers at most one byte shift), so the overflow status
 * below is a can't-happen guard, not a working code path.
 *
 * Built on demand by repro.codec.entropy.native (cc -O2 -shared); the
 * pure-Python loops remain the behaviourally-identical fallback.
 *
 * Return status: 0 = ok, 1 = scratch buffer overflow.  Coder state is
 * only written back on status 0; since the wrapper sizes the scratch
 * for the worst case, it treats status 1 as a broken invariant and
 * raises (the context banks are adapted in place, so a silent fallback
 * after a partial write could not restore them).
 */

#include <stdint.h>

#define PROB_BITS 11
#define PROB_ONE 2048
#define ADAPT_SHIFT 5
#define TOP (1u << 24)
#define MASK32 0xFFFFFFFFull

typedef struct {
    uint64_t low;
    uint32_t rng;
    int64_t cache;
    int64_t csize;
    uint8_t *out;
    int64_t cap;
    int64_t len;
} coder;

/* BinaryEncoder._shift_low driven by the `while range < TOP` loop of
 * _renorm: shift the range up one byte at a time, flushing the carry
 * cache when low leaves the [0xFF000000, 0xFFFFFFFF] pending window. */
static inline int renorm(coder *c)
{
    while (c->rng < TOP) {
        c->rng <<= 8; /* (rng << 8) & MASK32: uint32 wraps identically */
        if (c->low < 0xFF000000ull || c->low > MASK32) {
            uint64_t carry = c->low >> 32;
            int64_t j;
            if (c->len + c->csize > c->cap)
                return 1;
            c->out[c->len++] = (uint8_t)((c->cache + (int64_t)carry) & 0xFF);
            for (j = 0; j < c->csize - 1; j++)
                c->out[c->len++] = (uint8_t)((0xFF + carry) & 0xFF);
            c->cache = (int64_t)((c->low >> 24) & 0xFF);
            c->csize = 0;
        }
        c->csize += 1;
        c->low = (c->low << 8) & MASK32;
    }
    return 0;
}

/* BinaryEncoder.encode_bit on localized state. */
static inline int ctx_bin(coder *c, int32_t *probs, int64_t idx, int bit)
{
    int32_t prob = probs[idx];
    uint32_t bound = (c->rng >> PROB_BITS) * (uint32_t)prob;
    if (bit == 0) {
        c->rng = bound;
        probs[idx] = prob + ((PROB_ONE - prob) >> ADAPT_SHIFT);
    } else {
        c->low += bound;
        c->rng -= bound;
        probs[idx] = prob - (prob >> ADAPT_SHIFT);
    }
    if (c->rng < TOP)
        return renorm(c);
    return 0;
}

static inline int bypass_bin(coder *c, int bit)
{
    c->rng >>= 1;
    if (bit)
        c->low += c->rng;
    if (c->rng < TOP)
        return renorm(c);
    return 0;
}

/* BinaryEncoder.encode_ueg: adaptive truncated-unary prefix over
 * probs[base .. base+max_prefix-1] (top context reused at saturation),
 * order-k Exp-Golomb bypass suffix beyond max_prefix.  The combined
 * 2*prefix_len..0 loop emits prefix_len leading zero bypasses followed
 * by shifted msb-first in prefix_len + 1 bins; shifted >> shift is
 * only evaluated for shift <= prefix_len (<= 63), mirroring Python's
 * short-circuit -- a shift of 64+ on uint64 would be undefined. */
static inline int ueg(coder *c, int32_t *probs, int64_t base,
                      uint64_t value, int64_t max_prefix, int64_t k)
{
    int64_t top_ctx = max_prefix - 1;
    int64_t prefix =
        value < (uint64_t)max_prefix ? (int64_t)value : max_prefix;
    int64_t t;
    for (t = 0; t < prefix; t++)
        if (ctx_bin(c, probs, base + (t < top_ctx ? t : top_ctx), 1))
            return 1;
    if (prefix < max_prefix)
        return ctx_bin(c, probs, base + (prefix < top_ctx ? prefix : top_ctx),
                       0);
    uint64_t remainder = value - (uint64_t)max_prefix;
    uint64_t shifted = (remainder >> k) + 1;
    int64_t prefix_len = 0;
    uint64_t s = shifted;
    while (s > 1) {
        s >>= 1;
        prefix_len++;
    }
    int64_t shift;
    for (shift = 2 * prefix_len; shift >= 0; shift--)
        if (bypass_bin(c, shift <= prefix_len && ((shifted >> shift) & 1)))
            return 1;
    for (shift = k - 1; shift >= 0; shift--)
        if (bypass_bin(c, (remainder >> shift) & 1))
            return 1;
    return 0;
}

int64_t llm265_encode_coeff_block(
    const int64_t *scanned, int64_t last,
    int32_t *cbf_probs, int64_t cbf_index,
    int32_t *last_probs, int64_t last_base,
    int64_t last_max_prefix, int64_t last_k,
    int32_t *sig_probs, int64_t sig_base, const int32_t *sig_buckets,
    int32_t *level_probs, int64_t level_base,
    int64_t max_prefix, int64_t k,
    uint64_t *low_io, uint32_t *rng_io,
    int64_t *cache_io, int64_t *cache_size_io,
    uint8_t *out, int64_t out_cap, int64_t *out_len_io)
{
    coder c = {*low_io, *rng_io, *cache_io, *cache_size_io,
               out,     out_cap, 0};
    int64_t i;

    if (ctx_bin(&c, cbf_probs, cbf_index, 1))
        return 1;
    if (ueg(&c, last_probs, last_base, (uint64_t)last, last_max_prefix,
            last_k))
        return 1;
    for (i = last; i >= 0; i--) {
        int64_t level = scanned[i];
        if (i != last) {
            if (ctx_bin(&c, sig_probs, sig_base + sig_buckets[i],
                        level != 0))
                return 1;
            if (level == 0)
                continue;
        }
        /* magnitude - 1; the negation is done in uint64 so INT64_MIN
         * (can't occur from the quantizer, but legal input) stays
         * exact, matching Python's unbounded ints. */
        uint64_t mag = level < 0 ? (uint64_t)0 - (uint64_t)level
                                 : (uint64_t)level;
        if (ueg(&c, level_probs, level_base, mag - 1, max_prefix, k))
            return 1;
        if (bypass_bin(&c, level < 0))
            return 1;
    }
    *low_io = c.low;
    *rng_io = c.rng;
    *cache_io = c.cache;
    *cache_size_io = c.csize;
    *out_len_io = c.len;
    return 0;
}
