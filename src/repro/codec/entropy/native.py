"""Optional native kernels for the entropy-coder hot loops.

Three small C kernels share one self-building pipeline:

``scan``   ``_scan_kernel.c``  -- fused coefficient-scan *decode*, a
           line-for-line transliteration of
           :meth:`BinaryDecoder.decode_coeff_scan` (PR 5).
``write``  ``_write_kernel.c`` -- whole-coefficient-block *encode*
           (cbf bin + last UEG + the fused scan), the exact mirror of
           the fast path in :func:`repro.codec.syntax.encode_coeff_block`.
``cost``   ``_cost_kernel.c``  -- batched quantize + fixed-point rate
           accumulation for the turbo RD search.
``refs``   ``_refs_kernel.c``  -- intra reference gather with boundary
           substitution (pure data movement shared by every path).

Each kernel is compiled with the system C compiler the first time it is
needed and cached under ``_build/`` keyed by a content hash of its own
source, so editing one kernel never invalidates the others.  Shared
objects whose hash no longer matches any current source are pruned on
first use (counted by the ``native.cache_pruned`` telemetry counter) so
the cache cannot accumulate orphans across source edits.

Everything degrades gracefully and *per kernel*: no compiler, a failed
build, a failed ``dlopen``, or ``LLM265_PURE_PYTHON=1`` in the
environment make the corresponding dispatch helper return ``None`` and
the caller silently uses the pure-Python path instead (same bits out,
slower).  A build failure is recorded once per kernel per process -- one
``native.build_failed`` flight-recorder event and counter, never a
retry per call.  Nothing is downloaded and no third-party package is
involved -- the kernels are three C files, ``cc``, and ``ctypes``.

The kernels release the GIL for the duration of each call (plain
``ctypes.CDLL`` behaviour), which is what lets thread-parallel encode
and decode scale on multi-core machines.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import shutil
import subprocess
import tempfile
import threading
from array import array
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "available",
    "build_info",
    "kernel_status",
    "scan",
    "write",
    "cost",
    "cost_fused",
    "refs",
]

_BUILD_DIR = os.path.join(os.path.dirname(__file__), "_build")

_PROB_ARGS = [
    ctypes.c_void_p,  # sig_probs
    ctypes.c_int64,  # sig_base
    ctypes.c_void_p,  # sig_buckets
    ctypes.c_void_p,  # level_probs
    ctypes.c_int64,  # level_base
    ctypes.c_int64,  # max_prefix
    ctypes.c_int64,  # k
]

_SCAN_ARGTYPES = [
    ctypes.c_char_p,  # data
    ctypes.c_int64,  # dlen
    ctypes.POINTER(ctypes.c_int64),  # pos_io
    ctypes.POINTER(ctypes.c_uint32),  # rng_io
    ctypes.POINTER(ctypes.c_uint32),  # code_io
    ctypes.c_int64,  # n_scan
    ctypes.c_int64,  # last
    *_PROB_ARGS,
    ctypes.c_void_p,  # out
    ctypes.POINTER(ctypes.c_int64),  # bins_io
]

_WRITE_ARGTYPES = [
    ctypes.c_void_p,  # scanned (int64)
    ctypes.c_int64,  # last
    ctypes.c_void_p,  # cbf_probs
    ctypes.c_int64,  # cbf_index
    ctypes.c_void_p,  # last_probs
    ctypes.c_int64,  # last_base
    ctypes.c_int64,  # last_max_prefix
    ctypes.c_int64,  # last_k
    *_PROB_ARGS,
    ctypes.POINTER(ctypes.c_uint64),  # low_io
    ctypes.POINTER(ctypes.c_uint32),  # rng_io
    ctypes.POINTER(ctypes.c_int64),  # cache_io
    ctypes.POINTER(ctypes.c_int64),  # cache_size_io
    ctypes.c_void_p,  # out
    ctypes.c_int64,  # out_cap
    ctypes.POINTER(ctypes.c_int64),  # out_len_io
]

_REFS_ARGTYPES = [
    ctypes.c_void_p,  # recon (float64)
    ctypes.c_void_p,  # mask (uint8/bool)
    ctypes.c_int64,  # height
    ctypes.c_int64,  # width
    ctypes.c_int64,  # y0
    ctypes.c_int64,  # x0
    ctypes.c_int64,  # n
    ctypes.c_void_p,  # top out (float64)
    ctypes.c_void_p,  # left out (float64)
]

_COST_ARGTYPES = [
    ctypes.c_void_p,  # cscaled (float64)
    ctypes.c_void_p,  # pred (float64, NULL for flat mode)
    ctypes.c_int64,  # n_blocks
    ctypes.c_int64,  # n_modes
    ctypes.c_int64,  # width
    ctypes.c_double,  # deadzone
    ctypes.c_void_p,  # rate_table (int64)
    ctypes.c_int64,  # table_len
    ctypes.c_int64,  # emit_err
    ctypes.c_void_p,  # out: levels or errors (float64)
    ctypes.c_void_p,  # rate out (int64)
    ctypes.c_void_p,  # nnz out (int64)
    ctypes.c_void_p,  # last out (int64)
]


@dataclass
class _Kernel:
    name: str  # build-cache prefix, e.g. "scan" -> scan_kernel_<tag>.so
    source: str  # C file next to this module
    symbol: str
    argtypes: list
    state: str = "unloaded"  # unloaded | building | ready | pure-python
    #                        | no-compiler | failed
    fn: object = None
    lock: threading.Lock = field(default_factory=threading.Lock)


_KERNELS: Dict[str, _Kernel] = {
    k.name: k
    for k in (
        _Kernel("scan", "_scan_kernel.c", "llm265_decode_coeff_scan", _SCAN_ARGTYPES),
        _Kernel("write", "_write_kernel.c", "llm265_encode_coeff_block", _WRITE_ARGTYPES),
        _Kernel("cost", "_cost_kernel.c", "llm265_cost_blocks", _COST_ARGTYPES),
        _Kernel("refs", "_refs_kernel.c", "llm265_gather_refs", _REFS_ARGTYPES),
    )
}


def _compiler() -> Optional[str]:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _source_path(kernel: _Kernel) -> str:
    return os.path.join(os.path.dirname(__file__), kernel.source)


# -fno-math-errno lets the compiler inline rint/trunc/copysign (their
# IEEE results are unchanged; only the unused errno side effect is
# dropped), which matters for the cost kernel's per-element rounding.
# On x86-64 the roundsd/roundpd instructions those inline to need
# SSE4.1 -- universal on hardware from the last 15+ years but not part
# of the baseline ABI, so it is opted into explicitly (never
# -march=native: the cached .so must stay valid if the build directory
# travels to a different machine of the same architecture).
_CFLAGS = (
    "-O2",
    "-fno-math-errno",
    *(("-msse4.1",) if platform.machine() in ("x86_64", "AMD64") else ()),
    "-shared",
    "-fPIC",
)


def _source_tag(kernel: _Kernel) -> str:
    digest = hashlib.sha256()
    with open(_source_path(kernel), "rb") as fh:
        digest.update(fh.read())
    # Flags participate in the cache key: a flag change must rebuild.
    digest.update(" ".join(_CFLAGS).encode())
    return digest.hexdigest()[:16]


_pruned = False


def _prune_stale() -> int:
    """Drop cached .so files whose content hash matches no current source.

    Runs once per process, on the first kernel resolve that finds (or
    creates) the build directory.  Idempotent and best-effort: a file
    another process is mid-replace on simply survives until next time.
    """
    global _pruned
    if _pruned:
        return 0
    _pruned = True
    try:
        entries = os.listdir(_BUILD_DIR)
    except OSError:
        return 0
    live = {f"{k.name}_kernel_{_source_tag(k)}.so" for k in _KERNELS.values()}
    removed = 0
    for name in entries:
        if not name.endswith(".so") or name in live:
            continue
        try:
            os.unlink(os.path.join(_BUILD_DIR, name))
            removed += 1
        except OSError:
            pass
    if removed:
        import repro.telemetry as telemetry

        telemetry.count("native.cache_pruned", removed)
    return removed


def _record_failure(kernel: _Kernel, reason: str) -> None:
    """One flight-recorder event per kernel per process, not per call."""
    try:
        import repro.telemetry as telemetry
        from repro.telemetry import flightrecorder

        flightrecorder.record(
            "native.build_failed", kernel=kernel.name, reason=reason
        )
        telemetry.count("native.build_failed")
    except Exception:
        pass


def _build_and_load(kernel: _Kernel):
    """Compile (if not cached) and dlopen one kernel; may raise."""
    src = _source_path(kernel)
    so_path = os.path.join(
        _BUILD_DIR, f"{kernel.name}_kernel_{_source_tag(kernel)}.so"
    )
    if not os.path.exists(so_path):
        cc = _compiler()
        if cc is None:
            raise FileNotFoundError("no C compiler on PATH")
        os.makedirs(_BUILD_DIR, exist_ok=True)
        # Build to a temp name and os.replace() so concurrent builders
        # (parallel test workers, process-pool warm-up) never observe a
        # half-written library.
        fd, tmp = tempfile.mkstemp(suffix=".so", dir=_BUILD_DIR)
        os.close(fd)
        try:
            subprocess.run(
                [cc, *_CFLAGS, "-o", tmp, src],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(tmp, so_path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
    lib = ctypes.CDLL(so_path)
    fn = getattr(lib, kernel.symbol)
    fn.restype = ctypes.c_int64
    fn.argtypes = kernel.argtypes
    return fn


def _resolve(name: str):
    """One-time lazy init for one kernel; never raises."""
    kernel = _KERNELS[name]
    if kernel.state not in ("unloaded", "building"):
        return kernel.fn
    with kernel.lock:
        if kernel.state not in ("unloaded", "building"):
            return kernel.fn
        if os.environ.get("LLM265_PURE_PYTHON"):
            kernel.state = "pure-python"
            return None
        kernel.state = "building"
        try:
            kernel.fn = _build_and_load(kernel)
            kernel.state = "ready"
            _prune_stale()
        except FileNotFoundError as exc:
            kernel.fn = None
            kernel.state = "no-compiler"
            _record_failure(kernel, str(exc))
        except Exception as exc:
            kernel.fn = None
            kernel.state = "failed"
            _record_failure(kernel, repr(exc))
    return kernel.fn


def available() -> bool:
    """True when the compiled *scan* kernel is loaded and usable.

    Kept with this exact meaning (and no arguments) for back-compat:
    decoder call sites and tests monkeypatch it to force the pure path.
    The encode-side kernels are gated by :func:`write` / :func:`cost`
    returning ``None`` instead.
    """
    return _resolve("scan") is not None


def build_info() -> str:
    """Scan-kernel state string for legacy callers; see kernel_status."""
    _resolve("scan")
    return _KERNELS["scan"].state


def kernel_status(resolve: bool = True) -> Dict[str, str]:
    """Per-kernel state map for ``llm265 stats`` / bench reports.

    States: ``ready`` / ``building`` / ``pure-python`` / ``no-compiler``
    / ``failed`` (plus ``unloaded`` when ``resolve=False``).
    """
    if resolve:
        for name in _KERNELS:
            _resolve(name)
    return {name: k.state for name, k in _KERNELS.items()}


# Per-size bucket arrays are tiny and fixed; cache their C form.
_bucket_cache: dict = {}


def _bucket_array(buckets: Sequence[int]) -> array:
    key = tuple(buckets)
    arr = _bucket_cache.get(key)
    if arr is None:
        arr = array("i", key)
        _bucket_cache[key] = arr
    return arr


def _prob_buffer(probs) -> Tuple[array, bool]:
    """C view of a context-probability bank.

    ``ContextSet.probs`` is already an ``array('i')`` -- the kernel
    adapts the live contexts in place and nothing needs copying in
    either direction.  Plain sequences (tests, external callers) are
    copied in, and the second element tells the caller a write-back is
    needed.
    """
    if type(probs) is array and probs.typecode == "i":
        return probs, False
    return array("i", probs), True


def scan(
    dec,
    n_scan: int,
    last: int,
    sig_probs: List[int],
    sig_base: int,
    sig_buckets: Sequence[int],
    level_probs: List[int],
    level_base: int,
    max_prefix: int,
    k: int,
) -> Optional[np.ndarray]:
    """Run the native scan; return int64 levels or None if unavailable.

    Mirrors :meth:`BinaryDecoder.decode_coeff_scan` exactly, including
    the state left on ``dec`` and in the context probability lists on
    *both* success and error paths.  Raises :class:`CorruptStreamError`
    for a runaway Exp-Golomb suffix and :class:`OverflowError` for a
    magnitude that does not fit int64 (what ``np.asarray`` raises on
    the pure path's big int), so callers cannot tell the paths apart.
    """
    fn = _resolve("scan")
    if fn is None:
        return None
    from repro.resilience.errors import CorruptStreamError

    data = dec._data
    pos = ctypes.c_int64(dec._pos)
    rng = ctypes.c_uint32(dec._range)
    code = ctypes.c_uint32(dec._code)
    bins = ctypes.c_int64(0)
    sig_arr, sig_copied = _prob_buffer(sig_probs)
    lvl_arr, lvl_copied = _prob_buffer(level_probs)
    buckets = _bucket_array(sig_buckets)
    out = np.empty(n_scan, dtype=np.int64)
    status = fn(
        data,
        len(data),
        ctypes.byref(pos),
        ctypes.byref(rng),
        ctypes.byref(code),
        n_scan,
        last,
        sig_arr.buffer_info()[0],
        sig_base,
        buckets.buffer_info()[0],
        lvl_arr.buffer_info()[0],
        level_base,
        max_prefix,
        k,
        out.ctypes.data,
        ctypes.byref(bins),
    )
    # Write state back unconditionally -- the Python loop also adapts
    # contexts and advances the coder before raising.  (Live ContextSet
    # banks were adapted in place; only copied-in sequences need it.)
    if sig_copied:
        sig_probs[:] = sig_arr
    if lvl_copied:
        level_probs[:] = lvl_arr
    dec._pos = pos.value
    dec._range = rng.value
    dec._code = code.value
    dec.scan_bins += bins.value
    if status == 1:
        raise CorruptStreamError("corrupt UEG suffix")
    if status == 2:
        raise OverflowError("decoded coefficient magnitude exceeds int64")
    return out


# Worst-case bins per coefficient: 1 significance + max_prefix (<= 10
# via the last-prefix, 3 in the coeff scan) truncated-unary bins + the
# Exp-Golomb suffix (2 * 63 + 1 + k bins for an int64 magnitude) + 1
# sign.  133 is a safe per-coefficient ceiling for every profile in the
# format; each bin shifts out at most one byte.
_MAX_BINS_PER_COEFF = 133

# The write scratch is reused per thread (the cap is worst-case sized,
# so allocating it fresh per block dominated the wrapper's cost).
_scratch_local = threading.local()


def _scratch(cap: int) -> np.ndarray:
    buf = getattr(_scratch_local, "buf", None)
    if buf is None or len(buf) < cap:
        buf = np.empty(max(cap, 1 << 16), dtype=np.uint8)
        _scratch_local.buf = buf
    return buf


def write(
    enc,
    scanned: np.ndarray,
    last: int,
    cbf_probs: List[int],
    cbf_index: int,
    last_probs: List[int],
    last_base: int,
    last_max_prefix: int,
    last_k: int,
    sig_probs: List[int],
    sig_base: int,
    sig_buckets: Sequence[int],
    level_probs: List[int],
    level_base: int,
    max_prefix: int,
    k: int,
) -> bool:
    """Run the native block write; return True iff the bits were emitted.

    Encodes the whole non-empty coefficient block -- the cbf=1 context
    bin, the last-position UEG code and the fused significance/level/
    sign scan -- exactly as the pure-Python fast path does: bytes
    appended to ``enc._out``, coder state (low/range/carry cache) and
    every adapted context probability land bit-identical.  The coder
    state on ``enc`` is written back only on success; the scratch
    capacity is worst-case sized, so a nonzero kernel status means a
    broken sizing invariant and raises rather than risking a silent
    half-adapted context bank.
    """
    fn = _resolve("write")
    if fn is None:
        return False
    if scanned.dtype != np.int64 or not scanned.flags.c_contiguous:
        scanned = np.ascontiguousarray(scanned, dtype=np.int64)
    low = ctypes.c_uint64(enc._low)
    rng = ctypes.c_uint32(enc._range)
    cache = ctypes.c_int64(enc._cache)
    csize = ctypes.c_int64(enc._cache_size)
    out_len = ctypes.c_int64(0)
    cbf_arr, cbf_copied = _prob_buffer(cbf_probs)
    last_arr, last_copied = _prob_buffer(last_probs)
    sig_arr, sig_copied = _prob_buffer(sig_probs)
    lvl_arr, lvl_copied = _prob_buffer(level_probs)
    buckets = _bucket_array(sig_buckets)
    # + 64 headroom covers the cbf bin and the last-position UEG code
    # (<= last_max_prefix + the Exp-Golomb suffix of a 12-bit value).
    cap = _MAX_BINS_PER_COEFF * (last + 1) + enc._cache_size + 64
    scratch = _scratch(cap)
    status = fn(
        scanned.ctypes.data,
        last,
        cbf_arr.buffer_info()[0],
        cbf_index,
        last_arr.buffer_info()[0],
        last_base,
        last_max_prefix,
        last_k,
        sig_arr.buffer_info()[0],
        sig_base,
        buckets.buffer_info()[0],
        lvl_arr.buffer_info()[0],
        level_base,
        max_prefix,
        k,
        ctypes.byref(low),
        ctypes.byref(rng),
        ctypes.byref(cache),
        ctypes.byref(csize),
        scratch.ctypes.data,
        cap,
        ctypes.byref(out_len),
    )
    if status != 0:
        raise RuntimeError(
            "native write kernel overflowed its worst-case scratch "
            f"(last={last}, cap={cap})"
        )
    if cbf_copied:
        cbf_probs[:] = cbf_arr
    if last_copied:
        last_probs[:] = last_arr
    if sig_copied:
        sig_probs[:] = sig_arr
    if lvl_copied:
        level_probs[:] = lvl_arr
    enc._low = low.value
    enc._range = rng.value
    enc._cache = cache.value
    enc._cache_size = csize.value
    if out_len.value:
        enc._out += scratch[: out_len.value].tobytes()
    return True


def cost(
    diff: np.ndarray,
    deadzone: float,
    rate_table: np.ndarray,
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Batched quantize + rate stats; None when the kernel is unavailable.

    ``diff`` is a C-contiguous float64 ``(rows, width)`` batch of
    step-scaled residuals; ``rate_table`` is the int64 fixed-point
    level-rate table.  Returns ``(levels, rate, nnz, last)`` arrays
    bitwise identical to the numpy fallback in
    :func:`repro.codec.encoder._quantize_costs`.
    """
    fn = _resolve("cost")
    if fn is None:
        return None
    diff = np.ascontiguousarray(diff, dtype=np.float64)
    rows, width = diff.shape
    levels = np.empty_like(diff)
    rate = np.empty(rows, dtype=np.int64)
    nnz = np.empty(rows, dtype=np.int64)
    last = np.empty(rows, dtype=np.int64)
    status = fn(
        diff.ctypes.data,
        None,  # flat mode
        rows,
        1,
        width,
        deadzone,
        rate_table.ctypes.data,
        len(rate_table),
        0,  # emit levels
        levels.ctypes.data,
        rate.ctypes.data,
        nnz.ctypes.data,
        last.ctypes.data,
    )
    if status != 0:
        return None
    return levels, rate, nnz, last


def cost_fused(
    cscaled: np.ndarray,
    pred: np.ndarray,
    deadzone: float,
    rate_table: np.ndarray,
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Fused predict-subtract + quantize + rate stats for pass 1.

    ``cscaled`` is the ``(blocks, width)`` step-scaled coefficient
    batch and ``pred`` the ``(blocks, modes, width)`` candidate
    predictions; candidate row ``b * modes + m`` is quantized from
    ``cscaled[b] - pred[b, m]`` without ever materialising that
    difference.  Returns ``(err, rate, nnz, last)`` where ``err`` holds
    the quantization errors (``level - x``) the SSE term consumes --
    all four bitwise identical to the numpy fallback in
    :func:`repro.codec.encoder._pass1_err_costs`.
    """
    fn = _resolve("cost")
    if fn is None:
        return None
    if (
        cscaled.dtype != np.float64
        or not cscaled.flags.c_contiguous
        or pred.dtype != np.float64
        or not pred.flags.c_contiguous
    ):
        return None
    n_blocks, width = cscaled.shape
    n_modes = pred.shape[1]
    rows = n_blocks * n_modes
    err = np.empty((rows, width), dtype=np.float64)
    rate = np.empty(rows, dtype=np.int64)
    nnz = np.empty(rows, dtype=np.int64)
    last = np.empty(rows, dtype=np.int64)
    status = fn(
        cscaled.ctypes.data,
        pred.ctypes.data,
        n_blocks,
        n_modes,
        width,
        deadzone,
        rate_table.ctypes.data,
        len(rate_table),
        1,  # emit errors
        err.ctypes.data,
        rate.ctypes.data,
        nnz.ctypes.data,
        last.ctypes.data,
    )
    if status != 0:
        return None
    return err, rate, nnz, last


def refs(
    recon: np.ndarray,
    mask: np.ndarray,
    y0: int,
    x0: int,
    n: int,
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Native intra reference gather; None when unavailable.

    Returns ``(top, left)`` exactly as
    :func:`repro.codec.intra.gather_references` computes them.  Pure
    data movement, so the arrays are bit-identical to the numpy walk
    and the kernel is safe on every path (it does not participate in
    the native-vs-python encode identity split).
    """
    fn = _resolve("refs")
    if fn is None:
        return None
    if (
        recon.dtype != np.float64
        or not recon.flags.c_contiguous
        or mask.dtype != np.bool_
        or not mask.flags.c_contiguous
    ):
        return None
    top = np.empty(2 * n + 1, dtype=np.float64)
    left = np.empty(2 * n + 1, dtype=np.float64)
    height, width = recon.shape
    status = fn(
        recon.ctypes.data,
        mask.ctypes.data,
        height,
        width,
        y0,
        x0,
        n,
        top.ctypes.data,
        left.ctypes.data,
    )
    if status != 0:
        return None
    return top, left
