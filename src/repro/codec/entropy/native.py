"""Optional native kernel for the fused coefficient-scan decode.

The two-phase decoder's entropy stage is a pure-Python bin loop; even
with localized state it tops out around 4 Mbins/s.  This module
compiles ``_scan_kernel.c`` -- a line-for-line transliteration of
:meth:`BinaryDecoder.decode_coeff_scan` -- into a tiny shared library
with the system C compiler the first time it is needed, caches the
``.so`` under ``_build/`` keyed by a content hash of the source, and
exposes it through :func:`scan`.

Everything degrades gracefully: no compiler, a failed build, a failed
``dlopen``, or ``LLM265_PURE_PYTHON=1`` in the environment all make
:func:`available` return ``False`` and the decoder silently uses the
pure-Python fused loop instead (same bits out, ~2x slower).  Nothing
is downloaded and no third-party package is involved -- the kernel is
1 C file, ``cc``, and ``ctypes``.

The kernel releases the GIL for the duration of each scan call (plain
``ctypes.CDLL`` behaviour), which is what lets thread-parallel decode
scale on multi-core machines.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from array import array
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["available", "build_info", "scan"]

_SRC = os.path.join(os.path.dirname(__file__), "_scan_kernel.c")
_BUILD_DIR = os.path.join(os.path.dirname(__file__), "_build")

_lock = threading.Lock()
_fn = None  # resolved kernel function, or None
_state = "unloaded"  # unloaded | ready | disabled | failed


def _compiler() -> Optional[str]:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _build_and_load():
    """Compile (if not cached) and dlopen the kernel; may raise."""
    with open(_SRC, "rb") as fh:
        source = fh.read()
    tag = hashlib.sha256(source).hexdigest()[:16]
    so_path = os.path.join(_BUILD_DIR, f"scan_kernel_{tag}.so")
    if not os.path.exists(so_path):
        cc = _compiler()
        if cc is None:
            raise RuntimeError("no C compiler on PATH")
        os.makedirs(_BUILD_DIR, exist_ok=True)
        # Build to a temp name and os.replace() so concurrent builders
        # (parallel test workers, process-pool warm-up) never observe a
        # half-written library.
        fd, tmp = tempfile.mkstemp(suffix=".so", dir=_BUILD_DIR)
        os.close(fd)
        try:
            subprocess.run(
                [cc, "-O2", "-shared", "-fPIC", "-o", tmp, _SRC],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(tmp, so_path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
    lib = ctypes.CDLL(so_path)
    fn = lib.llm265_decode_coeff_scan
    fn.restype = ctypes.c_int64
    fn.argtypes = [
        ctypes.c_char_p,  # data
        ctypes.c_int64,  # dlen
        ctypes.POINTER(ctypes.c_int64),  # pos_io
        ctypes.POINTER(ctypes.c_uint32),  # rng_io
        ctypes.POINTER(ctypes.c_uint32),  # code_io
        ctypes.c_int64,  # n_scan
        ctypes.c_int64,  # last
        ctypes.c_void_p,  # sig_probs
        ctypes.c_int64,  # sig_base
        ctypes.c_void_p,  # sig_buckets
        ctypes.c_void_p,  # level_probs
        ctypes.c_int64,  # level_base
        ctypes.c_int64,  # max_prefix
        ctypes.c_int64,  # k
        ctypes.c_void_p,  # out
        ctypes.POINTER(ctypes.c_int64),  # bins_io
    ]
    return fn


def _resolve():
    """One-time lazy init; never raises."""
    global _fn, _state
    if _state != "unloaded":
        return _fn
    with _lock:
        if _state != "unloaded":
            return _fn
        if os.environ.get("LLM265_PURE_PYTHON"):
            _state = "disabled"
            return None
        try:
            _fn = _build_and_load()
            _state = "ready"
        except Exception:
            _fn = None
            _state = "failed"
    return _fn


def available() -> bool:
    """True when the compiled scan kernel is loaded and usable."""
    return _resolve() is not None


def build_info() -> str:
    """Human-readable kernel state for ``llm265 stats`` / diagnostics."""
    _resolve()
    return _state


# Per-size bucket arrays are tiny and fixed; cache their C form.
_bucket_cache: dict = {}


def _bucket_array(buckets: Sequence[int]) -> array:
    key = tuple(buckets)
    arr = _bucket_cache.get(key)
    if arr is None:
        arr = array("i", key)
        _bucket_cache[key] = arr
    return arr


def scan(
    dec,
    n_scan: int,
    last: int,
    sig_probs: List[int],
    sig_base: int,
    sig_buckets: Sequence[int],
    level_probs: List[int],
    level_base: int,
    max_prefix: int,
    k: int,
) -> Optional[np.ndarray]:
    """Run the native scan; return int64 levels or None if unavailable.

    Mirrors :meth:`BinaryDecoder.decode_coeff_scan` exactly, including
    the state left on ``dec`` and in the context probability lists on
    *both* success and error paths.  Raises :class:`CorruptStreamError`
    for a runaway Exp-Golomb suffix and :class:`OverflowError` for a
    magnitude that does not fit int64 (what ``np.asarray`` raises on
    the pure path's big int), so callers cannot tell the paths apart.
    """
    fn = _resolve()
    if fn is None:
        return None
    from repro.resilience.errors import CorruptStreamError

    data = dec._data
    pos = ctypes.c_int64(dec._pos)
    rng = ctypes.c_uint32(dec._range)
    code = ctypes.c_uint32(dec._code)
    bins = ctypes.c_int64(0)
    sig_arr = array("i", sig_probs)
    lvl_arr = array("i", level_probs)
    buckets = _bucket_array(sig_buckets)
    out = np.empty(n_scan, dtype=np.int64)
    status = fn(
        data,
        len(data),
        ctypes.byref(pos),
        ctypes.byref(rng),
        ctypes.byref(code),
        n_scan,
        last,
        sig_arr.buffer_info()[0],
        sig_base,
        buckets.buffer_info()[0],
        lvl_arr.buffer_info()[0],
        level_base,
        max_prefix,
        k,
        out.ctypes.data,
        ctypes.byref(bins),
    )
    # Write state back unconditionally -- the Python loop also adapts
    # contexts and advances the coder before raising.
    sig_probs[:] = sig_arr
    level_probs[:] = lvl_arr
    dec._pos = pos.value
    dec._range = rng.value
    dec._code = code.value
    dec.scan_bins += bins.value
    if status == 1:
        raise CorruptStreamError("corrupt UEG suffix")
    if status == 2:
        raise OverflowError("decoded coefficient magnitude exceeds int64")
    return out
