"""LZ4-style byte-oriented dictionary coder (block format).

Implements the real LZ4 block layout: a sequence of
``[token][ext literal lengths][literals][offset][ext match lengths]``
records, greedy hash-chain matching, minimum match of 4 bytes, and a
final literals-only sequence.  Used as one of the Figure 14/15 baseline
tensor codecs.
"""

from __future__ import annotations

import struct

from repro.resilience.errors import CorruptStreamError, TruncatedStreamError

_MIN_MATCH = 4
_HASH_LOG = 14
_MAX_DISTANCE = 65535
_LAST_LITERALS = 5


def _hash4(data: bytes, pos: int) -> int:
    word = struct.unpack_from("<I", data, pos)[0]
    return ((word * 2654435761) & 0xFFFFFFFF) >> (32 - _HASH_LOG)


def _write_length(out: bytearray, length: int) -> None:
    while length >= 255:
        out.append(255)
        length -= 255
    out.append(length)


def lz4_compress(data: bytes) -> bytes:
    """Compress ``data`` into an LZ4-style block with a size header."""
    n = len(data)
    out = bytearray(struct.pack("<I", n))
    if n < _MIN_MATCH + _LAST_LITERALS:
        token_pos = len(out)
        out.append(0)
        lit_len = n
        if lit_len >= 15:
            out[token_pos] = 15 << 4
            _write_length(out, lit_len - 15)
        else:
            out[token_pos] = lit_len << 4
        out.extend(data)
        return bytes(out)

    table = [-1] * (1 << _HASH_LOG)
    anchor = 0
    pos = 0
    limit = n - _LAST_LITERALS

    while pos < limit - _MIN_MATCH:
        h = _hash4(data, pos)
        candidate = table[h]
        table[h] = pos
        if (
            candidate >= 0
            and pos - candidate <= _MAX_DISTANCE
            and data[candidate : candidate + _MIN_MATCH] == data[pos : pos + _MIN_MATCH]
        ):
            match_len = _MIN_MATCH
            max_len = limit - pos
            while (
                match_len < max_len
                and data[candidate + match_len] == data[pos + match_len]
            ):
                match_len += 1
            lit_len = pos - anchor
            token_pos = len(out)
            out.append(0)
            token = 0
            if lit_len >= 15:
                token |= 15 << 4
                out[token_pos] = token
                _write_length(out, lit_len - 15)
            else:
                token |= lit_len << 4
            out[token_pos] = token | (out[token_pos] & 0x0F)
            out.extend(data[anchor:pos])
            out.extend(struct.pack("<H", pos - candidate))
            ml_code = match_len - _MIN_MATCH
            if ml_code >= 15:
                out[token_pos] |= 15
                _write_length(out, ml_code - 15)
            else:
                out[token_pos] |= ml_code
            pos += match_len
            anchor = pos
        else:
            pos += 1

    # Final literals-only sequence.
    lit_len = n - anchor
    token_pos = len(out)
    out.append(0)
    if lit_len >= 15:
        out[token_pos] = 15 << 4
        _write_length(out, lit_len - 15)
    else:
        out[token_pos] = lit_len << 4
    out.extend(data[anchor:])
    return bytes(out)


def lz4_decompress(blob: bytes) -> bytes:
    """Inverse of :func:`lz4_compress`.

    Raises :class:`CorruptStreamError` on truncation or an impossible
    sequence -- never ``IndexError``/``struct.error``.
    """
    try:
        (n,) = struct.unpack_from("<I", blob, 0)
    except struct.error:
        raise TruncatedStreamError("LZ4 stream shorter than its size header") from None
    pos = 4
    out = bytearray()
    try:
        while len(out) < n:
            token = blob[pos]
            pos += 1
            lit_len = token >> 4
            if lit_len == 15:
                while True:
                    extra = blob[pos]
                    pos += 1
                    lit_len += extra
                    if extra != 255:
                        break
            literals = blob[pos : pos + lit_len]
            if len(literals) < lit_len:
                raise TruncatedStreamError("truncated LZ4 literals")
            out.extend(literals)
            pos += lit_len
            if len(out) >= n:
                break
            offset = struct.unpack_from("<H", blob, pos)[0]
            pos += 2
            match_len = (token & 0x0F) + _MIN_MATCH
            if (token & 0x0F) == 15:
                while True:
                    extra = blob[pos]
                    pos += 1
                    match_len += extra
                    if extra != 255:
                        break
            start = len(out) - offset
            if start < 0:
                raise CorruptStreamError("corrupt LZ4 stream: bad offset")
            for i in range(match_len):  # byte-by-byte: matches may overlap
                out.append(out[start + i])
    except (IndexError, struct.error):
        raise TruncatedStreamError("truncated LZ4 stream") from None
    return bytes(out[:n])
