"""Context-adaptive binary arithmetic coder (the CABAC stand-in).

The coder is an LZMA-style range coder: 32-bit range, 64-bit low with
carry propagation on the encoder side, 11-bit adaptive probabilities
with shift-5 adaptation.  It provides the three primitives CABAC-based
video codecs are built from:

- context-coded bins (``encode_bit`` / ``decode_bit``),
- bypass (equiprobable) bins,
- adaptive unary + Exp-Golomb hybrid codes (``encode_ueg`` /
  ``decode_ueg``) used for coefficient levels, runs, and positions.

The encoder and decoder are bit-exact inverses as long as the same
context objects are touched in the same order.
"""

from __future__ import annotations

from array import array
from typing import List

from repro.resilience.errors import CorruptStreamError

_PROB_BITS = 11
_PROB_ONE = 1 << _PROB_BITS  # 2048
_PROB_INIT = _PROB_ONE // 2
_ADAPT_SHIFT = 5
_TOP = 1 << 24
_MASK32 = 0xFFFFFFFF


def _renorm(low, rng, cache, csize, out):
    """Range-coder renormalisation on explicit state (hot-loop helper).

    Identical to the ``while range < _TOP`` loop in
    :meth:`BinaryEncoder.encode_bit` plus :meth:`BinaryEncoder._shift_low`,
    but operating on locals so :meth:`BinaryEncoder.encode_coeff_scan`
    can avoid attribute traffic per bin.
    """
    while rng < _TOP:
        rng = (rng << 8) & _MASK32
        if low < 0xFF000000 or low > _MASK32:
            carry = low >> 32
            out.append((cache + carry) & 0xFF)
            for _ in range(csize - 1):
                out.append((0xFF + carry) & 0xFF)
            cache = (low >> 24) & 0xFF
            csize = 0
        csize += 1
        low = (low << 8) & _MASK32
    return low, rng, cache, csize


class ContextSet:
    """A bank of adaptive binary contexts addressed by integer index.

    The probabilities live in an ``array('i')`` rather than a list: the
    semantics are identical for every pure-Python coder loop (integer
    indexing, slicing, equality), but the flat int32 buffer lets the
    native kernels operate on the live contexts in place -- no per-call
    copy in or write-back.
    """

    def __init__(self, count: int) -> None:
        self.probs = array("i", bytes(4 * count))
        self.reset()

    def reset(self) -> None:
        """Re-initialise every context to the equiprobable state."""
        for i in range(len(self.probs)):
            self.probs[i] = _PROB_INIT

    def __len__(self) -> int:
        return len(self.probs)


class BinaryEncoder:
    """Arithmetic encoder; collect output with :meth:`finish`."""

    def __init__(self) -> None:
        self._low = 0
        self._range = _MASK32
        self._cache = 0
        self._cache_size = 1
        self._out = bytearray()
        self._finished = False

    def _shift_low(self) -> None:
        if self._low < 0xFF000000 or self._low > _MASK32:
            carry = self._low >> 32
            self._out.append((self._cache + carry) & 0xFF)
            for _ in range(self._cache_size - 1):
                self._out.append((0xFF + carry) & 0xFF)
            self._cache = (self._low >> 24) & 0xFF
            self._cache_size = 0
        self._cache_size += 1
        self._low = (self._low << 8) & _MASK32

    def encode_bit(self, ctx: ContextSet, index: int, bit: int) -> None:
        """Encode one bin under the adaptive context ``ctx[index]``."""
        prob = ctx.probs[index]
        bound = (self._range >> _PROB_BITS) * prob
        if bit == 0:
            self._range = bound
            ctx.probs[index] = prob + ((_PROB_ONE - prob) >> _ADAPT_SHIFT)
        else:
            self._low += bound
            self._range -= bound
            ctx.probs[index] = prob - (prob >> _ADAPT_SHIFT)
        while self._range < _TOP:
            self._range = (self._range << 8) & _MASK32
            self._shift_low()

    def encode_bypass(self, bit: int) -> None:
        """Encode one equiprobable bin (no context adaptation)."""
        self._range >>= 1
        if bit:
            self._low += self._range
        while self._range < _TOP:
            self._range = (self._range << 8) & _MASK32
            self._shift_low()

    def encode_bypass_bits(self, value: int, width: int) -> None:
        """Encode ``width`` bypass bins, most significant first."""
        for shift in range(width - 1, -1, -1):
            self.encode_bypass((value >> shift) & 1)

    def encode_ueg(
        self, ctx: ContextSet, base: int, value: int, max_prefix: int, k: int = 0
    ) -> None:
        """Encode ``value`` >= 0 as adaptive truncated unary + Exp-Golomb.

        The unary prefix uses contexts ``ctx[base .. base+max_prefix-1]``
        (the last context is reused when the prefix saturates); any
        remainder beyond ``max_prefix`` is coded as an order-``k``
        Exp-Golomb bypass suffix.
        """
        prefix = min(value, max_prefix)
        for i in range(prefix):
            self.encode_bit(ctx, base + min(i, max_prefix - 1), 1)
        if prefix < max_prefix:
            self.encode_bit(ctx, base + min(prefix, max_prefix - 1), 0)
        else:
            remainder = value - max_prefix
            shifted = (remainder >> k) + 1
            prefix_len = shifted.bit_length() - 1
            for _ in range(prefix_len):
                self.encode_bypass(0)
            self.encode_bypass_bits(shifted, prefix_len + 1)
            if k:
                self.encode_bypass_bits(remainder & ((1 << k) - 1), k)

    def encode_coeff_scan(
        self,
        scanned: List[int],
        last: int,
        sig_probs: List[int],
        sig_base: int,
        sig_buckets: List[int],
        level_probs: List[int],
        level_base: int,
        max_prefix: int,
        k: int,
    ) -> None:
        """Fused significance/level/sign loop over one coefficient scan.

        Emits, for scan positions ``last .. 0``, exactly the bin
        sequence the primitive calls would: a significance bin per
        non-last position (context ``sig_probs[sig_base +
        sig_buckets[i]]``), then per nonzero level the
        ``encode_ueg``-style magnitude (prefix contexts
        ``level_probs[level_base ..]``, order-``k`` Exp-Golomb bypass
        suffix) and a sign bypass bin.

        This exists purely for speed: the coefficient scan is the
        encoder's hottest serialization loop, and holding the coder
        state (low/range/cache) in locals for the whole block instead
        of re-entering ``encode_bit`` per bin roughly halves the write
        cost.  Output is bit-exact with the primitive-call sequence --
        ``tests/test_vectorized_rd.py`` locks the two together -- which
        is why the instrumented (telemetry) path still uses the
        primitives: ``tell_bits`` deltas need per-element boundaries.
        """
        low = self._low
        rng = self._range
        cache = self._cache
        csize = self._cache_size
        out = self._out
        top_ctx = max_prefix - 1
        for i in range(last, -1, -1):
            level = scanned[i]
            if i != last:
                idx = sig_base + sig_buckets[i]
                prob = sig_probs[idx]
                bound = (rng >> _PROB_BITS) * prob
                if level == 0:
                    rng = bound
                    sig_probs[idx] = prob + ((_PROB_ONE - prob) >> _ADAPT_SHIFT)
                else:
                    low += bound
                    rng -= bound
                    sig_probs[idx] = prob - (prob >> _ADAPT_SHIFT)
                if rng < _TOP:
                    low, rng, cache, csize = _renorm(low, rng, cache, csize, out)
                if level == 0:
                    continue
            value = (level if level > 0 else -level) - 1
            prefix = value if value < max_prefix else max_prefix
            for t in range(prefix):
                idx = level_base + (t if t < top_ctx else top_ctx)
                prob = level_probs[idx]
                bound = (rng >> _PROB_BITS) * prob
                low += bound
                rng -= bound
                level_probs[idx] = prob - (prob >> _ADAPT_SHIFT)
                if rng < _TOP:
                    low, rng, cache, csize = _renorm(low, rng, cache, csize, out)
            if prefix < max_prefix:
                idx = level_base + (prefix if prefix < top_ctx else top_ctx)
                prob = level_probs[idx]
                rng = (rng >> _PROB_BITS) * prob
                level_probs[idx] = prob + ((_PROB_ONE - prob) >> _ADAPT_SHIFT)
                if rng < _TOP:
                    low, rng, cache, csize = _renorm(low, rng, cache, csize, out)
            else:
                remainder = value - max_prefix
                shifted = (remainder >> k) + 1
                prefix_len = shifted.bit_length() - 1
                # prefix_len leading zero bypasses, then shifted msb-first
                # in prefix_len + 1 bins, then the k low remainder bins.
                for shift in range(2 * prefix_len, -1, -1):
                    rng >>= 1
                    if shift <= prefix_len and (shifted >> shift) & 1:
                        low += rng
                    if rng < _TOP:
                        low, rng, cache, csize = _renorm(
                            low, rng, cache, csize, out
                        )
                for shift in range(k - 1, -1, -1):
                    rng >>= 1
                    if (remainder >> shift) & 1:
                        low += rng
                    if rng < _TOP:
                        low, rng, cache, csize = _renorm(
                            low, rng, cache, csize, out
                        )
            rng >>= 1
            if level < 0:
                low += rng
            if rng < _TOP:
                low, rng, cache, csize = _renorm(low, rng, cache, csize, out)
        self._low = low
        self._range = rng
        self._cache = cache
        self._cache_size = csize

    def finish(self) -> bytes:
        """Flush and return the bitstream."""
        if not self._finished:
            for _ in range(5):
                self._shift_low()
            self._finished = True
        return bytes(self._out)

    @property
    def bytes_written(self) -> int:
        """Bytes emitted so far (grows as the stream is flushed)."""
        return len(self._out)

    def tell_bits(self) -> int:
        """Monotone bit-position probe for per-syntax-element accounting.

        Counts emitted bytes, bytes pending in the carry cache, and the
        fractional bits already committed inside the 32-bit range
        (``32 - bit_length(range)`` is in ``[0, 8]`` between renorms).
        Deltas of this value telescope, so summing per-element deltas
        over a whole stream equals ``tell_bits(end) - tell_bits(start)``
        exactly; the remainder up to ``8 * len(finish())`` is the flush
        residue.  Sub-byte attribution of a single element is
        approximate (the range coder packs elements across byte
        boundaries), but totals are exact by construction.
        """
        return 8 * (len(self._out) + self._cache_size) + (
            32 - self._range.bit_length()
        )


class BinaryDecoder:
    """Arithmetic decoder; mirror image of :class:`BinaryEncoder`."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 1  # the first emitted byte is the encoder's cache seed
        self._range = _MASK32
        self._code = 0
        #: Bins consumed by :meth:`decode_coeff_scan` (the fused hot
        #: loop); the primitive entry points do not pay for counting.
        self.scan_bins = 0
        for _ in range(4):
            self._code = ((self._code << 8) | self._next_byte()) & _MASK32

    def _next_byte(self) -> int:
        if self._pos < len(self._data):
            byte = self._data[self._pos]
        else:
            byte = 0
        self._pos += 1
        return byte

    def decode_bit(self, ctx: ContextSet, index: int) -> int:
        """Decode one bin under the adaptive context ``ctx[index]``."""
        prob = ctx.probs[index]
        bound = (self._range >> _PROB_BITS) * prob
        if self._code < bound:
            bit = 0
            self._range = bound
            ctx.probs[index] = prob + ((_PROB_ONE - prob) >> _ADAPT_SHIFT)
        else:
            bit = 1
            self._code -= bound
            self._range -= bound
            ctx.probs[index] = prob - (prob >> _ADAPT_SHIFT)
        while self._range < _TOP:
            self._range = (self._range << 8) & _MASK32
            self._code = ((self._code << 8) | self._next_byte()) & _MASK32
        return bit

    def decode_bypass(self) -> int:
        """Decode one equiprobable bin."""
        self._range >>= 1
        if self._code >= self._range:
            self._code -= self._range
            bit = 1
        else:
            bit = 0
        while self._range < _TOP:
            self._range = (self._range << 8) & _MASK32
            self._code = ((self._code << 8) | self._next_byte()) & _MASK32
        return bit

    def decode_bypass_bits(self, width: int) -> int:
        """Decode ``width`` bypass bins, most significant first."""
        value = 0
        for _ in range(width):
            value = (value << 1) | self.decode_bypass()
        return value

    def decode_ueg(self, ctx: ContextSet, base: int, max_prefix: int, k: int = 0) -> int:
        """Decode a value written by :meth:`BinaryEncoder.encode_ueg`."""
        prefix = 0
        while prefix < max_prefix:
            if self.decode_bit(ctx, base + min(prefix, max_prefix - 1)) == 0:
                return prefix
            prefix += 1
        prefix_len = 0
        while self.decode_bypass() == 0:
            prefix_len += 1
            if prefix_len > 64:
                raise CorruptStreamError("corrupt UEG suffix")
        shifted = 1
        for _ in range(prefix_len):
            shifted = (shifted << 1) | self.decode_bypass()
        remainder = (shifted - 1) << k
        if k:
            remainder |= self.decode_bypass_bits(k)
        return max_prefix + remainder

    def decode_coeff_scan(
        self,
        n_scan: int,
        last: int,
        sig_probs: List[int],
        sig_base: int,
        sig_buckets,
        level_probs: List[int],
        level_base: int,
        max_prefix: int,
        k: int,
    ) -> List[int]:
        """Fused significance/level/sign loop over one coefficient scan.

        Mirror image of :meth:`BinaryEncoder.encode_coeff_scan`: consumes,
        for scan positions ``last .. 0``, exactly the bin sequence the
        primitive calls (``decode_bit`` / ``decode_ueg`` /
        ``decode_bypass``) would, touching the same context slots in the
        same order, and returns the scanned level array (length
        ``n_scan``, zeros where insignificant).

        This is the decoder's hottest loop; holding the coder state
        (data/pos/range/code) in locals for the whole block instead of
        re-entering ``decode_bit`` per bin roughly halves the read cost.
        Two further micro-optimisations the primitives do not make: the
        module constants are bound to locals (a global lookup per bin
        is measurable at millions of bins), and renormalisation is an
        ``if`` rather than a ``while`` -- adapted probabilities are
        clamped to ``[31, 2017]`` by the shift-5 update rule, so one
        operation shrinks the range by at most a factor of ~66 and a
        single byte shift (x256) always restores ``range >= 2^24``.
        Bin counts (:attr:`scan_bins`) are derived arithmetically from
        the decoded syntax instead of incremented per bin.  Output is
        bit-exact with the primitive-call sequence --
        ``tests/test_fast_decode.py`` locks the two together.  Raises
        :class:`CorruptStreamError` on a runaway Exp-Golomb suffix,
        exactly like :meth:`decode_ueg`.
        """
        data = self._data
        dlen = len(data)
        pos = self._pos
        rng = self._range
        code = self._code
        prob_bits = _PROB_BITS
        prob_one = _PROB_ONE
        adapt = _ADAPT_SHIFT
        top = _TOP
        mask32 = _MASK32
        bins = last  # one significance bin per non-last position
        out = [0] * n_scan
        top_ctx = max_prefix - 1
        for i in range(last, -1, -1):
            if i != last:
                idx = sig_base + sig_buckets[i]
                prob = sig_probs[idx]
                bound = (rng >> prob_bits) * prob
                if code < bound:
                    rng = bound
                    sig_probs[idx] = prob + ((prob_one - prob) >> adapt)
                    if rng < top:
                        rng = (rng << 8) & mask32
                        code = (
                            (code << 8) | (data[pos] if pos < dlen else 0)
                        ) & mask32
                        pos += 1
                    continue
                code -= bound
                rng -= bound
                sig_probs[idx] = prob - (prob >> adapt)
                if rng < top:
                    rng = (rng << 8) & mask32
                    code = ((code << 8) | (data[pos] if pos < dlen else 0)) & mask32
                    pos += 1
            # Magnitude: adaptive truncated-unary prefix ...
            prefix = 0
            while prefix < max_prefix:
                idx = level_base + (prefix if prefix < top_ctx else top_ctx)
                prob = level_probs[idx]
                bound = (rng >> prob_bits) * prob
                if code < bound:
                    rng = bound
                    level_probs[idx] = prob + ((prob_one - prob) >> adapt)
                    bit = 0
                else:
                    code -= bound
                    rng -= bound
                    level_probs[idx] = prob - (prob >> adapt)
                    bit = 1
                if rng < top:
                    rng = (rng << 8) & mask32
                    code = ((code << 8) | (data[pos] if pos < dlen else 0)) & mask32
                    pos += 1
                if bit == 0:
                    break
                prefix += 1
            if prefix < max_prefix:
                value = prefix
                bins += prefix + 2  # prefix bins + terminator + sign
            else:
                # ... plus an order-k Exp-Golomb bypass suffix.
                prefix_len = 0
                while True:
                    rng >>= 1
                    if code >= rng:
                        code -= rng
                        bit = 1
                    else:
                        bit = 0
                    if rng < top:
                        rng = (rng << 8) & mask32
                        code = (
                            (code << 8) | (data[pos] if pos < dlen else 0)
                        ) & mask32
                        pos += 1
                    if bit:
                        break
                    prefix_len += 1
                    if prefix_len > 64:
                        self._pos = pos
                        self._range = rng
                        self._code = code
                        self.scan_bins += bins + max_prefix + prefix_len + 1
                        raise CorruptStreamError("corrupt UEG suffix")
                shifted = 1
                for _ in range(prefix_len):
                    rng >>= 1
                    if code >= rng:
                        code -= rng
                        shifted = (shifted << 1) | 1
                    else:
                        shifted = shifted << 1
                    if rng < top:
                        rng = (rng << 8) & mask32
                        code = (
                            (code << 8) | (data[pos] if pos < dlen else 0)
                        ) & mask32
                        pos += 1
                suffix = 0
                for _ in range(k):
                    rng >>= 1
                    if code >= rng:
                        code -= rng
                        suffix = (suffix << 1) | 1
                    else:
                        suffix = suffix << 1
                    if rng < top:
                        rng = (rng << 8) & mask32
                        code = (
                            (code << 8) | (data[pos] if pos < dlen else 0)
                        ) & mask32
                        pos += 1
                value = max_prefix + (((shifted - 1) << k) | suffix)
                bins += max_prefix + 2 * prefix_len + k + 2
            magnitude = value + 1
            # Sign bypass bin (counted in the magnitude's tally above).
            rng >>= 1
            if code >= rng:
                code -= rng
                out[i] = -magnitude
            else:
                out[i] = magnitude
            if rng < top:
                rng = (rng << 8) & mask32
                code = ((code << 8) | (data[pos] if pos < dlen else 0)) & mask32
                pos += 1
        self._pos = pos
        self._range = rng
        self._code = code
        self.scan_bins += bins
        return out
