/* Native hot loop for the fused coefficient-scan decode.
 *
 * This is a line-for-line transliteration of
 * BinaryDecoder.decode_coeff_scan in arithmetic.py: same LZMA-style
 * range decoder (32-bit range/code, 11-bit probabilities, shift-5
 * adaptation), same bin order (significance, truncated-unary level
 * prefix, order-k Exp-Golomb bypass suffix, sign bypass), same
 * renormalisation (probabilities are clamped to [31, 2017] by the
 * adaptation rule, so a single byte shift always restores
 * range >= 2^24).  Every integer operation is exact in uint32/int64,
 * so the decoded syntax -- and, critically, the decoder state left
 * behind (pos/range/code and every context probability) -- is
 * bit-identical to the pure-Python loop.  tests/test_fast_decode.py
 * locks the two together on random streams.
 *
 * Built on demand by repro.codec.entropy.native (gcc -O2 -shared);
 * the pure-Python loop remains the behaviourally-identical fallback.
 *
 * Return status: 0 = ok, 1 = corrupt Exp-Golomb suffix (caller raises
 * CorruptStreamError exactly like the Python loop), 2 = a decoded
 * magnitude overflowed int64 (caller raises OverflowError, matching
 * what numpy's int64 conversion raises on the Python loop's big int).
 */

#include <stdint.h>

#define PROB_BITS 11
#define PROB_ONE 2048
#define ADAPT_SHIFT 5
#define TOP (1u << 24)

int64_t llm265_decode_coeff_scan(
    const uint8_t *data, int64_t dlen,
    int64_t *pos_io, uint32_t *rng_io, uint32_t *code_io,
    int64_t n_scan, int64_t last,
    int32_t *sig_probs, int64_t sig_base, const int32_t *sig_buckets,
    int32_t *level_probs, int64_t level_base,
    int64_t max_prefix, int64_t k,
    int64_t *out, int64_t *bins_io)
{
    int64_t pos = *pos_io;
    uint32_t rng = *rng_io;
    uint32_t code = *code_io;
    int64_t bins = last; /* one significance bin per non-last position */
    int64_t top_ctx = max_prefix - 1;
    int64_t status = 0;
    int64_t i;

    for (i = 0; i < n_scan; i++)
        out[i] = 0;

    for (i = last; i >= 0; i--) {
        if (i != last) {
            int64_t idx = sig_base + sig_buckets[i];
            int32_t prob = sig_probs[idx];
            uint32_t bound = (rng >> PROB_BITS) * (uint32_t)prob;
            if (code < bound) {
                rng = bound;
                sig_probs[idx] = prob + ((PROB_ONE - prob) >> ADAPT_SHIFT);
                if (rng < TOP) {
                    rng <<= 8;
                    code = (code << 8) | (pos < dlen ? data[pos] : 0);
                    pos++;
                }
                continue;
            }
            code -= bound;
            rng -= bound;
            sig_probs[idx] = prob - (prob >> ADAPT_SHIFT);
            if (rng < TOP) {
                rng <<= 8;
                code = (code << 8) | (pos < dlen ? data[pos] : 0);
                pos++;
            }
        }
        /* Magnitude: adaptive truncated-unary prefix ... */
        int64_t prefix = 0;
        while (prefix < max_prefix) {
            int64_t idx =
                level_base + (prefix < top_ctx ? prefix : top_ctx);
            int32_t prob = level_probs[idx];
            uint32_t bound = (rng >> PROB_BITS) * (uint32_t)prob;
            int bit;
            if (code < bound) {
                rng = bound;
                level_probs[idx] = prob + ((PROB_ONE - prob) >> ADAPT_SHIFT);
                bit = 0;
            } else {
                code -= bound;
                rng -= bound;
                level_probs[idx] = prob - (prob >> ADAPT_SHIFT);
                bit = 1;
            }
            if (rng < TOP) {
                rng <<= 8;
                code = (code << 8) | (pos < dlen ? data[pos] : 0);
                pos++;
            }
            if (bit == 0)
                break;
            prefix++;
        }
        unsigned __int128 value;
        if (prefix < max_prefix) {
            value = (unsigned __int128)prefix;
            bins += prefix + 2; /* prefix bins + terminator + sign */
        } else {
            /* ... plus an order-k Exp-Golomb bypass suffix. */
            int64_t prefix_len = 0;
            for (;;) {
                int bit;
                rng >>= 1;
                if (code >= rng) {
                    code -= rng;
                    bit = 1;
                } else {
                    bit = 0;
                }
                if (rng < TOP) {
                    rng <<= 8;
                    code = (code << 8) | (pos < dlen ? data[pos] : 0);
                    pos++;
                }
                if (bit)
                    break;
                prefix_len++;
                if (prefix_len > 64) {
                    *pos_io = pos;
                    *rng_io = rng;
                    *code_io = code;
                    *bins_io = bins + max_prefix + prefix_len + 1;
                    return 1;
                }
            }
            unsigned __int128 shifted = 1;
            int64_t j;
            for (j = 0; j < prefix_len; j++) {
                rng >>= 1;
                if (code >= rng) {
                    code -= rng;
                    shifted = (shifted << 1) | 1;
                } else {
                    shifted = shifted << 1;
                }
                if (rng < TOP) {
                    rng <<= 8;
                    code = (code << 8) | (pos < dlen ? data[pos] : 0);
                    pos++;
                }
            }
            unsigned __int128 suffix = 0;
            for (j = 0; j < k; j++) {
                rng >>= 1;
                if (code >= rng) {
                    code -= rng;
                    suffix = (suffix << 1) | 1;
                } else {
                    suffix = suffix << 1;
                }
                if (rng < TOP) {
                    rng <<= 8;
                    code = (code << 8) | (pos < dlen ? data[pos] : 0);
                    pos++;
                }
            }
            value = (unsigned __int128)max_prefix +
                    (((shifted - 1) << k) | suffix);
            bins += max_prefix + 2 * prefix_len + k + 2;
        }
        unsigned __int128 magnitude = value + 1;
        /* Sign bypass bin (counted in the magnitude's tally above). */
        int negative;
        rng >>= 1;
        if (code >= rng) {
            code -= rng;
            negative = 1;
        } else {
            negative = 0;
        }
        if (rng < TOP) {
            rng <<= 8;
            code = (code << 8) | (pos < dlen ? data[pos] : 0);
            pos++;
        }
        if (magnitude > (unsigned __int128)INT64_MAX) {
            /* Python stores the exact big int and numpy raises
             * OverflowError at array conversion; flag it and keep
             * draining bins so the decoder state stays in sync. */
            status = 2;
            out[i] = negative ? INT64_MIN : INT64_MAX;
        } else {
            out[i] = negative ? -(int64_t)magnitude : (int64_t)magnitude;
        }
    }
    *pos_io = pos;
    *rng_io = rng;
    *code_io = code;
    *bins_io = bins;
    return status;
}
