"""Canonical Huffman coding of byte streams (with full decoder)."""

from __future__ import annotations

import heapq
import struct
from collections import Counter
from typing import Dict, List, Tuple

from repro.codec.entropy.bitio import BitReader, BitWriter
from repro.resilience.errors import CorruptStreamError, TruncatedStreamError

_MAX_CODE_LEN = 32


def _code_lengths(freqs: Dict[int, int]) -> Dict[int, int]:
    """Huffman code length per symbol via the classic heap construction."""
    if not freqs:
        return {}
    if len(freqs) == 1:
        only = next(iter(freqs))
        return {only: 1}
    heap: List[Tuple[int, int, Tuple]] = []
    counter = 0
    for sym, freq in freqs.items():
        heap.append((freq, counter, ("leaf", sym)))
        counter += 1
    heapq.heapify(heap)
    while len(heap) > 1:
        f1, _, n1 = heapq.heappop(heap)
        f2, _, n2 = heapq.heappop(heap)
        heapq.heappush(heap, (f1 + f2, counter, ("node", n1, n2)))
        counter += 1
    lengths: Dict[int, int] = {}

    stack = [(heap[0][2], 0)]
    while stack:
        node, depth = stack.pop()
        if node[0] == "leaf":
            lengths[node[1]] = max(depth, 1)
        else:
            stack.append((node[1], depth + 1))
            stack.append((node[2], depth + 1))
    return lengths


def _canonical_codes(lengths: Dict[int, int]) -> Dict[int, Tuple[int, int]]:
    """Assign canonical codes (value, length) from code lengths."""
    ordered = sorted(lengths.items(), key=lambda kv: (kv[1], kv[0]))
    codes: Dict[int, Tuple[int, int]] = {}
    code = 0
    prev_len = 0
    for sym, length in ordered:
        code <<= length - prev_len
        codes[sym] = (code, length)
        code += 1
        prev_len = length
    return codes


def huffman_compress(data: bytes) -> bytes:
    """Compress ``data``; the header stores the 256 code lengths."""
    freqs = dict(Counter(data))
    lengths = _code_lengths(freqs)
    if any(length > _MAX_CODE_LEN for length in lengths.values()):
        # Pathological skew: fall back to flattened frequencies.
        lengths = _code_lengths({sym: 1 for sym in freqs})
    codes = _canonical_codes(lengths)
    writer = BitWriter()
    for byte in data:
        value, width = codes[byte]
        writer.write_bits(value, width)
    length_table = bytes(lengths.get(sym, 0) for sym in range(256))
    header = struct.pack("<I", len(data)) + length_table
    return header + writer.getvalue()


def huffman_decompress(blob: bytes) -> bytes:
    """Inverse of :func:`huffman_compress`.

    Raises :class:`CorruptStreamError` on any damage -- a truncated
    header, an exhausted bitstream, or an impossible code.
    """
    if len(blob) < 260:
        raise TruncatedStreamError("Huffman stream shorter than its header")
    (length,) = struct.unpack_from("<I", blob, 0)
    length_table = blob[4:260]
    lengths = {sym: l for sym, l in enumerate(length_table) if l > 0}
    if length and not lengths:
        raise CorruptStreamError("corrupt Huffman stream: empty code table")
    codes = _canonical_codes(lengths)
    # Decoding table: (length, code) -> symbol.
    table = {(width, value): sym for sym, (value, width) in codes.items()}
    reader = BitReader(blob[260:])
    out = bytearray()
    code = 0
    width = 0
    try:
        while len(out) < length:
            code = (code << 1) | reader.read_bit()
            width += 1
            sym = table.get((width, code))
            if sym is not None:
                out.append(sym)
                code = 0
                width = 0
            elif width > _MAX_CODE_LEN:
                raise CorruptStreamError("corrupt Huffman stream")
    except EOFError:
        raise TruncatedStreamError("truncated Huffman stream") from None
    return bytes(out)
