"""Exp-Golomb codes (the universal codes used by H.264/H.265 syntax)."""

from __future__ import annotations

from repro.codec.entropy.bitio import BitReader, BitWriter
from repro.resilience.errors import CorruptStreamError, TruncatedStreamError


def write_uexp_golomb(writer: BitWriter, value: int, k: int = 0) -> None:
    """Write an unsigned order-``k`` Exp-Golomb code for ``value`` >= 0."""
    if value < 0:
        raise ValueError("unsigned Exp-Golomb requires value >= 0")
    shifted = (value >> k) + 1
    prefix_len = shifted.bit_length() - 1
    writer.write_bits(0, prefix_len)
    writer.write_bits(shifted, prefix_len + 1)
    if k:
        writer.write_bits(value & ((1 << k) - 1), k)


def read_uexp_golomb(reader: BitReader, k: int = 0) -> int:
    """Read an unsigned order-``k`` Exp-Golomb code.

    Raises :class:`CorruptStreamError` on an impossible prefix or a
    truncated bitstream.
    """
    try:
        prefix_len = 0
        while reader.read_bit() == 0:
            prefix_len += 1
            if prefix_len > 64:
                raise CorruptStreamError("corrupt Exp-Golomb prefix")
        shifted = (1 << prefix_len) | reader.read_bits(prefix_len)
        value = (shifted - 1) << k
        if k:
            value |= reader.read_bits(k)
        return value
    except EOFError:
        raise TruncatedStreamError("truncated Exp-Golomb code") from None


def write_sexp_golomb(writer: BitWriter, value: int, k: int = 0) -> None:
    """Write a signed Exp-Golomb code using the H.264 zig-zag mapping."""
    mapped = 2 * value - 1 if value > 0 else -2 * value
    write_uexp_golomb(writer, mapped, k)


def read_sexp_golomb(reader: BitReader, k: int = 0) -> int:
    """Read a signed Exp-Golomb code (inverse of :func:`write_sexp_golomb`)."""
    mapped = read_uexp_golomb(reader, k)
    if mapped & 1:
        return (mapped + 1) >> 1
    return -(mapped >> 1)
