"""Deflate-style coder: LZ77 parse + canonical Huffman entropy stage.

The LZ77 parse reuses the LZ4-style greedy matcher; the resulting token
byte stream is then Huffman coded, mirroring Deflate's two-stage
structure.  One of the Figure 14/15 baseline tensor codecs.
"""

from __future__ import annotations

from repro.codec.entropy.huffman import huffman_compress, huffman_decompress
from repro.codec.entropy.lz4 import lz4_compress, lz4_decompress


def deflate_compress(data: bytes) -> bytes:
    """LZ77-parse then Huffman-code ``data``."""
    return huffman_compress(lz4_compress(data))


def deflate_decompress(blob: bytes) -> bytes:
    """Inverse of :func:`deflate_compress`."""
    return lz4_decompress(huffman_decompress(blob))
