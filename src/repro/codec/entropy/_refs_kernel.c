/* Native intra reference gather (HEVC-style boundary substitution).
 *
 * Walks the 4n + 1 boundary positions of one n x n block -- left
 * column bottom-to-top, the corner, then the top row left-to-right --
 * reading reconstructed samples where the availability mask allows and
 * substituting the nearest previously-available sample (mid-grey 128
 * when the whole boundary is unavailable), exactly like
 * repro.codec.intra.gather_references.  This is pure data movement: no
 * arithmetic is performed on the samples, so the output is trivially
 * bit-identical to the numpy walk and the kernel can serve every
 * encode path (and the decoder) without affecting any identity gate.
 *
 * Built on demand by repro.codec.entropy.native; the numpy walk
 * remains the fallback.
 *
 * Return status: 0 = ok, 1 = block size beyond the stack buffer (the
 * wrapper falls back to the numpy path; no output was written).
 */

#include <stdint.h>

#define MAX_N 512
#define DEFAULT_SAMPLE 128.0

int64_t llm265_gather_refs(
    const double *recon, const uint8_t *mask,
    int64_t height, int64_t width,
    int64_t y0, int64_t x0, int64_t n,
    double *top, double *left)
{
    double values[4 * MAX_N + 1];
    int64_t total = 4 * n + 1;
    int64_t t, first = -1;
    double prev = 0.0;

    if (n < 1 || n > MAX_N)
        return 1;
    for (t = 0; t < total; t++) {
        /* Boundary coordinates: t in [0, 2n) is the left column from
         * the bottom, t == 2n the corner, beyond that the top row. */
        int64_t r = t < 2 * n ? y0 + 2 * n - 1 - t : y0 - 1;
        int64_t c = t <= 2 * n ? x0 - 1 : x0 + (t - 2 * n - 1);
        if (r >= 0 && r < height && c >= 0 && c < width &&
            mask[r * width + c]) {
            prev = recon[r * width + c];
            if (first < 0)
                first = t;
        }
        /* prev is the nearest available sample at or before t; the
         * leading gap before the first available one is backfilled
         * below. */
        values[t] = prev;
    }
    if (first < 0) {
        for (t = 0; t < total; t++)
            values[t] = DEFAULT_SAMPLE;
    } else {
        for (t = 0; t < first; t++)
            values[t] = values[first];
    }
    for (t = 0; t <= 2 * n; t++) {
        left[t] = values[2 * n - t];
        top[t] = values[2 * n + t];
    }
    return 0;
}
