"""Entropy-coding substrate: every coder ships an encoder *and* a decoder.

The binary arithmetic coder (:mod:`repro.codec.entropy.arithmetic`) is
the CABAC stand-in used by the video codec.  The byte-oriented coders
(:mod:`huffman`, :mod:`lz4`, :mod:`deflate`, and the adaptive byte coder
in :mod:`bytecoder`) double as the baseline "tensor codecs" evaluated in
Figure 14/15 of the paper (Huffman / Deflate / LZ4 / CABAC grid).
"""

from repro.codec.entropy.arithmetic import BinaryDecoder, BinaryEncoder, ContextSet
from repro.codec.entropy.bitio import BitReader, BitWriter
from repro.codec.entropy.bytecoder import byte_arith_decode, byte_arith_encode
from repro.codec.entropy.deflate import deflate_compress, deflate_decompress
from repro.codec.entropy.golomb import (
    read_sexp_golomb,
    read_uexp_golomb,
    write_sexp_golomb,
    write_uexp_golomb,
)
from repro.codec.entropy.huffman import huffman_compress, huffman_decompress
from repro.codec.entropy.lz4 import lz4_compress, lz4_decompress

__all__ = [
    "BitWriter",
    "BitReader",
    "BinaryEncoder",
    "BinaryDecoder",
    "ContextSet",
    "write_uexp_golomb",
    "read_uexp_golomb",
    "write_sexp_golomb",
    "read_sexp_golomb",
    "huffman_compress",
    "huffman_decompress",
    "lz4_compress",
    "lz4_decompress",
    "deflate_compress",
    "deflate_decompress",
    "byte_arith_encode",
    "byte_arith_decode",
]
