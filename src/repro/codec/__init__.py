"""From-scratch video codec: the substrate LLM.265 is built on.

The package implements an H.264/H.265/AV1-flavoured block codec:

- :mod:`repro.codec.entropy` -- bit I/O, Exp-Golomb, an adaptive binary
  arithmetic coder (CABAC-style), Huffman, LZ4-style and Deflate-style
  coders, all with matching decoders.
- :mod:`repro.codec.transform` -- 2-D DCT transform coding.
- :mod:`repro.codec.quantizer` -- QP-driven coefficient quantization.
- :mod:`repro.codec.intra` -- planar / DC / 33-angular intra prediction.
- :mod:`repro.codec.encoder` / :mod:`repro.codec.decoder` -- the full
  RD-optimised encoder (including motion-compensated inter prediction)
  and the bit-exact decoder.
- :mod:`repro.codec.image` -- still-image convenience path (AVC-I
  style), the three-in-one codec's image input.
- :mod:`repro.codec.pipeline` -- the stage-by-stage ablation used for
  Figure 2(b) of the paper.
- :mod:`repro.codec.ratecontrol` -- bitrate / MSE targeting.
- :mod:`repro.codec.profiles` -- H.264 / H.265 / AV1 toolset profiles.
"""

__all__ = [
    "FrameEncoder",
    "encode_frames",
    "decode_frames",
    "CodecProfile",
    "H264_PROFILE",
    "H265_PROFILE",
    "AV1_PROFILE",
]

_LAZY_EXPORTS = {
    "FrameEncoder": ("repro.codec.encoder", "FrameEncoder"),
    "encode_frames": ("repro.codec.encoder", "encode_frames"),
    "decode_frames": ("repro.codec.decoder", "decode_frames"),
    "CodecProfile": ("repro.codec.profiles", "CodecProfile"),
    "H264_PROFILE": ("repro.codec.profiles", "H264_PROFILE"),
    "H265_PROFILE": ("repro.codec.profiles", "H265_PROFILE"),
    "AV1_PROFILE": ("repro.codec.profiles", "AV1_PROFILE"),
}


def __getattr__(name):
    """Lazily resolve the public API (PEP 562)."""
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro.codec' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, attr)
