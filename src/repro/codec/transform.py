"""2-D DCT transform coding (the "transform" stage of Figure 2/3).

Uses the orthonormal DCT-II so ``inverse(forward(x)) == x`` up to float
round-off and coefficient energy equals pixel energy (Parseval), which
is what lets the quantizer's distortion be reasoned about per
coefficient.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

SUPPORTED_SIZES = (4, 8, 16, 32, 64)


@lru_cache(maxsize=None)
def dct_matrix(n: int) -> np.ndarray:
    """Orthonormal DCT-II basis matrix of size ``n`` x ``n``."""
    if n not in SUPPORTED_SIZES:
        raise ValueError(f"unsupported transform size {n}; choose from {SUPPORTED_SIZES}")
    k = np.arange(n)[:, None]
    m = np.arange(n)[None, :]
    basis = np.sqrt(2.0 / n) * np.cos(np.pi * (2 * m + 1) * k / (2 * n))
    basis[0, :] /= np.sqrt(2.0)
    return basis


def forward_dct2(block: np.ndarray) -> np.ndarray:
    """2-D DCT of a square block (rows then columns)."""
    n = block.shape[0]
    if block.shape != (n, n):
        raise ValueError("forward_dct2 expects a square block")
    basis = dct_matrix(n)
    return basis @ block.astype(np.float64) @ basis.T


def inverse_dct2(coeffs: np.ndarray) -> np.ndarray:
    """Inverse 2-D DCT (exact inverse of :func:`forward_dct2`)."""
    n = coeffs.shape[0]
    if coeffs.shape != (n, n):
        raise ValueError("inverse_dct2 expects a square block")
    basis = dct_matrix(n)
    return basis.T @ coeffs.astype(np.float64) @ basis


def forward_dct2_batch(blocks: np.ndarray) -> np.ndarray:
    """2-D DCT of a stack of square blocks, shape ``(b, n, n)``."""
    n = blocks.shape[-1]
    basis = dct_matrix(n)
    return np.matmul(np.matmul(basis, blocks.astype(np.float64)), basis.T)


def inverse_dct2_batch(coeffs: np.ndarray) -> np.ndarray:
    """Inverse of :func:`forward_dct2_batch`."""
    n = coeffs.shape[-1]
    basis = dct_matrix(n)
    return np.matmul(np.matmul(basis.T, coeffs.astype(np.float64)), basis)


@lru_cache(maxsize=None)
def hadamard_matrix(n: int) -> np.ndarray:
    """Sylvester-ordered Hadamard matrix of size ``n`` x ``n`` (n = 2^k).

    Used by the encoder's SATD pre-screen: a Hadamard transform is a
    butterfly-only stand-in for the DCT, so the sum of absolute
    transformed-residual values ranks prediction candidates almost as
    well as the full RD cost at a fraction of the work (the classic
    fast-mode-decision trick in real encoders).
    """
    if n <= 0 or n & (n - 1):
        raise ValueError(f"Hadamard size must be a power of two, got {n}")
    h = np.array([[1.0]])
    while h.shape[0] < n:
        h = np.block([[h, h], [h, -h]])
    h.setflags(write=False)
    return h


def satd_batch(residuals: np.ndarray) -> np.ndarray:
    """Sum of absolute Hadamard-transformed differences per block.

    ``residuals`` has shape ``(m, n, n)``; returns shape ``(m,)``.
    Normalised by ``n`` so values are comparable to (pixel-domain) SSE
    magnitudes across block sizes.
    """
    n = residuals.shape[-1]
    h = hadamard_matrix(n)
    transformed = np.matmul(np.matmul(h, residuals), h.T)
    return np.abs(transformed).sum(axis=(-2, -1)) / n


@lru_cache(maxsize=None)
def zigzag_order(n: int) -> np.ndarray:
    """Flat indices of an ``n`` x ``n`` block in diagonal (zig-zag) scan.

    Low-frequency coefficients come first, so the scan concentrates the
    trailing zeros that the entropy coder exploits.
    """
    order = sorted(
        ((r, c) for r in range(n) for c in range(n)),
        key=lambda rc: (rc[0] + rc[1], rc[1] if (rc[0] + rc[1]) % 2 == 0 else rc[0]),
    )
    return np.array([r * n + c for r, c in order], dtype=np.int64)


def zigzag_scan(block: np.ndarray) -> np.ndarray:
    """Flatten a square block in zig-zag order."""
    n = block.shape[0]
    return block.reshape(-1)[zigzag_order(n)]


def zigzag_unscan(values: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`zigzag_scan`."""
    flat = np.empty(n * n, dtype=values.dtype)
    flat[zigzag_order(n)] = values
    return flat.reshape(n, n)
