"""RD-optimised frame encoder (intra + optional inter, quad-tree CUs).

The encoder plans each CTU with rate-distortion optimisation (trial
reconstructions against a cheap rate proxy), commits the winning plan
to the reconstruction buffers, and then serialises the plan with the
CABAC-style arithmetic coder.  The decoder in
:mod:`repro.codec.decoder` replays the same syntax, so reconstructions
are bit-exact on both sides.

Stage flags (``use_intra`` / ``use_transform`` / ``use_partition`` /
``use_inter``) exist so the Figure 2(b) ablation can enable the
pipeline one stage at a time.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from functools import lru_cache
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

import repro.telemetry as telemetry
from repro.codec import intra
from repro.codec.entropy import native
from repro.codec.entropy.arithmetic import BinaryEncoder
from repro.codec.profiles import H265_PROFILE, CodecProfile
from repro.parallel import ParallelConfig, parallel_map
from repro.resilience.deadline import Deadline
from repro.resilience.errors import (
    ChecksumError,
    CorruptStreamError,
    TruncatedStreamError,
)
from repro.resilience.framing import SLICE_OVERHEAD, crc32, frame_slice
from repro.codec.quantizer import dequantize, qstep, quantize, rd_lambda
from repro.codec.syntax import (
    CodecContexts,
    encode_coeff_block,
    encode_intra_mode,
    encode_mv,
    estimate_mode_bits,
    estimate_mode_bits_many,
)
from repro.codec.transform import (
    dct_matrix,
    forward_dct2_batch,
    inverse_dct2_batch,
    satd_batch,
    zigzag_order,
    zigzag_unscan,
)

#: RD mode-search strategies: ``"vectorized"`` evaluates every candidate
#: mode in one batched pass (with an optional SATD pre-screen, see
#: ``EncoderConfig.satd_prune``) and is bit-exact with ``"legacy"``, the
#: original scalar per-mode loop kept as the regression reference and
#: benchmark baseline.  ``"turbo"`` is a two-pass whole-frame search:
#: pass 1 costs every (block, size, mode) candidate in batched form
#: against *source* references via cached prediction->coefficient
#: operators and runs the quadtree DP, pass 2 re-codes only the chosen
#: leaves against the true reconstruction (see
#: :meth:`FrameEncoder._encode_frame_turbo`).  Fastest; streams stay
#: valid and drift-free, but decisions may differ slightly from the
#: exact search.  Inter frames fall back to the per-leaf variant
#: (:meth:`FrameEncoder._plan_leaf_intra_turbo`).
RD_SEARCHES = ("vectorized", "legacy", "turbo")

#: Entropy/costing backends: ``"native"`` dispatches the fused
#: coefficient-scan writer and the batched turbo RD costing to the
#: self-building C kernels (:mod:`repro.codec.entropy.native`) when
#: they are available, falling back transparently to the pure-Python
#: paths otherwise.  ``"python"`` pins the pure-Python paths even with
#: the kernels loaded -- the bit-exactness reference the benchmark
#: identity gates and the differential fuzz suite compare against.
#: Streams are byte-identical between the two by construction and by
#: test (tests/test_encode_fuzz.py, tests/test_native_encode.py).
ENCODES = ("native", "python")

#: Parallel encode dispatch thresholds, mirroring the decoder's.  Below
#: either bound the fan-out overhead (task submission, per-worker
#: encoder construction, result marshalling) costs more than the encode
#: itself, so the encoder silently stays serial.  Encodes must have at
#: least this many frames (= slices) ...
_PARALLEL_MIN_SLICES = 4
#: ... and at least this many raw sample bytes (4 x 128^2 tiles) to fan
#: out.  The values mirror the decoder's pinned thresholds -- same
#: fan-out machinery, same per-task overhead -- rather than a fresh
#: measurement: on single-CPU hosts the ``_effective_cpus() > 1`` guard
#: below makes the thresholds moot (parallel encode can never beat
#: serial there, so the encoder always stays serial), and that guard is
#: what the "parallel never loses to serial" bench claim leans on.
#: tests/test_native_encode.py pins the constants and the fallback
#: accounting.
_PARALLEL_MIN_BYTES = 1 << 16


def _effective_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without affinity masks
        return os.cpu_count() or 1


@lru_cache(maxsize=None)
def _mode_coeff_matrix(mode: int, n: int) -> np.ndarray:
    """Linear operator: reference boundary -> zigzag-ordered DCT
    coefficients of the mode's prediction.

    Every intra predictor (planar, DC, angular) is linear in the
    ``(top, left)`` reference vector, and the DCT + zigzag scan are
    linear too, so their composition is one ``(n^2, 4n + 2)`` matrix.
    Built by probing :func:`repro.codec.intra.predict` with basis
    vectors; cached per (mode, size) for the life of the process.
    """
    basis = dct_matrix(n)
    zz = zigzag_order(n)
    width = 4 * n + 2  # top (2n + 1) then left (2n + 1)
    matrix = np.empty((n * n, width), dtype=np.float64)
    refs = np.zeros(width, dtype=np.float64)
    for j in range(width):
        refs[j] = 1.0
        pred = intra.predict(refs[: 2 * n + 1], refs[2 * n + 1 :], mode, n)
        matrix[:, j] = np.take(
            np.matmul(np.matmul(basis, pred), basis.T).ravel(), zz
        )
        refs[j] = 0.0
    matrix.setflags(write=False)
    return matrix


@lru_cache(maxsize=None)
def _mode_coeff_operator(modes: Tuple[int, ...], n: int) -> np.ndarray:
    """Per-mode operators stacked for one candidate list, shape
    ``(m * n^2, 4n + 2)`` -- the whole coarse (or refine) pass of the
    turbo search is then a single mat-vec against the references."""
    stacked = np.concatenate([_mode_coeff_matrix(m, n) for m in modes], axis=0)
    stacked.setflags(write=False)
    return stacked


@lru_cache(maxsize=None)
def _anchor_mode_bits(modes: Tuple[int, ...]) -> np.ndarray:
    """Neighbour-free mode signalling rate used by the turbo pre-pass.

    The batched pre-pass scores every block of a frame before any mode
    has been committed, so the adaptive MPM context is unknown; the
    no-neighbour estimate keeps the usual bias towards the default
    most-probable modes without sequentialising the pass.
    """
    bits = estimate_mode_bits_many(list(modes), None, None)
    bits.setflags(write=False)
    return bits


#: Fixed-point scale of the level-rate table: rates are stored as
#: ``round(log2(m + 1) * 2**15)`` so per-row sums are *integer* sums --
#: order-independent, hence bitwise identical between the C cost kernel
#: and the numpy fallback -- while staying within 2**-15 bits per
#: coefficient of the float proxy they replace (``2*log2(m+1)`` per
#: level, converted back via one exact power-of-two division).
_RATE_SCALE_BITS = 15


@lru_cache(maxsize=None)
def _level_rate_table() -> np.ndarray:
    """Level magnitude -> fixed-point rate, int64, length 65536.

    Entry 0 is exactly 0, so zero coefficients can be summed without
    masking; magnitudes beyond the table share the top entry (the RD
    search only needs relative order up there).
    """
    mags = np.arange(1 << 16, dtype=np.float64)
    table = np.round(np.log2(mags + 1.0) * (1 << _RATE_SCALE_BITS)).astype(
        np.int64
    )
    table.setflags(write=False)
    return table


def _quantize_costs(
    flat: np.ndarray, deadzone: float, native_ok: bool
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Quantize a ``(rows, width)`` batch and gather its rate statistics.

    Returns ``(levels, rate, nnz, last)``: float64 levels, the int64
    fixed-point rate sums over :func:`_level_rate_table`, nonzero counts,
    and the highest nonzero index per row (-1 when empty).  Dispatches to
    the compiled cost kernel when ``native_ok`` and one is available;
    the numpy fallback below is bitwise identical (integer rate sums,
    and a quantizer built from the same exactly-rounded primitives), so
    RD decisions -- and therefore output streams -- cannot depend on
    which path ran.
    """
    table = _level_rate_table()
    if native_ok:
        out = native.cost(flat, deadzone, table)
        if out is not None:
            return out
    if deadzone:
        # sign(x) * floor(|x| + c)  ==  trunc(x + copysign(c, x))
        levels = np.trunc(flat + np.copysign(0.5 - deadzone, flat))
    else:
        levels = np.rint(flat)
    mags = np.abs(levels)
    nonzero = mags > 0.0
    nnz = nonzero.sum(axis=1)
    width = flat.shape[1]
    last = np.where(nnz > 0, width - 1 - np.argmax(nonzero[:, ::-1], axis=1), -1)
    idx = np.minimum(mags, float(len(table) - 1)).astype(np.int64)
    rate = np.take(table, idx).sum(axis=1)
    return levels, rate, nnz.astype(np.int64), last.astype(np.int64)


def _pass1_err_costs(
    cscaled: np.ndarray, pred: np.ndarray, deadzone: float, native_ok: bool
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Quantization errors + rate stats for a (blocks, modes) candidate grid.

    Candidate row ``b * modes + m`` is ``cscaled[b] - pred[b, m]``; the
    native kernel forms that difference element by element while
    quantizing, so the full candidate tensor is never materialised.
    The fallback materialises it with the same broadcast subtraction
    and reuses :func:`_quantize_costs`; both paths return bitwise
    identical ``(err, rate, nnz, last)`` (the error is the same single
    float subtraction on the same operands), so pass-1 decisions cannot
    depend on which ran.
    """
    if native_ok:
        out = native.cost_fused(cscaled, pred, deadzone, _level_rate_table())
        if out is not None:
            return out
    flat = (cscaled[:, None, :] - pred).reshape(-1, cscaled.shape[1])
    levels, rate, nnz, last = _quantize_costs(flat, deadzone, native_ok)
    return levels - flat, rate, nnz, last


MAGIC = b"LV65"
#: Version 2 introduced error-resilient slices: each frame is an
#: independently decodable segment (own arithmetic coder + contexts)
#: wrapped in CRC32 framing, so a damaged slice is detected on decode
#: and -- in concealment mode -- skipped instead of killing the stream.
VERSION = 2

_FLAG_INTRA = 1
_FLAG_TRANSFORM = 2
_FLAG_PARTITION = 4
_FLAG_INTER = 8

_HEADER_FMT = "<4sBBBHHHBBBB"
_HEADER_BODY_SIZE = struct.calcsize(_HEADER_FMT)
# The header carries its own trailing CRC32: a flipped bit in e.g.
# ``n_frames`` or ``width`` cannot be concealed (it re-shapes the whole
# stream), so it must fail loudly rather than silently mis-decode.
_HEADER_SIZE = _HEADER_BODY_SIZE + 4


@dataclass
class EncoderConfig:
    """Knobs for one encoding session."""

    profile: CodecProfile = H265_PROFILE
    qp: float = 30.0
    use_intra: bool = True
    use_transform: bool = True
    use_partition: bool = True
    use_inter: bool = False
    fixed_cu_size: int = 8  # CU grid when partitioning is disabled
    search_range: int = 7  # inter motion search radius (full pel)
    #: Mode-search strategy, one of :data:`RD_SEARCHES`.  With
    #: ``satd_prune=0``, "vectorized" and "legacy" produce byte-identical
    #: streams ("legacy" exists as the regression reference / bench
    #: baseline).  "turbo" is the fastest: a two-pass whole-frame search
    #: (batched source-reference costing + quadtree DP, then exact
    #: re-coding of the chosen leaves) whose decisions may differ
    #: slightly from the exact search (output is always a valid,
    #: drift-free stream; requires ``use_transform``, silently treated
    #: as "vectorized" otherwise).
    rd_search: str = "vectorized"
    #: SATD pre-screen width: evaluate exact RD cost only for the top-K
    #: candidates ranked by Hadamard SATD (0 disables pruning and makes
    #: the vectorized search bit-exact with the legacy one).  Encoder
    #: side only -- any value yields a valid, decodable stream.
    satd_prune: int = 0
    #: Use the fused coefficient-scan entropy writer (bit-exact with the
    #: primitive loop; False reproduces the pre-optimisation write path,
    #: which benchmarks use as the baseline).
    fast_entropy: bool = True
    #: Entropy/costing backend, one of :data:`ENCODES`.  "native" uses
    #: the compiled write/cost kernels when available (byte-identical
    #: output, see :data:`ENCODES`); "python" pins the pure-Python
    #: reference paths.  Only meaningful with ``fast_entropy=True`` --
    #: the primitive-call writer is always pure Python.
    encode: str = "native"
    #: Slice-parallel fan-out policy (None = serial).  Frames are
    #: independently decodable slices, so parallel output is
    #: byte-identical to serial; automatically falls back to serial
    #: when ``use_inter`` introduces cross-frame dependencies.
    parallel: Optional[ParallelConfig] = None
    #: Cooperative time budget for this encode (None = unbounded).
    #: Checked at every frame boundary -- in the serial loop, in each
    #: parallel slice worker, and by the pool wait itself -- so an
    #: over-budget encode raises
    #: :class:`~repro.resilience.errors.DeadlineExceeded` at a slice
    #: boundary with no partial state left behind.  Output bytes are
    #: unaffected by the deadline (an encode either completes
    #: identically or raises).
    deadline: Optional[Deadline] = None

    def __post_init__(self) -> None:
        if self.rd_search not in RD_SEARCHES:
            raise ValueError(
                f"rd_search must be one of {RD_SEARCHES}, got {self.rd_search!r}"
            )
        if self.encode not in ENCODES:
            raise ValueError(
                f"encode must be one of {ENCODES}, got {self.encode!r}"
            )
        if self.satd_prune < 0:
            raise ValueError("satd_prune must be >= 0 (0 = no pruning)")

    def flags(self) -> int:
        value = 0
        if self.use_intra:
            value |= _FLAG_INTRA
        if self.use_transform:
            value |= _FLAG_TRANSFORM
        if self.use_partition:
            value |= _FLAG_PARTITION
        if self.use_inter:
            value |= _FLAG_INTER
        return value


@dataclass
class EncodeResult:
    """Bitstream plus bookkeeping the rate-control loop uses."""

    data: bytes
    num_values: int
    mse: float
    #: Per-stream instrumentation snapshot (bits per syntax element
    #: class, stage timings, structural counters); populated only while
    #: telemetry is enabled, see :mod:`repro.telemetry`.
    stats: Optional[dict] = None

    @property
    def bits_per_value(self) -> float:
        return 8.0 * len(self.data) / max(1, self.num_values)


def pack_header(
    config: EncoderConfig, width: int, height: int, n_frames: int
) -> bytes:
    """Serialize stream parameters (everything the decoder needs up front)."""
    qp_base = int(np.floor(config.qp))
    qp_frac = int(round((config.qp - qp_base) * 256.0))
    if qp_frac == 256:
        qp_base += 1
        qp_frac = 0
    body = struct.pack(
        _HEADER_FMT,
        MAGIC,
        VERSION,
        config.profile.profile_id,
        config.flags(),
        width,
        height,
        n_frames,
        max(0, min(255, qp_base)),
        qp_frac,
        config.profile.ctu_size if config.use_partition else config.fixed_cu_size,
        config.profile.min_cu_size if config.use_partition else config.fixed_cu_size,
    )
    return body + struct.pack("<I", crc32(body))


def unpack_header(data: bytes) -> Dict[str, int]:
    """Parse the stream header written by :func:`pack_header`."""
    if len(data) < _HEADER_SIZE:
        raise TruncatedStreamError("stream too short for header")
    (
        magic,
        version,
        profile_id,
        flags,
        width,
        height,
        n_frames,
        qp_base,
        qp_frac,
        ctu,
        min_cu,
    ) = struct.unpack_from(_HEADER_FMT, data, 0)
    if magic != MAGIC:
        raise CorruptStreamError("bad magic: not an LLM.265 stream")
    if version != VERSION:
        raise CorruptStreamError(f"unsupported stream version {version}")
    (stored_crc,) = struct.unpack_from("<I", data, _HEADER_BODY_SIZE)
    actual_crc = crc32(data[:_HEADER_BODY_SIZE])
    if stored_crc != actual_crc:
        raise ChecksumError(
            "stream header checksum mismatch",
            expected=stored_crc,
            actual=actual_crc,
        )
    return {
        "profile_id": profile_id,
        "use_intra": bool(flags & _FLAG_INTRA),
        "use_transform": bool(flags & _FLAG_TRANSFORM),
        "use_partition": bool(flags & _FLAG_PARTITION),
        "use_inter": bool(flags & _FLAG_INTER),
        "width": width,
        "height": height,
        "n_frames": n_frames,
        "qp_base": qp_base,
        "qp_frac": qp_frac,
        "ctu": ctu,
        "min_cu": min_cu,
        "header_size": _HEADER_SIZE,
    }


class QpDither:
    """Bresenham dither over CTUs turning a float QP into integer QPs.

    Encoder and decoder both instantiate this with the header's
    (base, frac) pair and call :meth:`next` once per CTU, so the two
    sides always agree on the per-CTU quantizer.
    """

    def __init__(self, qp_base: int, qp_frac: int) -> None:
        self._base = qp_base
        self._frac = qp_frac
        self._accum = 128  # start mid-bucket so frac=0 never bumps

    def next(self) -> int:
        self._accum += self._frac
        if self._accum >= 256:
            self._accum -= 256
            return min(51, self._base + 1)
        return self._base

    @classmethod
    def advanced(cls, qp_base: int, qp_frac: int, steps: int) -> "QpDither":
        """A dither positioned as if :meth:`next` had been called ``steps`` times.

        The accumulator is a pure modular counter (every overflow
        subtracts 256), so its state after ``k`` steps is
        ``(128 + k * frac) % 256`` in closed form.  This is what lets a
        parallel slice worker reproduce frame ``i``'s per-CTU QP
        sequence without replaying frames ``0 .. i-1``.
        """
        dither = cls(qp_base, qp_frac)
        dither._accum = (128 + steps * qp_frac) % 256
        return dither


def pad_frame(frame: np.ndarray, multiple: int) -> np.ndarray:
    """Replicate-pad a frame so both dimensions divide ``multiple``."""
    height, width = frame.shape
    pad_h = (-height) % multiple
    pad_w = (-width) % multiple
    if pad_h == 0 and pad_w == 0:
        return frame
    return np.pad(frame, ((0, pad_h), (0, pad_w)), mode="edge")


# Plan nodes: ("leaf", mode, is_inter, mv, levels) | ("split", [children x4]).
_Plan = Tuple


class FrameEncoder:
    """Encodes a sequence of 8-bit grayscale frames into one bitstream."""

    def __init__(self, config: Optional[EncoderConfig] = None) -> None:
        self.config = config or EncoderConfig()
        if self.config.profile.min_cu_size < 4:
            raise ValueError("minimum CU size is 4")
        self._stats: Optional[telemetry.EncodeStats] = None
        self._native_ok = self.config.encode == "native"

    # -- public API ----------------------------------------------------

    def encode(self, frames: Sequence[np.ndarray]) -> EncodeResult:
        """Encode frames; returns bitstream + achieved distortion."""
        frames = [np.asarray(f) for f in frames]
        if not frames:
            raise ValueError("need at least one frame")
        height, width = frames[0].shape
        for frame in frames:
            if frame.shape != (height, width):
                raise ValueError("all frames must share one shape")
            if frame.dtype != np.uint8:
                raise ValueError("frames must be uint8")

        cfg = self.config
        self._ctu = cfg.profile.ctu_size if cfg.use_partition else cfg.fixed_cu_size
        self._min_cu = (
            cfg.profile.min_cu_size if cfg.use_partition else cfg.fixed_cu_size
        )
        header = pack_header(cfg, width, height, len(frames))
        qp_base = header[_HEADER_BODY_SIZE - 4]
        qp_frac = header[_HEADER_BODY_SIZE - 3]
        dither = QpDither(qp_base, qp_frac)

        registry = telemetry.current()
        stats = self._stats = (
            telemetry.EncodeStats() if registry is not None else None
        )
        self._reference: Optional[np.ndarray] = None
        sse_total = 0.0
        slices: List[bytes] = []
        par = cfg.parallel
        # Frames are independent slices unless inter prediction chains
        # them (each frame then references the previous reconstruction),
        # so fan-out is gated on ``use_inter``.  The parallel path is
        # byte-identical to the serial loop: same per-frame coder and
        # contexts, and the dither state for frame i is reconstructed in
        # closed form (QpDither.advanced).  As on the decode side,
        # eligibility and profitability are separate questions: a
        # parallel-capable encode below the dispatch thresholds runs
        # serially -- small inputs were measurably *slower* parallel.
        par_capable = (
            par is not None
            and not par.is_serial()
            and len(frames) > 1
            and not cfg.use_inter
        )
        use_parallel = (
            par_capable
            and len(frames) >= _PARALLEL_MIN_SLICES
            and sum(f.nbytes for f in frames) >= _PARALLEL_MIN_BYTES
            and _effective_cpus() > 1
        )
        if par_capable and not use_parallel:
            telemetry.count("encode.parallel_threshold_fallbacks")
        with telemetry.span("frames.encode"):
            if use_parallel:
                pad_h = height + (-height) % self._ctu
                pad_w = width + (-width) % self._ctu
                ctus_per_frame = (pad_h // self._ctu) * (pad_w // self._ctu)
                tasks = [
                    (
                        cfg,
                        frame,
                        index,
                        qp_base,
                        qp_frac,
                        index * ctus_per_frame,
                        stats is not None,
                    )
                    for index, frame in enumerate(frames)
                ]
                results = parallel_map(
                    _encode_slice_worker,
                    tasks,
                    par,
                    label="encode",
                    deadline=cfg.deadline,
                )
                for slice_bytes, frame_sse, worker_stats in results:
                    slices.append(slice_bytes)
                    sse_total += frame_sse
                    if stats is not None and worker_stats is not None:
                        stats.merge(worker_stats)
            else:
                if par is not None:
                    telemetry.count("parallel.serial_fallbacks")
                for index, frame in enumerate(frames):
                    if cfg.deadline is not None:
                        cfg.deadline.check("frames.encode")
                    padded = pad_frame(frame, self._ctu)
                    # Each frame is one error-resilience slice: a fresh
                    # coder and fresh contexts make it independently
                    # decodable, so a damaged slice can be concealed
                    # without desynchronising the rest of the stream.
                    enc = BinaryEncoder()
                    ctx = CodecContexts()
                    with telemetry.span("frame"):
                        recon = self._encode_frame(enc, ctx, padded, index, dither)
                    crop = recon[:height, :width]
                    sse_total += float(
                        np.sum(
                            (crop.astype(np.float64) - frame.astype(np.float64)) ** 2
                        )
                    )
                    self._reference = recon
                    slices.append(frame_slice(enc.finish()))
                    if stats is not None:
                        stats.add_bits("slice_hdr", 8 * SLICE_OVERHEAD)
            payload = b"".join(slices)
        num_values = height * width * len(frames)
        stats_dict: Optional[dict] = None
        if stats is not None:
            # Exact closure: header + attributed element classes + flush
            # telescope to the full stream size in bits.
            stats.add_bits("header", 8 * len(header))
            attributed = stats.total_bits - stats.bits["header"]
            stats.add_bits("flush", 8 * len(payload) - attributed)
            stats.add_count("frames", len(frames))
            stats.publish(registry)
            stats_dict = stats.as_dict()
        return EncodeResult(
            data=header + payload,
            num_values=num_values,
            mse=sse_total / num_values,
            stats=stats_dict,
        )

    # -- per-frame -----------------------------------------------------

    def _encode_frame(
        self,
        enc: BinaryEncoder,
        ctx: CodecContexts,
        frame: np.ndarray,
        frame_index: int,
        dither: QpDither,
    ) -> np.ndarray:
        cfg = self.config
        height, width = frame.shape
        self._frame = frame.astype(np.float64)
        self._recon = np.zeros((height, width), dtype=np.float64)
        self._mask = np.zeros((height, width), dtype=bool)
        self._modes = np.full((height, width), -1, dtype=np.int16)
        self._inter_allowed = (
            cfg.use_inter and frame_index > 0 and self._reference is not None
        )

        stats = self._stats
        if (
            cfg.rd_search == "turbo"
            and cfg.use_transform
            and cfg.use_intra
            and not self._inter_allowed
        ):
            return self._encode_frame_turbo(enc, ctx, dither)
        for y0 in range(0, height, self._ctu):
            for x0 in range(0, width, self._ctu):
                qp = dither.next()
                self._qp = qp
                self._qstep = qstep(qp)
                self._lambda = rd_lambda(qp)
                if stats is None:
                    _, plan = self._plan_cu(y0, x0, self._ctu, depth=0)
                    self._write_cu(enc, ctx, plan, y0, x0, self._ctu, depth=0)
                    continue
                stats.add_count("ctu")
                stats.add_qp(qp)
                t0 = perf_counter()
                _, plan = self._plan_cu(y0, x0, self._ctu, depth=0)
                t1 = perf_counter()
                self._write_cu(enc, ctx, plan, y0, x0, self._ctu, depth=0)
                stats.add_seconds("plan", t1 - t0)
                stats.add_seconds("write", perf_counter() - t1)
        return self._recon

    # -- planning ------------------------------------------------------

    def _save(self, y0: int, x0: int, size: int):
        sl = (slice(y0, y0 + size), slice(x0, x0 + size))
        return (
            self._recon[sl].copy(),
            self._mask[sl].copy(),
            self._modes[sl].copy(),
        )

    def _restore(self, y0: int, x0: int, size: int, state) -> None:
        sl = (slice(y0, y0 + size), slice(x0, x0 + size))
        self._recon[sl], self._mask[sl], self._modes[sl] = (
            state[0].copy(),
            state[1].copy(),
            state[2].copy(),
        )

    def _plan_cu(self, y0: int, x0: int, size: int, depth: int) -> Tuple[float, _Plan]:
        can_split = self.config.use_partition and size > self._min_cu
        before = self._save(y0, x0, size)
        leaf_cost, leaf_plan = self._plan_leaf(y0, x0, size)
        if not can_split:
            return leaf_cost, leaf_plan
        leaf_state = self._save(y0, x0, size)
        self._restore(y0, x0, size, before)

        half = size // 2
        split_cost = self._lambda  # split flag ~1 bit
        children: List[_Plan] = []
        for qy in (0, 1):
            for qx in (0, 1):
                c_cost, c_plan = self._plan_cu(
                    y0 + qy * half, x0 + qx * half, half, depth + 1
                )
                split_cost += c_cost
                children.append(c_plan)
        if leaf_cost + self._lambda <= split_cost:
            self._restore(y0, x0, size, leaf_state)
            return leaf_cost + self._lambda, leaf_plan
        return split_cost, ("split", children)

    def _plan_leaf(self, y0: int, x0: int, size: int) -> Tuple[float, _Plan]:
        best_cost, best_plan = self._plan_leaf_intra(y0, x0, size)
        if self._inter_allowed:
            inter_cost, inter_plan = self._plan_leaf_inter(y0, x0, size)
            # ~1 bit to signal the prediction type either way.
            if inter_cost < best_cost:
                best_cost, best_plan = inter_cost, inter_plan
                self._commit_leaf(y0, x0, size, best_plan)
            best_cost += self._lambda
        return best_cost, best_plan

    def _plan_leaf_intra(self, y0: int, x0: int, size: int) -> Tuple[float, _Plan]:
        cfg = self.config
        orig = self._frame[y0 : y0 + size, x0 : x0 + size]
        if not cfg.use_intra:
            prediction = np.full((size, size), 128.0)
            cost, levels, recon = self._code_residual(orig, prediction[None])
            plan = ("leaf", None, False, (0, 0), levels[0])
            self._commit_block(y0, x0, size, recon[0], intra.DC)
            return cost[0], plan
        if cfg.rd_search == "legacy":
            return self._plan_leaf_intra_legacy(y0, x0, size)
        if cfg.rd_search == "turbo" and cfg.use_transform:
            return self._plan_leaf_intra_turbo(y0, x0, size)

        top, left = intra.gather_references(self._recon, self._mask, y0, x0, size)
        left_mode = self._neighbor_mode(y0, x0 - 1)
        top_mode = self._neighbor_mode(y0 - 1, x0)

        modes = list(cfg.profile.coarse_modes())
        preds = intra.predict_many(top, left, modes, size)
        mode_bits = estimate_mode_bits_many(modes, left_mode, top_mode)
        prune = cfg.satd_prune
        if 0 < prune < len(modes):
            # Rank candidates by Hadamard SATD plus the signalling-rate
            # term, keep the top ``prune``, and evaluate exact RD only
            # for the survivors.  np.sort keeps survivors in original
            # candidate order so argmin tie-breaking matches an unpruned
            # search restricted to the same set.
            screen = satd_batch(orig[None] - preds) + self._lambda * mode_bits
            keep = np.sort(np.argpartition(screen, prune - 1)[:prune])
            modes = [modes[i] for i in keep]
            preds = preds[keep]
            mode_bits = mode_bits[keep]
        costs, levels, recons = self._code_residual(orig, preds)
        costs = costs + self._lambda * mode_bits
        best = int(np.argmin(costs))

        refine = cfg.profile.refine_modes(modes[best])
        if refine:
            r_modes = list(refine)
            r_preds = intra.predict_many(top, left, r_modes, size)
            r_costs, r_levels, r_recons = self._code_residual(orig, r_preds)
            r_costs = r_costs + self._lambda * estimate_mode_bits_many(
                r_modes, left_mode, top_mode
            )
            r_best = int(np.argmin(r_costs))
            if r_costs[r_best] < costs[best]:
                plan = ("leaf", r_modes[r_best], False, (0, 0), r_levels[r_best])
                self._commit_block(y0, x0, size, r_recons[r_best], r_modes[r_best])
                return float(r_costs[r_best]), plan

        plan = ("leaf", modes[best], False, (0, 0), levels[best])
        self._commit_block(y0, x0, size, recons[best], modes[best])
        return float(costs[best]), plan

    def _plan_leaf_intra_turbo(
        self, y0: int, x0: int, size: int
    ) -> Tuple[float, _Plan]:
        """Transform-domain mode search (``rd_search="turbo"``).

        Candidate costing never leaves the DCT domain: a cached linear
        operator (:func:`_mode_coeff_operator`) maps the reference
        boundary straight to each mode's zigzag-ordered prediction
        coefficients, so one stacked mat-vec replaces spatial
        prediction, the per-batch forward DCT, and the losers' inverse
        DCTs.  Distortion uses Parseval (the orthonormal DCT preserves
        SSE) and ignores the [0, 255] reconstruction clip during
        *selection* only; the winning mode is then reconstructed
        exactly as the decoder will, so streams stay drift-free.  Only
        mode/split tie-breaks can differ from the exact search
        (measured on the bench tensor: <1% bytes, ~equal MSE).
        """
        orig = self._frame[y0 : y0 + size, x0 : x0 + size]
        top, left = intra.gather_references(self._recon, self._mask, y0, x0, size)
        left_mode = self._neighbor_mode(y0, x0 - 1)
        top_mode = self._neighbor_mode(y0 - 1, x0)
        basis = dct_matrix(size)
        # Pre-divide by the quantizer step so the mat-vec lands directly
        # in quantizer units (saves one full-width division per call).
        inv_step = 1.0 / self._qstep
        refs = np.concatenate([top, left]) * inv_step
        orig_scaled = (
            np.take(
                np.matmul(np.matmul(basis, orig), basis.T).ravel(),
                zigzag_order(size),
            )
            * inv_step
        )

        modes = self.config.profile.coarse_modes()
        costs, levels = self._turbo_costs(
            modes, refs, orig_scaled, left_mode, top_mode, size
        )
        best = int(np.argmin(costs))
        best_mode = modes[best]
        best_cost = float(costs[best])
        best_levels = levels[best]

        refine = self.config.profile.refine_modes(best_mode)
        if refine:
            r_costs, r_levels = self._turbo_costs(
                refine, refs, orig_scaled, left_mode, top_mode, size
            )
            r_best = int(np.argmin(r_costs))
            if r_costs[r_best] < best_cost:
                best_mode = refine[r_best]
                best_cost = float(r_costs[r_best])
                best_levels = r_levels[r_best]

        # Reconstruct the winner exactly like the decoder will.
        grid = zigzag_unscan(best_levels.astype(np.int64), size)
        residual = inverse_dct2_batch(dequantize(grid[None], self._qp))[0]
        prediction = intra.predict(top, left, best_mode, size)
        recon = np.clip(prediction + residual, 0.0, 255.0)
        self._commit_block(y0, x0, size, recon, best_mode)
        return best_cost, ("leaf", best_mode, False, (0, 0), grid)

    def _turbo_costs(
        self,
        modes: Tuple[int, ...],
        refs: np.ndarray,
        orig_scaled: np.ndarray,
        left_mode: Optional[int],
        top_mode: Optional[int],
        size: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """RD costs and zigzag-ordered levels for one candidate list.

        ``refs`` and ``orig_scaled`` arrive pre-divided by the quantizer
        step, so every array here lives in quantizer units; the spatial
        SSE is recovered by one scalar ``step**2`` at the end
        (Parseval).  Levels stay float64 -- they are exact small
        integers, and only the winning row is ever cast.
        """
        operator = _mode_coeff_operator(tuple(modes), size)
        scaled = orig_scaled - (operator @ refs).reshape(len(modes), size * size)
        deadzone = self.config.profile.deadzone
        levels, rate, nnz, last = _quantize_costs(
            scaled, deadzone, self._native_ok
        )
        err = levels - scaled
        sse = np.einsum("ij,ij->i", err, err) * (self._qstep * self._qstep)

        # Fixed-point form of the usual rate proxy (2*log2(m+1) bits per
        # level + 2 per nonzero for sig/sign); the 2**14 divisor folds
        # the table scale and the factor of two in one exact division.
        level_bits = rate / float(1 << (_RATE_SCALE_BITS - 1)) + 2.0 * nnz
        bits = np.where(nnz > 0, 5.0 + last + level_bits, 1.0)
        mode_bits = estimate_mode_bits_many(modes, left_mode, top_mode)
        return sse + self._lambda * (bits + mode_bits), levels

    # -- two-pass turbo frame path -------------------------------------

    def _encode_frame_turbo(
        self, enc: BinaryEncoder, ctx: CodecContexts, dither: QpDither
    ) -> np.ndarray:
        """Whole-frame turbo encode: batched mode decision, exact coding.

        Pass 1 scores every block of every CU size in a handful of
        stacked mat-vecs (:meth:`_turbo_pass1_size`) using *source*
        pixels as prediction references -- the classic encoder lookahead
        trick: at working QPs the reconstruction tracks the source
        closely, so decisions made against the source are near-identical
        while removing the serial commit->gather dependency that forces
        the per-leaf searches to run block by block.  A quadtree DP then
        picks the partition per CTU with the same split-flag arithmetic
        as :meth:`_plan_cu`, and pass 2 re-codes only the chosen leaves
        against the *true* reconstruction, so the emitted stream is
        exactly decodable -- drift-free by construction, like every
        other search mode.
        """
        frame = self._frame
        height, width = frame.shape
        ctu = self._ctu
        rows, cols = height // ctu, width // ctu
        # Consume the QP dither in the exact order the serial CTU loop
        # would, so turbo streams are invariant to the parallel fan-out.
        qp_map = np.empty((rows, cols), dtype=np.float64)
        for cy in range(rows):
            for cx in range(cols):
                qp_map[cy, cx] = dither.next()

        stats = self._stats
        pass1_start = perf_counter() if stats is not None else 0.0
        sizes = [ctu]
        if self.config.use_partition:
            while sizes[-1] > self._min_cu:
                sizes.append(sizes[-1] // 2)
        best_mode: Dict[int, np.ndarray] = {}
        best_cost: Dict[int, np.ndarray] = {}
        for n in sizes:
            by, bx = height // n, width // n
            blk_qp = qp_map[
                (np.arange(by) * n) // ctu
            ][:, (np.arange(bx) * n) // ctu].ravel()
            modes_n, costs_n = self._turbo_pass1_size(n, blk_qp)
            best_mode[n] = modes_n.reshape(by, bx)
            best_cost[n] = costs_n.reshape(by, bx)
        if stats is not None:
            stats.add_seconds("plan", perf_counter() - pass1_start)

        for cy in range(rows):
            for cx in range(cols):
                qp = float(qp_map[cy, cx])
                self._qp = qp
                self._qstep = qstep(qp)
                self._lambda = rd_lambda(qp)
                y0, x0 = cy * ctu, cx * ctu
                if stats is None:
                    _, skeleton = self._turbo_choose(
                        y0, x0, ctu, best_mode, best_cost
                    )
                    plan = self._turbo_commit(skeleton, y0, x0, ctu)
                    self._write_cu(enc, ctx, plan, y0, x0, ctu, depth=0)
                    continue
                stats.add_count("ctu")
                stats.add_qp(int(qp))
                t0 = perf_counter()
                _, skeleton = self._turbo_choose(y0, x0, ctu, best_mode, best_cost)
                plan = self._turbo_commit(skeleton, y0, x0, ctu)
                t1 = perf_counter()
                self._write_cu(enc, ctx, plan, y0, x0, ctu, depth=0)
                stats.add_seconds("plan", t1 - t0)
                stats.add_seconds("write", perf_counter() - t1)
        return self._recon

    def _turbo_pass1_size(
        self, n: int, blk_qp: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Best coarse mode + RD cost for every ``n x n`` block at once.

        References come from the source frame, padded edge-replicated
        (one row/column of context outside the frame, ``2n`` of
        extension below/right exactly like the boundary walk reads
        them), so the whole frame's candidate costing collapses into
        one operator gemm per QP group instead of a mat-vec per block.
        """
        frame = self._frame
        height, width = frame.shape
        by, bx = height // n, width // n
        total = by * bx
        basis = dct_matrix(n)
        zz = zigzag_order(n)
        blocks = frame.reshape(by, n, bx, n).transpose(0, 2, 1, 3)
        coeffs = np.matmul(np.matmul(basis, blocks), basis.T).reshape(
            total, n * n
        )[:, zz]

        padded = np.pad(frame, ((1, n), (1, n)), mode="edge")
        ys = np.arange(by) * n
        xs = np.arange(bx) * n
        tops = sliding_window_view(padded[ys], 2 * n + 1, axis=1)[:, xs]
        lefts = sliding_window_view(padded[:, xs], 2 * n + 1, axis=0)[ys]
        refs = np.concatenate([tops, lefts], axis=2).reshape(total, 4 * n + 2)

        modes = self.config.profile.coarse_modes()
        operator = _mode_coeff_operator(modes, n)
        mode_bits = _anchor_mode_bits(modes)
        mode_arr = np.asarray(modes)
        deadzone = self.config.profile.deadzone
        best_modes = np.empty(total, dtype=np.int64)
        best_costs = np.empty(total, dtype=np.float64)
        for qp in np.unique(blk_qp):
            idx = np.nonzero(blk_qp == qp)[0]
            step = qstep(float(qp))
            lam = rd_lambda(float(qp))
            inv_step = 1.0 / step
            # Block-major gemm orientation: the (blocks, modes, n*n)
            # prediction comes out C-contiguous, so the fused cost
            # kernel (or the fallback's broadcast subtraction) walks it
            # row by row -- no transpose copy of the full candidate
            # tensor per QP group.
            pred = ((refs[idx] * inv_step) @ operator.T).reshape(
                len(idx), len(modes), n * n
            )
            err, rate, nnz, last = _pass1_err_costs(
                coeffs[idx] * inv_step, pred, deadzone, self._native_ok
            )
            sse = np.einsum("ij,ij->i", err, err) * (step * step)
            level_bits = rate / float(1 << (_RATE_SCALE_BITS - 1)) + 2.0 * nnz
            bits = np.where(nnz > 0, 5.0 + last + level_bits, 1.0)
            costs = (sse + lam * bits).reshape(len(idx), len(modes)) + (
                lam * mode_bits[None, :]
            )
            pick = np.argmin(costs, axis=1)
            best_modes[idx] = mode_arr[pick]
            best_costs[idx] = costs[np.arange(len(idx)), pick]
        return best_modes, best_costs

    def _turbo_choose(
        self,
        y0: int,
        x0: int,
        size: int,
        best_mode: Dict[int, np.ndarray],
        best_cost: Dict[int, np.ndarray],
    ):
        """Quadtree DP over the pass-1 cost tables (no pixels touched).

        Mirrors :meth:`_plan_cu`'s cost arithmetic exactly: ~1 bit of
        split signalling per node, leaf kept on ties.
        """
        mode = int(best_mode[size][y0 // size, x0 // size])
        leaf_cost = float(best_cost[size][y0 // size, x0 // size])
        if not (self.config.use_partition and size > self._min_cu):
            return leaf_cost, ("leaf", mode)
        lam = self._lambda
        half = size // 2
        split_cost = lam
        children = []
        for qy in (0, 1):
            for qx in (0, 1):
                c_cost, c_plan = self._turbo_choose(
                    y0 + qy * half, x0 + qx * half, half, best_mode, best_cost
                )
                split_cost += c_cost
                children.append(c_plan)
        if leaf_cost + lam <= split_cost:
            return leaf_cost + lam, ("leaf", mode)
        return split_cost, ("split", children)

    def _turbo_commit(self, skeleton, y0: int, x0: int, size: int) -> _Plan:
        """Pass 2: code the chosen tree exactly (true references)."""
        if skeleton[0] == "split":
            half = size // 2
            children: List[_Plan] = []
            index = 0
            for qy in (0, 1):
                for qx in (0, 1):
                    children.append(
                        self._turbo_commit(
                            skeleton[1][index],
                            y0 + qy * half,
                            x0 + qx * half,
                            half,
                        )
                    )
                    index += 1
            return ("split", children)
        return self._code_leaf_fixed_mode(y0, x0, size, skeleton[1])

    def _code_leaf_fixed_mode(
        self, y0: int, x0: int, size: int, mode: int
    ) -> _Plan:
        """Exact single-mode leaf coding (quantize, reconstruct, commit).

        Identical arithmetic to :meth:`_code_residual` restricted to one
        prediction; the reconstruction is what the decoder will produce
        for these levels, bit for bit.
        """
        orig = self._frame[y0 : y0 + size, x0 : x0 + size]
        top, left = intra.gather_references(self._recon, self._mask, y0, x0, size)
        prediction = intra.predict(top, left, mode, size)
        basis = dct_matrix(size)
        coeffs = np.matmul(np.matmul(basis, orig - prediction), basis.T)
        step = self._qstep
        scaled = coeffs / step
        deadzone = self.config.profile.deadzone
        if deadzone:
            levels = np.trunc(scaled + np.copysign(0.5 - deadzone, scaled))
        else:
            levels = np.rint(scaled)
        levels = levels.astype(np.int64)
        residual = np.matmul(np.matmul(basis.T, levels * step), basis)
        recon = np.clip(prediction + residual, 0.0, 255.0)
        self._commit_block(y0, x0, size, recon, mode)
        return ("leaf", mode, False, (0, 0), levels)

    def _plan_leaf_intra_legacy(
        self, y0: int, x0: int, size: int
    ) -> Tuple[float, _Plan]:
        """Original scalar mode search (``rd_search="legacy"``).

        Kept verbatim as the regression reference: with
        ``satd_prune=0`` the vectorized search must reproduce this
        path's decisions -- and therefore its bitstream -- exactly.  It
        is also the honest pre-optimisation baseline that
        ``benchmarks/bench_throughput.py`` reports speedups against.
        """
        cfg = self.config
        orig = self._frame[y0 : y0 + size, x0 : x0 + size]
        top, left = intra.gather_references_scalar(
            self._recon, self._mask, y0, x0, size
        )
        left_mode = self._neighbor_mode(y0, x0 - 1)
        top_mode = self._neighbor_mode(y0 - 1, x0)

        modes = list(cfg.profile.coarse_modes())
        preds = intra.predict_batch(top, left, modes, size)
        costs, levels, recons = self._code_residual_legacy(orig, preds)
        mode_bits = np.array(
            [estimate_mode_bits(m, left_mode, top_mode) for m in modes]
        )
        costs = costs + self._lambda * mode_bits
        best = int(np.argmin(costs))

        refine = cfg.profile.refine_modes(modes[best])
        if refine:
            r_modes = list(refine)
            r_preds = intra.predict_batch(top, left, r_modes, size)
            r_costs, r_levels, r_recons = self._code_residual_legacy(orig, r_preds)
            r_costs = r_costs + self._lambda * np.array(
                [estimate_mode_bits(m, left_mode, top_mode) for m in r_modes]
            )
            r_best = int(np.argmin(r_costs))
            if r_costs[r_best] < costs[best]:
                plan = ("leaf", r_modes[r_best], False, (0, 0), r_levels[r_best])
                self._commit_block(y0, x0, size, r_recons[r_best], r_modes[r_best])
                return float(r_costs[r_best]), plan

        plan = ("leaf", modes[best], False, (0, 0), levels[best])
        self._commit_block(y0, x0, size, recons[best], modes[best])
        return float(costs[best]), plan

    def _plan_leaf_inter(self, y0: int, x0: int, size: int) -> Tuple[float, _Plan]:
        orig = self._frame[y0 : y0 + size, x0 : x0 + size]
        mv = self._motion_search(y0, x0, size)
        prediction = self._motion_compensate(y0, x0, size, mv)
        costs, levels, recons = self._code_residual(orig, prediction[None])
        mv_bits = 2.0 + 2.0 * (np.log2(abs(mv[0]) + 1) + np.log2(abs(mv[1]) + 1))
        cost = float(costs[0]) + self._lambda * mv_bits
        return cost, ("leaf", None, True, mv, levels[0])

    def _motion_search(self, y0: int, x0: int, size: int) -> Tuple[int, int]:
        """Diamond search over the previous reconstructed frame.

        The full candidate window is sliced out of the reference once
        up front (probes index into it) and the search terminates as
        soon as a zero-SAD match is found -- no candidate can beat it,
        so the result is unchanged.  Both tweaks matter for static
        content, where the zero vector is an exact match for most CUs.
        """
        assert self._reference is not None
        ref = self._reference
        height, width = ref.shape
        orig = self._frame[y0 : y0 + size, x0 : x0 + size]
        radius = self.config.search_range
        wy0 = max(0, y0 - radius)
        wx0 = max(0, x0 - radius)
        window = ref[wy0 : min(height, y0 + size + radius),
                     wx0 : min(width, x0 + size + radius)]

        def sad(dy: int, dx: int) -> float:
            ry, rx = y0 + dy, x0 + dx
            if ry < 0 or rx < 0 or ry + size > height or rx + size > width:
                return np.inf
            oy, ox = ry - wy0, rx - wx0
            return float(np.abs(window[oy : oy + size, ox : ox + size] - orig).sum())

        best = (0, 0)
        best_sad = sad(0, 0)
        if best_sad == 0.0:
            return best
        step = max(1, radius // 2)
        while step >= 1:
            improved = True
            while improved:
                improved = False
                for dy, dx in ((-step, 0), (step, 0), (0, -step), (0, step)):
                    cand = (best[0] + dy, best[1] + dx)
                    if max(abs(cand[0]), abs(cand[1])) > radius:
                        continue
                    value = sad(*cand)
                    if value < best_sad:
                        best, best_sad = cand, value
                        improved = True
                        if best_sad == 0.0:
                            return best
            step //= 2
        return best

    def _motion_compensate(
        self, y0: int, x0: int, size: int, mv: Tuple[int, int]
    ) -> np.ndarray:
        assert self._reference is not None
        ry, rx = y0 + mv[0], x0 + mv[1]
        return self._reference[ry : ry + size, rx : rx + size].astype(np.float64)

    def _code_residual(
        self, orig: np.ndarray, predictions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Transform+quantize residuals for a batch of predictions.

        Returns (rd_costs, quantized_levels, reconstructions) with the
        leading batch axis matching ``predictions``.

        This is the trimmed hot-path body: quantization is inlined with
        the CTU's cached quantizer step, array-copy conversions are
        dropped, and the rate proxy avoids redundant masking.  Every
        output is bit-identical to :meth:`_code_residual_legacy` (the
        vectorized-vs-legacy byte-identity tests pin this transitively).
        """
        cfg = self.config
        stats = self._stats
        if stats is not None:
            stats.add_count("residual_batches")
        size = orig.shape[0]
        residuals = orig - predictions
        if cfg.use_transform:
            basis = dct_matrix(size)
            coeffs = np.matmul(np.matmul(basis, residuals), basis.T)
        else:
            coeffs = residuals
        step = self._qstep
        scaled = coeffs / step
        deadzone = cfg.profile.deadzone
        if deadzone:
            levels = (
                np.sign(scaled) * np.floor(np.abs(scaled) + (0.5 - deadzone))
            ).astype(np.int64)
        else:
            levels = np.round(scaled).astype(np.int64)
        dequant = levels * step
        if cfg.use_transform:
            resid_rec = np.matmul(np.matmul(basis.T, dequant), basis)
        else:
            resid_rec = dequant
        recons = np.clip(predictions + resid_rec, 0.0, 255.0)
        sse = ((recons - orig) ** 2).sum(axis=(1, 2))

        # Vectorised rate proxy (mirrors syntax.estimate_coeff_bits).
        zz = zigzag_order(size)
        scanned = levels.reshape(levels.shape[0], -1).take(zz, axis=1)
        mags = np.abs(scanned)
        nonzero = mags > 0
        any_nz = nonzero.any(axis=1)
        last = size * size - 1 - np.argmax(nonzero[:, ::-1], axis=1)
        level_bits = ((2.0 * np.log2(mags + 1.0) + 2.0) * nonzero).sum(axis=1)
        bits = np.where(any_nz, 4.0 + (last + 1) + level_bits, 1.0)
        return sse + self._lambda * bits, levels, recons

    def _code_residual_legacy(
        self, orig: np.ndarray, predictions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Original residual-coding body, preserved verbatim.

        Used by the ``rd_search="legacy"`` planner so the benchmark
        baseline keeps the pre-optimisation cost profile; outputs are
        bit-identical to :meth:`_code_residual`.
        """
        cfg = self.config
        if self._stats is not None:
            self._stats.add_count("residual_batches")
        size = orig.shape[0]
        residuals = orig[None] - predictions
        if cfg.use_transform:
            coeffs = forward_dct2_batch(residuals)
        else:
            coeffs = residuals
        levels = quantize(coeffs, self._qp, deadzone=cfg.profile.deadzone)
        dequant = dequantize(levels, self._qp)
        if cfg.use_transform:
            resid_rec = inverse_dct2_batch(dequant)
        else:
            resid_rec = dequant
        recons = np.clip(predictions + resid_rec, 0.0, 255.0)
        sse = np.sum((recons - orig[None]) ** 2, axis=(1, 2))

        # Vectorised rate proxy (mirrors syntax.estimate_coeff_bits).
        zz = zigzag_order(size)
        scanned = levels.reshape(levels.shape[0], -1)[:, zz]
        mags = np.abs(scanned).astype(np.float64)
        nonzero = mags > 0
        any_nz = nonzero.any(axis=1)
        last = np.where(
            any_nz, size * size - 1 - np.argmax(nonzero[:, ::-1], axis=1), -1
        )
        level_bits = np.sum(
            np.where(nonzero, 2.0 * np.log2(mags + 1.0) + 2.0, 0.0), axis=1
        )
        bits = np.where(any_nz, 4.0 + (last + 1) + level_bits, 1.0)
        return sse + self._lambda * bits, levels, recons

    def _commit_block(
        self, y0: int, x0: int, size: int, recon: np.ndarray, mode: int
    ) -> None:
        sl = (slice(y0, y0 + size), slice(x0, x0 + size))
        self._recon[sl] = recon
        self._mask[sl] = True
        self._modes[sl] = mode

    def _commit_leaf(self, y0: int, x0: int, size: int, plan: _Plan) -> None:
        """Re-apply a chosen plan's reconstruction (used after inter wins)."""
        _, mode, is_inter, mv, levels = plan
        if is_inter:
            prediction = self._motion_compensate(y0, x0, size, mv)
        else:
            top, left = intra.gather_references(
                self._recon, self._mask, y0, x0, size
            )
            prediction = (
                intra.predict(top, left, mode, size)
                if mode is not None
                else np.full((size, size), 128.0)
            )
        dequant = dequantize(levels[None], self._qp)
        if self.config.use_transform:
            resid = inverse_dct2_batch(dequant)[0]
        else:
            resid = dequant[0]
        recon = np.clip(prediction + resid, 0.0, 255.0)
        self._commit_block(y0, x0, size, recon, mode if mode is not None else intra.DC)

    def _neighbor_mode(self, y: int, x: int) -> Optional[int]:
        if y < 0 or x < 0:
            return None
        if not self._mask[y, x]:
            return None
        mode = int(self._modes[y, x])
        return mode if mode >= 0 else None

    # -- serialization ---------------------------------------------------

    def _write_cu(
        self,
        enc: BinaryEncoder,
        ctx: CodecContexts,
        plan: _Plan,
        y0: int,
        x0: int,
        size: int,
        depth: int,
    ) -> None:
        cfg = self.config
        stats = self._stats
        if cfg.use_partition and size > self._min_cu:
            is_split = plan[0] == "split"
            if stats is None:
                enc.encode_bit(ctx.split, min(depth, 5), 1 if is_split else 0)
            else:
                mark = enc.tell_bits()
                enc.encode_bit(ctx.split, min(depth, 5), 1 if is_split else 0)
                stats.add_bits("split", enc.tell_bits() - mark)
            if is_split:
                if stats is not None:
                    stats.add_count("cu.split")
                half = size // 2
                index = 0
                for qy in (0, 1):
                    for qx in (0, 1):
                        self._write_cu(
                            enc,
                            ctx,
                            plan[1][index],
                            y0 + qy * half,
                            x0 + qx * half,
                            half,
                            depth + 1,
                        )
                        index += 1
                return
        _, mode, is_inter, mv, levels = plan
        if stats is not None:
            stats.add_count("cu.leaf")
            stats.add_count("mode.inter" if is_inter else "mode.intra")
        if self._inter_allowed:
            if stats is None:
                enc.encode_bit(ctx.pred_flag, 0, 1 if is_inter else 0)
            else:
                mark = enc.tell_bits()
                enc.encode_bit(ctx.pred_flag, 0, 1 if is_inter else 0)
                stats.add_bits("pred_flag", enc.tell_bits() - mark)
        if is_inter:
            mark = enc.tell_bits() if stats is not None else 0
            encode_mv(enc, ctx, mv)
            if stats is not None:
                stats.add_bits("mv", enc.tell_bits() - mark)
        elif cfg.use_intra:
            left_mode = self._neighbor_mode_for_signal(y0, x0 - 1)
            top_mode = self._neighbor_mode_for_signal(y0 - 1, x0)
            mark = enc.tell_bits() if stats is not None else 0
            encode_intra_mode(
                enc, ctx, mode, left_mode, top_mode, cfg.profile.all_modes
            )
            if stats is not None:
                stats.add_bits("intra_mode", enc.tell_bits() - mark)
        encode_coeff_block(
            enc,
            ctx,
            levels,
            stats,
            fast=cfg.fast_entropy,
            native_ok=self._native_ok,
        )

    def _neighbor_mode_for_signal(self, y: int, x: int) -> Optional[int]:
        """Neighbour mode exactly as the decoder will know it.

        The planner's ``self._modes`` is already final for the whole
        frame region processed so far, and left/top neighbours always
        precede the current CU in decode order, so the committed map is
        safe to consult during serialization.
        """
        return self._neighbor_mode(y, x)


def _encode_slice_worker(args):
    """Encode one frame as an independent slice (parallel worker body).

    Module-level so process pools can pickle it.  Telemetry registries
    are thread-local and absent in workers, so when instrumentation is
    on the worker builds an explicit :class:`telemetry.EncodeStats` and
    returns it for the session to merge in frame order.

    Returns ``(framed_slice_bytes, frame_sse, stats_or_None)``.
    """
    config, frame, index, qp_base, qp_frac, dither_steps, want_stats = args
    if config.deadline is not None:
        config.deadline.check("frames.encode.worker")
    encoder = FrameEncoder(config)
    encoder._ctu = (
        config.profile.ctu_size if config.use_partition else config.fixed_cu_size
    )
    encoder._min_cu = (
        config.profile.min_cu_size if config.use_partition else config.fixed_cu_size
    )
    encoder._stats = telemetry.EncodeStats() if want_stats else None
    encoder._reference = None
    height, width = frame.shape
    dither = QpDither.advanced(qp_base, qp_frac, dither_steps)
    enc = BinaryEncoder()
    ctx = CodecContexts()
    recon = encoder._encode_frame(
        enc, ctx, pad_frame(frame, encoder._ctu), index, dither
    )
    crop = recon[:height, :width]
    frame_sse = float(
        np.sum((crop.astype(np.float64) - frame.astype(np.float64)) ** 2)
    )
    slice_bytes = frame_slice(enc.finish())
    if encoder._stats is not None:
        encoder._stats.add_bits("slice_hdr", 8 * SLICE_OVERHEAD)
    return slice_bytes, frame_sse, encoder._stats


def encode_frames(
    frames: Sequence[np.ndarray], config: Optional[EncoderConfig] = None
) -> EncodeResult:
    """Convenience wrapper: encode frames with a fresh :class:`FrameEncoder`."""
    return FrameEncoder(config).encode(frames)
