"""RD-optimised frame encoder (intra + optional inter, quad-tree CUs).

The encoder plans each CTU with rate-distortion optimisation (trial
reconstructions against a cheap rate proxy), commits the winning plan
to the reconstruction buffers, and then serialises the plan with the
CABAC-style arithmetic coder.  The decoder in
:mod:`repro.codec.decoder` replays the same syntax, so reconstructions
are bit-exact on both sides.

Stage flags (``use_intra`` / ``use_transform`` / ``use_partition`` /
``use_inter``) exist so the Figure 2(b) ablation can enable the
pipeline one stage at a time.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

import repro.telemetry as telemetry
from repro.codec import intra
from repro.codec.entropy.arithmetic import BinaryEncoder
from repro.codec.profiles import H265_PROFILE, CodecProfile
from repro.resilience.errors import (
    ChecksumError,
    CorruptStreamError,
    TruncatedStreamError,
)
from repro.resilience.framing import SLICE_OVERHEAD, crc32, frame_slice
from repro.codec.quantizer import dequantize, quantize, rd_lambda
from repro.codec.syntax import (
    CodecContexts,
    encode_coeff_block,
    encode_intra_mode,
    encode_mv,
    estimate_mode_bits,
)
from repro.codec.transform import (
    forward_dct2_batch,
    inverse_dct2_batch,
    zigzag_order,
)

MAGIC = b"LV65"
#: Version 2 introduced error-resilient slices: each frame is an
#: independently decodable segment (own arithmetic coder + contexts)
#: wrapped in CRC32 framing, so a damaged slice is detected on decode
#: and -- in concealment mode -- skipped instead of killing the stream.
VERSION = 2

_FLAG_INTRA = 1
_FLAG_TRANSFORM = 2
_FLAG_PARTITION = 4
_FLAG_INTER = 8

_HEADER_FMT = "<4sBBBHHHBBBB"
_HEADER_BODY_SIZE = struct.calcsize(_HEADER_FMT)
# The header carries its own trailing CRC32: a flipped bit in e.g.
# ``n_frames`` or ``width`` cannot be concealed (it re-shapes the whole
# stream), so it must fail loudly rather than silently mis-decode.
_HEADER_SIZE = _HEADER_BODY_SIZE + 4


@dataclass
class EncoderConfig:
    """Knobs for one encoding session."""

    profile: CodecProfile = H265_PROFILE
    qp: float = 30.0
    use_intra: bool = True
    use_transform: bool = True
    use_partition: bool = True
    use_inter: bool = False
    fixed_cu_size: int = 8  # CU grid when partitioning is disabled
    search_range: int = 7  # inter motion search radius (full pel)

    def flags(self) -> int:
        value = 0
        if self.use_intra:
            value |= _FLAG_INTRA
        if self.use_transform:
            value |= _FLAG_TRANSFORM
        if self.use_partition:
            value |= _FLAG_PARTITION
        if self.use_inter:
            value |= _FLAG_INTER
        return value


@dataclass
class EncodeResult:
    """Bitstream plus bookkeeping the rate-control loop uses."""

    data: bytes
    num_values: int
    mse: float
    #: Per-stream instrumentation snapshot (bits per syntax element
    #: class, stage timings, structural counters); populated only while
    #: telemetry is enabled, see :mod:`repro.telemetry`.
    stats: Optional[dict] = None

    @property
    def bits_per_value(self) -> float:
        return 8.0 * len(self.data) / max(1, self.num_values)


def pack_header(
    config: EncoderConfig, width: int, height: int, n_frames: int
) -> bytes:
    """Serialize stream parameters (everything the decoder needs up front)."""
    qp_base = int(np.floor(config.qp))
    qp_frac = int(round((config.qp - qp_base) * 256.0))
    if qp_frac == 256:
        qp_base += 1
        qp_frac = 0
    body = struct.pack(
        _HEADER_FMT,
        MAGIC,
        VERSION,
        config.profile.profile_id,
        config.flags(),
        width,
        height,
        n_frames,
        max(0, min(255, qp_base)),
        qp_frac,
        config.profile.ctu_size if config.use_partition else config.fixed_cu_size,
        config.profile.min_cu_size if config.use_partition else config.fixed_cu_size,
    )
    return body + struct.pack("<I", crc32(body))


def unpack_header(data: bytes) -> Dict[str, int]:
    """Parse the stream header written by :func:`pack_header`."""
    if len(data) < _HEADER_SIZE:
        raise TruncatedStreamError("stream too short for header")
    (
        magic,
        version,
        profile_id,
        flags,
        width,
        height,
        n_frames,
        qp_base,
        qp_frac,
        ctu,
        min_cu,
    ) = struct.unpack_from(_HEADER_FMT, data, 0)
    if magic != MAGIC:
        raise CorruptStreamError("bad magic: not an LLM.265 stream")
    if version != VERSION:
        raise CorruptStreamError(f"unsupported stream version {version}")
    (stored_crc,) = struct.unpack_from("<I", data, _HEADER_BODY_SIZE)
    actual_crc = crc32(data[:_HEADER_BODY_SIZE])
    if stored_crc != actual_crc:
        raise ChecksumError(
            "stream header checksum mismatch",
            expected=stored_crc,
            actual=actual_crc,
        )
    return {
        "profile_id": profile_id,
        "use_intra": bool(flags & _FLAG_INTRA),
        "use_transform": bool(flags & _FLAG_TRANSFORM),
        "use_partition": bool(flags & _FLAG_PARTITION),
        "use_inter": bool(flags & _FLAG_INTER),
        "width": width,
        "height": height,
        "n_frames": n_frames,
        "qp_base": qp_base,
        "qp_frac": qp_frac,
        "ctu": ctu,
        "min_cu": min_cu,
        "header_size": _HEADER_SIZE,
    }


class QpDither:
    """Bresenham dither over CTUs turning a float QP into integer QPs.

    Encoder and decoder both instantiate this with the header's
    (base, frac) pair and call :meth:`next` once per CTU, so the two
    sides always agree on the per-CTU quantizer.
    """

    def __init__(self, qp_base: int, qp_frac: int) -> None:
        self._base = qp_base
        self._frac = qp_frac
        self._accum = 128  # start mid-bucket so frac=0 never bumps

    def next(self) -> int:
        self._accum += self._frac
        if self._accum >= 256:
            self._accum -= 256
            return min(51, self._base + 1)
        return self._base


def pad_frame(frame: np.ndarray, multiple: int) -> np.ndarray:
    """Replicate-pad a frame so both dimensions divide ``multiple``."""
    height, width = frame.shape
    pad_h = (-height) % multiple
    pad_w = (-width) % multiple
    if pad_h == 0 and pad_w == 0:
        return frame
    return np.pad(frame, ((0, pad_h), (0, pad_w)), mode="edge")


# Plan nodes: ("leaf", mode, is_inter, mv, levels) | ("split", [children x4]).
_Plan = Tuple


class FrameEncoder:
    """Encodes a sequence of 8-bit grayscale frames into one bitstream."""

    def __init__(self, config: Optional[EncoderConfig] = None) -> None:
        self.config = config or EncoderConfig()
        if self.config.profile.min_cu_size < 4:
            raise ValueError("minimum CU size is 4")
        self._stats: Optional[telemetry.EncodeStats] = None

    # -- public API ----------------------------------------------------

    def encode(self, frames: Sequence[np.ndarray]) -> EncodeResult:
        """Encode frames; returns bitstream + achieved distortion."""
        frames = [np.asarray(f) for f in frames]
        if not frames:
            raise ValueError("need at least one frame")
        height, width = frames[0].shape
        for frame in frames:
            if frame.shape != (height, width):
                raise ValueError("all frames must share one shape")
            if frame.dtype != np.uint8:
                raise ValueError("frames must be uint8")

        cfg = self.config
        self._ctu = cfg.profile.ctu_size if cfg.use_partition else cfg.fixed_cu_size
        self._min_cu = (
            cfg.profile.min_cu_size if cfg.use_partition else cfg.fixed_cu_size
        )
        header = pack_header(cfg, width, height, len(frames))
        qp_base = header[_HEADER_BODY_SIZE - 4]
        qp_frac = header[_HEADER_BODY_SIZE - 3]
        dither = QpDither(qp_base, qp_frac)

        registry = telemetry.current()
        stats = self._stats = (
            telemetry.EncodeStats() if registry is not None else None
        )
        self._reference: Optional[np.ndarray] = None
        sse_total = 0.0
        slices: List[bytes] = []
        with telemetry.span("frames.encode"):
            for index, frame in enumerate(frames):
                padded = pad_frame(frame, self._ctu)
                # Each frame is one error-resilience slice: a fresh
                # coder and fresh contexts make it independently
                # decodable, so a damaged slice can be concealed
                # without desynchronising the rest of the stream.
                enc = BinaryEncoder()
                ctx = CodecContexts()
                with telemetry.span("frame"):
                    recon = self._encode_frame(enc, ctx, padded, index, dither)
                crop = recon[:height, :width]
                sse_total += float(
                    np.sum((crop.astype(np.float64) - frame.astype(np.float64)) ** 2)
                )
                self._reference = recon
                slices.append(frame_slice(enc.finish()))
                if stats is not None:
                    stats.add_bits("slice_hdr", 8 * SLICE_OVERHEAD)
            payload = b"".join(slices)
        num_values = height * width * len(frames)
        stats_dict: Optional[dict] = None
        if stats is not None:
            # Exact closure: header + attributed element classes + flush
            # telescope to the full stream size in bits.
            stats.add_bits("header", 8 * len(header))
            attributed = stats.total_bits - stats.bits["header"]
            stats.add_bits("flush", 8 * len(payload) - attributed)
            stats.add_count("frames", len(frames))
            stats.publish(registry)
            stats_dict = stats.as_dict()
        return EncodeResult(
            data=header + payload,
            num_values=num_values,
            mse=sse_total / num_values,
            stats=stats_dict,
        )

    # -- per-frame -----------------------------------------------------

    def _encode_frame(
        self,
        enc: BinaryEncoder,
        ctx: CodecContexts,
        frame: np.ndarray,
        frame_index: int,
        dither: QpDither,
    ) -> np.ndarray:
        cfg = self.config
        height, width = frame.shape
        self._frame = frame.astype(np.float64)
        self._recon = np.zeros((height, width), dtype=np.float64)
        self._mask = np.zeros((height, width), dtype=bool)
        self._modes = np.full((height, width), -1, dtype=np.int16)
        self._inter_allowed = (
            cfg.use_inter and frame_index > 0 and self._reference is not None
        )

        stats = self._stats
        for y0 in range(0, height, self._ctu):
            for x0 in range(0, width, self._ctu):
                qp = dither.next()
                self._qp = qp
                self._lambda = rd_lambda(qp)
                if stats is None:
                    _, plan = self._plan_cu(y0, x0, self._ctu, depth=0)
                    self._write_cu(enc, ctx, plan, y0, x0, self._ctu, depth=0)
                    continue
                stats.add_count("ctu")
                stats.add_qp(qp)
                t0 = perf_counter()
                _, plan = self._plan_cu(y0, x0, self._ctu, depth=0)
                t1 = perf_counter()
                self._write_cu(enc, ctx, plan, y0, x0, self._ctu, depth=0)
                stats.add_seconds("plan", t1 - t0)
                stats.add_seconds("write", perf_counter() - t1)
        return self._recon

    # -- planning ------------------------------------------------------

    def _save(self, y0: int, x0: int, size: int):
        sl = (slice(y0, y0 + size), slice(x0, x0 + size))
        return (
            self._recon[sl].copy(),
            self._mask[sl].copy(),
            self._modes[sl].copy(),
        )

    def _restore(self, y0: int, x0: int, size: int, state) -> None:
        sl = (slice(y0, y0 + size), slice(x0, x0 + size))
        self._recon[sl], self._mask[sl], self._modes[sl] = (
            state[0].copy(),
            state[1].copy(),
            state[2].copy(),
        )

    def _plan_cu(self, y0: int, x0: int, size: int, depth: int) -> Tuple[float, _Plan]:
        can_split = self.config.use_partition and size > self._min_cu
        before = self._save(y0, x0, size)
        leaf_cost, leaf_plan = self._plan_leaf(y0, x0, size)
        if not can_split:
            return leaf_cost, leaf_plan
        leaf_state = self._save(y0, x0, size)
        self._restore(y0, x0, size, before)

        half = size // 2
        split_cost = self._lambda  # split flag ~1 bit
        children: List[_Plan] = []
        for qy in (0, 1):
            for qx in (0, 1):
                c_cost, c_plan = self._plan_cu(
                    y0 + qy * half, x0 + qx * half, half, depth + 1
                )
                split_cost += c_cost
                children.append(c_plan)
        if leaf_cost + self._lambda <= split_cost:
            self._restore(y0, x0, size, leaf_state)
            return leaf_cost + self._lambda, leaf_plan
        return split_cost, ("split", children)

    def _plan_leaf(self, y0: int, x0: int, size: int) -> Tuple[float, _Plan]:
        best_cost, best_plan = self._plan_leaf_intra(y0, x0, size)
        if self._inter_allowed:
            inter_cost, inter_plan = self._plan_leaf_inter(y0, x0, size)
            # ~1 bit to signal the prediction type either way.
            if inter_cost < best_cost:
                best_cost, best_plan = inter_cost, inter_plan
                self._commit_leaf(y0, x0, size, best_plan)
            best_cost += self._lambda
        return best_cost, best_plan

    def _plan_leaf_intra(self, y0: int, x0: int, size: int) -> Tuple[float, _Plan]:
        cfg = self.config
        orig = self._frame[y0 : y0 + size, x0 : x0 + size]
        if not cfg.use_intra:
            prediction = np.full((size, size), 128.0)
            cost, levels, recon = self._code_residual(orig, prediction[None])
            plan = ("leaf", None, False, (0, 0), levels[0])
            self._commit_block(y0, x0, size, recon[0], intra.DC)
            return cost[0], plan

        top, left = intra.gather_references(self._recon, self._mask, y0, x0, size)
        left_mode = self._neighbor_mode(y0, x0 - 1)
        top_mode = self._neighbor_mode(y0 - 1, x0)

        modes = list(cfg.profile.coarse_modes())
        preds = intra.predict_batch(top, left, modes, size)
        costs, levels, recons = self._code_residual(orig, preds)
        mode_bits = np.array(
            [estimate_mode_bits(m, left_mode, top_mode) for m in modes]
        )
        costs = costs + self._lambda * mode_bits
        best = int(np.argmin(costs))

        refine = cfg.profile.refine_modes(modes[best])
        if refine:
            r_modes = list(refine)
            r_preds = intra.predict_batch(top, left, r_modes, size)
            r_costs, r_levels, r_recons = self._code_residual(orig, r_preds)
            r_costs = r_costs + self._lambda * np.array(
                [estimate_mode_bits(m, left_mode, top_mode) for m in r_modes]
            )
            r_best = int(np.argmin(r_costs))
            if r_costs[r_best] < costs[best]:
                plan = ("leaf", r_modes[r_best], False, (0, 0), r_levels[r_best])
                self._commit_block(y0, x0, size, r_recons[r_best], r_modes[r_best])
                return float(r_costs[r_best]), plan

        plan = ("leaf", modes[best], False, (0, 0), levels[best])
        self._commit_block(y0, x0, size, recons[best], modes[best])
        return float(costs[best]), plan

    def _plan_leaf_inter(self, y0: int, x0: int, size: int) -> Tuple[float, _Plan]:
        orig = self._frame[y0 : y0 + size, x0 : x0 + size]
        mv = self._motion_search(y0, x0, size)
        prediction = self._motion_compensate(y0, x0, size, mv)
        costs, levels, recons = self._code_residual(orig, prediction[None])
        mv_bits = 2.0 + 2.0 * (np.log2(abs(mv[0]) + 1) + np.log2(abs(mv[1]) + 1))
        cost = float(costs[0]) + self._lambda * mv_bits
        return cost, ("leaf", None, True, mv, levels[0])

    def _motion_search(self, y0: int, x0: int, size: int) -> Tuple[int, int]:
        """Diamond search over the previous reconstructed frame."""
        assert self._reference is not None
        ref = self._reference
        height, width = ref.shape
        orig = self._frame[y0 : y0 + size, x0 : x0 + size]
        radius = self.config.search_range

        def sad(dy: int, dx: int) -> float:
            ry, rx = y0 + dy, x0 + dx
            if ry < 0 or rx < 0 or ry + size > height or rx + size > width:
                return np.inf
            return float(np.abs(ref[ry : ry + size, rx : rx + size] - orig).sum())

        best = (0, 0)
        best_sad = sad(0, 0)
        step = max(1, radius // 2)
        while step >= 1:
            improved = True
            while improved:
                improved = False
                for dy, dx in ((-step, 0), (step, 0), (0, -step), (0, step)):
                    cand = (best[0] + dy, best[1] + dx)
                    if max(abs(cand[0]), abs(cand[1])) > radius:
                        continue
                    value = sad(*cand)
                    if value < best_sad:
                        best, best_sad = cand, value
                        improved = True
            step //= 2
        return best

    def _motion_compensate(
        self, y0: int, x0: int, size: int, mv: Tuple[int, int]
    ) -> np.ndarray:
        assert self._reference is not None
        ry, rx = y0 + mv[0], x0 + mv[1]
        return self._reference[ry : ry + size, rx : rx + size].astype(np.float64)

    def _code_residual(
        self, orig: np.ndarray, predictions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Transform+quantize residuals for a batch of predictions.

        Returns (rd_costs, quantized_levels, reconstructions) with the
        leading batch axis matching ``predictions``.
        """
        cfg = self.config
        if self._stats is not None:
            self._stats.add_count("residual_batches")
        size = orig.shape[0]
        residuals = orig[None] - predictions
        if cfg.use_transform:
            coeffs = forward_dct2_batch(residuals)
        else:
            coeffs = residuals
        levels = quantize(coeffs, self._qp, deadzone=cfg.profile.deadzone)
        dequant = dequantize(levels, self._qp)
        if cfg.use_transform:
            resid_rec = inverse_dct2_batch(dequant)
        else:
            resid_rec = dequant
        recons = np.clip(predictions + resid_rec, 0.0, 255.0)
        sse = np.sum((recons - orig[None]) ** 2, axis=(1, 2))

        # Vectorised rate proxy (mirrors syntax.estimate_coeff_bits).
        zz = zigzag_order(size)
        scanned = levels.reshape(levels.shape[0], -1)[:, zz]
        mags = np.abs(scanned).astype(np.float64)
        nonzero = mags > 0
        any_nz = nonzero.any(axis=1)
        last = np.where(
            any_nz, size * size - 1 - np.argmax(nonzero[:, ::-1], axis=1), -1
        )
        level_bits = np.sum(
            np.where(nonzero, 2.0 * np.log2(mags + 1.0) + 2.0, 0.0), axis=1
        )
        bits = np.where(any_nz, 4.0 + (last + 1) + level_bits, 1.0)
        return sse + self._lambda * bits, levels, recons

    def _commit_block(
        self, y0: int, x0: int, size: int, recon: np.ndarray, mode: int
    ) -> None:
        sl = (slice(y0, y0 + size), slice(x0, x0 + size))
        self._recon[sl] = recon
        self._mask[sl] = True
        self._modes[sl] = mode

    def _commit_leaf(self, y0: int, x0: int, size: int, plan: _Plan) -> None:
        """Re-apply a chosen plan's reconstruction (used after inter wins)."""
        _, mode, is_inter, mv, levels = plan
        if is_inter:
            prediction = self._motion_compensate(y0, x0, size, mv)
        else:
            top, left = intra.gather_references(
                self._recon, self._mask, y0, x0, size
            )
            prediction = (
                intra.predict(top, left, mode, size)
                if mode is not None
                else np.full((size, size), 128.0)
            )
        dequant = dequantize(levels[None], self._qp)
        if self.config.use_transform:
            resid = inverse_dct2_batch(dequant)[0]
        else:
            resid = dequant[0]
        recon = np.clip(prediction + resid, 0.0, 255.0)
        self._commit_block(y0, x0, size, recon, mode if mode is not None else intra.DC)

    def _neighbor_mode(self, y: int, x: int) -> Optional[int]:
        if y < 0 or x < 0:
            return None
        if not self._mask[y, x]:
            return None
        mode = int(self._modes[y, x])
        return mode if mode >= 0 else None

    # -- serialization ---------------------------------------------------

    def _write_cu(
        self,
        enc: BinaryEncoder,
        ctx: CodecContexts,
        plan: _Plan,
        y0: int,
        x0: int,
        size: int,
        depth: int,
    ) -> None:
        cfg = self.config
        stats = self._stats
        if cfg.use_partition and size > self._min_cu:
            is_split = plan[0] == "split"
            if stats is None:
                enc.encode_bit(ctx.split, min(depth, 5), 1 if is_split else 0)
            else:
                mark = enc.tell_bits()
                enc.encode_bit(ctx.split, min(depth, 5), 1 if is_split else 0)
                stats.add_bits("split", enc.tell_bits() - mark)
            if is_split:
                if stats is not None:
                    stats.add_count("cu.split")
                half = size // 2
                index = 0
                for qy in (0, 1):
                    for qx in (0, 1):
                        self._write_cu(
                            enc,
                            ctx,
                            plan[1][index],
                            y0 + qy * half,
                            x0 + qx * half,
                            half,
                            depth + 1,
                        )
                        index += 1
                return
        _, mode, is_inter, mv, levels = plan
        if stats is not None:
            stats.add_count("cu.leaf")
            stats.add_count("mode.inter" if is_inter else "mode.intra")
        if self._inter_allowed:
            if stats is None:
                enc.encode_bit(ctx.pred_flag, 0, 1 if is_inter else 0)
            else:
                mark = enc.tell_bits()
                enc.encode_bit(ctx.pred_flag, 0, 1 if is_inter else 0)
                stats.add_bits("pred_flag", enc.tell_bits() - mark)
        if is_inter:
            mark = enc.tell_bits() if stats is not None else 0
            encode_mv(enc, ctx, mv)
            if stats is not None:
                stats.add_bits("mv", enc.tell_bits() - mark)
        elif cfg.use_intra:
            left_mode = self._neighbor_mode_for_signal(y0, x0 - 1)
            top_mode = self._neighbor_mode_for_signal(y0 - 1, x0)
            mark = enc.tell_bits() if stats is not None else 0
            encode_intra_mode(
                enc, ctx, mode, left_mode, top_mode, cfg.profile.all_modes
            )
            if stats is not None:
                stats.add_bits("intra_mode", enc.tell_bits() - mark)
        encode_coeff_block(enc, ctx, levels, stats)

    def _neighbor_mode_for_signal(self, y: int, x: int) -> Optional[int]:
        """Neighbour mode exactly as the decoder will know it.

        The planner's ``self._modes`` is already final for the whole
        frame region processed so far, and left/top neighbours always
        precede the current CU in decode order, so the committed map is
        safe to consult during serialization.
        """
        return self._neighbor_mode(y, x)


def encode_frames(
    frames: Sequence[np.ndarray], config: Optional[EncoderConfig] = None
) -> EncodeResult:
    """Convenience wrapper: encode frames with a fresh :class:`FrameEncoder`."""
    return FrameEncoder(config).encode(frames)
