"""QP-driven coefficient quantization (HEVC-style exponential step)."""

from __future__ import annotations

import numpy as np

MIN_QP = 0
MAX_QP = 51


def qstep(qp: float) -> float:
    """Quantization step size; doubles every 6 QP like H.264/H.265."""
    return float(2.0 ** ((qp - 4.0) / 6.0))


def quantize(coeffs: np.ndarray, qp: float, deadzone: float = 0.0) -> np.ndarray:
    """Quantize transform coefficients to integer levels.

    ``deadzone`` in [0, 0.5) widens the zero bin, trading a little
    distortion for fewer significant coefficients (the encoder uses a
    small deadzone like real video encoders do).
    """
    step = qstep(qp)
    scaled = coeffs / step
    if deadzone:
        signs = np.sign(scaled)
        mags = np.abs(scaled)
        levels = signs * np.floor(mags + (0.5 - deadzone))
    else:
        levels = np.round(scaled)
    return levels.astype(np.int64)


def dequantize(levels: np.ndarray, qp: float) -> np.ndarray:
    """Reconstruct coefficient values from integer levels."""
    return levels.astype(np.float64) * qstep(qp)


def rd_lambda(qp: float) -> float:
    """Lagrange multiplier for rate-distortion mode decision.

    The HEVC reference software uses lambda ~ 0.85 * 2^((QP-12)/3);
    the same shape works here because distortion is measured in the
    same 8-bit pixel domain.
    """
    return float(0.85 * 2.0 ** ((qp - 12.0) / 3.0))
