"""Rate control: hit a bitrate or distortion target by searching QP.

Video encoders expose exactly these two knobs ("set the bitrate
target", "constrain max distortion"); the paper's experiments sweep
both.  Fractional bitrates come out naturally because the float QP is
dithered across CTUs (see :class:`repro.codec.encoder.QpDither`).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence, Tuple

import numpy as np

import repro.telemetry as telemetry
from repro.codec.encoder import EncodeResult, EncoderConfig, FrameEncoder

MIN_QP = 0.0
MAX_QP = 51.0


def encode_at_qp(
    frames: Sequence[np.ndarray], qp: float, config: Optional[EncoderConfig] = None
) -> EncodeResult:
    """Encode at a specific (possibly fractional) QP."""
    base = config or EncoderConfig()
    telemetry.count("ratecontrol.iterations")
    return FrameEncoder(replace(base, qp=qp)).encode(frames)


def search_qp_for_mse(
    frames: Sequence[np.ndarray],
    max_mse: float,
    config: Optional[EncoderConfig] = None,
    precision: float = 0.25,
) -> Tuple[float, EncodeResult]:
    """Largest QP (fewest bits) whose pixel-domain MSE stays under target.

    Distortion grows monotonically with QP, so a simple bisection over
    the float QP range suffices.
    """
    with telemetry.span("ratecontrol.search_mse"):
        lo, hi = MIN_QP, MAX_QP
        best_qp = lo
        best = encode_at_qp(frames, lo, config)
        if best.mse > max_mse:
            telemetry.count("ratecontrol.target_miss")
            return lo, best  # even the finest quantizer misses the target
        while hi - lo > precision:
            mid = (lo + hi) / 2.0
            result = encode_at_qp(frames, mid, config)
            if result.mse <= max_mse:
                best_qp, best = mid, result
                lo = mid
            else:
                hi = mid
    return best_qp, best


def search_qp_for_bitrate(
    frames: Sequence[np.ndarray],
    bits_per_value: float,
    config: Optional[EncoderConfig] = None,
    precision: float = 0.25,
) -> Tuple[float, EncodeResult]:
    """Smallest QP (best quality) whose rate stays under the bit budget.

    Rate decreases monotonically with QP (up to entropy-coder noise);
    bisection finds the quality-maximising QP within ``precision``.
    """
    with telemetry.span("ratecontrol.search_bitrate"):
        lo, hi = MIN_QP, MAX_QP
        best = encode_at_qp(frames, hi, config)
        best_qp = hi
        if best.bits_per_value > bits_per_value:
            telemetry.count("ratecontrol.target_miss")
            return hi, best  # budget unreachable; return the coarsest encode
        low_result = encode_at_qp(frames, lo, config)
        if low_result.bits_per_value <= bits_per_value:
            return lo, low_result
        while hi - lo > precision:
            mid = (lo + hi) / 2.0
            result = encode_at_qp(frames, mid, config)
            if result.bits_per_value <= bits_per_value:
                best_qp, best = mid, result
                hi = mid
            else:
                lo = mid
    return best_qp, best
