"""Bitstream syntax shared by the encoder and decoder.

Everything here comes in encode/decode pairs that must touch the same
contexts in the same order -- that is the whole contract of CABAC-style
coding.  Keeping both directions in one module makes drift much harder.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.codec.entropy import native
from repro.codec.entropy.arithmetic import BinaryDecoder, BinaryEncoder, ContextSet
from repro.codec.intra import most_probable_modes
from repro.codec.transform import zigzag_scan, zigzag_unscan
from repro.resilience.errors import CorruptStreamError

_NUM_SIZE_CLASSES = 5  # block sizes 4, 8, 16, 32, 64
_LAST_PREFIX = 10
_SIG_CTX_PER_CLASS = 3
_LEVEL_PREFIX = 3
_RUN_PREFIX = 4


def size_class(n: int) -> int:
    """Context size class for an ``n`` x ``n`` block."""
    cls = int(math.log2(n)) - 2
    if not 0 <= cls < _NUM_SIZE_CLASSES:
        raise ValueError(f"unsupported block size {n}")
    return cls


class CodecContexts:
    """All adaptive contexts for one encode or decode session."""

    def __init__(self) -> None:
        self.split = ContextSet(6)  # by quadtree depth
        self.pred_flag = ContextSet(1)  # intra vs inter
        self.mpm_flag = ContextSet(1)
        self.mpm_index = ContextSet(2)
        self.cbf = ContextSet(2)
        self.last = ContextSet(_NUM_SIZE_CLASSES * _LAST_PREFIX)
        self.sig = ContextSet(_NUM_SIZE_CLASSES * _SIG_CTX_PER_CLASS)
        self.level = ContextSet(_NUM_SIZE_CLASSES * _LEVEL_PREFIX)
        self.mv = ContextSet(2 * _RUN_PREFIX)


def _sig_ctx(cls: int, index: int, n: int) -> int:
    """Significance-flag context: position class within the scan."""
    if index < 2:
        bucket = 0
    elif index < n:
        bucket = 1
    else:
        bucket = 2
    return cls * _SIG_CTX_PER_CLASS + bucket


@lru_cache(maxsize=None)
def _sig_buckets(n: int) -> Tuple[int, ...]:
    """Per-scan-position significance bucket (``_sig_ctx`` minus the
    class offset), precomputed once per block size for the fused coder."""
    return tuple(0 if i < 2 else (1 if i < n else 2) for i in range(n * n))


def encode_coeff_block(
    enc: BinaryEncoder, ctx: CodecContexts, levels: np.ndarray, stats=None,
    fast: bool = True, native_ok: bool = True,
) -> None:
    """Entropy-code one quantized coefficient block (any square size).

    ``stats`` (a :class:`repro.telemetry.EncodeStats`, or None) receives
    the exact bit split of this block over the ``cbf`` / ``last`` /
    ``sig`` / ``level`` element classes, measured with
    :meth:`BinaryEncoder.tell_bits` deltas (sign bins are folded into
    ``level``).

    ``fast=False`` forces the primitive-call loop even without stats --
    used by benchmarks to reproduce the pre-optimisation write path and
    by tests to pin the fused coder against the primitives.

    ``native_ok=False`` keeps the fast path on the pure-Python fused
    coder even when the compiled write kernel is loaded -- the
    ``encode="python"`` rung, and the reference side of the native
    identity gates.
    """
    n = levels.shape[0]
    cls = size_class(n)
    scanned = zigzag_scan(levels)
    nz = np.nonzero(scanned)[0]
    track = stats is not None
    if fast and not track:
        # Fast path: same bin sequence, emitted by the compiled write
        # kernel when one is available, else the fused pure-Python scan
        # coder (bit-exact with the instrumented loop below by
        # construction and by test).
        if nz.size == 0:
            enc.encode_bit(ctx.cbf, 0, 0)
            return
        last = int(nz[-1])
        if native_ok and native.write(
            enc,
            scanned,
            last,
            ctx.cbf.probs,
            0,
            ctx.last.probs,
            cls * _LAST_PREFIX,
            _LAST_PREFIX,
            1,
            ctx.sig.probs,
            cls * _SIG_CTX_PER_CLASS,
            _sig_buckets(n),
            ctx.level.probs,
            cls * _LEVEL_PREFIX,
            _LEVEL_PREFIX,
            1,
        ):
            return
        enc.encode_bit(ctx.cbf, 0, 1)
        enc.encode_ueg(ctx.last, cls * _LAST_PREFIX, last, _LAST_PREFIX, k=1)
        enc.encode_coeff_scan(
            scanned.tolist(),
            last,
            ctx.sig.probs,
            cls * _SIG_CTX_PER_CLASS,
            _sig_buckets(n),
            ctx.level.probs,
            cls * _LEVEL_PREFIX,
            _LEVEL_PREFIX,
            1,
        )
        return
    if track:
        mark = enc.tell_bits()
        stats.add_count("coeff_blocks")
    if nz.size == 0:
        enc.encode_bit(ctx.cbf, 0, 0)
        if track:
            stats.add_bits("cbf", enc.tell_bits() - mark)
        return
    enc.encode_bit(ctx.cbf, 0, 1)
    if track:
        now = enc.tell_bits()
        stats.add_bits("cbf", now - mark)
        mark = now
    last = int(nz[-1])
    enc.encode_ueg(ctx.last, cls * _LAST_PREFIX, last, _LAST_PREFIX, k=1)
    if track:
        now = enc.tell_bits()
        stats.add_bits("last", now - mark)
        mark = now
    sig_bits = 0
    level_bits = 0
    for i in range(last, -1, -1):
        level = int(scanned[i])
        if i != last:  # significance of the last coefficient is implied
            enc.encode_bit(ctx.sig, _sig_ctx(cls, i, n), 1 if level else 0)
            if track:
                now = enc.tell_bits()
                sig_bits += now - mark
                mark = now
        if level:
            magnitude = abs(level)
            enc.encode_ueg(
                ctx.level, cls * _LEVEL_PREFIX, magnitude - 1, _LEVEL_PREFIX, k=1
            )
            enc.encode_bypass(1 if level < 0 else 0)
            if track:
                now = enc.tell_bits()
                level_bits += now - mark
                mark = now
    if track:
        stats.add_bits("sig", sig_bits)
        stats.add_bits("level", level_bits)
        stats.add_count("coeff_nonzero", int(nz.size))


def decode_coeff_block(
    dec: BinaryDecoder, ctx: CodecContexts, n: int
) -> np.ndarray:
    """Inverse of :func:`encode_coeff_block`; returns an ``n`` x ``n`` grid."""
    cls = size_class(n)
    scanned = np.zeros(n * n, dtype=np.int64)
    if dec.decode_bit(ctx.cbf, 0) == 0:
        return zigzag_unscan(scanned, n)
    last = dec.decode_ueg(ctx.last, cls * _LAST_PREFIX, _LAST_PREFIX, k=1)
    if last >= n * n:
        raise CorruptStreamError("corrupt stream: last coefficient out of range")
    for i in range(last, -1, -1):
        if i != last:
            significant = dec.decode_bit(ctx.sig, _sig_ctx(cls, i, n))
            if not significant:
                continue
        magnitude = (
            dec.decode_ueg(ctx.level, cls * _LEVEL_PREFIX, _LEVEL_PREFIX, k=1) + 1
        )
        sign = dec.decode_bypass()
        scanned[i] = -magnitude if sign else magnitude
    return zigzag_unscan(scanned, n)


def decode_coeff_block_scanned(
    dec: BinaryDecoder, ctx: CodecContexts, n: int
) -> Optional[np.ndarray]:
    """Fast-path inverse of :func:`encode_coeff_block`.

    Consumes exactly the bins :func:`decode_coeff_block` would (same
    contexts, same order, same :class:`CorruptStreamError` conditions)
    but returns the levels still in *scan order* -- ``None`` for an
    all-zero block (cbf = 0), else a length ``n*n`` int64 vector --
    leaving the zigzag unscan to the caller, which batches it across
    every same-size leaf of the frame.  The bin draining itself runs
    through the compiled scan kernel when one is available
    (:mod:`repro.codec.entropy.native`), else the fused pure-Python
    :meth:`BinaryDecoder.decode_coeff_scan` loop -- both bit-exact.
    """
    cls = size_class(n)
    if dec.decode_bit(ctx.cbf, 0) == 0:
        return None
    last = dec.decode_ueg(ctx.last, cls * _LAST_PREFIX, _LAST_PREFIX, k=1)
    if last >= n * n:
        raise CorruptStreamError("corrupt stream: last coefficient out of range")
    if native.available():
        fast = native.scan(
            dec,
            n * n,
            last,
            ctx.sig.probs,
            cls * _SIG_CTX_PER_CLASS,
            _sig_buckets(n),
            ctx.level.probs,
            cls * _LEVEL_PREFIX,
            _LEVEL_PREFIX,
            1,
        )
        if fast is not None:
            return fast
    scanned = dec.decode_coeff_scan(
        n * n,
        last,
        ctx.sig.probs,
        cls * _SIG_CTX_PER_CLASS,
        _sig_buckets(n),
        ctx.level.probs,
        cls * _LEVEL_PREFIX,
        _LEVEL_PREFIX,
        1,
    )
    return np.asarray(scanned, dtype=np.int64)


def estimate_coeff_bits(levels: np.ndarray) -> float:
    """Cheap rate proxy used during RD mode decision (no coder state)."""
    scanned = zigzag_scan(levels)
    nz = np.nonzero(scanned)[0]
    if nz.size == 0:
        return 1.0
    last = int(nz[-1])
    mags = np.abs(scanned[: last + 1])
    nonzero = mags[mags > 0]
    # 1 bit/sig-flag, ~2*log2(m)+2 bits per level (unary-Golomb-ish), sign.
    level_bits = np.sum(2.0 * np.log2(nonzero.astype(np.float64) + 1.0) + 2.0)
    return 4.0 + (last + 1) + float(level_bits)


def encode_intra_mode(
    enc: BinaryEncoder,
    ctx: CodecContexts,
    mode: int,
    left_mode: Optional[int],
    top_mode: Optional[int],
    all_modes: Tuple[int, ...],
) -> None:
    """Signal an intra mode with the 3-entry most-probable-mode scheme."""
    mpm = most_probable_modes(left_mode, top_mode)
    if mode in mpm:
        enc.encode_bit(ctx.mpm_flag, 0, 1)
        index = mpm.index(mode)
        enc.encode_bit(ctx.mpm_index, 0, 1 if index > 0 else 0)
        if index > 0:
            enc.encode_bit(ctx.mpm_index, 1, index - 1)
        return
    enc.encode_bit(ctx.mpm_flag, 0, 0)
    remaining = [m for m in all_modes if m not in mpm]
    width = max(1, (len(remaining) - 1).bit_length())
    enc.encode_bypass_bits(remaining.index(mode), width)


def decode_intra_mode(
    dec: BinaryDecoder,
    ctx: CodecContexts,
    left_mode: Optional[int],
    top_mode: Optional[int],
    all_modes: Tuple[int, ...],
) -> int:
    """Inverse of :func:`encode_intra_mode`."""
    mpm = most_probable_modes(left_mode, top_mode)
    if dec.decode_bit(ctx.mpm_flag, 0):
        if dec.decode_bit(ctx.mpm_index, 0) == 0:
            return mpm[0]
        return mpm[1 + dec.decode_bit(ctx.mpm_index, 1)]
    remaining = [m for m in all_modes if m not in mpm]
    width = max(1, (len(remaining) - 1).bit_length())
    index = dec.decode_bypass_bits(width)
    if index >= len(remaining):
        raise CorruptStreamError("corrupt stream: intra mode index out of range")
    return remaining[index]


def estimate_mode_bits(
    mode: int, left_mode: Optional[int], top_mode: Optional[int]
) -> float:
    """Rate proxy for intra mode signalling."""
    mpm = most_probable_modes(left_mode, top_mode)
    return 2.0 if mode in mpm else 6.5


def estimate_mode_bits_many(
    modes: Sequence[int], left_mode: Optional[int], top_mode: Optional[int]
) -> np.ndarray:
    """Vector form of :func:`estimate_mode_bits` for one candidate list.

    Computes the MPM set once instead of per candidate; each entry is
    exactly ``estimate_mode_bits(mode, left_mode, top_mode)``.
    """
    mpm = most_probable_modes(left_mode, top_mode)
    # A plain comprehension beats np.isin by ~10x for an 11-candidate
    # list against a 3-entry MPM set (this runs once per leaf trial).
    return np.array([2.0 if m in mpm else 6.5 for m in modes])


def encode_mv(enc: BinaryEncoder, ctx: CodecContexts, mv: Tuple[int, int]) -> None:
    """Code a motion vector (raw, zero-predicted)."""
    for axis, component in enumerate(mv):
        magnitude = abs(component)
        enc.encode_ueg(ctx.mv, axis * _RUN_PREFIX, magnitude, _RUN_PREFIX, k=1)
        if magnitude:
            enc.encode_bypass(1 if component < 0 else 0)


def decode_mv(dec: BinaryDecoder, ctx: CodecContexts) -> Tuple[int, int]:
    """Inverse of :func:`encode_mv`."""
    out: List[int] = []
    for axis in range(2):
        magnitude = dec.decode_ueg(ctx.mv, axis * _RUN_PREFIX, _RUN_PREFIX, k=1)
        if magnitude and dec.decode_bypass():
            magnitude = -magnitude
        out.append(magnitude)
    return out[0], out[1]
