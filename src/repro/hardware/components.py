"""Hardware component catalog calibrated to the paper's numbers.

Sources inside the paper:

- Figure 12: RTX 3090 die = 628 mm^2 (8 nm) -> 398 mm^2 scaled to 7 nm;
  Mellanox CX5 NIC = 12.14 mm x 13.98 mm = 169.7 mm^2; an H.264
  enc+dec pair at 100 Gbps fits in < 2 mm^2.
- Table 3: per-codec power/area/energy at 100 Gbps aggregate
  throughput (ASAP7 synthesis results).
- Section 6.2: a single codec instance handles 3840x2160 at 60 fps.

Where the paper omits a value (CPU die area, per-block encoder
breakdown percentages) the entry is marked ``assumed=True``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

#: Pixels/second one codec instance sustains (4K60, 8-bit Luma).
INSTANCE_PIXELS_PER_S = 3840 * 2160 * 60
#: Input bits/second for one instance (8-bit samples).
INSTANCE_GBPS = INSTANCE_PIXELS_PER_S * 8 / 1e9


@dataclass(frozen=True)
class CodecComponent:
    """One synthesized codec block at 100 Gbps aggregate throughput."""

    name: str
    power_w: float
    area_mm2: float
    energy_pj_per_bit: float
    throughput_gbps: float = 100.0
    video_capable: bool = True

    @property
    def instances(self) -> int:
        """Parallel 4K60 instances aggregated to reach the throughput."""
        return max(1, math.ceil(self.throughput_gbps / INSTANCE_GBPS))

    @property
    def area_per_instance_mm2(self) -> float:
        return self.area_mm2 / self.instances


#: Table 3 rows, verbatim.
CODEC_COMPONENTS: Dict[str, CodecComponent] = {
    "h264-enc": CodecComponent("h264-enc", 1.1, 0.96, 167.8),
    "h264-dec": CodecComponent("h264-dec", 1.0, 0.97, 154.3),
    "h265-enc": CodecComponent("h265-enc", 11.0, 11.7, 1707.5),
    "h265-dec": CodecComponent("h265-dec", 4.3, 2.1, 665.4),
    "three-in-one-enc": CodecComponent("three-in-one-enc", 0.78, 0.70, 97.8),
    "three-in-one-dec": CodecComponent("three-in-one-dec", 0.58, 0.58, 63.5),
}


#: Baseline hardware compressors for the Figure 15 comparison.  The
#: paper synthesizes open-source RTL (Atalanta CABAC, Deflate/LZ4/
#: Huffman cores) with the same flow; it does not print their numbers,
#: so these are assumed values consistent with published compressor
#: ASICs (all at 100 Gbps aggregate, pairs = enc + dec).
BASELINE_HW_CODECS: Dict[str, CodecComponent] = {
    "huffman-enc": CodecComponent("huffman-enc", 0.35, 0.22, 28.0),
    "huffman-dec": CodecComponent("huffman-dec", 0.30, 0.20, 24.0),
    "deflate-enc": CodecComponent("deflate-enc", 1.4, 1.1, 118.0),
    "deflate-dec": CodecComponent("deflate-dec", 0.7, 0.5, 58.0),
    "lz4-enc": CodecComponent("lz4-enc", 0.6, 0.45, 49.0),
    "lz4-dec": CodecComponent("lz4-dec", 0.35, 0.25, 28.0),
    "cabac-enc": CodecComponent("cabac-enc", 0.55, 0.40, 45.0),
    "cabac-dec": CodecComponent("cabac-dec", 0.50, 0.38, 42.0),
}


@dataclass(frozen=True)
class DeviceArea:
    """A datacenter device's die area (7 nm-normalised)."""

    name: str
    area_mm2: float
    native_node_nm: int
    assumed: bool = False  # True when the paper does not state the number


#: Samsung 8 nm -> 7 nm density scaling used by the paper (628 -> 398).
_GPU_SCALE_TO_7NM = 398.0 / 628.0

DEVICES: Dict[str, DeviceArea] = {
    "rtx3090-native": DeviceArea("rtx3090-native", 628.0, 8),
    "rtx3090-7nm": DeviceArea("rtx3090-7nm", 628.0 * _GPU_SCALE_TO_7NM, 7),
    "cx5-nic": DeviceArea("cx5-nic", 12.14 * 13.98, 16),
    # The paper plots a CPU but does not print its area; a Zen-2-class
    # server die (~416 mm^2 across chiplets) is assumed.
    "server-cpu": DeviceArea("server-cpu", 416.0, 7, assumed=True),
}


#: Encoder die-area distribution by block (Figure 12 zoom-ins show
#: inter prediction + frame buffer dominating; exact splits are not
#: printed, so these fractions are assumed and sum to 1).
ENCODER_AREA_BREAKDOWN: Dict[str, float] = {
    "inter-prediction": 0.38,
    "frame-buffer": 0.24,
    "intra-prediction": 0.12,
    "transform-quant": 0.10,
    "entropy-coder": 0.08,
    "control-other": 0.08,
}


def aggregate_to_bandwidth(
    per_instance_area_mm2: float, target_gbps: float
) -> Tuple[int, float]:
    """(instances, total area) to sustain ``target_gbps`` of tensor input."""
    if target_gbps <= 0:
        raise ValueError("target bandwidth must be positive")
    count = max(1, math.ceil(target_gbps / INSTANCE_GBPS))
    return count, count * per_instance_area_mm2


def intra_only_area_fraction() -> float:
    """Area fraction kept when inter prediction + frame buffer go away.

    This is the arithmetic behind the three-in-one codec: dropping the
    video-only blocks keeps ~38% of the encoder (intra + transform +
    entropy + control), which is why a tensor-specialised codec is so
    much smaller than the H.265 row in Table 3.
    """
    dropped = (
        ENCODER_AREA_BREAKDOWN["inter-prediction"]
        + ENCODER_AREA_BREAKDOWN["frame-buffer"]
    )
    return 1.0 - dropped


def area_ratio(device: str, codec: str) -> float:
    """How many codec pairs fit in one device (Figure 12 headline).

    ``area_ratio('rtx3090-7nm', 'h264')`` reproduces the paper's
    "199x smaller than the GPU" claim.
    """
    enc = CODEC_COMPONENTS[f"{codec}-enc"].area_mm2
    dec = CODEC_COMPONENTS[f"{codec}-dec"].area_mm2
    return DEVICES[device].area_mm2 / (enc + dec)
