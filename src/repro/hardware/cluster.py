"""Analytical distributed-training cluster model (Figure 16).

Maps a hardware configuration (GPUs, NIC bandwidth, codecs, DP/PP
ranks) and an LLM workload to step time, normalized performance, die
area, and energy.  Reproduces the paper's two plots:

- (a) area-budget vs normalized-performance Pareto frontiers for
  uncompressed / NVENC / three-in-one scenarios.  The mechanism: NIC
  area scales with wire bandwidth, so compression lets a config buy
  cheaper NICs (or more GPUs) at the same effective bandwidth -- the
  "compress ratio determines the upper bound for speedup" caption.
- (b) energy-efficiency gain of compressed communication as the model
  grows: bigger models need more memory-capped GPUs and wider hidden
  states, so communication's share of time and power grows with scale.

Calibration anchors: RTX 3090-class GPUs at 7 nm (Figure 12), CX5 NIC
area per 100 Gbps, Table 3 codec costs, NVENC's 1100 MB/s ceiling
(Section 6.1), NCCL's 5120 pJ/bit (Table 3).  Constants the paper does
not print (compute efficiency, overlap fraction, NIC power) are
assumed and documented inline.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.hardware.components import CODEC_COMPONENTS, DEVICES
from repro.hardware.energy import NCCL_PJ_PER_BIT
from repro.hardware.nic import NIC_POWER_W_PER_100G

#: Fraction of communication hidden behind compute (assumed; the paper
#: cites 30-95% of training cost as communication, i.e. mostly exposed).
OVERLAP = 0.0
#: NIC die area per 100 Gbps of wire bandwidth (CX5, Figure 12).
NIC_AREA_PER_100G = DEVICES["cx5-nic"].area_mm2


@dataclass(frozen=True)
class GPUSpec:
    """An RTX-3090-class accelerator normalised to 7 nm."""

    name: str = "rtx3090-7nm"
    area_mm2: float = DEVICES["rtx3090-7nm"].area_mm2
    fp16_tflops: float = 71.0
    power_w: float = 350.0
    memory_gb: float = 24.0
    compute_efficiency: float = 0.45  # sustained MFU (assumed)


@dataclass(frozen=True)
class CodecOption:
    """A communication-compression scenario.

    ``max_payload_gbps`` caps the tensor-side throughput (NVENC's
    1100 MB/s ceiling); ``area_mm2_per_100g`` is silicon per 100 Gbps
    of payload capacity (zero for NVENC: it is already on the die).
    """

    name: str
    compression_ratio: float
    max_payload_gbps: float
    area_mm2_per_100g: float
    enc_pj_per_bit: float
    dec_pj_per_bit: float


#: The three Figure 16(a) scenarios.  Compression reaches the paper's
#: activation/gradient ratio of 16 -> 3.5 bits (~4.57x).
UNCOMPRESSED = CodecOption("uncompressed", 1.0, float("inf"), 0.0, 0.0, 0.0)
NVENC_OPTION = CodecOption(
    "nvenc",
    16.0 / 3.5,
    1100e6 * 8 / 1e9,  # Section 6.1: ~8.8 Gbps of tensor payload
    0.0,
    CODEC_COMPONENTS["h265-enc"].energy_pj_per_bit,
    CODEC_COMPONENTS["h265-dec"].energy_pj_per_bit,
)
THREE_IN_ONE_OPTION = CodecOption(
    "three-in-one",
    16.0 / 3.5,
    float("inf"),  # replicable: 1.28 mm^2 buys another 100 Gbps
    CODEC_COMPONENTS["three-in-one-enc"].area_mm2
    + CODEC_COMPONENTS["three-in-one-dec"].area_mm2,
    CODEC_COMPONENTS["three-in-one-enc"].energy_pj_per_bit,
    CODEC_COMPONENTS["three-in-one-dec"].energy_pj_per_bit,
)


def transformer_hidden(params: float) -> int:
    """Hidden width from parameter count (12 L h^2, L ~ h/128)."""
    return int((params * 128.0 / 12.0) ** (1.0 / 3.0))


@dataclass(frozen=True)
class Workload:
    """A transformer training job."""

    name: str = "llama-7b"
    params: float = 7e9
    hidden: int = 4096
    seq_len: int = 2048
    micro_batch: int = 1
    global_batch: int = 32  # sequences per step

    @property
    def layers(self) -> int:
        return max(4, self.hidden // 128)

    @property
    def tokens_per_step(self) -> float:
        return self.global_batch * self.seq_len

    @classmethod
    def from_params(cls, params: float, **kwargs) -> "Workload":
        return cls(
            name=f"{params / 1e9:.0f}B",
            params=params,
            hidden=max(1024, transformer_hidden(params)),
            **kwargs,
        )


@dataclass(frozen=True)
class ClusterConfig:
    """One point in the Figure 16(a) sweep."""

    dp: int
    pp: int
    nic_gbps: float
    codec: CodecOption
    tp: int = 1
    gpu: GPUSpec = GPUSpec()

    @property
    def num_gpus(self) -> int:
        return self.dp * self.pp * self.tp

    @property
    def compressed_path_gbps(self) -> float:
        """Payload rate through the codec (capped by its throughput)."""
        return min(
            self.nic_gbps * self.codec.compression_ratio,
            self.codec.max_payload_gbps,
        )

    @property
    def uses_codec(self) -> bool:
        """The stack only routes through the codec when it wins.

        This is what makes the NVENC scenario sane on fast links: at
        1100 MB/s the engine would *lose* to a raw 100 Gbps NIC, so
        software falls back to uncompressed transmission there.
        """
        return self.compressed_path_gbps > self.nic_gbps

    @property
    def payload_capacity_gbps(self) -> float:
        """Tensor bytes/s the node can push (best of raw / codec path)."""
        return max(self.nic_gbps, self.compressed_path_gbps)

    @property
    def area_mm2(self) -> float:
        nic_area = NIC_AREA_PER_100G * self.nic_gbps / 100.0
        codec_area = 0.0
        if self.codec.area_mm2_per_100g:
            codec_area = (
                self.codec.area_mm2_per_100g * self.payload_capacity_gbps / 100.0
            )
        return self.num_gpus * (self.gpu.area_mm2 + nic_area + codec_area)


@dataclass
class ClusterPoint:
    """Evaluated configuration."""

    config: ClusterConfig
    step_time_s: float
    tokens_per_s: float
    power_w: float
    comm_fraction: float

    @property
    def area_mm2(self) -> float:
        return self.config.area_mm2

    @property
    def tokens_per_joule(self) -> float:
        return self.tokens_per_s / self.power_w


def per_step_comm_bytes(
    workload: Workload, dp: int, pp: int, tp: int = 1
) -> Tuple[float, float, float]:
    """(data-parallel, pipeline, tensor-parallel) bytes/GPU/step (FP16)."""
    dp_bytes = 0.0
    if dp > 1:
        stage_param_bytes = 2.0 * workload.params / (pp * tp)
        dp_bytes = 2.0 * (dp - 1) / dp * stage_param_bytes  # ring all-reduce
    pp_bytes = 0.0
    if pp > 1:
        micro_batches = max(1, workload.global_batch // (dp * workload.micro_batch))
        boundary = workload.micro_batch * workload.seq_len * workload.hidden * 2.0
        pp_bytes = micro_batches * boundary * 2.0  # activations + their grads
    tp_bytes = 0.0
    if tp > 1:
        # Megatron-style: 4 all-reduces of (tokens x hidden) per layer,
        # forward and backward, over this GPU's share of the batch.
        tokens = workload.tokens_per_step / dp
        layers = workload.layers / pp
        tp_bytes = (
            4.0 * layers * tokens * workload.hidden * 2.0 * 2.0 * (tp - 1) / tp
        )
    return dp_bytes, pp_bytes, tp_bytes


def evaluate(workload: Workload, config: ClusterConfig) -> ClusterPoint:
    """Step time / throughput / power for one configuration."""
    gpu = config.gpu
    compute_flops = 6.0 * workload.params * workload.tokens_per_step
    compute_time = compute_flops / (
        config.num_gpus * gpu.fp16_tflops * 1e12 * gpu.compute_efficiency
    )

    dp_bytes, pp_bytes, tp_bytes = per_step_comm_bytes(
        workload, config.dp, config.pp, config.tp
    )
    comm_bytes = dp_bytes + pp_bytes + tp_bytes
    comm_time = comm_bytes * 8.0 / (config.payload_capacity_gbps * 1e9)
    step_time = compute_time + (1.0 - OVERLAP) * comm_time

    codec = config.codec
    ratio = codec.compression_ratio if config.uses_codec else 1.0
    wire_bits = comm_bytes * 8.0 / ratio * config.num_gpus
    payload_bits = comm_bytes * 8.0 * config.num_gpus
    codec_pj = (
        codec.enc_pj_per_bit + codec.dec_pj_per_bit if config.uses_codec else 0.0
    )
    comm_energy_per_step = (
        wire_bits * NCCL_PJ_PER_BIT + payload_bits * codec_pj
    ) * 1e-12
    nic_power = NIC_POWER_W_PER_100G * config.nic_gbps / 100.0 * config.num_gpus
    power = (
        config.num_gpus * gpu.power_w + nic_power + comm_energy_per_step / step_time
    )

    return ClusterPoint(
        config=config,
        step_time_s=step_time,
        tokens_per_s=workload.tokens_per_step / step_time,
        power_w=power,
        comm_fraction=(1.0 - OVERLAP) * comm_time / step_time,
    )


DEFAULT_NIC_CHOICES = (4.0, 10.0, 25.0, 50.0, 100.0, 200.0, 400.0)


def sweep(
    workload: Workload,
    codec: CodecOption,
    dp_ranks: Iterable[int] = (1, 2, 4, 8, 16, 32, 64),
    pp_ranks: Iterable[int] = (1, 2, 4, 8),
    nic_choices: Iterable[float] = DEFAULT_NIC_CHOICES,
) -> List[ClusterPoint]:
    """Evaluate every (dp, pp, nic bandwidth) combination for a scenario."""
    points = []
    for dp, pp, nic in itertools.product(dp_ranks, pp_ranks, nic_choices):
        if dp * pp < 2:
            continue
        config = ClusterConfig(dp=dp, pp=pp, nic_gbps=nic, codec=codec)
        points.append(evaluate(workload, config))
    return points


def pareto_frontier(points: List[ClusterPoint]) -> List[ClusterPoint]:
    """Area-vs-throughput Pareto set, sorted by area."""
    ordered = sorted(points, key=lambda p: (p.area_mm2, -p.tokens_per_s))
    frontier: List[ClusterPoint] = []
    best = -np.inf
    for point in ordered:
        if point.tokens_per_s > best:
            frontier.append(point)
            best = point.tokens_per_s
    return frontier


def performance_at_budget(
    frontier: List[ClusterPoint], area_budget_mm2: float
) -> Optional[ClusterPoint]:
    """Best frontier point within an area budget."""
    feasible = [p for p in frontier if p.area_mm2 <= area_budget_mm2]
    return max(feasible, key=lambda p: p.tokens_per_s) if feasible else None


def gpus_required(params: float, gpu: GPUSpec = GPUSpec()) -> int:
    """Memory-capped GPU count: ~16 bytes/param (weights+grads+Adam)."""
    return max(2, int(np.ceil(params * 16.0 / (gpu.memory_gb * 1e9))))


def energy_efficiency_vs_model_size(
    model_sizes: Iterable[float],
    codec: CodecOption,
    nic_gbps: float = 100.0,
    dp: int = 8,
) -> Dict[float, Dict[str, float]]:
    """Figure 16(b): compression's energy gain grows with model scale.

    GPU count follows memory need, pipeline depth grows with the model,
    and hidden width (hence pipeline traffic) grows ~ params^(1/3), so
    communication's share of time/power rises with scale.
    """
    out: Dict[float, Dict[str, float]] = {}
    for params in model_sizes:
        workload = Workload.from_params(params)
        gpus = gpus_required(params)
        # Tensor parallelism widens with the hidden state (Megatron
        # practice); the remainder is pipeline depth.
        tp = max(1, workload.hidden // 4096)
        pp = max(1, int(np.ceil(gpus / (dp * tp))))
        base = evaluate(
            workload, ClusterConfig(dp, pp, nic_gbps, UNCOMPRESSED, tp=tp)
        )
        comp = evaluate(workload, ClusterConfig(dp, pp, nic_gbps, codec, tp=tp))
        out[params] = {
            "gain": comp.tokens_per_joule / base.tokens_per_joule,
            "comm_fraction_uncompressed": base.comm_fraction,
            "comm_fraction_compressed": comp.comm_fraction,
        }
    return out
