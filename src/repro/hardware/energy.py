"""Energy accounting: compression versus communication (Section 7.3).

The headline arithmetic reproduced here:

- three-in-one enc+dec energy is ``5120 / (97.8 + 63.5) = 31.7x``
  cheaper than moving the same bit through NCCL end-to-end;
- at a 5x compression ratio the end-to-end energy win is
  ``5120 / (5120/5 + 97.8 + 63.5) = 4.32x``.
"""

from __future__ import annotations

from typing import Tuple

from repro.hardware.components import CODEC_COMPONENTS

#: Measured NCCL end-to-end transfer energy (Table 3).
NCCL_PJ_PER_BIT = 5120.0


def codec_pair_pj_per_bit(codec: str) -> Tuple[float, float]:
    """(encode, decode) energy per bit for a codec family name."""
    enc = CODEC_COMPONENTS[f"{codec}-enc"].energy_pj_per_bit
    dec = CODEC_COMPONENTS[f"{codec}-dec"].energy_pj_per_bit
    return enc, dec


def compression_vs_transfer_ratio(codec: str = "three-in-one") -> float:
    """How much cheaper compressing a bit is than transmitting it."""
    enc, dec = codec_pair_pj_per_bit(codec)
    return NCCL_PJ_PER_BIT / (enc + dec)


def compression_energy_ratio(
    compression_ratio: float, codec: str = "three-in-one"
) -> float:
    """End-to-end energy win of compressed vs raw transmission.

    raw:        NCCL_PJ_PER_BIT per payload bit
    compressed: NCCL_PJ_PER_BIT / ratio (fewer wire bits) + enc + dec
    """
    if compression_ratio <= 0:
        raise ValueError("compression ratio must be positive")
    enc, dec = codec_pair_pj_per_bit(codec)
    compressed = NCCL_PJ_PER_BIT / compression_ratio + enc + dec
    return NCCL_PJ_PER_BIT / compressed


def transfer_energy_joules(
    payload_bytes: float,
    compression_ratio: float = 1.0,
    codec: str = "",
) -> float:
    """Energy to move ``payload_bytes`` once across the NCCL link.

    With a codec name set, the payload is compressed before the wire
    and decompressed after; with ``codec=''`` the transfer is raw.
    """
    bits = payload_bytes * 8.0
    if not codec:
        return bits * NCCL_PJ_PER_BIT * 1e-12
    enc, dec = codec_pair_pj_per_bit(codec)
    per_bit = NCCL_PJ_PER_BIT / compression_ratio + enc + dec
    return bits * per_bit * 1e-12
