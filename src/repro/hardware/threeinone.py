"""The three-in-one codec model (Section 7).

An H.264-derived design whose shared pipeline (intra prediction,
transform, quantization, entropy coding, data-type alignment) serves
tensors, images, *and* video, while the video-only blocks (inter
prediction, motion estimation, frame buffer) stay in a separate
partition that idles during tensor work.  The shared pipeline is sized
for 100 Gbps tensor throughput; the video partition for 8K60.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.hardware.components import CODEC_COMPONENTS, CodecComponent


class InputKind(enum.Enum):
    """The three input types the codec accepts."""

    TENSOR = "tensor"
    IMAGE = "image"
    VIDEO = "video"


#: Fraction of total area in the shared (reused) pipeline (Section 7).
SHARED_PIPELINE_FRACTION = 0.80


@dataclass(frozen=True)
class ThreeInOneCodec:
    """Area/power/throughput view of the proposed codec."""

    component: CodecComponent
    tensor_gbps: float = 100.0
    video_pixels_per_s: float = 7680 * 4320 * 60  # 8K60
    supports_mixed_precision: bool = True  # FP16/BF16/MX alignment unit

    @property
    def shared_area_mm2(self) -> float:
        return self.component.area_mm2 * SHARED_PIPELINE_FRACTION

    @property
    def video_only_area_mm2(self) -> float:
        return self.component.area_mm2 * (1.0 - SHARED_PIPELINE_FRACTION)

    def active_blocks(self, kind: InputKind) -> Tuple[str, ...]:
        """Which partitions power on for an input type."""
        if kind == InputKind.VIDEO:
            return ("alignment", "shared-pipeline", "video-pipeline")
        return ("alignment", "shared-pipeline")

    def active_area_mm2(self, kind: InputKind) -> float:
        """Area drawing power while processing ``kind``."""
        if kind == InputKind.VIDEO:
            return self.component.area_mm2
        return self.shared_area_mm2

    def partition(self, tensor_share: float) -> Dict[str, float]:
        """Static split of shared-pipeline throughput between workloads.

        Multimedia is latency-sensitive and gets priority; tensors take
        the remainder (Section 7's software partitioning policy).
        """
        if not 0.0 <= tensor_share <= 1.0:
            raise ValueError("tensor share must be in [0, 1]")
        return {
            "tensor_gbps": self.tensor_gbps * tensor_share,
            "video_pixels_per_s": self.video_pixels_per_s,  # dedicated blocks
        }


THREE_IN_ONE_ENC = ThreeInOneCodec(CODEC_COMPONENTS["three-in-one-enc"])
THREE_IN_ONE_DEC = ThreeInOneCodec(CODEC_COMPONENTS["three-in-one-dec"])


def overhead_versus_tensor_only() -> float:
    """Extra area the video/image support costs (the 'marginal' claim).

    Only the non-shared partition exists for multimedia alone, so the
    overhead over a tensor-only codec is its fraction of the total.
    """
    return 1.0 - SHARED_PIPELINE_FRACTION
