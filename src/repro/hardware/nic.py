"""NIC model and codec+NIC communication-system sizing (Figure 15a).

The NIC dominates the area and power of the communication system, so a
codec that transmits fewer wire bits shrinks the *NIC*, not just
itself -- the paper's explanation for why the three-in-one codec wins
the total-area comparison despite other codecs being small too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.hardware.components import (
    BASELINE_HW_CODECS,
    CODEC_COMPONENTS,
    DEVICES,
    CodecComponent,
)

#: Watts for a CX5-class 100 Gbps NIC (vendor spec sheets; assumed).
NIC_POWER_W_PER_100G = 19.3


@dataclass(frozen=True)
class NICSpec:
    """A NIC normalised to its wire bandwidth."""

    name: str = "cx5"
    area_mm2_per_100g: float = DEVICES["cx5-nic"].area_mm2
    power_w_per_100g: float = NIC_POWER_W_PER_100G

    def area_for(self, wire_gbps: float) -> float:
        return self.area_mm2_per_100g * wire_gbps / 100.0

    def power_for(self, wire_gbps: float) -> float:
        return self.power_w_per_100g * wire_gbps / 100.0


def _lookup(codec: str, direction: str) -> CodecComponent:
    key = f"{codec}-{direction}"
    if key in CODEC_COMPONENTS:
        return CODEC_COMPONENTS[key]
    if key in BASELINE_HW_CODECS:
        return BASELINE_HW_CODECS[key]
    raise ValueError(f"unknown codec component {key!r}")


def communication_system_area(
    codec: Optional[str],
    compression_ratio: float,
    effective_gbps: float = 100.0,
    nic: NICSpec = NICSpec(),
) -> Dict[str, float]:
    """Total codec+NIC area to sustain ``effective_gbps`` payload.

    With compression the wire only carries ``effective/ratio`` Gbps, so
    the NIC shrinks proportionally; the codec pair is sized for the
    payload rate.  ``codec=None`` means raw transmission.
    """
    if compression_ratio <= 0:
        raise ValueError("compression ratio must be positive")
    if codec is None:
        nic_area = nic.area_for(effective_gbps)
        return {"codec_mm2": 0.0, "nic_mm2": nic_area, "total_mm2": nic_area}
    enc = _lookup(codec, "enc")
    dec = _lookup(codec, "dec")
    codec_area = (enc.area_mm2 + dec.area_mm2) * effective_gbps / enc.throughput_gbps
    nic_area = nic.area_for(effective_gbps / compression_ratio)
    return {
        "codec_mm2": codec_area,
        "nic_mm2": nic_area,
        "total_mm2": codec_area + nic_area,
    }


def communication_system_energy(
    codec: Optional[str],
    compression_ratio: float,
    payload_bytes: float,
    nccl_pj_per_bit: float = 5120.0,
) -> float:
    """Joules to move ``payload_bytes`` once (Figure 15b).

    Wire energy scales down with the compression ratio; codec energy is
    paid per payload bit on both ends.
    """
    bits = payload_bytes * 8.0
    if codec is None:
        return bits * nccl_pj_per_bit * 1e-12
    enc = _lookup(codec, "enc")
    dec = _lookup(codec, "dec")
    per_bit = (
        nccl_pj_per_bit / compression_ratio
        + enc.energy_pj_per_bit
        + dec.energy_pj_per_bit
    )
    return bits * per_bit * 1e-12
