"""Analytical hardware models: die area, power, energy, cluster scaling.

Synthesis (ASAP7 + Synopsys) is not reproducible offline, so these
models are calibrated to the paper's published numbers (Figure 12,
Table 3) and reproduce its *derivations*: instance aggregation to
100 Gbps, NIC+codec area totals, energy-per-bit comparisons, and the
Figure 16 cluster Pareto analysis.
"""

from repro.hardware.components import (
    CODEC_COMPONENTS,
    DEVICES,
    CodecComponent,
    DeviceArea,
    aggregate_to_bandwidth,
)
from repro.hardware.energy import (
    NCCL_PJ_PER_BIT,
    compression_energy_ratio,
    transfer_energy_joules,
)
from repro.hardware.threeinone import THREE_IN_ONE_DEC, THREE_IN_ONE_ENC, ThreeInOneCodec

__all__ = [
    "CodecComponent",
    "DeviceArea",
    "CODEC_COMPONENTS",
    "DEVICES",
    "aggregate_to_bandwidth",
    "NCCL_PJ_PER_BIT",
    "compression_energy_ratio",
    "transfer_energy_joules",
    "ThreeInOneCodec",
    "THREE_IN_ONE_ENC",
    "THREE_IN_ONE_DEC",
]
