"""Table 1: LLaMA-3-70B accuracy after compression (PIQA / W.G. / H.S.).

Paper result: LLM.265 at 2.88 bits matches GPTQ-128G / AWQ-128G at 3.25
bits and clearly beats the non-group-wise 3-bit baselines.

Our stand-in is more compressible than the real 70B (everything ties at
3 bits), so the table is reproduced one notch lower: LLM.265 at ~1.9
bits against 2-bit GPTQ/AWQ (+-128G), where the same ordering emerges.
"""

import pytest

from bench_helpers import (
    apply_awq,
    apply_codec,
    apply_gptq,
    calibration_inputs,
    fresh,
)
from conftest import print_table, scaled

from repro.evals import build_suite
from repro.evals.harness import evaluate_suite
from repro.evals.tasks import COMMONSENSE_SUITE

MODEL = "llama3-70b-sim"
TASK_NAMES = ("piqa-sim", "winogrande-sim", "hellaswag-sim")
BASE_BITS = 2  # the separation regime for the stand-in model
OUR_BITS = 1.9


def test_table1_llama3_70b(run_once):
    def experiment():
        base_model, corpus = fresh(MODEL)
        specs = [s for s in COMMONSENSE_SUITE if s.name in TASK_NAMES]
        tasks = build_suite(corpus, specs, num_items=scaled(35, 12))

        rows = []

        def record(label, bits, model):
            scores = evaluate_suite(model, tasks)
            rows.append(
                (
                    f"{bits:.2f}",
                    label,
                    *(f"{scores[name]:.3f}" for name in TASK_NAMES),
                )
            )
            return scores

        baseline = record("-", 16.0, base_model)

        calib_model, _ = fresh(MODEL)
        calib = calibration_inputs(calib_model, corpus)

        model, _ = fresh(MODEL)
        bits = apply_gptq(model, calib, BASE_BITS, group_size=128)
        gptq_g = record("GPTQ-128G", bits, model)

        model, _ = fresh(MODEL)
        bits = apply_awq(model, calib, BASE_BITS, group_size=128)
        awq_g = record("AWQ-128G", bits, model)

        model, _ = fresh(MODEL)
        bits = apply_gptq(model, calib, BASE_BITS)
        gptq = record("GPTQ", bits, model)

        model, _ = fresh(MODEL)
        bits = apply_awq(model, calib, BASE_BITS)
        awq = record("AWQ", bits, model)

        model, _ = fresh(MODEL)
        bits = apply_codec(model, OUR_BITS, variable=True)
        ours = record("LLM.265 (Ours)", bits, model)

        return rows, baseline, gptq_g, awq_g, gptq, awq, ours

    rows, baseline, gptq_g, awq_g, gptq, awq, ours = run_once(experiment)
    print_table(
        "Table 1: LLaMA-3-70B (sim) accuracy after weight compression",
        ("avg bits", "algorithm", *TASK_NAMES),
        rows,
    )

    def avg(scores):
        return sum(scores[n] for n in TASK_NAMES) / len(TASK_NAMES)

    # LLM.265 at fewer bits stays close to the 16-bit baseline...
    assert avg(ours) >= avg(baseline) - 0.10
    # ...is on par with the group-wise calibrated baselines at more bits...
    assert avg(ours) >= min(avg(gptq_g), avg(awq_g)) - 0.05
    # ...and matches or beats the non-group-wise baselines.
    assert avg(ours) >= min(avg(gptq), avg(awq)) - 0.02
