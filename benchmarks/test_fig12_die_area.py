"""Figure 12: die-area comparison of GPUs, CPUs, NICs, and video codecs.

Paper result: an H.264 enc+dec pair at 100 Gb/s occupies < 2 mm^2 --
~199x smaller than the 7 nm-normalised RTX 3090 and ~88x smaller than a
CX5 NIC -- and the encoder's area is dominated by inter prediction plus
the frame buffer, the blocks tensors do not need.
"""

import pytest

from conftest import print_table

from repro.hardware.components import (
    CODEC_COMPONENTS,
    DEVICES,
    ENCODER_AREA_BREAKDOWN,
    area_ratio,
    intra_only_area_fraction,
)


def test_fig12_device_areas(run_once):
    def experiment():
        rows = []
        for key in ("rtx3090-native", "rtx3090-7nm", "server-cpu", "cx5-nic"):
            device = DEVICES[key]
            rows.append(
                (
                    device.name,
                    f"{device.area_mm2:.1f}",
                    f"{device.native_node_nm} nm",
                    "assumed" if device.assumed else "paper",
                )
            )
        for key in ("h264-enc", "h264-dec", "h265-enc", "h265-dec"):
            component = CODEC_COMPONENTS[key]
            rows.append((component.name, f"{component.area_mm2:.2f}", "7 nm", "paper"))
        return rows

    rows = run_once(experiment)
    print_table(
        "Figure 12: die areas (100 Gb/s codec aggregates)",
        ("device", "area mm^2", "node", "source"),
        rows,
    )

    pair = CODEC_COMPONENTS["h264-enc"].area_mm2 + CODEC_COMPONENTS["h264-dec"].area_mm2
    assert pair < 2.0  # "less than 2 mm^2 of die area"
    assert 150 < area_ratio("rtx3090-7nm", "h264") < 250  # "199x smaller"
    assert 60 < area_ratio("cx5-nic", "h264") < 120  # "88x smaller"
    assert DEVICES["rtx3090-7nm"].area_mm2 == pytest.approx(398.0, abs=1.0)


def test_fig12_encoder_breakdown(run_once):
    rows = run_once(
        lambda: [(k, f"{100 * v:.0f}%") for k, v in ENCODER_AREA_BREAKDOWN.items()]
    )
    print_table(
        "Figure 12(a-d): encoder die-area distribution (assumed split)",
        ("block", "share"),
        rows,
    )
    dropped = (
        ENCODER_AREA_BREAKDOWN["inter-prediction"]
        + ENCODER_AREA_BREAKDOWN["frame-buffer"]
    )
    # "a significant portion of the die area is spent on inter-frame
    # prediction and the frame buffer"
    assert dropped > 0.5
    assert intra_only_area_fraction() == pytest.approx(1.0 - dropped)
