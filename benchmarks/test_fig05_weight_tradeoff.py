"""Figure 5: accuracy vs average bit-width for LLaMA-2-7B weight compression.

Paper result: LLM.265 (variable bitrate) holds full-precision accuracy
down to ~3 bits and degrades gracefully below, while GPTQ/AWQ need
~4.25 bits for the same accuracy and collapse under 3 bits; the
variable-bitrate variant beats the fixed one at very low budgets.

Our stand-in model is smaller and more redundant than the real
LLaMA-2-7B, so the whole figure shifts left: LLM.265 holds accuracy to
~1.3-1.5 bits while the baselines degrade at 2-3 bits.  The *shape*
(the codec's curve sits strictly left of every baseline curve) is the
reproduced result.
"""

import numpy as np
import pytest

from bench_helpers import (
    apply_awq,
    apply_codec,
    apply_gptq,
    apply_rtn,
    calibration_inputs,
    eval_accuracy,
    fresh,
)
from conftest import print_table, scaled

from repro.evals import COMMONSENSE_SUITE, build_suite

MODEL = "llama2-7b-sim"


@pytest.fixture(scope="module")
def tasks():
    _, corpus = fresh(MODEL)
    return build_suite(corpus, COMMONSENSE_SUITE, num_items=scaled(30, 12))


def test_fig05_accuracy_vs_bits(run_once, tasks):
    def experiment():
        rows = []
        baseline_model, corpus = fresh(MODEL)
        baseline = eval_accuracy(baseline_model, tasks)["avg"]
        rows.append(("BF16 baseline", "16.00", f"{baseline:.3f}"))

        codec_bits = [0.8, 1.0, 1.5, 2.0, 3.0] if not scaled(0, 1) else [1.0, 2.0]
        curves = {"llm265-variable": {}, "llm265-fixed": {}}
        for bits in codec_bits:
            model, _ = fresh(MODEL)
            achieved = apply_codec(model, bits, variable=True)
            acc = eval_accuracy(model, tasks)["avg"]
            curves["llm265-variable"][bits] = acc
            rows.append((f"LLM.265 variable @{bits}", f"{achieved:.2f}", f"{acc:.3f}"))

            model, _ = fresh(MODEL)
            achieved = apply_codec(model, bits, variable=False)
            acc = eval_accuracy(model, tasks)["avg"]
            curves["llm265-fixed"][bits] = acc
            rows.append((f"LLM.265 fixed    @{bits}", f"{achieved:.2f}", f"{acc:.3f}"))

        calib_model, corpus = fresh(MODEL)
        calib = calibration_inputs(calib_model, corpus)
        baselines = {}
        for bits in (2, 3):
            for method, apply in (
                ("gptq", lambda m, b: apply_gptq(m, calib, b)),
                ("awq", lambda m, b: apply_awq(m, calib, b)),
                ("rtn", lambda m, b: apply_rtn(m, b)),
                ("gptq-128g", lambda m, b: apply_gptq(m, calib, b, group_size=128)),
                ("awq-128g", lambda m, b: apply_awq(m, calib, b, group_size=128)),
            ):
                model, _ = fresh(MODEL)
                achieved = apply(model, bits)
                acc = eval_accuracy(model, tasks)["avg"]
                baselines[(method, bits)] = acc
                rows.append((f"{method:10s}{bits}b", f"{achieved:.2f}", f"{acc:.3f}"))
        return rows, baseline, curves, baselines

    rows, baseline, curves, baselines = run_once(experiment)
    print_table(
        "Figure 5: accuracy vs average bits (8 commonsense suites)",
        ("method", "avg bits", "avg accuracy"),
        rows,
    )

    variable = curves["llm265-variable"]
    fixed = curves["llm265-fixed"]
    mid = min(b for b in variable if b >= 1.5) if any(b >= 1.5 for b in variable) else max(variable)

    # The codec holds near-baseline accuracy at mid budgets...
    assert variable[mid] >= baseline - 0.06
    # ...and at 2 bits beats every plain (non-group-wise) baseline at
    # the same integer budget.
    two_bit = variable.get(2.0, variable[mid])
    for method in ("gptq", "awq", "rtn"):
        assert two_bit >= baselines[(method, 2)] - 0.02, method
    # The codec at ~1 bit is at least as good as per-tensor RTN at 2:
    # half the bits for the same or better accuracy.
    low = min(variable)
    assert variable[low] >= baselines[("rtn", 2)] - 0.05
    # Variable allocation never loses to fixed at the lowest budget.
    assert variable[low] >= fixed[low] - 0.05
